"""FIR datapath and FFT butterfly against their golden models."""

import numpy as np
import pytest

from repro.netlist.builder import NetlistBuilder
from repro.netlist.validate import validate_netlist
from repro.operators import fft_butterfly, fir_filter, FirParameters
from repro.operators.mac import multiply_accumulate
from repro.sim import golden
from repro.sim.simulator import LogicSimulator, SimulationMode
from repro.techlib.library import Library

LIBRARY = Library()


class TestFirParameters:
    def test_defaults_match_paper(self):
        params = FirParameters()
        assert params.taps == 30
        assert params.width == 16
        assert params.counter_bits == 5
        assert params.accumulator_width == 37

    def test_counter_bits_scale(self):
        assert FirParameters(taps=4, width=8).counter_bits == 2
        assert FirParameters(taps=33, width=8).counter_bits == 6


class TestFirFilter:
    @pytest.mark.parametrize("taps,width", [(4, 6), (6, 8), (5, 8)])
    def test_cycle_accurate_vs_golden(self, taps, width):
        params = FirParameters(taps=taps, width=width)
        netlist = fir_filter(LIBRARY, params)
        validate_netlist(netlist)
        sim = LogicSimulator(netlist, SimulationMode.CYCLE)
        rng = np.random.default_rng(taps * 100 + width)
        cycles = 4 * taps + 3
        batch = 25
        lo, hi = -(1 << (width - 1)), 1 << (width - 1)
        xs = [rng.integers(lo, hi, batch) for _ in range(cycles)]
        cs = [rng.integers(lo, hi, batch) for _ in range(cycles)]
        trace = sim.run_cycles([{"X": x, "C": c} for x, c in zip(xs, cs)])
        reference = golden.fir_reference(xs, cs, params)
        for cycle in range(cycles):
            assert np.array_equal(
                trace.output("Y", cycle), reference[cycle]["Y"]
            ), f"Y mismatch at cycle {cycle}"
            assert np.array_equal(
                trace.output("TAP", cycle), reference[cycle]["TAP"]
            ), f"TAP mismatch at cycle {cycle}"

    def test_computes_actual_convolution(self):
        """Drive constant coefficients and check a real FIR dot product."""
        params = FirParameters(taps=4, width=8)
        netlist = fir_filter(LIBRARY, params)
        sim = LogicSimulator(netlist, SimulationMode.CYCLE)
        taps = params.taps
        coeffs = [3, -2, 5, 7]  # c[k] multiplies delay stage k
        samples = [10, -20, 30, 40, -50]
        cycles = taps * (len(samples) + 2)

        xs, cs = [], []
        for cycle in range(cycles):
            count = cycle % taps
            sample_idx = cycle // taps
            x = samples[sample_idx] if sample_idx < len(samples) else 0
            xs.append(np.asarray([x]))
            # c_reg delays C by one cycle: present c[count of next cycle].
            next_count = (count + 1) % taps
            cs.append(np.asarray([coeffs[next_count]]))

        trace = sim.run_cycles([{"X": x, "C": c} for x, c in zip(xs, cs)])
        reference = golden.fir_reference(xs, cs, params)
        for cycle in range(cycles):
            assert np.array_equal(trace.output("Y", cycle), reference[cycle]["Y"])

        # After sample n has shifted in and a full MAC round completed, the
        # accumulator holds sum_k c[k] * x[n-k] (newest sample in stage 0).
        # Read it on the first cycle of the following round.
        n = 3  # fourth sample
        read_cycle = taps * (n + 2)
        window = [samples[n - k] if 0 <= n - k < len(samples) else 0
                  for k in range(taps)]
        expected = sum(c * x for c, x in zip(coeffs, window))
        assert trace.output("Y", read_cycle)[0] == expected


class TestMac:
    def test_accumulates_products(self):
        builder = NetlistBuilder("mac", LIBRARY)
        a = builder.input_bus("A", 6)
        b = builder.input_bus("B", 6)
        builder.clock()
        acc = multiply_accumulate(builder, a, b, accumulator_width=16)
        builder.output_bus("ACC", acc)
        netlist = builder.build()
        sim = LogicSimulator(netlist, SimulationMode.CYCLE)
        rng = np.random.default_rng(1)
        cycles = 6
        avals = [rng.integers(-32, 32, 10) for _ in range(cycles)]
        bvals = [rng.integers(-32, 32, 10) for _ in range(cycles)]
        trace = sim.run_cycles(
            [{"A": x, "B": y} for x, y in zip(avals, bvals)]
        )
        running = np.zeros(10, dtype=np.int64)
        for cycle in range(cycles):
            assert np.array_equal(trace.output("ACC", cycle), running)
            running = running + avals[cycle] * bvals[cycle]

    def test_accumulator_too_narrow_rejected(self):
        builder = NetlistBuilder("mac", LIBRARY)
        a = builder.input_bus("A", 8)
        b = builder.input_bus("B", 8)
        builder.clock()
        with pytest.raises(ValueError, match="cannot hold"):
            multiply_accumulate(builder, a, b, accumulator_width=12)


class TestButterfly:
    def test_against_golden_random(self):
        netlist = fft_butterfly(LIBRARY, width=16)
        validate_netlist(netlist)
        sim = LogicSimulator(netlist, SimulationMode.CYCLE)
        rng = np.random.default_rng(4)
        ins = {
            p: rng.integers(-(1 << 15), 1 << 15, 300)
            for p in ("AR", "AI", "BR", "BI", "WR", "WI")
        }
        trace = sim.run_cycles([ins] * 3)
        reference = golden.butterfly_reference(
            ins["AR"], ins["AI"], ins["BR"], ins["BI"], ins["WR"], ins["WI"]
        )
        for port in ("XR", "XI", "YR", "YI"):
            assert np.array_equal(trace.output(port, 2), reference[port]), port

    def test_unit_twiddle_passes_b_through(self):
        """W = 1 (Q1.15 one) makes A' ~ A+B and B' ~ A-B."""
        netlist = fft_butterfly(LIBRARY, width=16)
        sim = LogicSimulator(netlist, SimulationMode.CYCLE)
        one_q15 = (1 << 15) - 1  # 0.99997 in Q1.15
        rng = np.random.default_rng(6)
        ar = rng.integers(-1000, 1000, 50)
        ai = rng.integers(-1000, 1000, 50)
        br = rng.integers(-1000, 1000, 50)
        bi = rng.integers(-1000, 1000, 50)
        ins = {
            "AR": ar, "AI": ai, "BR": br, "BI": bi,
            "WR": np.full(50, one_q15), "WI": np.zeros(50, dtype=np.int64),
        }
        trace = sim.run_cycles([ins] * 3)
        # W*B with W ~ 1 is B within 1 LSB of truncation error per term.
        assert np.max(np.abs(trace.output("XR", 2) - (ar + br))) <= 2
        assert np.max(np.abs(trace.output("YI", 2) - (ai - bi))) <= 2

    def test_butterfly_energy_conservation_shape(self):
        """|A'|^2 + |B'|^2 ~ 2(|A|^2 + |WB|^2) for the DIT butterfly."""
        netlist = fft_butterfly(LIBRARY, width=16)
        sim = LogicSimulator(netlist, SimulationMode.CYCLE)
        rng = np.random.default_rng(8)
        scale = 1 << 12
        ins = {
            p: rng.integers(-scale, scale, 100)
            for p in ("AR", "AI", "BR", "BI")
        }
        # Random unit-magnitude twiddles.
        angles = rng.uniform(0, 2 * np.pi, 100)
        ins["WR"] = (np.cos(angles) * ((1 << 15) - 1)).astype(np.int64)
        ins["WI"] = (np.sin(angles) * ((1 << 15) - 1)).astype(np.int64)
        trace = sim.run_cycles([ins] * 3)
        lhs = (
            trace.output("XR", 2).astype(float) ** 2
            + trace.output("XI", 2).astype(float) ** 2
            + trace.output("YR", 2).astype(float) ** 2
            + trace.output("YI", 2).astype(float) ** 2
        )
        wb_r = ins["BR"] * ins["WR"] - ins["BI"] * ins["WI"]
        wb_i = ins["BR"] * ins["WI"] + ins["BI"] * ins["WR"]
        rhs = 2 * (
            ins["AR"].astype(float) ** 2
            + ins["AI"].astype(float) ** 2
            + (wb_r / (1 << 15)) ** 2
            + (wb_i / (1 << 15)) ** 2
        )
        ratio = lhs.sum() / rhs.sum()
        assert 0.9 < ratio < 1.1
