"""Adequate adder and L1-norm operators."""

import numpy as np
import pytest

from repro.netlist.validate import validate_netlist
from repro.operators import adequate_adder, l1_norm
from repro.sim.simulator import LogicSimulator, SimulationMode
from repro.sim.vectors import zero_lsbs
from repro.sta.caseanalysis import dvas_case
from repro.techlib.library import Library

LIBRARY = Library()


class TestAdequateAdder:
    @pytest.mark.parametrize("width", [4, 8])
    def test_exhaustive_or_random(self, width):
        netlist = adequate_adder(LIBRARY, width=width, registered=False)
        validate_netlist(netlist)
        sim = LogicSimulator(netlist, SimulationMode.TRANSPARENT)
        lo, hi = -(1 << (width - 1)), 1 << (width - 1)
        if width <= 4:
            a, b = np.meshgrid(np.arange(lo, hi), np.arange(lo, hi))
            a, b = a.ravel(), b.ravel()
        else:
            rng = np.random.default_rng(0)
            a = rng.integers(lo, hi, 2000)
            b = rng.integers(lo, hi, 2000)
        out = sim.run_combinational({"A": a, "B": b})["S"]
        assert np.array_equal(out, a + b)  # width+1 bits: never wraps

    def test_registered_latency(self):
        netlist = adequate_adder(LIBRARY, width=6)
        sim = LogicSimulator(netlist, SimulationMode.CYCLE)
        stim = [{"A": np.asarray([13]), "B": np.asarray([-5])}] * 3
        trace = sim.run_cycles(stim)
        assert trace.output("S", 2)[0] == 8

    def test_gating_deactivates_low_bits(self):
        netlist = adequate_adder(LIBRARY, width=8)
        case = dvas_case(netlist, 4)
        s_bus = netlist.output_buses["S"]
        for net in s_bus.nets[:4]:
            assert case.values[net.index] == 0


class TestL1Norm:
    def _golden(self, a_words, b_words, width):
        total = np.zeros_like(a_words[0])
        for a, b in zip(a_words, b_words):
            total = total + np.abs(a - b)
        return total

    @pytest.mark.parametrize("elements,width", [(1, 5), (2, 6), (4, 6), (3, 5)])
    def test_against_golden(self, elements, width):
        netlist = l1_norm(
            LIBRARY, elements=elements, width=width, registered=False
        )
        validate_netlist(netlist)
        sim = LogicSimulator(netlist, SimulationMode.TRANSPARENT)
        rng = np.random.default_rng(elements * 10 + width)
        lo, hi = -(1 << (width - 1)) + 1, 1 << (width - 1)
        a_words = [rng.integers(lo, hi, 1500) for _ in range(elements)]
        b_words = [rng.integers(lo, hi, 1500) for _ in range(elements)]
        stim = {f"A{i}": a_words[i] for i in range(elements)}
        stim.update({f"B{i}": b_words[i] for i in range(elements)})
        out = sim.run_combinational(stim)["Y"]
        assert np.array_equal(out, self._golden(a_words, b_words, width))

    def test_int_min_wraps_like_hardware(self):
        """|INT_MIN| wraps in two's complement; the netlist must match the
        width-limited semantics, not python's unbounded abs."""
        width = 4
        netlist = l1_norm(LIBRARY, elements=1, width=width, registered=False)
        sim = LogicSimulator(netlist, SimulationMode.TRANSPARENT)
        out = sim.run_combinational(
            {"A0": np.asarray([-8]), "B0": np.asarray([0])}
        )["Y"]
        assert out[0] == 8  # -(-8) fits in the width+1-bit unsigned result

    def test_zero_elements_rejected(self):
        with pytest.raises(ValueError):
            l1_norm(LIBRARY, elements=0)

    def test_accuracy_scaling_error_bound(self):
        """LSB gating bounds the L1 error by n * 2^(dropped+1)."""
        elements, width, active = 4, 8, 4
        netlist = l1_norm(
            LIBRARY, elements=elements, width=width, registered=False
        )
        sim = LogicSimulator(netlist, SimulationMode.TRANSPARENT)
        rng = np.random.default_rng(3)
        lo, hi = -100, 100
        a_words = [rng.integers(lo, hi, 500) for _ in range(elements)]
        b_words = [rng.integers(lo, hi, 500) for _ in range(elements)]
        exact = self._golden(a_words, b_words, width)
        stim = {
            f"A{i}": zero_lsbs(a_words[i], width, active)
            for i in range(elements)
        }
        stim.update(
            {
                f"B{i}": zero_lsbs(b_words[i], width, active)
                for i in range(elements)
            }
        )
        approx = sim.run_combinational(stim)["Y"]
        bound = elements * (1 << (width - active))
        assert np.max(np.abs(approx - exact)) <= bound

    def test_flow_compatible(self):
        """The L1 norm runs through the full implementation flow."""
        from repro.core.flow import implement_base

        design = implement_base(
            lambda: l1_norm(LIBRARY, elements=2, width=6), LIBRARY
        )
        assert design.fclk_ghz > 0
