"""Lock-in of the shared reduceat sweep kernels.

The :mod:`repro.sta.sweep` kernels replaced the per-engine
``np.maximum.at`` / ``np.minimum.at`` scatter loops.  ``max``/``min`` are
exact and order-independent, so the rewrite must be *bit-identical* to
the scatter it replaced -- these tests compare both kernels against a
naive scatter reference on real graphs, with and without case filtering,
and pin down the schedule invariants the kernels rely on.
"""

import numpy as np
import pytest

from repro.operators import booth_multiplier
from repro.sta.caseanalysis import dvas_case
from repro.sta.sweep import (
    compile_schedule,
    schedule_for,
    sweep_backward,
    sweep_forward,
)
from repro.sta.graph import compile_timing_graph
from repro.techlib.library import Library

LIBRARY = Library()


@pytest.fixture(scope="module")
def booth8():
    netlist = booth_multiplier(LIBRARY, width=8, name="sweep_booth8")
    return netlist, compile_timing_graph(netlist)


@pytest.fixture(scope="module")
def booth8_case(booth8):
    netlist, _ = booth8
    return dvas_case(netlist, 4)


# ---------------------------------------------------------------------------
# Schedule invariants
# ---------------------------------------------------------------------------


class TestScheduleInvariants:
    def test_arc_order_is_level_major_sink_minor(self, booth8):
        _, graph = booth8
        levels = graph.net_level[graph.arc_to[graph.arc_order]]
        sinks = graph.arc_to[graph.arc_order]
        assert (np.diff(levels) >= 0).all()
        # Within each level, arcs are sorted by sink net.
        same_level = np.diff(levels) == 0
        assert (np.diff(sinks)[same_level] >= 0).all()

    def test_graph_carries_precompiled_schedule(self, booth8):
        _, graph = booth8
        assert graph.schedule is not None
        assert graph.schedule.forward and graph.schedule.backward

    @pytest.mark.parametrize("case_filtered", [False, True])
    def test_every_active_arc_scheduled_once(
        self, booth8, booth8_case, case_filtered
    ):
        _, graph = booth8
        case = booth8_case if case_filtered else None
        schedule = compile_schedule(graph, case)
        expected = (
            set(np.nonzero(booth8_case.active_arc_mask(graph))[0])
            if case_filtered
            else set(range(len(graph.arc_from)))
        )
        for direction in (schedule.forward, schedule.backward):
            seen = np.concatenate([level.arcs for level in direction])
            assert len(seen) == len(set(seen)) == len(expected)
            assert set(seen) == expected

    @pytest.mark.parametrize("case_filtered", [False, True])
    def test_segments_are_sorted_runs_of_one_net(
        self, booth8, booth8_case, case_filtered
    ):
        _, graph = booth8
        case = booth8_case if case_filtered else None
        schedule = compile_schedule(graph, case)
        for direction, keys in (
            (schedule.forward, graph.arc_to),
            (schedule.backward, graph.arc_from),
        ):
            for level in direction:
                run_keys = keys[level.arcs]
                assert (np.diff(run_keys) >= 0).all()
                bounds = np.concatenate((level.starts, [len(level.arcs)]))
                for i, net in enumerate(level.nets):
                    segment = run_keys[bounds[i]:bounds[i + 1]]
                    assert (segment == net).all()

    def test_schedule_memoized_on_graph_and_case(self, booth8, booth8_case):
        _, graph = booth8
        assert schedule_for(graph) is schedule_for(graph)
        assert schedule_for(graph) is graph.schedule
        filtered = schedule_for(graph, booth8_case)
        assert schedule_for(graph, booth8_case) is filtered
        assert filtered is not graph.schedule


# ---------------------------------------------------------------------------
# Kernels vs naive scatter
# ---------------------------------------------------------------------------


def _scatter_forward(graph, schedule, delay, arrival, ufunc):
    """The legacy per-level ``ufunc.at`` propagation, as a reference."""
    for level in schedule.forward:
        arcs = level.arcs
        candidate = arrival[graph.arc_from[arcs]] + delay[arcs]
        ufunc.at(arrival, graph.arc_to[arcs], candidate)


def _scatter_backward(graph, schedule, delay, required):
    for level in reversed(schedule.backward):
        arcs = level.arcs
        candidate = required[graph.arc_to[arcs]] - delay[arcs]
        np.minimum.at(required, graph.arc_from[arcs], candidate)


def _seed(graph, fill, num_k=None):
    shape = (graph.num_nets,) if num_k is None else (graph.num_nets, num_k)
    arrival = np.full(shape, fill)
    arrival[graph.launch_nets] = graph.launch_delay_ps if num_k is None else (
        graph.launch_delay_ps[:, None]
    )
    return arrival


class TestKernelsMatchScatter:
    @pytest.mark.parametrize("case_filtered", [False, True])
    @pytest.mark.parametrize(
        "ufunc,fill", [(np.maximum, -1e30), (np.minimum, 1e30)]
    )
    def test_forward_1d(self, booth8, booth8_case, case_filtered, ufunc, fill):
        _, graph = booth8
        case = booth8_case if case_filtered else None
        schedule = schedule_for(graph, case)
        delay = graph.arc_delay_ps * 1.25

        reference = _seed(graph, fill)
        _scatter_forward(graph, schedule, delay, reference, ufunc)
        result = _seed(graph, fill)
        sweep_forward(
            schedule, graph.arc_from, lambda a: delay[a], result,
            reduce_op=ufunc,
        )
        np.testing.assert_array_equal(result, reference)

    @pytest.mark.parametrize("case_filtered", [False, True])
    def test_forward_2d(self, booth8, booth8_case, case_filtered):
        """The batched (nets x K) arrival-matrix form."""
        _, graph = booth8
        case = booth8_case if case_filtered else None
        schedule = schedule_for(graph, case)
        rng = np.random.default_rng(3)
        factors = rng.uniform(1.0, 2.0, size=(len(graph.arc_from), 4))
        factors = factors.astype(np.float32)
        delay = graph.arc_delay_ps[:, None].astype(np.float32) * factors

        reference = _seed(graph, np.float32(-1e30), num_k=4).astype(np.float32)
        _scatter_forward(graph, schedule, delay, reference, np.maximum)
        result = _seed(graph, np.float32(-1e30), num_k=4).astype(np.float32)
        sweep_forward(schedule, graph.arc_from, lambda a: delay[a], result)
        np.testing.assert_array_equal(result, reference)

    @pytest.mark.parametrize("case_filtered", [False, True])
    def test_backward(self, booth8, booth8_case, case_filtered):
        _, graph = booth8
        case = booth8_case if case_filtered else None
        schedule = schedule_for(graph, case)
        delay = graph.arc_delay_ps
        seed = np.full(graph.num_nets, 1e30)
        seed[graph.endpoint_nets] = 1000.0

        reference = seed.copy()
        _scatter_backward(graph, schedule, delay, reference)
        result = seed.copy()
        sweep_backward(schedule, graph.arc_to, lambda a: delay[a], result)
        np.testing.assert_array_equal(result, reference)
