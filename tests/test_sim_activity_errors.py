"""Activity extraction and accuracy metrics."""

import numpy as np
import pytest

from repro.operators import booth_multiplier
from repro.sim.activity import activity_sweep, measure_activity
from repro.sim.errors import compare, error_metrics
from repro.techlib.library import Library

LIBRARY = Library()


@pytest.fixture(scope="module")
def booth6():
    return booth_multiplier(LIBRARY, width=6)


class TestActivity:
    def test_rates_are_physical(self, booth6):
        report = measure_activity(booth6, active_bits=6, cycles=16, batch=16)
        assert report.rates.shape == (len(booth6.nets),)
        assert np.all(report.rates >= 0.0)
        # Data nets toggle at most once per cycle; only the clock does 2.
        data = np.delete(report.rates, booth6.clock_net.index)
        assert np.all(data <= 1.0)

    def test_gating_reduces_activity(self, booth6):
        full = measure_activity(booth6, active_bits=6, cycles=16, batch=16)
        gated = measure_activity(booth6, active_bits=2, cycles=16, batch=16)
        assert gated.rates.sum() < 0.7 * full.rates.sum()
        assert gated.nonzero_fraction() < full.nonzero_fraction()

    def test_gated_input_nets_are_silent(self, booth6):
        gated = measure_activity(booth6, active_bits=2, cycles=16, batch=16)
        for bus in booth6.input_buses.values():
            for net in bus.nets[: bus.width - 2]:
                assert gated.rates[net.index] == 0.0

    def test_deterministic_given_seed(self, booth6):
        a = measure_activity(booth6, active_bits=4, cycles=12, batch=8, seed=1)
        b = measure_activity(booth6, active_bits=4, cycles=12, batch=8, seed=1)
        assert np.array_equal(a.rates, b.rates)

    def test_sweep_covers_requested_bitwidths(self, booth6):
        sweep = activity_sweep(booth6, (2, 4, 6), cycles=12, batch=8)
        assert sorted(sweep) == [2, 4, 6]
        assert all(r.active_bits == b for b, r in sweep.items())

    def test_too_few_cycles_rejected(self, booth6):
        with pytest.raises(ValueError, match="cycles"):
            measure_activity(booth6, active_bits=4, cycles=3)


class TestErrorMetrics:
    def test_exact_mode_has_no_error(self):
        report = error_metrics(lambda a, b: a * b, width=8, active_bits=8)
        assert report.mean_error_distance == 0.0
        assert report.rmse == 0.0
        assert report.snr_db == float("inf")

    def test_error_grows_as_bits_drop(self):
        reports = [
            error_metrics(lambda a, b: a * b, width=8, active_bits=bits)
            for bits in (8, 6, 4, 2)
        ]
        rmse = [r.rmse for r in reports]
        assert rmse == sorted(rmse)
        snr = [r.snr_db for r in reports]
        assert snr == sorted(snr, reverse=True)

    def test_snr_roughly_6db_per_bit(self):
        """Quantization theory: each active bit is worth ~6 dB of SNR."""
        r6 = error_metrics(lambda a, b: a * b, width=16, active_bits=6)
        r10 = error_metrics(lambda a, b: a * b, width=16, active_bits=10)
        gained = r10.snr_db - r6.snr_db
        assert 18.0 < gained < 30.0  # 4 bits ~ 24 dB

    def test_compare_all_zero_signal(self):
        report = compare(np.zeros(10), np.ones(10), active_bits=1)
        assert report.snr_db == float("-inf")
        assert report.max_error == 1.0

    def test_as_dict_fields(self):
        report = error_metrics(lambda a, b: a + b, width=8, active_bits=4)
        data = report.as_dict()
        assert set(data) == {
            "active_bits", "mean_error_distance", "rmse", "max_error",
            "snr_db",
        }
