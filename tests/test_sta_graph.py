"""Timing-graph compilation: arcs, levels, endpoints, loads."""

import numpy as np
import pytest

from repro.netlist.builder import NetlistBuilder
from repro.operators import booth_multiplier
from repro.pnr.placer import GlobalPlacer
from repro.pnr.parasitics import extract_parasitics
from repro.sta.graph import compile_timing_graph, net_pin_caps
from repro.techlib.library import Library

LIBRARY = Library()


def _tiny_netlist():
    builder = NetlistBuilder("tiny", LIBRARY)
    a = builder.input_bus("A", 2)
    builder.clock()
    regged = builder.register_word(a)
    s, co = builder.half_adder(regged[0], regged[1])
    builder.output_bus("S", builder.register_word([s, co]))
    return builder.build()


class TestCompilation:
    def test_arc_count_matches_pin_products(self):
        netlist = _tiny_netlist()
        graph = compile_timing_graph(netlist)
        expected = sum(
            len(c.template.inputs) * len(c.template.outputs)
            for c in netlist.cells
            if not c.is_sequential
        )
        assert len(graph.arc_from) == expected

    def test_launch_points(self):
        netlist = _tiny_netlist()
        graph = compile_timing_graph(netlist)
        # 4 flop Qs + 2 primary input bits.
        assert len(graph.launch_nets) == 6
        q_launches = graph.launch_cell >= 0
        assert np.count_nonzero(q_launches) == 4
        assert np.all(graph.launch_delay_ps[q_launches] > 0.0)
        # Primary inputs are launched by an (assumed) external register.
        clk_to_q = LIBRARY.template("DFF").clk_to_q_ps
        assert np.all(graph.launch_delay_ps[~q_launches] == clk_to_q)

    def test_endpoints(self):
        netlist = _tiny_netlist()
        graph = compile_timing_graph(netlist)
        # 4 flop D pins + 2 primary output bits.
        assert len(graph.endpoint_nets) == 6
        d_endpoints = graph.endpoint_cell >= 0
        assert np.all(graph.endpoint_setup_ps[d_endpoints] > 0.0)
        assert np.all(graph.endpoint_setup_ps[~d_endpoints] == 0.0)

    def test_levels_monotone_along_arcs(self):
        netlist = booth_multiplier(LIBRARY, width=6)
        graph = compile_timing_graph(netlist)
        assert np.all(
            graph.net_level[graph.arc_to] > graph.net_level[graph.arc_from]
        )

    def test_level_slices_cover_all_arcs(self):
        netlist = booth_multiplier(LIBRARY, width=6)
        graph = compile_timing_graph(netlist)
        covered = sum(s.stop - s.start for s in graph.level_slices)
        assert covered == len(graph.arc_from)
        # And the slices are sorted by level.
        levels = graph.net_level[graph.arc_to[graph.arc_order]]
        assert np.all(np.diff(levels) >= 0)

    def test_arcs_of_cell(self):
        netlist = _tiny_netlist()
        graph = compile_timing_graph(netlist)
        ha = next(c for c in netlist.cells if c.template.name == "HA")
        arcs = graph.arcs_of_cell(ha.index)
        assert len(arcs) == 4  # 2 inputs x 2 outputs


class TestLoads:
    def test_pin_caps_sum_sink_inputs(self):
        netlist = _tiny_netlist()
        caps = net_pin_caps(netlist)
        ha = next(c for c in netlist.cells if c.template.name == "HA")
        s_net = ha.output_nets[0]
        dff_cap = LIBRARY.template("DFF").drives["X1"].input_cap_ff
        assert caps[s_net.index] == pytest.approx(dff_cap)

    def test_wire_parasitics_increase_delay(self):
        netlist = booth_multiplier(LIBRARY, width=8)
        placement = GlobalPlacer(netlist, seed=1).run()
        parasitics = extract_parasitics(placement)
        ideal = compile_timing_graph(netlist)
        wired = compile_timing_graph(netlist, parasitics)
        assert wired.arc_delay_ps.sum() > ideal.arc_delay_ps.sum()
        assert np.all(wired.arc_delay_ps >= ideal.arc_delay_ps - 1e-9)

    def test_drive_change_reflected_after_recompile(self):
        netlist = _tiny_netlist()
        before = compile_timing_graph(netlist)
        ha = next(c for c in netlist.cells if c.template.name == "HA")
        ha.set_drive("X4")
        after = compile_timing_graph(netlist)
        arcs = before.arcs_of_cell(ha.index)
        assert np.all(
            after.arc_delay_ps[arcs] < before.arc_delay_ps[arcs]
        )
