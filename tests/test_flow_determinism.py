"""Determinism and robustness of the end-to-end flow."""

import numpy as np
import pytest

from repro import quick_flow
from repro.core.config import ExplorationSettings
from repro.core.exploration import ExhaustiveExplorer
from repro.core.flow import implement_base, implement_with_domains
from repro.operators import booth_multiplier
from repro.pnr.grid import GridPartition

SETTINGS = ExplorationSettings(
    bitwidths=(2, 4, 6, 8), activity_cycles=10, activity_batch=8
)


class TestDeterminism:
    def test_exploration_is_reproducible(self, booth8_domained):
        a = ExhaustiveExplorer(booth8_domained).run(SETTINGS)
        b = ExhaustiveExplorer(booth8_domained).run(SETTINGS)
        for bits in SETTINGS.bitwidths:
            assert a.best_per_bitwidth[bits] == b.best_per_bitwidth[bits]
        assert a.feasible_counts == b.feasible_counts

    def test_implementation_is_reproducible(self, library):
        def build(tag):
            counter = {"n": 0}

            def factory():
                counter["n"] += 1
                return booth_multiplier(
                    library, 8, name=f"det_{tag}_{counter['n']}"
                )

            return implement_base(factory, library)

        first = build("a")
        second = build("b")
        assert first.constraint.period_ps == pytest.approx(
            second.constraint.period_ps
        )
        assert np.allclose(
            first.placement.positions, second.placement.positions
        )
        drives_a = [c.drive_name for c in first.netlist.cells]
        drives_b = [c.drive_name for c in second.netlist.cells]
        assert drives_a == drives_b


class TestFlowRobustness:
    def test_different_seed_different_placement_same_claims(self, library):
        """Another placement seed shifts numbers but not the structure."""
        counter = {"n": 0}

        def factory():
            counter["n"] += 1
            return booth_multiplier(library, 8, name=f"seed_{counter['n']}")

        design_a = implement_with_domains(
            factory, library, GridPartition(2, 2), seed=42
        )
        design_b = implement_with_domains(
            factory, library, GridPartition(2, 2), seed=1337
        )
        assert design_a.area_overhead == pytest.approx(
            design_b.area_overhead, rel=0.05
        )
        result_b = ExhaustiveExplorer(design_b).run(SETTINGS)
        assert sorted(result_b.best_per_bitwidth) == list(SETTINGS.bitwidths)

    def test_utilization_changes_die_not_function(self, library):
        counter = {"n": 0}

        def factory():
            counter["n"] += 1
            return booth_multiplier(library, 8, name=f"util_{counter['n']}")

        dense = implement_base(factory, library, utilization=0.85)
        sparse = implement_base(factory, library, utilization=0.55)
        assert sparse.area_um2 > dense.area_um2

    def test_quick_flow_wrapper(self, library):
        counter = {"n": 0}

        def factory():
            counter["n"] += 1
            return booth_multiplier(library, 6, name=f"qf_{counter['n']}")

        base, domained, proposed, dvas = quick_flow(
            factory, library, grid=(1, 2), settings=SETTINGS_SMALL
        )
        assert base.num_domains == 1
        assert domained.num_domains == 2
        assert proposed.best_per_bitwidth
        assert dvas.best_per_bitwidth


SETTINGS_SMALL = ExplorationSettings(
    bitwidths=(2, 4, 6), activity_cycles=8, activity_batch=8
)
