"""ASCII floorplan renderings."""

import pytest

from repro.pnr.visual import render_criticality, render_density, render_domains


class TestRenderDomains:
    def test_shape(self, booth8_domained):
        text = render_domains(booth8_domained, bins=(6, 10))
        lines = text.splitlines()
        assert len(lines) == 6
        assert all(len(line) == 12 for line in lines)

    def test_all_domains_visible(self, booth8_domained):
        text = render_domains(booth8_domained, bins=(10, 20))
        digits = {c for c in text if c.isdigit()}
        assert digits == {"0", "1", "2", "3"}

    def test_grid_structure_is_spatial(self, booth8_domained):
        """With a 2x2 grid, the bottom half shows domains 0/1 and the top
        half 2/3 (row-major domain ids)."""
        text = render_domains(booth8_domained, bins=(8, 16))
        lines = text.splitlines()
        top = "".join(lines[: len(lines) // 2])
        bottom = "".join(lines[len(lines) // 2:])
        assert set(c for c in bottom if c.isdigit()) <= {"0", "1"}
        assert set(c for c in top if c.isdigit()) <= {"2", "3"}


class TestRenderDensity:
    def test_uses_ramp(self, booth8_base):
        text = render_density(booth8_base, bins=(6, 12))
        assert any(c in "@%#" for c in text)
        assert len(text.splitlines()) == 6


class TestRenderCriticality:
    def test_full_width_has_critical_regions(self, booth8_base):
        text = render_criticality(booth8_base)
        assert "#" in text

    def test_gating_removes_criticality(self, booth8_base):
        full = render_criticality(booth8_base, active_bits=8)
        gated = render_criticality(booth8_base, active_bits=1)
        assert gated.count("#") <= full.count("#")
        assert gated.count(".") >= full.count(".")
