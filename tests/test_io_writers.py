"""Interchange writers: Liberty, DEF, SPEF, VCD."""

import io

import numpy as np
import pytest

from repro.io import write_def, write_liberty, write_spef, write_vcd
from repro.operators import booth_multiplier
from repro.pnr.parasitics import extract_parasitics
from repro.pnr.placer import GlobalPlacer
from repro.sim.simulator import LogicSimulator, SimulationMode
from repro.techlib.library import Library

LIBRARY = Library()


@pytest.fixture(scope="module")
def placed():
    netlist = booth_multiplier(LIBRARY, width=6)
    placement = GlobalPlacer(netlist, seed=9).run()
    return netlist, placement, extract_parasitics(placement)


class TestLiberty:
    def test_contains_every_cell_drive(self):
        stream = io.StringIO()
        write_liberty(LIBRARY, LIBRARY.fbb_corner(1.0), stream)
        text = stream.getvalue()
        for cell_name, template in LIBRARY.templates.items():
            for drive in template.drive_names:
                assert f"cell ({cell_name}_{drive})" in text

    def test_corner_scales_numbers(self):
        fast, slow = io.StringIO(), io.StringIO()
        write_liberty(LIBRARY, LIBRARY.fbb_corner(1.0), fast)
        write_liberty(LIBRARY, LIBRARY.nobb_corner(0.8), slow)

        def leakage_of(text, cell="cell (INV_X1)"):
            block = text[text.index(cell):]
            line = next(
                l for l in block.splitlines() if "cell_leakage_power" in l
            )
            return float(line.split(":")[1].strip(" ;"))

        assert leakage_of(fast.getvalue()) > leakage_of(slow.getvalue())

    def test_header_records_bias(self):
        stream = io.StringIO()
        write_liberty(LIBRARY, LIBRARY.rbb_corner(1.0), stream)
        assert "back bias -1.10 V" in stream.getvalue()
        assert "rbb" in stream.getvalue()

    def test_sequential_cell_has_ff_group(self):
        stream = io.StringIO()
        write_liberty(LIBRARY, LIBRARY.fbb_corner(), stream)
        text = stream.getvalue()
        assert "ff (IQ, IQN)" in text
        assert "setup_rising" in text
        assert "rising_edge" in text


class TestDef:
    def test_structure(self, placed):
        netlist, placement, _parasitics = placed
        stream = io.StringIO()
        write_def(placement, stream)
        text = stream.getvalue()
        assert f"DESIGN {netlist.name} ;" in text
        assert f"COMPONENTS {len(netlist.cells)} ;" in text
        assert "END COMPONENTS" in text
        assert "DIEAREA ( 0 0 )" in text
        assert text.count("+ PLACED") >= len(netlist.cells)

    def test_positions_in_database_units(self, placed):
        netlist, placement, _parasitics = placed
        stream = io.StringIO()
        write_def(placement, stream)
        text = stream.getvalue()
        cell = netlist.cells[0]
        line = next(
            l for l in text.splitlines() if l.strip().startswith(f"- {cell.name} ")
        )
        # Coordinates must fit on the die in DBU.
        coords = line.split("(")[1].split(")")[0].split()
        assert 0 <= int(coords[0]) <= placement.floorplan.width_um * 1000

    def test_domain_property(self, placed):
        from repro.pnr.grid import GridPartition, insert_domains

        netlist, placement, _parasitics = placed
        result = insert_domains(placement, GridPartition(2, 2))
        stream = io.StringIO()
        write_def(result.placement, stream)
        assert "+ PROPERTY vth_domain" in stream.getvalue()


class TestSpef:
    def test_structure_and_units(self, placed):
        netlist, _placement, parasitics = placed
        stream = io.StringIO()
        write_spef(netlist, parasitics, stream)
        text = stream.getvalue()
        assert '*SPEF "IEEE 1481-1998"' in text
        assert "*C_UNIT 1 FF" in text
        assert "*NAME_MAP" in text
        assert text.count("*D_NET") > 0

    def test_total_cap_recoverable(self, placed):
        netlist, _placement, parasitics = placed
        stream = io.StringIO()
        write_spef(netlist, parasitics, stream)
        total = 0.0
        for line in stream.getvalue().splitlines():
            if line.startswith("*D_NET"):
                total += float(line.split()[2])
        assert total == pytest.approx(parasitics.total_wire_cap_ff, rel=1e-3)


class TestVcd:
    def _trace(self):
        netlist = booth_multiplier(LIBRARY, width=4)
        sim = LogicSimulator(netlist, SimulationMode.CYCLE)
        rng = np.random.default_rng(0)
        stim = [
            {"A": rng.integers(-8, 8, 3), "B": rng.integers(-8, 8, 3)}
            for _ in range(6)
        ]
        return netlist, sim.run_cycles(stim, collect_net_values=True)

    def test_header_and_timesteps(self):
        netlist, trace = self._trace()
        stream = io.StringIO()
        write_vcd(trace, stream)
        text = stream.getvalue()
        assert "$enddefinitions $end" in text
        assert "$dumpvars" in text
        assert text.count("$var wire 1") == len(netlist.nets)
        assert "#0\n" in text

    def test_net_subset(self):
        netlist, trace = self._trace()
        stream = io.StringIO()
        write_vcd(trace, stream, nets=["A[0]", "A[1]"])
        assert stream.getvalue().count("$var wire 1") == 2

    def test_requires_collected_values(self):
        netlist = booth_multiplier(LIBRARY, width=4)
        sim = LogicSimulator(netlist, SimulationMode.CYCLE)
        trace = sim.run_cycles(
            [{"A": np.asarray([1]), "B": np.asarray([1])}] * 2
        )
        with pytest.raises(ValueError, match="collect_net_values"):
            write_vcd(trace, io.StringIO())

    def test_bad_batch_index(self):
        _netlist, trace = self._trace()
        with pytest.raises(ValueError, match="batch index"):
            write_vcd(trace, io.StringIO(), batch_index=99)

    def test_value_changes_only(self):
        """A net that never toggles appears once (in $dumpvars)."""
        netlist = booth_multiplier(LIBRARY, width=4)
        sim = LogicSimulator(netlist, SimulationMode.CYCLE)
        stim = [{"A": np.asarray([3]), "B": np.asarray([5])}] * 6
        trace = sim.run_cycles(stim, collect_net_values=True)
        stream = io.StringIO()
        write_vcd(trace, stream, nets=["A[0]"])
        body = stream.getvalue().split("$enddefinitions $end")[1]
        assert body.count("1!") + body.count("0!") == 1


def _synthetic_exploration():
    """An ExplorationResult stuffed with non-representable floats."""
    from repro.core.config import ExplorationSettings, OperatingPoint
    from repro.core.exploration import ExplorationResult

    def point(bits, vdd):
        return OperatingPoint(
            active_bits=bits,
            vdd=vdd,
            bb_config=(bits % 2 == 0, bits > 4),
            total_power_w=(0.1 + 0.2) * bits,
            dynamic_power_w=bits / 3.0,
            leakage_power_w=bits / 7.0,
            worst_slack_ps=1.0 / 3.0 - bits,
        )

    settings = ExplorationSettings(
        bitwidths=(2, 4, 8),
        vdd_values=(0.6, 1.0 / 1.5),
        activity_cycles=12,
        activity_batch=4,
        seed=7,
    )
    return ExplorationResult(
        design_name="synthetic",
        settings=settings,
        num_domains=4,
        best_per_bitwidth={b: point(b, 0.6) for b in settings.bitwidths},
        points_evaluated=96,
        points_feasible=41,
        runtime_s=0.1 + 0.2,
        feasible_counts={
            (b, v): b for b in settings.bitwidths for v in settings.vdd_values
        },
        best_per_knob_point={
            (b, v): point(b, v)
            for b in settings.bitwidths
            for v in settings.vdd_values
        },
    )


class TestExplorationRoundTrip:
    def test_bit_exact_identity(self):
        from repro.io import load_exploration, save_exploration

        result = _synthetic_exploration()
        stream = io.StringIO()
        save_exploration(result, stream)
        stream.seek(0)
        loaded = load_exploration(stream)
        # Dataclass equality compares every float with ==, so this is a
        # bit-exactness claim, deliberately including 0.1 + 0.2 style
        # values that would break under any repr/rounding shortcut.
        assert loaded == result

    def test_every_operating_point_field_preserved(self):
        from repro.io import load_exploration, save_exploration

        result = _synthetic_exploration()
        stream = io.StringIO()
        save_exploration(result, stream)
        stream.seek(0)
        loaded = load_exploration(stream)
        for bits, point in result.best_per_bitwidth.items():
            other = loaded.best_per_bitwidth[bits]
            assert other.active_bits == point.active_bits
            assert other.vdd == point.vdd
            assert other.bb_config == point.bb_config
            assert other.total_power_w == point.total_power_w
            assert other.dynamic_power_w == point.dynamic_power_w
            assert other.leakage_power_w == point.leakage_power_w
            assert other.worst_slack_ps == point.worst_slack_ps

    def test_version_mismatch_rejected(self):
        import json

        from repro.io import load_exploration, save_exploration

        result = _synthetic_exploration()
        stream = io.StringIO()
        save_exploration(result, stream)
        payload = json.loads(stream.getvalue())
        payload["schema"] = 99
        with pytest.raises(ValueError, match="unsupported exploration schema"):
            load_exploration(io.StringIO(json.dumps(payload)))

    def test_missing_schema_rejected(self):
        import json

        from repro.io import load_exploration, save_exploration

        result = _synthetic_exploration()
        stream = io.StringIO()
        save_exploration(result, stream)
        payload = json.loads(stream.getvalue())
        del payload["schema"]
        with pytest.raises(ValueError, match="unsupported exploration schema"):
            load_exploration(io.StringIO(json.dumps(payload)))


class TestModeTableArtifact:
    def test_bit_exact_identity(self):
        from repro.io import load_mode_table, save_mode_table
        from tests.conftest import build_synthetic_table

        table = build_synthetic_table()
        stream = io.StringIO()
        save_mode_table(table, stream)
        stream.seek(0)
        assert load_mode_table(stream) == table

    def test_version_mismatch_rejected(self):
        import json

        from repro.io import load_mode_table
        from tests.conftest import build_synthetic_table

        payload = build_synthetic_table().to_dict()
        payload["schema"] = 99
        with pytest.raises(ValueError, match="unsupported mode-table schema"):
            load_mode_table(io.StringIO(json.dumps(payload)))
