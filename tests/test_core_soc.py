"""Multi-operator composition: shared supply + BB vs voltage islands."""

import pytest

from repro.core.config import ExplorationSettings
from repro.core.exploration import ExhaustiveExplorer
from repro.core.soc import LevelShifterModel, OperatorSlot, SocComposer

SETTINGS = ExplorationSettings(
    bitwidths=(2, 4, 6, 8), activity_cycles=12, activity_batch=12
)


@pytest.fixture(scope="module")
def slots(booth8_domained):
    exploration = ExhaustiveExplorer(booth8_domained).run(SETTINGS)
    return [
        OperatorSlot("mult_hi", booth8_domained, exploration, required_bits=8),
        OperatorSlot("mult_lo", booth8_domained, exploration, required_bits=4),
    ]


class TestLevelShifterModel:
    def test_power_scales_with_bits(self):
        model = LevelShifterModel()
        one = model.power_w(1, 1.0, 1.0)
        many = model.power_w(32, 1.0, 1.0)
        assert many == pytest.approx(32 * one)
        assert model.power_w(0, 1.0, 1.0) == 0.0

    def test_power_scales_with_vdd_squared_plus_static(self):
        model = LevelShifterModel(leakage_nw=0.0)
        assert model.power_w(8, 1.0, 1.0) == pytest.approx(
            model.power_w(8, 0.5, 1.0) * 4.0
        )


class TestSocComposer:
    def test_shared_point_has_no_shifters(self, slots):
        composer = SocComposer(slots)
        shared = composer.shared_supply_point()
        assert shared.shifter_power_w == 0.0
        assert shared.shared_vdd is not None
        assert set(shared.operator_points) == {"mult_hi", "mult_lo"}
        # Every operator's point sits at the shared supply.
        for point in shared.operator_points.values():
            assert point.vdd == pytest.approx(shared.shared_vdd)

    def test_island_point_charges_shifters_when_scaled(self, slots):
        composer = SocComposer(slots)
        islands = composer.voltage_island_point()
        scaled_ops = [
            p for p in islands.operator_points.values() if p.vdd < 1.0
        ]
        if scaled_ops:
            assert islands.shifter_power_w > 0.0
        else:
            assert islands.shifter_power_w == 0.0

    def test_operator_requirements_met(self, slots):
        composer = SocComposer(slots)
        shared, islands, _saving = composer.compare()
        for point_set in (shared.operator_points, islands.operator_points):
            assert point_set["mult_hi"].active_bits >= 8
            assert point_set["mult_lo"].active_bits >= 4

    def test_compare_reports_saving(self, slots):
        composer = SocComposer(slots)
        shared, islands, saving = composer.compare()
        assert saving == pytest.approx(
            1.0 - shared.total_power_w / islands.total_power_w
        )
        assert "mW" in shared.describe()
        assert "level shifters" in islands.describe() or (
            islands.shifter_power_w == 0.0
        )

    def test_impossible_requirement_rejected(self, slots, booth8_domained):
        bad = OperatorSlot(
            "impossible",
            booth8_domained,
            slots[0].exploration,
            required_bits=16,
        )
        composer = SocComposer(slots + [bad])
        with pytest.raises(ValueError):
            composer.voltage_island_point()

    def test_duplicate_names_rejected(self, slots):
        with pytest.raises(ValueError, match="unique"):
            SocComposer([slots[0], slots[0]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            SocComposer([])

    def test_io_bits_counts_ports(self, slots):
        # booth8: A(8) + B(8) inputs + P(16) output = 32 bits.
        assert slots[0].io_bits == 32
