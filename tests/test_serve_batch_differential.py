"""Differential wall: the batched serve kernel vs the scalar reference.

Every test here runs the same work twice -- once through the scalar
per-request path (``engine="scalar"``) and once through the batched
array kernel (``engine="batch"``) -- and asserts **bit identity**:
equal ServedPhase streams, equal telemetry snapshots (histogram float
sums included), equal per-operator reports.  This is the serve-tier
analogue of ``tests/test_sta_lattice_differential.py``.

Covered surfaces: trace replay for all four policies (the learned
policy's deeper differential lives in ``tests/test_serve_learned.py``),
multi-operator frames with pool contention and queue-depth degradation,
array-out serving, the time-invariant margin guard (including
statically unsafe modes), the scalar fallback under a time-varying
fault schedule, exception parity for uncoverable requests, the asyncio
server's drain window, and a real 2-worker fleet.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.runtime import WorkloadPhase
from repro.faults.environment import SiliconEnvironment
from repro.faults.events import KIND_TEMP_DRIFT, FaultEvent, FaultSchedule
from repro.io.results import save_mode_table
from repro.serve import (
    MarginGuard,
    ModeScheduler,
    ServeRequest,
    replay_trace,
)
from repro.serve.server import AccuracyServer, phase_to_dict
from tests.conftest import (
    build_learned_table,
    build_margined_table,
    build_synthetic_table,
)

POLICIES = ("greedy", "hysteresis", "lookahead")
BITWIDTHS = (2, 4, 6, 8)


def phase_trace(length, seed=7, bits_pool=BITWIDTHS, max_run=6):
    """Phase-structured workload: runs of equal bits, varying cycles."""
    rng = np.random.default_rng(seed)
    phases = []
    while len(phases) < length:
        bits = int(rng.choice(bits_pool))
        for _ in range(int(rng.integers(1, max_run))):
            phases.append(
                WorkloadPhase(
                    required_bits=bits, cycles=int(rng.integers(0, 50_000))
                )
            )
            if len(phases) == length:
                break
    return phases


def request_mix(length, operators, seed=11, bits_pool=BITWIDTHS):
    rng = np.random.default_rng(seed)
    return [
        ServeRequest(
            operators[int(rng.integers(0, len(operators)))],
            int(rng.choice(bits_pool)),
            int(rng.integers(0, 5_000)),
        )
        for _ in range(length)
    ]


def twin_schedulers(
    table_factory=build_synthetic_table, guard_factory=None, **kwargs
):
    """Identical schedulers, one per engine (separate tables/guards)."""
    pair = []
    for engine in ("scalar", "batch"):
        table = table_factory()
        guard = guard_factory(table) if guard_factory is not None else None
        pair.append(
            ModeScheduler(table, guard=guard, engine=engine, **kwargs)
        )
    return pair


def assert_schedulers_equal(scalar, batch):
    assert scalar.telemetry.snapshot() == batch.telemetry.snapshot()
    assert sorted(scalar.operators) == sorted(batch.operators)
    for operator in scalar.operators:
        assert scalar.report(operator) == batch.report(operator)


class TestReplayDifferential:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("length", [1, 2, 7, 63, 400])
    def test_reports_bit_identical(self, policy, length):
        table = build_synthetic_table()
        trace = phase_trace(length, seed=length)
        scalar = replay_trace(table, trace, policy=policy, engine="scalar")
        batch = replay_trace(table, trace, policy=policy, engine="batch")
        assert scalar == batch

    @pytest.mark.parametrize("policy", POLICIES)
    def test_adversarial_alternating_trace(self, policy):
        # Every request switches: the worst case for run-length collapse.
        trace = [
            WorkloadPhase(required_bits=BITWIDTHS[i % 4], cycles=1_000 + i)
            for i in range(120)
        ]
        table = build_synthetic_table()
        assert replay_trace(
            table, trace, policy=policy, engine="scalar"
        ) == replay_trace(table, trace, policy=policy, engine="batch")

    @pytest.mark.parametrize("policy", POLICIES)
    def test_uncovered_bits_still_covered_identically(self, policy):
        # Bits 1/3/5/7 have no exact mode; the cover table must match
        # mode_key_for for every one of them.
        trace = [
            WorkloadPhase(required_bits=bits, cycles=2_500)
            for bits in (1, 3, 5, 7, 8, 7, 5, 3, 1, 2, 6, 4)
        ]
        table = build_synthetic_table()
        assert replay_trace(
            table, trace, policy=policy, engine="scalar"
        ) == replay_trace(table, trace, policy=policy, engine="batch")

    @pytest.mark.parametrize("window", [0, 1, 2, 4, 9])
    def test_lookahead_windows(self, window):
        table = build_synthetic_table()
        trace = phase_trace(90, seed=window + 1)
        assert replay_trace(
            table, trace, policy="lookahead", engine="scalar",
            lookahead_window=window,
        ) == replay_trace(
            table, trace, policy="lookahead", engine="batch",
            lookahead_window=window,
        )

    def test_zero_cycle_phases(self):
        table = build_synthetic_table()
        trace = [WorkloadPhase(required_bits=b, cycles=0) for b in (8, 2, 8)]
        for policy in POLICIES:
            assert replay_trace(
                table, trace, policy=policy, engine="scalar"
            ) == replay_trace(table, trace, policy=policy, engine="batch")


class TestLearnedReplayDifferential:
    """The fourth policy needs a table with a learned block; its full
    differential (degradation replan, fallback gates) is in
    ``tests/test_serve_learned.py`` -- this keeps the wall's per-policy
    sweep complete in one place."""

    @pytest.mark.parametrize("length", [1, 2, 7, 63, 400])
    def test_reports_bit_identical(self, length):
        table, _result = build_learned_table()
        trace = phase_trace(length, seed=length)
        assert replay_trace(
            table, trace, policy="learned", engine="scalar"
        ) == replay_trace(table, trace, policy="learned", engine="batch")

    def test_two_worker_fleet_with_policy_params(self):
        from repro.fleet import FleetRouter

        table, _result = build_learned_table()
        requests = [
            (r.operator, r.required_bits, r.cycles)
            for r in request_mix(120, ("op0", "op1", "op2"), seed=4)
        ]
        results = {}
        for engine in ("scalar", "batch"):
            with FleetRouter(
                table, workers=2, policy="learned", engine=engine
            ) as router:
                results[engine] = router.submit_many(requests)
        assert results["batch"] == results["scalar"]
        for phase, (_op, bits, _cycles) in zip(
            results["batch"], requests
        ):
            assert phase.served_bits >= bits


class TestFrameDifferential:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_submit_batch_equals_submit_loop(self, policy):
        # The contract in one assert: submit_batch(frame) is the phase
        # list a submit() loop produces, on the same scheduler state.
        reference, batch = twin_schedulers(
            policy=policy, num_generators=2, max_queue_depth=4
        )
        requests = request_mix(200, ("mac0", "mac1", "mac2"))
        expected = [reference.submit(r) for r in requests]
        got = batch.submit_batch(requests)
        assert got == expected
        assert_schedulers_equal(reference, batch)

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("depth", [1, 2, 8])
    def test_contention_and_degradation(self, policy, depth):
        scalar, batch = twin_schedulers(
            policy=policy, num_generators=1, max_queue_depth=depth
        )
        operators = ("a", "b", "c", "d")
        for frame in range(25):
            requests = request_mix(
                17 + frame, operators, seed=100 * depth + frame
            )
            assert scalar.submit_batch(requests) == batch.submit_batch(
                requests
            ), f"frame {frame} diverged"
        assert_schedulers_equal(scalar, batch)
        # The mix must actually exercise the degraded path for depth 1.
        if depth == 1:
            assert scalar.telemetry.counters["degraded"] > 0

    def test_state_carries_across_frames(self):
        scalar, batch = twin_schedulers(policy="hysteresis")
        for seed in range(12):
            requests = request_mix(1 + seed * 3, ("x", "y"), seed=seed)
            assert scalar.submit_batch(requests) == batch.submit_batch(
                requests
            )
            # Interleave scalar submits between frames on both sides:
            # frame state must compose with per-request state.
            probe = ServeRequest("x", 4, 111)
            assert scalar.submit(probe) == batch.submit(probe)
        assert_schedulers_equal(scalar, batch)

    def test_empty_frame(self):
        scalar, batch = twin_schedulers()
        assert scalar.submit_batch([]) == [] == batch.submit_batch([])
        assert_schedulers_equal(scalar, batch)

    def test_arrays_match_scalar_phases(self):
        scalar, batch = twin_schedulers(policy="greedy", num_generators=2)
        requests = request_mix(150, ("p", "q"))
        expected = [scalar.submit(r) for r in requests]
        result = batch.submit_batch_arrays(
            [r.operator for r in requests],
            np.array([r.required_bits for r in requests]),
            np.array([r.cycles for r in requests]),
        )
        assert result.served_bits.tolist() == [
            p.served_bits for p in expected
        ]
        assert result.switched.tolist() == [p.switched for p in expected]
        assert result.batched.tolist() == [p.batched for p in expected]
        assert result.degraded.tolist() == [p.degraded for p in expected]
        assert result.compute_energy_j.tolist() == [
            p.compute_energy_j for p in expected
        ]
        assert result.transition_energy_j.tolist() == [
            p.transition_energy_j for p in expected
        ]
        assert result.settle_ns.tolist() == [p.settle_ns for p in expected]
        assert result.queue_wait_ns.tolist() == [
            p.queue_wait_ns for p in expected
        ]
        assert result.decided_at_ns.tolist() == [
            p.decided_at_ns for p in expected
        ]
        assert_schedulers_equal(scalar, batch)


class TestGuardDifferential:
    @staticmethod
    def margined_guard(headroom_ps=5.0, slacks=None):
        def factory(table):
            return MarginGuard(
                table, SiliconEnvironment(), headroom_ps=headroom_ps
            )

        return factory

    @pytest.mark.parametrize("policy", POLICIES)
    def test_statically_unsafe_modes(self, policy):
        # Modes 4 and 6 fall below the headroom at t=0: the guard must
        # substitute on *every* pick, identically in both engines.
        def table_factory():
            return build_margined_table(
                guarded_slack_ps={4: 1.0, 6: 2.0}
            )

        scalar, batch = twin_schedulers(
            table_factory=table_factory,
            policy=policy,
            guard_factory=self.margined_guard(headroom_ps=5.0),
        )
        for frame in range(20):
            requests = request_mix(23, ("op0", "op1"), seed=frame)
            assert scalar.submit_batch(requests) == batch.submit_batch(
                requests
            )
        assert_schedulers_equal(scalar, batch)
        assert scalar.telemetry.counters["margin_fallbacks"] > 0

    def test_all_modes_safe_guard_is_transparent(self):
        scalar, batch = twin_schedulers(
            table_factory=build_margined_table,
            guard_factory=self.margined_guard(headroom_ps=0.0),
        )
        requests = request_mix(120, ("op",))
        assert scalar.submit_batch(requests) == batch.submit_batch(requests)
        assert scalar.telemetry.counters["margin_fallbacks"] == 0
        assert_schedulers_equal(scalar, batch)

    def test_time_varying_schedule_falls_back_identically(self):
        # A scheduled fault makes the environment time-varying: the
        # batch engine must refuse the fast path and serve through the
        # scalar loop -- results stay identical by construction, which
        # this locks in.
        def guard_factory(table):
            schedule = FaultSchedule(
                (
                    FaultEvent(
                        kind=KIND_TEMP_DRIFT,
                        start_ns=1_000.0,
                        duration_ns=50_000.0,
                        magnitude=30.0,
                    ),
                )
            )
            return MarginGuard(
                table, SiliconEnvironment(schedule), headroom_ps=2.0
            )

        scalar, batch = twin_schedulers(
            table_factory=build_margined_table,
            guard_factory=guard_factory,
        )
        for frame in range(8):
            requests = request_mix(31, ("a", "b"), seed=frame + 50)
            assert scalar.submit_batch(requests) == batch.submit_batch(
                requests
            )
        assert_schedulers_equal(scalar, batch)


class TestExceptionParity:
    def test_uncoverable_bits_raise_identically(self):
        scalar, batch = twin_schedulers()
        prefix = request_mix(9, ("op",))
        bad = prefix + [ServeRequest("op", 16, 100)] + request_mix(3, ("op",))
        with pytest.raises(ValueError) as scalar_err:
            for request in bad:
                scalar.submit(request)
        with pytest.raises(ValueError) as batch_err:
            batch.submit_batch(bad)
        assert str(scalar_err.value) == str(batch_err.value)
        # The failed frame served the same prefix on both sides.
        assert_schedulers_equal(scalar, batch)


class TestServerDrainWindow:
    @staticmethod
    def drive(engine, drain_window=32):
        scheduler = ModeScheduler(
            build_synthetic_table(), num_generators=2, engine=engine
        )
        server = AccuracyServer(
            scheduler, max_pending=256, drain_window=drain_window
        )
        requests = request_mix(180, ("s0", "s1", "s2"), seed=3)

        async def body():
            async with server:
                phases = await asyncio.gather(
                    *(
                        server.request(r.operator, r.required_bits, r.cycles)
                        for r in requests
                    )
                )
                return phases, server.stats()

        return asyncio.run(body())

    def test_batch_drain_matches_scalar_drain(self):
        scalar_phases, scalar_stats = self.drive("scalar")
        batch_phases, batch_stats = self.drive("batch")
        assert [phase_to_dict(p) for p in batch_phases] == [
            phase_to_dict(p) for p in scalar_phases
        ]
        assert batch_stats == scalar_stats

    def test_window_of_one_disables_batching(self):
        phases, stats = self.drive("batch", drain_window=1)
        reference, ref_stats = self.drive("scalar")
        assert [phase_to_dict(p) for p in phases] == [
            phase_to_dict(p) for p in reference
        ]
        assert stats == ref_stats

    def test_uncoverable_request_fails_alone_in_batch_window(self):
        scheduler = ModeScheduler(build_synthetic_table(), engine="batch")
        server = AccuracyServer(scheduler, max_pending=64)

        async def body():
            async with server:
                results = await asyncio.gather(
                    server.request("op", 4, 100),
                    server.request("op", 16, 100),
                    server.request("op", 6, 100),
                    return_exceptions=True,
                )
                return results

        ok1, bad, ok2 = asyncio.run(body())
        assert ok1.served_bits >= 4
        assert isinstance(bad, ValueError)
        assert ok2.served_bits >= 6


class TestFleetEngines:
    def test_two_worker_fleet_bit_identical_across_engines(self):
        from repro.fleet import FleetRouter

        table = build_synthetic_table()
        requests = [
            (r.operator, r.required_bits, r.cycles)
            for r in request_mix(
                400, tuple(f"op{i}" for i in range(6)), seed=9
            )
        ]
        results = {}
        stats = {}
        for engine in ("scalar", "batch"):
            with FleetRouter(
                table, workers=2, batch_window=16, engine=engine
            ) as router:
                phases = []
                for offset in range(0, len(requests), 100):
                    phases.extend(
                        router.submit_many(requests[offset : offset + 100])
                    )
                results[engine] = phases
                stats[engine] = router.stats()
        assert results["batch"] == results["scalar"]
        assert stats["batch"]["counters"] == stats["scalar"]["counters"]
        for batch_w, scalar_w in zip(
            stats["batch"]["workers"], stats["scalar"]["workers"]
        ):
            assert batch_w["telemetry"] == scalar_w["telemetry"]


class TestReplayCli:
    @pytest.fixture()
    def table_path(self, tmp_path):
        path = tmp_path / "table.json"
        with open(path, "w") as stream:
            save_mode_table(build_synthetic_table(), stream)
        return str(path)

    @staticmethod
    def replay_line(capsys, table_path, *extra):
        assert (
            main(
                ["replay", "--table", table_path, "--phases", "40", *extra]
            )
            == 0
        )
        return capsys.readouterr().out.strip().splitlines()[-1]

    def test_engines_print_identical_reports(self, capsys, table_path):
        lines = {
            engine: self.replay_line(
                capsys, table_path, "--serve-engine", engine
            )
            for engine in ("auto", "batch", "scalar")
        }
        assert lines["auto"] == lines["batch"] == lines["scalar"]
        assert lines["auto"].startswith("policy greedy:")

    def test_env_override_and_bad_value(
        self, capsys, table_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SERVE_ENGINE", "scalar")
        scalar_env = self.replay_line(capsys, table_path)
        monkeypatch.setenv("REPRO_SERVE_ENGINE", "batch")
        batch_env = self.replay_line(capsys, table_path)
        assert scalar_env == batch_env
        monkeypatch.setenv("REPRO_SERVE_ENGINE", "warp")
        with pytest.raises(ValueError, match="REPRO_SERVE_ENGINE"):
            self.replay_line(capsys, table_path)

    def test_unknown_engine_flag_rejected(self, table_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "replay",
                    "--table",
                    table_path,
                    "--serve-engine",
                    "warp",
                ]
            )

    @pytest.mark.parametrize("policy", ["hysteresis", "lookahead"])
    def test_policies_identical_across_engines(
        self, capsys, table_path, policy
    ):
        lines = {
            engine: self.replay_line(
                capsys, table_path, "--policy", policy,
                "--serve-engine", engine,
            )
            for engine in ("batch", "scalar")
        }
        assert lines["batch"] == lines["scalar"]


class TestJsonSafety:
    def test_batched_phases_serialize_like_scalar(self):
        # phase_to_dict feeds json.dumps on the socket path: the batch
        # kernel must hand back python scalars, not numpy ones.
        scalar, batch = twin_schedulers()
        requests = request_mix(25, ("op",))
        expected = [json.dumps(phase_to_dict(p)) for p in scalar.submit_batch(requests)]
        scalar2, batch2 = twin_schedulers()
        del scalar2
        got = [
            json.dumps(phase_to_dict(p)) for p in batch2.submit_batch(requests)
        ]
        assert got == expected
