"""Wire extraction and the two sizing passes."""

import numpy as np
import pytest

from repro.netlist.transform import buffer_high_fanout
from repro.operators import booth_multiplier
from repro.pnr.parasitics import extract_parasitics
from repro.pnr.placer import GlobalPlacer
from repro.pnr.sizing import power_recovery, timing_fix
from repro.sta.constraints import ClockConstraint
from repro.sta.engine import StaEngine
from repro.sta.graph import compile_timing_graph
from repro.techlib.library import Library

LIBRARY = Library()


@pytest.fixture(scope="module")
def placed_booth():
    netlist = booth_multiplier(LIBRARY, width=8)
    buffer_high_fanout(netlist)
    placement = GlobalPlacer(netlist, seed=5).run()
    return netlist, placement, extract_parasitics(placement)


class TestParasitics:
    def test_arrays_cover_all_nets(self, placed_booth):
        netlist, _placement, parasitics = placed_booth
        assert parasitics.wire_cap_ff.shape == (len(netlist.nets),)
        assert parasitics.wire_res_ohm.shape == (len(netlist.nets),)
        assert np.all(parasitics.wire_cap_ff >= 0.0)

    def test_clock_has_no_wire_cap(self, placed_booth):
        netlist, _placement, parasitics = placed_booth
        assert parasitics.wire_cap_ff[netlist.clock_net.index] == 0.0

    def test_scaled(self, placed_booth):
        _netlist, _placement, parasitics = placed_booth
        double = parasitics.scaled(2.0)
        assert double.total_wire_cap_ff == pytest.approx(
            2.0 * parasitics.total_wire_cap_ff
        )

    def test_wire_cap_tracks_wirelength(self, placed_booth):
        netlist, placement, parasitics = placed_booth
        from repro.pnr.wirelength import net_wirelengths

        lengths = net_wirelengths(placement)
        longest = int(np.argmax(lengths))
        shortest_nonzero = int(
            np.argmin(np.where(lengths > 0, lengths, np.inf))
        )
        assert (
            parasitics.wire_cap_ff[longest]
            > parasitics.wire_cap_ff[shortest_nonzero]
        )


def _fresh_placed_booth():
    netlist = booth_multiplier(LIBRARY, width=8)
    buffer_high_fanout(netlist)
    placement = GlobalPlacer(netlist, seed=5).run()
    return netlist, extract_parasitics(placement)


class TestTimingFix:
    def test_upsizes_until_feasible(self):
        netlist, parasitics = _fresh_placed_booth()
        graph = compile_timing_graph(netlist, parasitics)
        engine = StaEngine(graph, LIBRARY)
        unsized = engine.critical_path_delay(
            1.0, np.ones(graph.num_cells, bool)
        )
        # Tighten like the clock-selection loop: aim fast, relax until met.
        target = unsized * 0.9
        for _ in range(6):
            report = timing_fix(netlist, parasitics, ClockConstraint(target))
            if report.feasible:
                break
            target *= 1.03
        assert report.feasible
        assert target < unsized  # upsizing beat the unsized critical path
        assert any(c.drive_name in ("X2", "X4") for c in netlist.cells)

    def test_gives_up_on_impossible_constraint(self):
        netlist, parasitics = _fresh_placed_booth()
        report = timing_fix(netlist, parasitics, ClockConstraint(10.0))
        assert not report.feasible

    def test_noop_when_already_met(self):
        netlist, parasitics = _fresh_placed_booth()
        report = timing_fix(netlist, parasitics, ClockConstraint(1e6))
        assert report.feasible
        assert report.resized_cells == 0


class TestPowerRecovery:
    def test_keeps_feasibility_and_cuts_leakage(self):
        netlist, parasitics = _fresh_placed_booth()
        graph = compile_timing_graph(netlist, parasitics)
        engine = StaEngine(graph, LIBRARY)
        unsized = engine.critical_path_delay(
            1.0, np.ones(graph.num_cells, bool)
        )
        constraint = ClockConstraint(unsized * 1.02)
        timing_fix(netlist, parasitics, constraint)
        leak_before = sum(c.drive.leakage_nw for c in netlist.cells)
        report = power_recovery(netlist, parasitics, constraint)
        leak_after = sum(c.drive.leakage_nw for c in netlist.cells)
        assert report.feasible
        assert report.resized_cells > 0
        assert leak_after < leak_before

    def test_creates_wall_of_slack(self):
        """After recovery, near-critical endpoints concentrate near zero."""
        netlist, parasitics = _fresh_placed_booth()
        graph = compile_timing_graph(netlist, parasitics)
        engine = StaEngine(graph, LIBRARY)
        unsized = engine.critical_path_delay(
            1.0, np.ones(graph.num_cells, bool)
        )
        constraint = ClockConstraint(unsized)
        timing_fix(netlist, parasitics, constraint)
        report = power_recovery(netlist, parasitics, constraint)
        timing = report.final_report
        slack = timing.endpoint_slack_ps[timing.endpoint_active]
        period = constraint.period_ps
        # Count the datapath endpoints (ignore trivially fast reg-to-reg
        # and port endpoints with near-full-period slack).
        datapath = slack[slack < period * 0.6]
        near_wall = np.count_nonzero(datapath < period * 0.30)
        assert near_wall / len(datapath) > 0.5
