"""Fault injection: a killed sweep resumes from its completed shards.

The checkpoint store *is* the shard cache: every finished shard is
durable (atomic write) before the engine moves on, so re-running the
same sweep turns completed shards into cache hits and only the remainder
is recomputed.  These tests kill a sweep through the progress hook and
assert (a) the merged resume result is bit-identical to an uninterrupted
run and (b) completed shards were served from cache, not re-executed.
"""

import dataclasses

import pytest

from repro.core.config import ExplorationSettings
from repro.core.exploration import ExhaustiveExplorer
from repro.core.flow import implement_with_domains
from repro.operators import adequate_adder
from repro.parallel.cache import ResultCache
from repro.parallel.engine import ParallelExplorer
from repro.parallel.shards import plan_shards
from repro.pnr.grid import GridPartition

SETTINGS = ExplorationSettings(
    bitwidths=(1, 2, 3, 4), activity_cycles=8, activity_batch=8
)


class SimulatedCrash(RuntimeError):
    pass


@pytest.fixture(scope="module")
def design(library):
    return implement_with_domains(
        lambda: adequate_adder(library, width=4, name="resume_adder"),
        library,
        GridPartition(2, 1),
    )


@pytest.fixture(scope="module")
def uninterrupted(design):
    return ExhaustiveExplorer(design).run(SETTINGS)


def crash_after(n):
    completions = []

    def hook(shard, from_cache):
        completions.append((shard.index, from_cache))
        if len(completions) >= n:
            raise SimulatedCrash(f"injected after {n} shards")

    return hook, completions


@pytest.mark.parametrize("crash_point", [1, 2, 3])
def test_resume_equals_uninterrupted(
    crash_point, design, uninterrupted, tmp_path
):
    settings = dataclasses.replace(
        SETTINGS, workers=1, cache=True, cache_dir=str(tmp_path)
    )
    total_shards = len(plan_shards(settings))
    assert crash_point < total_shards

    hook, completions = crash_after(crash_point)
    with pytest.raises(SimulatedCrash):
        ParallelExplorer(design, on_shard_complete=hook).run(settings)
    assert len(completions) == crash_point

    # The completed shards survived the crash...
    cache = ResultCache(tmp_path)
    assert cache.disk_usage().entries == crash_point

    # ...and the resume serves exactly them from cache, recomputes the
    # rest, and merges to the uninterrupted result bit-for-bit.
    resumed = ExhaustiveExplorer(design).run(settings)
    assert resumed.cache_stats.hits == crash_point
    assert resumed.cache_stats.misses == total_shards - crash_point
    assert resumed.cache_stats.writes == total_shards - crash_point
    assert resumed.best_per_bitwidth == uninterrupted.best_per_bitwidth
    assert resumed.best_per_knob_point == uninterrupted.best_per_knob_point
    assert resumed.feasible_counts == uninterrupted.feasible_counts
    assert resumed.points_evaluated == uninterrupted.points_evaluated
    assert resumed.points_feasible == uninterrupted.points_feasible


def test_resume_into_parallel_run(design, uninterrupted, tmp_path):
    """A sweep killed serially may resume on a pool (and vice versa)."""
    serial = dataclasses.replace(
        SETTINGS, workers=1, cache=True, cache_dir=str(tmp_path)
    )
    hook, _ = crash_after(2)
    with pytest.raises(SimulatedCrash):
        ParallelExplorer(design, on_shard_complete=hook).run(serial)

    pooled = dataclasses.replace(serial, workers=2)
    resumed = ExhaustiveExplorer(design).run(pooled)
    assert resumed.cache_stats.hits == 2
    assert resumed.best_per_bitwidth == uninterrupted.best_per_bitwidth
    assert resumed.feasible_counts == uninterrupted.feasible_counts


def test_completed_shards_not_reexecuted_counts_stay_exact(
    design, uninterrupted, tmp_path
):
    """Two consecutive crashes make progress; the final resume only pays
    for what never completed."""
    settings = dataclasses.replace(
        SETTINGS, workers=1, cache=True, cache_dir=str(tmp_path)
    )
    total_shards = len(plan_shards(settings))

    hook, _ = crash_after(1)
    with pytest.raises(SimulatedCrash):
        ParallelExplorer(design, on_shard_complete=hook).run(settings)

    # Second attempt: the 1 finished shard hits, then crash 2 shards later.
    hook, completions = crash_after(3)
    with pytest.raises(SimulatedCrash):
        ParallelExplorer(design, on_shard_complete=hook).run(settings)
    assert [from_cache for _, from_cache in completions] == [
        True, False, False,
    ]

    final = ExhaustiveExplorer(design).run(settings)
    assert final.cache_stats.hits == 3
    assert final.cache_stats.misses == total_shards - 3
    assert final.best_per_bitwidth == uninterrupted.best_per_bitwidth
