"""Temperature-dependent leakage."""

import pytest

from repro.techlib.fdsoi import NOMINAL_PROCESS
from repro.techlib.library import Library
from repro.techlib.models import (
    leakage_scale_factor,
    temperature_leakage_multiplier,
)


class TestTemperatureModel:
    def test_nominal_temperature_is_unity(self):
        assert temperature_leakage_multiplier(
            NOMINAL_PROCESS.nominal_temperature_c
        ) == pytest.approx(1.0)

    def test_doubles_per_step(self):
        step = NOMINAL_PROCESS.leakage_doubling_c
        base = NOMINAL_PROCESS.nominal_temperature_c
        assert temperature_leakage_multiplier(base + step) == pytest.approx(2.0)
        assert temperature_leakage_multiplier(base + 2 * step) == pytest.approx(4.0)
        assert temperature_leakage_multiplier(base - step) == pytest.approx(0.5)

    def test_leakage_scale_factor_accepts_temperature(self):
        cold = leakage_scale_factor(1.0, 1.1, temperature_c=25.0)
        hot = leakage_scale_factor(1.0, 1.1, temperature_c=85.0)
        assert hot == pytest.approx(cold * 8.0)

    def test_library_temperature_plumbs_through(self):
        hot = Library(temperature_c=85.0)
        cold = Library(temperature_c=25.0)
        corner = cold.fbb_corner(1.0)
        assert hot.leakage_factor(corner) == pytest.approx(
            cold.leakage_factor(corner) * 8.0
        )
        # Delay is temperature-independent in this first-order model.
        assert hot.delay_factor(corner) == pytest.approx(
            cold.delay_factor(corner)
        )

    def test_default_library_uses_nominal_temperature(self):
        assert Library().temperature_c == pytest.approx(
            NOMINAL_PROCESS.nominal_temperature_c
        )

    def test_process_validation(self):
        import dataclasses

        with pytest.raises(ValueError, match="leakage_doubling"):
            dataclasses.replace(
                NOMINAL_PROCESS, leakage_doubling_c=0.0
            ).validate()
