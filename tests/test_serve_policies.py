"""Mode-selection policies: accuracy invariant, registry, legacy shim."""

import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.runtime import BiasGeneratorModel, WorkloadPhase
from repro.serve.policy import (
    GreedyPolicy,
    HysteresisPolicy,
    LookaheadPolicy,
    POLICIES,
    PolicyContext,
    PolicyParam,
    SelectionPolicy,
    make_policy,
    parse_policy_args,
    policy_params,
    validate_policy_kwargs,
)
from repro.serve.scheduler import ModeScheduler, ServeRequest, replay_trace
from tests.conftest import build_learned_table, build_synthetic_table

TABLE = build_synthetic_table()
MODE_BITS = sorted(TABLE.modes)

#: The same table with a (small, cached) trained learned block, so the
#: property tests can sweep every registered policy including "learned".
LEARNED_TABLE = TABLE.with_learned(build_learned_table()[1].spec)


class TestRegistry:
    def test_all_policies_registered(self):
        assert set(POLICIES) == {
            "greedy",
            "hysteresis",
            "lookahead",
            "learned",
        }

    def test_make_policy_by_name(self):
        policy = make_policy("hysteresis", TABLE, dwell_cycles=5)
        assert isinstance(policy, HysteresisPolicy)
        assert policy.dwell_cycles == 5

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("oracle", TABLE)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError, match="dwell_cycles"):
            HysteresisPolicy(TABLE, dwell_cycles=0)
        with pytest.raises(ValueError, match="margin"):
            HysteresisPolicy(TABLE, margin=-1.0)
        with pytest.raises(ValueError, match="window"):
            LookaheadPolicy(TABLE, window=-1)

    def test_declared_params_are_typed(self):
        declared = {p.name: p for p in policy_params("hysteresis")}
        assert declared["dwell_cycles"].kind is int
        assert declared["margin"].kind is float
        assert policy_params("greedy") == ()

    def test_kwargs_coerced_to_declared_types(self):
        coerced = validate_policy_kwargs(
            "hysteresis", {"dwell_cycles": "500", "margin": "1.5"}
        )
        assert coerced == {"dwell_cycles": 500, "margin": 1.5}
        policy = make_policy("hysteresis", TABLE, **coerced)
        assert policy.dwell_cycles == 500

    def test_unknown_kwarg_lists_known_params(self):
        with pytest.raises(ValueError, match="knows dwell_cycles"):
            validate_policy_kwargs("hysteresis", {"dwell": "5"})
        with pytest.raises(ValueError, match="takes no parameters"):
            validate_policy_kwargs("greedy", {"window": "4"})

    def test_parse_policy_args(self):
        assert parse_policy_args(["a=1", " b = x=y "]) == {
            "a": "1",
            "b": "x=y",
        }
        with pytest.raises(ValueError, match="bad --policy-arg"):
            parse_policy_args(["no-equals"])

    def test_duplicate_name_rejected(self):
        from repro.serve.policy import register_policy

        with pytest.raises(ValueError, match="already registered"):

            @register_policy
            class Impostor(SelectionPolicy):
                name = "greedy"

                def decide(self, ctx):
                    return self.table.mode_key_for(ctx.required_bits)

        assert POLICIES["greedy"] is GreedyPolicy

    def test_bool_param_coercion(self):
        param = PolicyParam("flag", bool, False)
        assert param.coerce("yes") is True
        assert param.coerce("0") is False
        with pytest.raises(ValueError, match="expects bool"):
            param.coerce("maybe")


class _LegacySelectOnly(SelectionPolicy):
    """A pre-redesign policy: overrides only positional select()."""

    name = "_legacy_test_only"

    def select(self, required_bits, current_bits=None, upcoming=()):
        return self.table.mode_key_for(required_bits)


class _NeitherOverridden(SelectionPolicy):
    name = "_abstract_test_only"


class TestLegacyShim:
    def test_decide_adapts_onto_legacy_select(self):
        legacy = _LegacySelectOnly(TABLE)
        modern = GreedyPolicy(TABLE)
        for bits in MODE_BITS:
            ctx = PolicyContext(required_bits=bits, current_bits=8)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                assert legacy.decide(ctx) == modern.decide(ctx)

    def test_legacy_select_warns_once_per_class(self):
        from repro.serve import policy as policy_module

        policy_module._LEGACY_WARNED.discard(_LegacySelectOnly)
        legacy = _LegacySelectOnly(TABLE)
        with pytest.warns(DeprecationWarning, match="legacy positional"):
            legacy.decide(PolicyContext(required_bits=2))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            legacy.decide(PolicyContext(required_bits=4))  # no second warn

    def test_modern_policy_never_warns(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            GreedyPolicy(TABLE).decide(PolicyContext(required_bits=2))

    def test_overriding_neither_hook_raises(self):
        with pytest.raises(TypeError, match="must override decide"):
            _NeitherOverridden(TABLE).decide(PolicyContext(required_bits=2))

    def test_select_entry_point_builds_context(self):
        policy = HysteresisPolicy(TABLE, dwell_cycles=5)
        assert policy.select(4, None) == policy.decide(
            PolicyContext(required_bits=4)
        )


class TestGreedy:
    def test_picks_cheapest_sufficient(self):
        policy = GreedyPolicy(TABLE)
        assert policy.select(2, None) == 2
        assert policy.select(3, 2) == 4
        assert policy.select(8, 2) == 8

    def test_ignores_current_mode(self):
        policy = GreedyPolicy(TABLE)
        assert policy.select(2, 8) == 2  # always downswitches


#: Same table with 1000x the well/rail capacitance: slew energies in the
#: hundreds of pJ, so short dwells genuinely cannot amortize a switch.
EXPENSIVE = build_synthetic_table(
    BiasGeneratorModel(well_cap_ff_per_um2=80.0, rail_cap_ff_per_um2=200.0)
)


class TestHysteresis:
    def test_upswitch_never_delayed(self):
        policy = HysteresisPolicy(EXPENSIVE, dwell_cycles=1)
        assert policy.select(8, 2) == 8

    def test_short_dwell_refuses_downswitch(self):
        # 1 cycle at 1 GHz saves ~3 mW * 1 ns << the 8->2 slew energy.
        policy = HysteresisPolicy(EXPENSIVE, dwell_cycles=1, margin=1.0)
        assert policy.select(2, 8) == 8

    def test_long_dwell_takes_downswitch(self):
        policy = HysteresisPolicy(
            EXPENSIVE, dwell_cycles=10_000_000, margin=1.0
        )
        assert policy.select(2, 8) == 2

    def test_break_even_holds_current(self):
        """Exactly at the threshold the policy keeps the current mode."""
        cost = EXPENSIVE.transition_between(8, 2)
        saving_w = (
            EXPENSIVE.modes[8].total_power_w
            - EXPENSIVE.modes[2].total_power_w
        )
        break_even = cost.energy_j / saving_w * EXPENSIVE.fclk_ghz * 1e9
        assert break_even >= 1.0  # the expensive table makes this real
        policy = HysteresisPolicy(
            EXPENSIVE, dwell_cycles=int(break_even), margin=1.0
        )
        assert policy.select(2, 8) == 8

    def test_cold_start_is_greedy(self):
        policy = HysteresisPolicy(EXPENSIVE, dwell_cycles=1)
        assert policy.select(4, None) == 4


class TestLookahead:
    def test_empty_window_degenerates_to_greedy(self):
        policy = LookaheadPolicy(TABLE, window=0)
        for bits in MODE_BITS:
            assert policy.select(bits, None) == GreedyPolicy(TABLE).select(
                bits, None
            )

    def test_holds_covering_mode_across_a_blip(self):
        """A one-phase dip inside a high-accuracy run is not worth two
        well slews when the dip is short."""
        policy = LookaheadPolicy(EXPENSIVE, window=4)
        upcoming = ((8, 10), (8, 10), (8, 10), (8, 10))
        assert policy.select(2, 8, upcoming) == 8

    def test_switches_for_a_long_cheap_stretch(self):
        policy = LookaheadPolicy(EXPENSIVE, window=4)
        upcoming = ((2, 10_000_000),) * 4
        assert policy.select(2, 8, upcoming) == 2

    def test_never_below_requirement_even_when_holding(self):
        policy = LookaheadPolicy(TABLE, window=4)
        choice = policy.select(6, 2, ((2, 10), (2, 10)))
        assert TABLE.modes[choice].active_bits >= 6


@st.composite
def traces(draw):
    length = draw(st.integers(min_value=1, max_value=30))
    return [
        WorkloadPhase(
            required_bits=draw(st.sampled_from(MODE_BITS)),
            cycles=draw(st.integers(min_value=1, max_value=100_000)),
        )
        for _ in range(length)
    ]


class TestAccuracyInvariant:
    """No policy ever serves fewer bits than requested -- on any trace."""

    @settings(max_examples=60, deadline=None)
    @given(trace=traces(), policy=st.sampled_from(sorted(POLICIES)))
    def test_served_bits_always_sufficient(self, trace, policy):
        scheduler = ModeScheduler(
            LEARNED_TABLE,
            num_generators=1,
            policy=policy,
            max_queue_depth=1_000,
        )
        window = 4
        for index, phase in enumerate(trace):
            upcoming = tuple(
                (p.required_bits, p.cycles)
                for p in trace[index + 1 : index + 1 + window]
            )
            served = scheduler.submit(
                ServeRequest("op", phase.required_bits, phase.cycles),
                upcoming=upcoming,
            )
            assert served.served_bits >= phase.required_bits

    @settings(max_examples=30, deadline=None)
    @given(trace=traces())
    def test_policies_agree_on_total_cycles_and_phase_count(self, trace):
        reports = {
            name: replay_trace(LEARNED_TABLE, trace, policy=name)
            for name in POLICIES
        }
        for report in reports.values():
            assert report.phases == len(trace)
            assert report.total_cycles == sum(p.cycles for p in trace)
            assert report.static_energy_j == pytest.approx(
                reports["greedy"].static_energy_j
            )

    @settings(max_examples=30, deadline=None)
    @given(trace=traces())
    def test_hysteresis_never_switches_more_than_greedy(self, trace):
        greedy = replay_trace(TABLE, trace, policy="greedy")
        debounced = replay_trace(
            TABLE, trace, policy="hysteresis", dwell_cycles=1
        )
        assert debounced.mode_switches <= greedy.mode_switches


class TestThrashSuppression:
    def test_hysteresis_beats_greedy_on_alternating_blips(self):
        """Costly slews on a thrashy trace: debouncing must win energy."""
        generator = BiasGeneratorModel(well_cap_ff_per_um2=80.0)
        table = build_synthetic_table(generator)
        trace = [
            WorkloadPhase(required_bits=8 if i % 2 else 2, cycles=50)
            for i in range(40)
        ]
        greedy = replay_trace(table, trace, policy="greedy")
        debounced = replay_trace(
            table, trace, policy="hysteresis", dwell_cycles=100
        )
        assert debounced.mode_switches < greedy.mode_switches
        assert debounced.total_energy_j < greedy.total_energy_j

    def test_lookahead_beats_greedy_on_alternating_blips(self):
        generator = BiasGeneratorModel(well_cap_ff_per_um2=80.0)
        table = build_synthetic_table(generator)
        trace = [
            WorkloadPhase(required_bits=8 if i % 2 else 2, cycles=50)
            for i in range(40)
        ]
        greedy = replay_trace(table, trace, policy="greedy")
        planned = replay_trace(
            table, trace, policy="lookahead", lookahead_window=4
        )
        assert planned.total_energy_j < greedy.total_energy_j
