"""The fleet tier: hash ring, bus, wire codec, router and chaos audits."""

import numpy as np
import pytest

from repro.core.config import AUTO_WORKERS
from repro.faults import (
    KIND_VDD_DROOP,
    KIND_WORKER_CRASH,
    FaultEvent,
    FaultSchedule,
    run_fleet_chaos,
)
from repro.faults.chaos import chaos_requests
from repro.fleet import (
    ALERT_KINDS,
    FLEET_WORKERS_ENV,
    ConsistentHashRing,
    FleetBus,
    FleetRouter,
    KIND_MARGIN_EROSION,
    resolve_fleet_workers,
    stable_hash,
)
from repro.fleet.bus import alert_code, alert_kind
from repro.fleet.worker import (
    REPLY_FLOAT_COLS,
    REPLY_INT_COLS,
    control_frame,
    decode_batch,
    decode_replies,
    encode_batch,
    encode_replies,
    parse_control,
)
from repro.serve.scheduler import ModeScheduler, ServeRequest
from repro.serve.table import ModeTable
from tests.conftest import build_margined_table, build_synthetic_table

#: The fields that must replay bit-identically between a fleet and a
#: single-process scheduler.  Pool-timing fields (queue_wait_ns,
#: decided_at_ns) are intentionally excluded: each worker runs its own
#: virtual clock over a subset of operators.
DECISION_FIELDS = (
    "served_bits",
    "switched",
    "transition_energy_j",
    "compute_energy_j",
)


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("op0") == stable_hash("op0")
        assert stable_hash("op0") != stable_hash("op1")

    def test_is_64_bit_unsigned(self):
        for key in ("", "x", "a-much-longer-operator-name"):
            assert 0 <= stable_hash(key) < 2**64


class TestConsistentHashRing:
    def test_assignment_is_deterministic(self):
        first = ConsistentHashRing(range(4))
        second = ConsistentHashRing(range(4))
        keys = [f"op{i}" for i in range(100)]
        assert [first.worker_for(k) for k in keys] == [
            second.worker_for(k) for k in keys
        ]

    def test_every_worker_gets_load(self):
        ring = ConsistentHashRing(range(4))
        load = ring.load([f"op{i}" for i in range(200)])
        assert set(load) == {0, 1, 2, 3}
        assert all(count > 0 for count in load.values())

    def test_removal_only_remaps_the_dead_workers_keys(self):
        ring = ConsistentHashRing(range(4))
        keys = [f"op{i}" for i in range(200)]
        before = {k: ring.worker_for(k) for k in keys}
        ring.remove(2)
        for key in keys:
            if before[key] != 2:
                assert ring.worker_for(key) == before[key]
            else:
                assert ring.worker_for(key) != 2

    def test_add_and_contains(self):
        ring = ConsistentHashRing([0, 1])
        assert len(ring) == 2 and 1 in ring and 5 not in ring
        ring.add(5)
        assert 5 in ring
        load = ring.load([f"op{i}" for i in range(300)])
        assert load.get(5, 0) > 0

    def test_refuses_to_remove_last_worker(self):
        ring = ConsistentHashRing([3])
        with pytest.raises(ValueError, match="last"):
            ring.remove(3)


class TestFleetBus:
    def test_post_advances_epoch_and_round_trips(self):
        bus = FleetBus()
        assert bus.epoch == 0
        epoch = bus.post(KIND_MARGIN_EROSION, origin=1)
        assert epoch == 1
        seen_epoch, kind, origin = bus.read()
        assert (seen_epoch, kind, origin) == (1, KIND_MARGIN_EROSION, 1)
        assert bus.post(KIND_MARGIN_EROSION, origin=0) == 2

    def test_margin_state_round_trips_with_its_own_epoch(self):
        bus = FleetBus(num_modes=3)
        assert bus.recal_epoch == 0
        epoch = bus.post_margins([48.0, 30.5, 12.0], [True, False, True], 1)
        assert epoch == 1
        seen, estimates, admissible, origin = bus.read_margins()
        assert seen == 1
        assert estimates == [48.0, 30.5, 12.0]
        assert admissible == [True, False, True]
        assert origin == 1
        # The margin epoch is independent of the alert epoch.
        bus.post(KIND_MARGIN_EROSION, origin=0)
        assert bus.recal_epoch == 1

    def test_margin_post_validates_shape(self):
        with pytest.raises(ValueError, match="num_modes"):
            FleetBus().post_margins([1.0], [True], 0)
        bus = FleetBus(num_modes=2)
        with pytest.raises(ValueError, match="mode count"):
            bus.post_margins([1.0], [True], 0)

    def test_alert_codes_round_trip_every_kind(self):
        for kind in ALERT_KINDS:
            assert alert_kind(alert_code(kind)) == kind

    def test_margin_erosion_is_an_alert_kind(self):
        assert KIND_MARGIN_EROSION in ALERT_KINDS


class TestWireCodec:
    def test_batch_frame_round_trips(self):
        triples = np.array([[0, 4, 100], [1, 8, 2000]], dtype="<i8")
        assert np.array_equal(decode_batch(encode_batch(triples)), triples)

    def test_reply_frame_round_trips(self):
        ints = np.arange(2 * REPLY_INT_COLS, dtype="<i8").reshape(2, -1)
        floats = np.linspace(
            0.0, 1.0, 2 * REPLY_FLOAT_COLS
        ).reshape(2, -1)
        out_ints, out_floats = decode_replies(encode_replies(ints, floats))
        assert np.array_equal(out_ints, ints)
        assert np.array_equal(out_floats, floats)

    def test_control_frame_round_trips(self):
        payload = {"cmd": "stats", "nested": {"x": [1, 2]}}
        assert parse_control(control_frame(payload)) == payload


class TestWorkerCountResolution:
    def test_explicit_count_wins(self, monkeypatch):
        monkeypatch.setenv(FLEET_WORKERS_ENV, "7")
        assert resolve_fleet_workers(3) == 3

    def test_auto_reads_environment(self, monkeypatch):
        monkeypatch.setenv(FLEET_WORKERS_ENV, "5")
        assert resolve_fleet_workers(AUTO_WORKERS) == 5

    def test_auto_without_env_uses_cpu_count(self, monkeypatch):
        monkeypatch.delenv(FLEET_WORKERS_ENV, raising=False)
        assert resolve_fleet_workers(AUTO_WORKERS) >= 1

    def test_bad_override_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(FLEET_WORKERS_ENV, "many")
        with pytest.raises(ValueError, match="must be an integer"):
            resolve_fleet_workers(AUTO_WORKERS)


def reference_decisions(table, trace):
    """What one single-process scheduler decides for *trace*, in order."""
    scheduler = ModeScheduler(table, num_generators=2)
    decisions = []
    for operator, bits, cycles in trace:
        served = scheduler.submit(ServeRequest(operator, bits, cycles))
        decisions.append(
            tuple(getattr(served, field) for field in DECISION_FIELDS)
        )
    return decisions


class TestFleetDifferential:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_fleet_decisions_bit_identical_to_single_scheduler(
        self, workers
    ):
        table = build_synthetic_table()
        trace = list(chaos_requests(table, 8, 300, seed=11))
        expected = reference_decisions(table, trace)
        with FleetRouter(table, workers=workers) as router:
            phases = router.submit_many(trace)
        assert len(phases) == len(trace)
        for phase, want in zip(phases, expected):
            got = tuple(
                getattr(phase, field) for field in DECISION_FIELDS
            )
            assert got == want  # bit-identical, not approx

    def test_workers_map_the_segment_with_zero_json_parses(self):
        table = build_synthetic_table()
        with FleetRouter(table, workers=2) as router:
            router.submit_many(list(chaos_requests(table, 4, 64, seed=3)))
            stats = router.stats()
            # Owner mapping plus one attach per worker.
            assert stats["attach_count"] == 3
            assert stats["num_workers"] == 2
            for worker in stats["workers"]:
                assert worker["parse"] == {"json": 0, "shared": 1}

    def test_operator_routing_is_sticky(self):
        table = build_synthetic_table()
        with FleetRouter(table, workers=3) as router:
            trace = list(chaos_requests(table, 6, 90, seed=5))
            phases = router.submit_many(trace)
            owners = {}
            for phase in phases:
                assert router.worker_for(phase.operator) == phase.worker_id
                owners.setdefault(phase.operator, phase.worker_id)
                assert owners[phase.operator] == phase.worker_id

    def test_stats_refused_while_queued(self):
        table = build_synthetic_table()
        with FleetRouter(table, workers=2) as router:
            router._workers[0].queue.append((0, 0, 4, 100))
            with pytest.raises(RuntimeError, match="in flight"):
                router.stats()
            router._workers[0].queue.clear()


class TestFailover:
    def test_killed_worker_fails_over_and_everything_is_served(self):
        table = build_synthetic_table()
        trace = list(chaos_requests(table, 8, 60, seed=9))
        with FleetRouter(table, workers=3) as router:
            router.submit_many(trace[:20])
            victim = router.worker_for(trace[0][0])
            router._workers[victim].process.kill()
            router._workers[victim].process.join()
            phases = router.submit_many(trace[20:])
            segment = router.segment_name
            assert len(phases) == 40
            assert all(p is not None for p in phases)
            assert router.failovers == 1
            assert victim not in router.alive_workers
            for phase in phases:
                assert phase.served_bits >= phase.required_bits
        # The fleet shut down cleanly: the segment is gone.
        with pytest.raises(ValueError, match="gone or already unlinked"):
            ModeTable.from_shared(segment)

    def test_propagation_bound_formula(self):
        table = build_synthetic_table()
        router = FleetRouter(
            table, workers=4, batch_window=8, max_inflight=3
        )
        assert router.propagation_bound == 4 * 3 * 8


def droop_schedule() -> FaultSchedule:
    """A deep droop across the whole soak: every decision on worker 0
    sees eroded margins and falls back, so alerts post early."""
    return FaultSchedule(
        [FaultEvent(KIND_VDD_DROOP, 0.0, 1e9, magnitude=0.08)]
    )


class TestFleetChaos:
    def test_margin_event_degrades_every_peer_within_bound(self):
        report = run_fleet_chaos(
            build_margined_table(),
            droop_schedule(),
            workers=2,
            num_operators=8,
            requests=512,
            seed=7,
        )
        assert report.ok, report.describe()
        assert report.fleet_alerts >= 1
        assert report.fleet_retreats >= 1
        assert report.peers_retreated
        assert 0 <= report.worst_propagation <= report.propagation_bound

    def test_crash_plus_droop_soak_survives_with_failover(self):
        schedule = FaultSchedule(
            [
                FaultEvent(KIND_VDD_DROOP, 0.0, 1e9, magnitude=0.08),
                FaultEvent(KIND_WORKER_CRASH, 4e8, 1.0, target=1),
            ]
        )
        report = run_fleet_chaos(
            build_margined_table(),
            schedule,
            workers=3,
            num_operators=8,
            requests=512,
            seed=13,
        )
        assert report.ok, report.describe()
        assert report.workers_killed == 1
        assert report.failovers == 1
        assert report.unanswered_requests == 0

    def test_recal_epochs_converge_within_propagation_bound(self):
        """Worker 0 probes and posts committed margin states; every
        guarded peer must adopt each epoch within the same bounded
        window the degradation signal already guarantees."""
        from repro.faults import recovery_schedule

        horizon = 3e5
        report = run_fleet_chaos(
            build_margined_table(),
            recovery_schedule(horizon, 60.0, relapse=True, seed=1),
            workers=2,
            num_operators=8,
            requests=2048,
            seed=7,
            recal_interval_ns=horizon / 32,
        )
        assert report.ok, report.describe()
        assert report.recal_enabled
        assert report.bus_recal_epoch > 0
        assert report.fleet_margin_syncs >= 1
        assert report.recal_converged
        assert 0 <= report.worst_recal_lag <= report.propagation_bound
        payload = report.to_dict()
        assert payload["recal_converged"] is True

    def test_rejects_unmargined_tables_and_lone_workers(self):
        with pytest.raises(ValueError, match="margined"):
            run_fleet_chaos(
                build_synthetic_table(), droop_schedule(), workers=2
            )
        with pytest.raises(ValueError, match="two workers"):
            run_fleet_chaos(
                build_margined_table(), droop_schedule(), workers=1
            )
