"""Cell-template consistency and exhaustive truth-table checks."""

import itertools

import numpy as np
import pytest

from repro.techlib.cells import CELL_TEMPLATES, get_template

#: Reference boolean functions for every combinational template.
REFERENCE = {
    "INV": lambda a: (not a,),
    "BUF": lambda a: (a,),
    "NAND2": lambda a, b: (not (a and b),),
    "NAND3": lambda a, b, c: (not (a and b and c),),
    "NOR2": lambda a, b: (not (a or b),),
    "NOR3": lambda a, b, c: (not (a or b or c),),
    "AND2": lambda a, b: (a and b,),
    "AND3": lambda a, b, c: (a and b and c,),
    "OR2": lambda a, b: (a or b,),
    "OR3": lambda a, b, c: (a or b or c,),
    "XOR2": lambda a, b: (a != b,),
    "XNOR2": lambda a, b: (a == b,),
    "AOI21": lambda a, b, c: (not ((a and b) or c),),
    "OAI21": lambda a, b, c: (not ((a or b) and c),),
    "MUX2": lambda a, b, s: (b if s else a,),
    "HA": lambda a, b: (a != b, a and b),
    "FA": lambda a, b, ci: ((a + b + ci) % 2 == 1, (a + b + ci) >= 2),
    "TIELO": lambda: (False,),
    "TIEHI": lambda: (True,),
}


@pytest.mark.parametrize("name", sorted(REFERENCE))
def test_truth_table_exhaustive(name):
    template = get_template(name)
    for inputs in itertools.product((False, True), repeat=len(template.inputs)):
        got = tuple(bool(np.asarray(o)) for o in template.evaluate(*inputs))
        assert got == tuple(REFERENCE[name](*inputs)), f"{name}{inputs}"


@pytest.mark.parametrize("name", sorted(REFERENCE))
def test_vectorized_evaluation_matches_scalar(name):
    template = get_template(name)
    n_in = len(template.inputs)
    if n_in == 0:
        return
    rng = np.random.default_rng(5)
    arrays = [rng.integers(0, 2, 64).astype(bool) for _ in range(n_in)]
    vec = template.evaluate(*arrays)
    for i in range(64):
        scalar = template.evaluate(*[a[i] for a in arrays])
        for out_vec, out_scalar in zip(vec, scalar):
            assert bool(np.asarray(out_vec)[i]) == bool(np.asarray(out_scalar))


class TestElectricalConsistency:
    @pytest.mark.parametrize("name", sorted(CELL_TEMPLATES))
    def test_drive_ordering(self, name):
        template = CELL_TEMPLATES[name]
        drives = [template.drives[d] for d in template.drive_names]
        sizes = [d.size for d in drives]
        assert sizes == sorted(sizes)
        # Bigger drive: weaker load dependence, more cap/leakage/area.
        for weak, strong in zip(drives, drives[1:]):
            assert strong.load_coeff_ps_per_ff < weak.load_coeff_ps_per_ff
            assert strong.leakage_nw > weak.leakage_nw
            assert strong.area_um2 > weak.area_um2

    @pytest.mark.parametrize("name", sorted(CELL_TEMPLATES))
    def test_pin_counts_match_function(self, name):
        template = CELL_TEMPLATES[name]
        if template.is_sequential:
            assert template.evaluate is None
            assert template.clk_to_q_ps > 0.0
            assert template.setup_ps > 0.0
            return
        # evaluate accepts exactly len(inputs) args and yields len(outputs).
        args = [False] * len(template.inputs)
        outputs = template.evaluate(*args)
        assert len(outputs) == len(template.outputs)

    def test_complex_gates_cost_more_than_inverter(self):
        inv = CELL_TEMPLATES["INV"].drives["X1"]
        fa = CELL_TEMPLATES["FA"].drives["X1"]
        assert fa.area_um2 > inv.area_um2
        assert fa.leakage_nw > inv.leakage_nw
        assert fa.intrinsic_delay_ps > inv.intrinsic_delay_ps

    def test_get_template_unknown_name(self):
        with pytest.raises(KeyError, match="unknown cell"):
            get_template("NAND17")
