"""The shared-bias scheduler: differential replay, pool contention, soak."""

import numpy as np
import pytest

from repro.core.config import ExplorationSettings
from repro.core.exploration import ExhaustiveExplorer
from repro.core.runtime import AccuracyController, WorkloadPhase
from repro.serve.scheduler import (
    AccuracyViolation,
    GeneratorPool,
    ModeScheduler,
    ServeRequest,
    replay_trace,
)
from repro.serve.table import compile_mode_table
from tests.conftest import build_synthetic_table

SETTINGS = ExplorationSettings(
    bitwidths=(2, 4, 6, 8), activity_cycles=12, activity_batch=12
)


@pytest.fixture(scope="module")
def controller(booth8_domained):
    exploration = ExhaustiveExplorer(booth8_domained).run(SETTINGS)
    return AccuracyController(booth8_domained, exploration)


def random_trace(rng, length):
    return [
        WorkloadPhase(
            required_bits=int(rng.choice(SETTINGS.bitwidths)),
            cycles=int(rng.integers(100, 50_000)),
        )
        for _ in range(length)
    ]


class TestDifferentialReplay:
    """Greedy through the scheduler == the legacy closed-form accounting."""

    def test_thirty_random_traces_bit_identical(self, controller):
        table = controller.compiled()
        rng = np.random.default_rng(2017)
        for _ in range(30):
            trace = random_trace(rng, int(rng.integers(1, 40)))
            served = replay_trace(table, trace, policy="greedy")
            oracle = controller.replay_reference(trace)
            assert served.compute_energy_j == oracle.compute_energy_j
            assert served.transition_energy_j == oracle.transition_energy_j
            assert served.transition_time_ns == oracle.transition_time_ns
            assert served.mode_switches == oracle.mode_switches
            assert served.static_energy_j == oracle.static_energy_j
            assert served.phases == oracle.phases
            assert served.total_cycles == oracle.total_cycles

    def test_controller_replay_is_the_scheduler(self, controller):
        rng = np.random.default_rng(7)
        trace = random_trace(rng, 25)
        assert controller.replay(trace) == controller.replay_reference(trace)

    def test_switches_counted_on_every_point_change(self, controller):
        """Satellite regression: a switch is the operating point changing,
        not the transition costing energy."""
        trace = [
            WorkloadPhase(required_bits=8, cycles=1_000),
            WorkloadPhase(required_bits=2, cycles=1_000),
            WorkloadPhase(required_bits=2, cycles=1_000),
            WorkloadPhase(required_bits=8, cycles=1_000),
        ]
        report = controller.replay(trace)
        distinct_points = [controller.mode_for(p.required_bits) for p in trace]
        expected = sum(
            1
            for i, point in enumerate(distinct_points)
            if i == 0 or point != distinct_points[i - 1]
        )
        assert report.mode_switches == expected
        assert report.mode_switches == controller.replay_reference(
            trace
        ).mode_switches

    def test_non_greedy_policies_reported_separately(self, controller):
        rng = np.random.default_rng(11)
        trace = random_trace(rng, 30)
        for policy in ("hysteresis", "lookahead"):
            report = controller.replay(trace, policy=policy)
            assert report.phases == len(trace)
            assert report.total_energy_j > 0.0


class TestGeneratorPool:
    def test_needs_a_generator(self):
        with pytest.raises(ValueError, match="at least one"):
            GeneratorPool(0)

    def test_serial_acquisitions_queue(self):
        pool = GeneratorPool(1)
        start1, end1, batched1 = pool.acquire(0.0, 100.0, ("a",))
        start2, end2, batched2 = pool.acquire(0.0, 100.0, ("b",))
        assert (start1, end1, batched1) == (0.0, 100.0, False)
        assert (start2, end2) == (100.0, 200.0)
        assert not batched2

    def test_compatible_slews_batch(self):
        pool = GeneratorPool(1)
        pool.acquire(0.0, 100.0, ("busy",))
        start1, end1, _ = pool.acquire(0.0, 100.0, ("target",))
        start2, end2, batched = pool.acquire(0.0, 100.0, ("target",))
        assert batched
        assert (start2, end2) == (start1, end1)
        # The batch consumed no extra generator time.
        assert pool.free_at_ns == [200.0]

    def test_started_slews_do_not_batch(self):
        pool = GeneratorPool(2)
        pool.acquire(0.0, 100.0, ("target",))  # starts immediately
        _start, _end, batched = pool.acquire(50.0, 100.0, ("target",))
        assert not batched  # mid-flight wells cannot join a slew

    def test_queue_depth_counts_only_pending(self):
        pool = GeneratorPool(1)
        pool.acquire(0.0, 100.0, ("a",))
        pool.acquire(0.0, 100.0, ("b",))
        pool.acquire(0.0, 100.0, ("c",))
        assert pool.queue_depth(0.0) == 2  # b and c wait; a is slewing
        assert pool.queue_depth(150.0) == 1  # b slewing; only c pending
        assert pool.queue_depth(1_000.0) == 0


class TestSharedPool:
    def test_power_on_bypasses_the_pool(self, synthetic_table):
        scheduler = ModeScheduler(synthetic_table, num_generators=1)
        first = scheduler.submit(ServeRequest("a", 8, 0))
        assert first.switched
        assert first.settle_ns == 0.0  # power-on default, no slew
        assert scheduler.pool.free_at_ns == [0.0]

    def test_contention_shows_up_as_queue_wait(self, synthetic_table):
        scheduler = ModeScheduler(
            synthetic_table, num_generators=1, max_queue_depth=100
        )
        # Power both operators on (free), then demand different targets
        # at virtual time zero.
        scheduler.submit(ServeRequest("a", 4, 0))
        scheduler.submit(ServeRequest("b", 2, 0))
        first = scheduler.submit(ServeRequest("a", 6, 0))
        second = scheduler.submit(ServeRequest("b", 4, 0))
        assert first.switched and second.switched
        assert first.queue_wait_ns == 0.0
        assert second.queue_wait_ns > 0.0

    def test_identical_targets_batch_across_operators(self, synthetic_table):
        scheduler = ModeScheduler(
            synthetic_table, num_generators=1, max_queue_depth=100
        )
        for op in ("warm", "a", "b"):
            scheduler.submit(ServeRequest(op, 2, 0))  # free power-on
        scheduler.submit(ServeRequest("warm", 4, 0))  # occupies the pump
        a = scheduler.submit(ServeRequest("a", 8, 0))
        b = scheduler.submit(ServeRequest("b", 8, 0))
        assert not a.batched
        assert b.batched
        assert b.queue_wait_ns > 0.0
        assert a.queue_wait_ns == b.queue_wait_ns  # same scheduled slew
        assert scheduler.telemetry.counters["batched_slews"] == 1
        # Both still paid their own well-charge energy.
        assert a.transition_energy_j > 0.0
        assert b.transition_energy_j > 0.0

    def test_free_transitions_skip_the_pool(self, synthetic_table):
        scheduler = ModeScheduler(synthetic_table, num_generators=1)
        scheduler.submit(ServeRequest("a", 8, 1_000))
        again = scheduler.submit(ServeRequest("a", 8, 1_000))
        assert not again.switched
        assert again.settle_ns == 0.0
        assert scheduler.pool.queue_depth(0.0) <= 1

    def test_per_operator_reports_are_independent(self, synthetic_table):
        scheduler = ModeScheduler(synthetic_table, num_generators=2)
        scheduler.submit(ServeRequest("a", 2, 5_000))
        scheduler.submit(ServeRequest("b", 8, 1_000))
        scheduler.submit(ServeRequest("a", 2, 5_000))
        report_a = scheduler.report("a")
        report_b = scheduler.report("b")
        assert report_a.phases == 2
        assert report_b.phases == 1
        assert report_a.total_cycles == 10_000
        assert report_b.total_cycles == 1_000


class TestDegradation:
    def test_saturation_falls_back_to_static_mode(self, synthetic_table):
        scheduler = ModeScheduler(
            synthetic_table, num_generators=1, max_queue_depth=1
        )
        # Power six operators on (free), then demand switches at virtual
        # time zero: the slews stack onto the single pump until the
        # depth bound trips.
        operators = [f"op{i}" for i in range(6)]
        for op in operators:
            scheduler.submit(ServeRequest(op, 8, 0))
        served = [
            scheduler.submit(ServeRequest(op, 2 if i % 2 else 4, 0))
            for i, op in enumerate(operators)
        ]
        degraded = [phase for phase in served if phase.degraded]
        assert degraded, "forced saturation never degraded"
        for phase in degraded:
            assert phase.served_bits == synthetic_table.max_bits
            assert phase.served_bits >= phase.required_bits
        assert scheduler.telemetry.counters["degraded"] == len(degraded)

    def test_degraded_path_is_explicit_api(self, synthetic_table):
        scheduler = ModeScheduler(synthetic_table, num_generators=1)
        served = scheduler.submit_degraded(ServeRequest("op", 2, 1_000))
        assert served.degraded
        assert served.served_bits == synthetic_table.max_bits
        report = scheduler.report("op")
        assert report.phases == 1
        assert report.mode_switches == 1

    def test_violating_policy_is_caught_centrally(self, synthetic_table):
        scheduler = ModeScheduler(synthetic_table, max_queue_depth=10)

        from repro.serve.policy import SelectionPolicy

        class Liar(SelectionPolicy):
            name = "liar"

            def select(self, required_bits, current_bits, upcoming=()):
                return 2  # always the cheapest mode, sufficient or not

        scheduler.register("op")
        scheduler._operators["op"].policy = Liar(synthetic_table)
        with pytest.raises(AccuracyViolation, match="2-bit mode"):
            scheduler.submit(ServeRequest("op", 8, 100))
        assert scheduler.telemetry.counters["accuracy_violations"] == 1


class TestValidation:
    def test_bad_requests_rejected(self):
        with pytest.raises(ValueError, match="required_bits"):
            ServeRequest("op", 0, 100)
        with pytest.raises(ValueError, match="cycles"):
            ServeRequest("op", 4, -1)

    def test_double_registration_rejected(self, synthetic_table):
        scheduler = ModeScheduler(synthetic_table)
        scheduler.register("op")
        with pytest.raises(ValueError, match="already registered"):
            scheduler.register("op")

    def test_empty_replay_rejected(self, synthetic_table):
        with pytest.raises(ValueError, match="empty"):
            replay_trace(synthetic_table, [])

    def test_bad_queue_depth_rejected(self, synthetic_table):
        with pytest.raises(ValueError, match="max_queue_depth"):
            ModeScheduler(synthetic_table, max_queue_depth=0)


class TestSoak:
    def test_three_operators_two_generators_10k_requests(
        self, synthetic_table
    ):
        """The acceptance soak: bounded queue, populated telemetry,
        degradation exercised, zero violations, no errors."""
        # With three operators a submitter can see at most two foreign
        # pending slews, so the depth bound sits right at that edge to
        # make saturation reachable.
        scheduler = ModeScheduler(
            synthetic_table,
            num_generators=2,
            policy="greedy",
            max_queue_depth=2,
        )
        rng = np.random.default_rng(42)
        bitwidths = sorted(synthetic_table.modes)
        operators = ("op0", "op1", "op2")
        total = 10_500
        served_all = []
        for index in range(total):
            request = ServeRequest(
                operators[index % 3],
                int(rng.choice(bitwidths)),
                # Mostly tiny phases: clocks barely advance, so the two
                # pumps saturate and the depth bound must engage.
                int(rng.integers(0, 50)),
            )
            served_all.append(scheduler.submit(request))

        counters = scheduler.telemetry.counters
        assert counters["requests"] == total
        assert counters["accuracy_violations"] == 0
        assert counters["degraded"] > 0, "saturation never exercised"
        assert all(
            phase.served_bits >= phase.required_bits for phase in served_all
        )
        # The depth bound held at every instant the pool was consulted.
        assert scheduler.pool.max_depth_seen <= scheduler.max_queue_depth
        # Histograms populated and self-consistent.
        telemetry = scheduler.telemetry
        assert telemetry.latency_ns.total == total
        assert telemetry.energy_pj.total == total
        # Power-on and same-rail degraded switches settle for free, so
        # the settle histogram is a subset of the switch count.
        assert 0 < telemetry.settle_ns.total <= counters["mode_switches"]
        snapshot = telemetry.snapshot()
        assert snapshot["per_operator"] == {
            "op0": 3_500, "op1": 3_500, "op2": 3_500
        }
        assert snapshot["latency_ns"]["p99"] >= snapshot["latency_ns"]["p50"]

class TestExpiryBoundaries:
    """Pruning and depth counting exactly at grant boundaries.

    The pool's windows are half-open like everything else in virtual
    time: a grant whose ``end_ns`` equals *now* is finished (pruned),
    and a grant whose ``start_ns`` equals *now* has started (it is no
    longer "pending" for the depth bound, but it can still batch).
    """

    def test_grant_ending_exactly_now_is_pruned(self):
        pool = GeneratorPool(1)
        pool.acquire(0.0, 100.0, ("a",))
        assert pool.queue_depth(99.999) == 0  # slewing, not pending
        pool._prune(100.0)
        assert pool.pending == []

    def test_grant_starting_exactly_now_is_not_pending(self):
        pool = GeneratorPool(1)
        pool.acquire(0.0, 100.0, ("a",))
        pool.acquire(0.0, 100.0, ("b",))  # queued for [100, 200)
        assert pool.queue_depth(99.999) == 1
        assert pool.queue_depth(100.0) == 0  # starts this instant
        # ...but at its exact start instant it still accepts batch joins
        # (the slew begins now; the power switches can gang on).
        _start, _end, batched = pool.acquire(100.0, 100.0, ("b",))
        assert batched

    def test_prune_keeps_in_flight_grants(self):
        pool = GeneratorPool(1)
        pool.acquire(0.0, 100.0, ("a",))
        pool._prune(50.0)
        assert len(pool.pending) == 1
        pool._prune(100.0)
        assert pool.pending == []


class TestDropoutBoundaries:
    """apply_dropouts at its edges: last survivor, restore, rebalance."""

    def test_dropping_the_only_generator_empties_the_pool(self):
        pool = GeneratorPool(1)
        pool.apply_dropouts(frozenset({0}), 0.0)
        assert pool.num_available == 0
        assert pool.dropouts == 1
        # Nothing to rebalance onto: acquire must signal "degrade".
        assert pool.acquire(0.0, 100.0, ("a",)) is None

    def test_restore_after_total_dropout(self):
        pool = GeneratorPool(1)
        pool.apply_dropouts(frozenset({0}), 0.0)
        pool.apply_dropouts(frozenset(), 10.0)
        assert pool.num_available == 1
        assert pool.acquire(10.0, 50.0, ("a",)) == (10.0, 60.0, False)
        # Dropout counter records events, not current state.
        assert pool.dropouts == 1

    def test_redropping_a_dead_generator_is_idempotent(self):
        pool = GeneratorPool(2)
        pool.apply_dropouts(frozenset({0}), 0.0)
        pool.apply_dropouts(frozenset({0}), 1.0)
        assert pool.dropouts == 1
        assert pool.num_available == 1

    def test_pending_grant_rebalances_to_survivor(self):
        pool = GeneratorPool(2)
        pool.acquire(0.0, 100.0, ("a",))  # gen 0, starts now
        pool.acquire(0.0, 100.0, ("b",))  # gen 1, starts now
        queued = pool.acquire(0.0, 100.0, ("c",))  # queued behind one
        assert queued[0] == 100.0
        victim = next(
            g.generator for g in pool.pending if g.signature == ("c",)
        )
        pool.apply_dropouts(frozenset({victim}), 0.0)
        assert pool.rebalanced_grants == 1
        survivor = 1 - victim
        moved = next(
            g for g in pool.pending if g.signature == ("c",)
        )
        assert moved.generator == survivor
        # Same 100 ns duration, restarted behind the survivor's queue.
        assert moved.end_ns - moved.start_ns == 100.0
        assert pool.free_at_ns[survivor] == moved.end_ns

    def test_in_flight_grant_stays_on_dropped_generator(self):
        pool = GeneratorPool(2)
        pool.acquire(0.0, 100.0, ("a",))  # gen 0, slewing at t=50
        pool.apply_dropouts(frozenset({0}), 50.0)
        grant = next(g for g in pool.pending if g.signature == ("a",))
        assert grant.generator == 0  # pump output held through the slew
        assert pool.rebalanced_grants == 0

    def test_grant_starting_exactly_now_is_not_rebalanced(self):
        # start_ns == now means "already started" (same half-open
        # convention as queue_depth): the slew rides out the dropout.
        pool = GeneratorPool(2)
        pool.acquire(0.0, 100.0, ("a",))
        pool.apply_dropouts(frozenset({0}), 0.0)
        grant = next(g for g in pool.pending if g.signature == ("a",))
        assert grant.generator == 0
        assert pool.rebalanced_grants == 0

    def test_total_dropout_skips_rebalancing(self):
        pool = GeneratorPool(2)
        pool.acquire(0.0, 100.0, ("a",))
        pool.acquire(0.0, 100.0, ("b",))
        queued = pool.acquire(0.0, 100.0, ("c",))
        assert queued[0] == 100.0
        pool.apply_dropouts(frozenset({0, 1}), 0.0)
        assert pool.num_available == 0
        # No survivor to move work onto; grants keep their bookkeeping.
        assert pool.rebalanced_grants == 0
        assert len(pool.pending) == 3

    def test_out_of_range_ids_are_ignored(self):
        pool = GeneratorPool(2)
        pool.apply_dropouts(frozenset({-1, 5}), 0.0)
        assert pool.num_available == 2
        assert pool.dropouts == 0


class TestDegradedAccounting:
    """submit_degraded must account telemetry and energy like any phase."""

    def test_telemetry_counters_and_histograms(self, synthetic_table):
        scheduler = ModeScheduler(synthetic_table)
        scheduler.submit_degraded(ServeRequest("op", 3, 2_000))
        scheduler.submit_degraded(ServeRequest("op", 5, 1_000))
        counters = scheduler.telemetry.counters
        assert counters["requests"] == 2
        assert counters["degraded"] == 2
        # First call switches (power-on, free); the second holds still.
        assert counters["mode_switches"] == 1
        assert scheduler.telemetry.per_operator == {"op": 2}
        assert scheduler.telemetry.latency_ns.total == 2
        assert scheduler.telemetry.energy_pj.total == 2

    def test_energy_accounting_matches_the_report(self, synthetic_table):
        scheduler = ModeScheduler(synthetic_table)
        a = scheduler.submit_degraded(ServeRequest("op", 2, 3_000))
        b = scheduler.submit_degraded(ServeRequest("op", 4, 7_000))
        static = synthetic_table.static_mode
        # Static max-accuracy mode at fclk 1 GHz: P * cycles * 1 ns.
        expected = static.total_power_w * 3_000e-9
        assert a.compute_energy_j == pytest.approx(expected)
        report = scheduler.report("op")
        assert report.phases == 2
        assert report.total_cycles == 10_000
        assert report.compute_energy_j == pytest.approx(
            a.compute_energy_j + b.compute_energy_j
        )
        # Degraded phases serve the static mode, so the static baseline
        # accrues identically: the energy saving of these phases is zero.
        assert report.static_energy_j == pytest.approx(
            report.compute_energy_j
        )
        # Telemetry histogram saw the same joules (in pJ).
        assert scheduler.telemetry.energy_pj.sum == pytest.approx(
            report.compute_energy_j * 1e12
        )

    def test_degrading_from_a_low_mode_pays_the_switch_off_pool(
        self, synthetic_table
    ):
        scheduler = ModeScheduler(synthetic_table, num_generators=1)
        scheduler.submit(ServeRequest("op", 2, 1_000))
        before_free_at = list(scheduler.pool.free_at_ns)
        served = scheduler.submit_degraded(ServeRequest("op", 2, 1_000))
        assert served.switched
        assert served.transition_energy_j > 0.0
        assert served.settle_ns > 0.0
        assert served.queue_wait_ns == 0.0
        # The static rail is the power-on default: no pump was taken.
        assert scheduler.pool.free_at_ns == before_free_at
        report = scheduler.report("op")
        assert report.mode_switches == 2
        assert report.transition_energy_j == pytest.approx(
            served.transition_energy_j
        )
        assert report.transition_time_ns == pytest.approx(served.settle_ns)
        assert scheduler.telemetry.settle_ns.total == 1

    def test_virtual_clock_advances_through_degraded_phases(
        self, synthetic_table
    ):
        scheduler = ModeScheduler(synthetic_table)
        scheduler.submit_degraded(ServeRequest("op", 2, 4_000))
        state = scheduler._operators["op"]
        assert state.clock_ns == pytest.approx(4_000.0)
        served = scheduler.submit_degraded(ServeRequest("op", 2, 1_000))
        assert served.decided_at_ns == pytest.approx(4_000.0)
