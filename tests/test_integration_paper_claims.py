"""End-to-end checks of the paper's qualitative claims on a small design.

These tests exercise the whole stack (generate -> place -> size -> domains
-> explore) and assert the *shape* of the paper's findings; the benchmarks
reproduce the full-size numbers.
"""

import numpy as np
import pytest

from repro.core.config import ExplorationSettings
from repro.core.dvas import dvas_explore
from repro.core.exploration import ExhaustiveExplorer
from repro.core.flow import implement_with_domains
from repro.pnr.grid import GridPartition, area_overhead
from repro.sta.caseanalysis import dvas_case
from repro.sta.engine import StaEngine
from repro.sta.histogram import slack_histogram

SETTINGS = ExplorationSettings(
    bitwidths=(2, 4, 6, 8),
    activity_cycles=12,
    activity_batch=12,
)


class TestWallOfSlack:
    """Fig. 1: endpoint slack piles up near zero; scaling VDD floods the
    histogram with violations."""

    def test_histogram_shifts_into_violation_at_low_vdd(
        self, booth8_base, library
    ):
        design = booth8_base
        engine = StaEngine(design.timing_graph(), library)
        fbb = np.ones(len(design.netlist.cells), bool)
        nominal = slack_histogram(
            engine.analyze(design.constraint, 1.0, fbb)
        )
        scaled = slack_histogram(
            engine.analyze(design.constraint, 0.8, fbb)
        )
        assert nominal.violating == 0
        # On the small test design many endpoints are trivial (input regs,
        # port captures), so the violating fraction is diluted vs Fig. 1b.
        assert scaled.violating_fraction > 0.15

    def test_gating_restores_timing_compliance(self, booth8_base, library):
        """Fig. 2 / Section II-B: reducing the dynamic deactivates enough
        paths to restore compliance at a reduced supply."""
        design = booth8_base
        engine = StaEngine(design.timing_graph(), library)
        fbb = np.ones(len(design.netlist.cells), bool)
        full = engine.analyze(design.constraint, 0.9, fbb)
        gated = engine.analyze(
            design.constraint, 0.9, fbb,
            case=dvas_case(design.netlist, 2),
        )
        assert gated.worst_slack_ps > full.worst_slack_ps


class TestSelectiveBoosting:
    """Section III: the added Vth knob lets only critical regions burn
    boosted leakage."""

    def test_partial_boost_feasible_at_reduced_accuracy(
        self, booth8_domained
    ):
        result = ExhaustiveExplorer(booth8_domained).run(SETTINGS)
        low_acc = result.best_per_bitwidth[2]
        high_acc = result.best_per_bitwidth[8]
        assert low_acc.num_boosted_domains < high_acc.num_boosted_domains

    def test_leakage_scales_with_boosted_domains(self, booth8_domained):
        result = ExhaustiveExplorer(booth8_domained).run(SETTINGS)
        points = sorted(
            result.best_per_bitwidth.values(),
            key=lambda p: p.num_boosted_domains,
        )
        same_vdd = {}
        for p in points:
            same_vdd.setdefault(p.vdd, []).append(p)
        for group in same_vdd.values():
            if len(group) >= 2:
                leaks = [p.leakage_power_w for p in group]
                boosts = [p.num_boosted_domains for p in group]
                # Within one supply, fewer boosted domains -> less leakage.
                order = np.argsort(boosts)
                assert np.all(np.diff(np.asarray(leaks)[order]) >= -1e-12)


class TestAreaOverheadClaims:
    """Fig. 6b / Table I: overhead grows with domain count; the paper's
    configurations land around 15-17% (2x2) and ~30% (3x3)."""

    def test_monotone_in_domain_count(self, booth8_base):
        plan = booth8_base.placement.floorplan
        grids = [(1, 2), (2, 1), (1, 3), (3, 1), (2, 2), (3, 3)]
        overheads = {
            g: area_overhead(plan, GridPartition(*g)) for g in grids
        }
        assert overheads[(2, 2)] > overheads[(1, 2)]
        assert overheads[(3, 3)] > overheads[(2, 2)]

    def test_structure_matters_less_than_count(self, booth8_base):
        plan = booth8_base.placement.floorplan
        o_12 = area_overhead(plan, GridPartition(1, 2))
        o_21 = area_overhead(plan, GridPartition(2, 1))
        assert abs(o_12 - o_21) < 0.1


class TestExplorationCostClaims:
    """Section III-C: the exploration is O(2^NMAX * B * NVDD) and mostly
    filtered by STA."""

    def test_point_count_formula(self, booth8_domained):
        result = ExhaustiveExplorer(booth8_domained).run(SETTINGS)
        expected = (
            (1 << booth8_domained.num_domains)
            * len(SETTINGS.bitwidths)
            * len(SETTINGS.vdd_values)
        )
        assert result.points_evaluated == expected

    def test_runtime_is_interactive(self, booth8_domained):
        result = ExhaustiveExplorer(booth8_domained).run(SETTINGS)
        assert result.runtime_s < 60.0


class TestMethodComparison:
    def test_proposed_covers_dvas_nobb_accuracy_range(
        self, booth8_base, booth8_domained
    ):
        """Wherever DVAS (NoBB) is feasible, the proposed method also has a
        feasible point.  It may cost somewhat more there: the paper itself
        notes DVAS can be "(marginally) better ... at very small
        bitwidths" because of the guardband/incremental-placement
        overheads of the domained die."""
        nobb = dvas_explore(booth8_base, fbb=False, settings=SETTINGS)
        proposed = ExhaustiveExplorer(booth8_domained).run(SETTINGS)
        for bits, point in nobb.best_per_bitwidth.items():
            assert bits in proposed.best_per_bitwidth
            ours = proposed.best_per_bitwidth[bits]
            assert ours.total_power_w < point.total_power_w * 2.0
