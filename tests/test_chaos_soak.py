"""Seeded chaos soaks: replay fault schedules, demand the stack holds.

The acceptance bar from the robustness issue: several concurrent
operators served under silicon chaos must never get fewer bits than
requested, never run a guarded mode past its margin unnoticed, and the
scheduler must stay up; the sharded engine must survive crashes and
cache corruption bit-identically.  Every soak here is seeded and
replayable -- a failure reproduces from its seed alone.
"""

import dataclasses

import pytest

from repro.core.config import ExplorationSettings
from repro.core.flow import implement_with_domains
from repro.faults import (
    KIND_AGING_VTH,
    KIND_CACHE_CORRUPT,
    KIND_GEN_DROPOUT,
    KIND_STUCK_NOBB,
    KIND_TEMP_DRIFT,
    KIND_TRANSITION_TIMEOUT,
    KIND_VDD_DROOP,
    KIND_WORKER_CRASH,
    FaultEvent,
    FaultSchedule,
    recovery_schedule,
    run_chaos,
    run_exploration_chaos,
    run_recal_chaos,
    run_serve_chaos,
)
from repro.operators import adequate_adder
from repro.pnr.grid import GridPartition
from tests.conftest import build_margined_table

# Request mix of 96 phases over 3 operators at fclk 1 GHz reaches a
# virtual clock of roughly 3e5 ns; the schedules below must span that
# so silicon events actually coincide with live traffic.
SOAK_HORIZON_NS = 3e5

SWEEP_SETTINGS = ExplorationSettings(
    bitwidths=(1, 2, 3, 4),
    activity_cycles=10,
    activity_batch=8,
)


@pytest.fixture(scope="module")
def soak_design(library):
    return implement_with_domains(
        lambda: adequate_adder(library, width=4, name="soak_add"),
        library,
        GridPartition(2, 1),
    )


def hand_built_storm():
    """A dense, fully deterministic schedule covering every fault kind.

    Windows are placed inside the soak's virtual-time span so each
    mechanism is guaranteed to engage -- no reliance on where a seeded
    generator happens to land its events.
    """
    return FaultSchedule(
        [
            FaultEvent(KIND_TEMP_DRIFT, 0.0, 1.2e5, magnitude=35.0),
            FaultEvent(KIND_VDD_DROOP, 4.0e4, 6.0e4, magnitude=0.04),
            FaultEvent(KIND_AGING_VTH, 1.0e5, 5.0e4, magnitude=0.008),
            FaultEvent(KIND_STUCK_NOBB, 1.6e5, 4.0e4),
            FaultEvent(KIND_TRANSITION_TIMEOUT, 2.0e4, 1.5e4),
            FaultEvent(KIND_GEN_DROPOUT, 5.0e4, 8.0e4, target=0),
            FaultEvent(KIND_GEN_DROPOUT, 2.2e5, 5.0e4, target=1),
            FaultEvent(KIND_WORKER_CRASH, 0.0, 1.0, target=1),
            FaultEvent(KIND_CACHE_CORRUPT, 0.0, 1.0, target=0),
            FaultEvent(KIND_CACHE_CORRUPT, 1.0, 1.0, target=1),
        ]
    )


class TestServeSoak:
    def test_hand_built_storm_engages_every_mechanism(self):
        report = run_serve_chaos(
            build_margined_table(), hand_built_storm(), num_operators=3
        )
        assert report.ok
        assert report.stayed_up
        assert report.requests == 96
        assert report.accuracy_violations == 0
        assert report.margin_violations == 0
        # The storm is built so each defence demonstrably fired.
        assert report.margin_fallbacks > 0
        assert report.generator_dropouts >= 1
        assert report.transition_retries + report.transition_failures > 0
        assert "[PASS]" in report.describe()

    @pytest.mark.parametrize("seed", [3, 7, 11, 2017])
    def test_seeded_soaks_never_underserve(self, seed):
        schedule = FaultSchedule.generate(
            seed, horizon_ns=SOAK_HORIZON_NS, num_generators=2
        )
        report = run_serve_chaos(
            build_margined_table(), schedule, num_operators=3, seed=seed
        )
        assert report.stayed_up, report.error
        assert report.accuracy_violations == 0
        assert report.margin_violations == 0
        assert report.ok

    def test_thin_margins_force_fallbacks_not_violations(self):
        # Modes 2 and 4 get razor-thin margins: mild heating must evict
        # them.  The guard substitutes covering modes; the audit then
        # proves no un-overridden pick ran unsafe.
        table = build_margined_table({2: 2.0, 4: 2.0})
        schedule = FaultSchedule(
            [FaultEvent(KIND_TEMP_DRIFT, 0.0, SOAK_HORIZON_NS, magnitude=25.0)]
        )
        report = run_serve_chaos(table, schedule, num_operators=3)
        assert report.ok
        assert report.margin_fallbacks > 0
        assert report.margin_violations == 0

    def test_operator_count_validated(self):
        with pytest.raises(ValueError, match="operator"):
            run_serve_chaos(
                build_margined_table(), FaultSchedule([]), num_operators=0
            )

    def test_report_serializes(self):
        report = run_serve_chaos(
            build_margined_table(), FaultSchedule([]), requests=6
        )
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["requests"] == 6


class TestRecalSoak:
    def test_recover_then_relapse_reclaims_energy_without_violations(self):
        """The acceptance soak: one excursion, a clean recovery window,
        then a relapse.  The recalibrating guard must re-advance during
        the recovery (reclaiming >= 10% of the retreat-only baseline's
        energy, canary probes charged) and retreat again into the
        relapse -- with zero accuracy/margin violations on both runs."""
        report = run_recal_chaos(
            build_margined_table(),
            recovery_schedule(SOAK_HORIZON_NS, 60.0, relapse=True, seed=1),
            requests=256,
            seed=7,
        )
        assert report.ok, report.describe()
        assert report.retreat_only.accuracy_violations == 0
        assert report.retreat_only.margin_violations == 0
        assert report.recalibrating.accuracy_violations == 0
        assert report.recalibrating.margin_violations == 0
        assert report.recalibrating.recal_readvances > 0
        assert report.recalibrating.recal_demotions > 0
        assert report.energy_reclaimed_fraction >= 0.10
        assert "[PASS]" in report.describe()
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["energy_reclaimed_fraction"] == pytest.approx(
            report.energy_reclaimed_fraction
        )

    def test_recalibrating_soak_holds_under_seeded_storm(self):
        """Recalibration under an arbitrary storm (not a friendly
        recovery shape) must still never admit an unsafe mode."""
        schedule = FaultSchedule.generate(
            11, horizon_ns=SOAK_HORIZON_NS, num_generators=2
        )
        report = run_serve_chaos(
            build_margined_table(),
            schedule,
            num_operators=3,
            seed=11,
            recalibrate=True,
        )
        assert report.ok, report.describe()
        assert report.margin_violations == 0
        assert report.accuracy_violations == 0
        assert report.recal_epochs > 0
        assert report.probe_energy_j > 0.0

    def test_recalibrate_and_retreat_only_are_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            run_serve_chaos(
                build_margined_table(),
                FaultSchedule([]),
                recalibrate=True,
                retreat_only=True,
            )

    def test_run_chaos_recalibrate_nests_the_race_report(self):
        report = run_chaos(
            build_margined_table(),
            recovery_schedule(SOAK_HORIZON_NS, 60.0, seed=2),
            requests=96,
            recalibrate=True,
        )
        assert report.recal is not None
        assert report.ok
        payload = report.to_dict()
        assert payload["recal"]["ok"] is True
        # The serve half of the report IS the recalibrating run.
        assert payload["serve"] == payload["recal"]["recalibrating"]
        assert "reclaimed" in report.describe()


class TestExplorationSoak:
    def test_crashes_and_corruption_recover_bit_identically(
        self, soak_design, tmp_path
    ):
        schedule = FaultSchedule.generate(
            7, horizon_ns=1e5, num_shards=len(SWEEP_SETTINGS.bitwidths)
        )
        assert schedule.of_kind(KIND_WORKER_CRASH)
        assert schedule.of_kind(KIND_CACHE_CORRUPT)
        report = run_exploration_chaos(
            soak_design, SWEEP_SETTINGS, schedule, tmp_path
        )
        assert report.error is None
        assert report.ok
        assert report.bit_identical
        assert report.shards == len(SWEEP_SETTINGS.bitwidths)
        assert report.worker_crashes >= 1
        assert report.pool_respawns >= 1
        assert report.faults_fired
        assert report.cache_entries_corrupted >= 1
        assert report.recovered_after_corruption
        assert report.cache_invalidations >= 1
        assert "[PASS]" in report.describe()


class TestFullChaosRun:
    def test_end_to_end_run_passes_and_serializes(
        self, soak_design, tmp_path
    ):
        schedule = FaultSchedule.generate(
            7,
            horizon_ns=1e5,
            num_generators=2,
            num_shards=len(SWEEP_SETTINGS.bitwidths),
        )
        report = run_chaos(
            build_margined_table(),
            schedule,
            design=soak_design,
            settings=SWEEP_SETTINGS,
            workdir=tmp_path,
        )
        assert report.ok
        payload = report.to_dict()
        assert payload["ok"] is True
        assert payload["serve"]["ok"] is True
        assert payload["exploration"]["ok"] is True
        # The archived schedule replays the exact run.
        again = FaultSchedule.from_dict(payload["schedule"])
        assert again.to_dict() == payload["schedule"]
        assert "chaos run: PASS" in report.describe()

    def test_exploration_half_requires_settings_and_workdir(self):
        with pytest.raises(ValueError, match="workdir"):
            run_chaos(
                build_margined_table(),
                FaultSchedule([]),
                design=object(),
            )

    def test_serve_only_run_skips_exploration(self):
        report = run_chaos(
            build_margined_table(), FaultSchedule([]), requests=12
        )
        assert report.exploration is None
        assert report.ok
