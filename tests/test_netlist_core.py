"""Netlist IR invariants: nets, cells, buses, topological order."""

import pytest

from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import Netlist
from repro.techlib.library import Library


@pytest.fixture(scope="module")
def library():
    return Library()


class TestNets:
    def test_duplicate_net_name_rejected(self, library):
        netlist = Netlist("t", library)
        netlist.add_net("n")
        with pytest.raises(ValueError, match="duplicate net"):
            netlist.add_net("n")

    def test_single_driver_enforced(self, library):
        builder = NetlistBuilder("t", library)
        a = builder.input_bus("A", 1)[0]
        y = builder.inv(a)
        inv_template = library.template("INV")
        with pytest.raises(ValueError, match="already driven"):
            builder.netlist.add_cell("dup", inv_template, [a], [y])

    def test_primary_input_cannot_be_driven(self, library):
        builder = NetlistBuilder("t", library)
        a = builder.input_bus("A", 1)[0]
        with pytest.raises(ValueError, match="primary input"):
            builder.netlist.add_cell("bad", library.template("INV"), [a], [a])

    def test_fanout_counts_sinks(self, library):
        builder = NetlistBuilder("t", library)
        a = builder.input_bus("A", 1)[0]
        builder.inv(a)
        builder.inv(a)
        assert a.fanout == 2


class TestCells:
    def test_duplicate_cell_name_rejected(self, library):
        builder = NetlistBuilder("t", library)
        a = builder.input_bus("A", 1)[0]
        netlist = builder.netlist
        y1 = netlist.add_net("y1")
        y2 = netlist.add_net("y2")
        netlist.add_cell("i", library.template("INV"), [a], [y1])
        with pytest.raises(ValueError, match="duplicate cell"):
            netlist.add_cell("i", library.template("INV"), [a], [y2])

    def test_pin_count_mismatch_rejected(self, library):
        builder = NetlistBuilder("t", library)
        a = builder.input_bus("A", 2)
        netlist = builder.netlist
        y = netlist.add_net("y")
        with pytest.raises(ValueError, match="expected 1 inputs"):
            netlist.add_cell("i", library.template("INV"), a, [y])

    def test_unknown_drive_rejected(self, library):
        builder = NetlistBuilder("t", library)
        a = builder.input_bus("A", 1)[0]
        y = builder.netlist.add_net("y")
        with pytest.raises(ValueError, match="no drive"):
            builder.netlist.add_cell(
                "i", library.template("INV"), [a], [y], drive_name="X99"
            )

    def test_set_drive_and_position(self, library):
        builder = NetlistBuilder("t", library)
        a = builder.input_bus("A", 1)[0]
        builder.inv(a)
        cell = builder.netlist.cells[0]
        cell.set_drive("X4")
        assert cell.drive.size == 4.0
        with pytest.raises(ValueError, match="not been placed"):
            cell.position
        cell.x, cell.y = 1.0, 2.0
        assert cell.position == (1.0, 2.0)


class TestTopology:
    def test_topological_order_respects_dependencies(self, library):
        builder = NetlistBuilder("t", library)
        a = builder.input_bus("A", 1)[0]
        y1 = builder.inv(a)
        y2 = builder.inv(y1)
        builder.output_bus("Y", [builder.inv(y2)])
        order = builder.netlist.topological_cells()
        positions = {cell.name: i for i, cell in enumerate(order)}
        assert positions["inv_0"] < positions["inv_1"] < positions["inv_2"]

    def test_combinational_loop_detected(self, library):
        netlist = Netlist("loop", library)
        a = netlist.add_net("a")
        b = netlist.add_net("b")
        inv = library.template("INV")
        netlist.add_cell("i1", inv, [a], [b])
        netlist.add_cell("i2", inv, [b], [a])
        with pytest.raises(ValueError, match="combinational loop"):
            netlist.topological_cells()

    def test_dff_breaks_cycles(self, library):
        builder = NetlistBuilder("t", library)
        builder.clock()
        netlist = builder.netlist
        q = netlist.add_net("q")
        d = builder.inv(q)  # feedback through an inverter
        netlist.add_cell(
            "ff", library.template("DFF"), [d, netlist.clock_net], [q]
        )
        order = netlist.topological_cells()
        assert len(order) == 1  # just the inverter

    def test_logic_levels_increase(self, library):
        builder = NetlistBuilder("t", library)
        a = builder.input_bus("A", 1)[0]
        y1 = builder.inv(a)
        y2 = builder.xor2(y1, a)
        levels = builder.netlist.logic_levels()
        cells = {c.name: c.index for c in builder.netlist.cells}
        assert levels[cells["inv_0"]] == 0
        assert levels[cells["xor2_0"]] == 1


class TestStats:
    def test_stats_fields(self, library):
        builder = NetlistBuilder("t", library)
        a = builder.input_bus("A", 4)
        builder.output_bus("Y", [builder.inv(bit) for bit in a])
        stats = builder.netlist.stats()
        assert stats["cells"] == 4
        assert stats["inputs"] == 4
        assert stats["outputs"] == 4
        assert stats["area_um2"] > 0

    def test_count_by_template(self, library):
        builder = NetlistBuilder("t", library)
        a = builder.input_bus("A", 2)
        builder.inv(a[0])
        builder.and2(a[0], a[1])
        builder.and2(a[1], a[0])
        counts = builder.netlist.count_by_template()
        assert counts == {"INV": 1, "AND2": 2}
