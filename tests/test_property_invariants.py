"""Hypothesis property tests on the flow's core invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.netlist.builder import NetlistBuilder
from repro.operators import booth_multiplier
from repro.operators.adders import carry_select_adder, ripple_carry_adder
from repro.operators.wallace import columns_from_rows, wallace_reduce
from repro.sim.simulator import LogicSimulator, SimulationMode
from repro.sim.vectors import bits_to_int, int_to_bits, zero_lsbs
from repro.sta.batch import all_bb_configs, all_state_configs
from repro.sta.caseanalysis import UNKNOWN, dvas_case
from repro.techlib.library import Library
from repro.techlib.models import (
    delay_scale_factor,
    leakage_scale_factor,
    threshold_voltage,
)

LIBRARY = Library()

_BOOTH6 = booth_multiplier(LIBRARY, width=6, registered=False)
_BOOTH6_SIM = LogicSimulator(_BOOTH6, SimulationMode.TRANSPARENT)


class TestArithmeticProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        a=st.integers(min_value=-32, max_value=31),
        b=st.integers(min_value=-32, max_value=31),
    )
    def test_booth_commutes(self, a, b):
        ab = _BOOTH6_SIM.run_combinational({"A": [a], "B": [b]})["P"][0]
        ba = _BOOTH6_SIM.run_combinational({"A": [b], "B": [a]})["P"][0]
        assert ab == ba == a * b

    @settings(max_examples=40, deadline=None)
    @given(
        a=st.integers(min_value=-32, max_value=31),
        b=st.integers(min_value=-32, max_value=31),
        bits=st.integers(min_value=1, max_value=6),
    )
    def test_gated_product_equals_product_of_gated(self, a, b, bits):
        """DVAS semantics: the hardware with gated inputs computes the
        exact product of the gated operands."""
        ga = int(zero_lsbs(np.asarray([a]), 6, bits)[0])
        gb = int(zero_lsbs(np.asarray([b]), 6, bits)[0])
        out = _BOOTH6_SIM.run_combinational({"A": [ga], "B": [gb]})["P"][0]
        assert out == ga * gb

    @settings(max_examples=30, deadline=None)
    @given(
        rows=st.lists(
            st.integers(min_value=0, max_value=255),
            min_size=3,
            max_size=7,
        )
    )
    def test_wallace_preserves_any_sum(self, rows):
        width = 8
        builder = NetlistBuilder("w", LIBRARY)
        row_nets = [builder.input_bus(f"R{i}", width) for i in range(len(rows))]
        columns = columns_from_rows([(0, r) for r in row_nets], width)
        a, b = wallace_reduce(builder, columns)
        total, _ = ripple_carry_adder(builder, a, b)
        builder.output_bus("S", total, signed=False)
        sim = LogicSimulator(builder.build(), SimulationMode.TRANSPARENT)
        stim = {f"R{i}": np.asarray([v]) for i, v in enumerate(rows)}
        out = sim.run_combinational(stim, signed=False)["S"][0]
        assert out == sum(rows) % (1 << width)


class TestPhysicsProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        vdd=st.floats(min_value=0.6, max_value=1.2),
        vbb=st.floats(min_value=-1.1, max_value=1.1),
    )
    def test_speed_and_leakage_trade_monotonically(self, vdd, vbb):
        eps = 0.05
        assume(vbb + eps <= 1.1)
        d_more = delay_scale_factor(vdd, vbb + eps)
        d_less = delay_scale_factor(vdd, vbb)
        assert d_more <= d_less  # more forward bias never slower
        assert leakage_scale_factor(vdd, vbb + eps) >= leakage_scale_factor(
            vdd, vbb
        )

    @settings(max_examples=50, deadline=None)
    @given(vbb=st.floats(min_value=-1.1, max_value=1.1))
    def test_vth_linear_in_vbb(self, vbb):
        base = threshold_voltage(0.0, 1.0)
        shifted = threshold_voltage(vbb, 1.0)
        slope = (
            LIBRARY.process.body_factor
            + LIBRARY.process.lvt_offset / LIBRARY.process.fbb_voltage
        )
        assert shifted == pytest.approx(base - slope * vbb)


class TestCaseAnalysisProperties:
    @settings(max_examples=15, deadline=None)
    @given(bits=st.integers(min_value=0, max_value=6))
    def test_constants_grow_as_bits_shrink(self, bits):
        more_gated = dvas_case(_BOOTH6, bits)
        less_gated = dvas_case(_BOOTH6, min(bits + 2, 6))
        # Every net constant at the *larger* bitwidth stays constant at the
        # smaller one (gating more inputs can only add constants).
        stricter = more_gated.values != UNKNOWN
        looser = less_gated.values != UNKNOWN
        assert np.all(stricter | ~looser)

    @settings(max_examples=15, deadline=None)
    @given(bits=st.integers(min_value=0, max_value=6))
    def test_case_analysis_agrees_with_simulation(self, bits):
        """Any net the case analysis calls constant must never toggle in a
        gated random simulation (soundness of the timing filter)."""
        case = dvas_case(_BOOTH6, bits)
        rng = np.random.default_rng(bits)
        a = zero_lsbs(rng.integers(-32, 32, 64), 6, bits)
        b = zero_lsbs(rng.integers(-32, 32, 64), 6, bits)
        values = {}
        sim = _BOOTH6_SIM
        batch = 64
        vals = {}
        sim._apply_inputs(vals, {"A": a, "B": b}, batch)
        sim._evaluate_combinational(vals, batch)
        for net in _BOOTH6.nets:
            code = case.values[net.index]
            if code != UNKNOWN and net.index in vals:
                observed = vals[net.index]
                assert np.all(observed == bool(code)), net.name


class TestConfigEnumerationProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        domains=st.integers(min_value=0, max_value=8),
    )
    def test_bb_configs_complete(self, domains):
        configs = all_bb_configs(domains)
        assert configs.shape == (1 << domains, domains)
        assert len({tuple(r) for r in configs}) == 1 << domains

    @settings(max_examples=20, deadline=None)
    @given(
        domains=st.integers(min_value=1, max_value=5),
        states=st.integers(min_value=1, max_value=4),
    )
    def test_state_configs_complete(self, domains, states):
        configs = all_state_configs(domains, states)
        assert configs.shape == (states**domains, domains)
        assert len({tuple(r) for r in configs}) == states**domains


class TestPackingProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=(1 << 12) - 1),
            min_size=1,
            max_size=20,
        ),
        width=st.integers(min_value=12, max_value=20),
    )
    def test_pack_unpack_identity_any_width(self, values, width):
        array = np.asarray(values)
        assert np.array_equal(
            bits_to_int(int_to_bits(array, width), signed=False), array
        )


class TestNewOperatorProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=255),
        d=st.integers(min_value=1, max_value=255),
    )
    def test_divider_euclidean_property(self, n, d):
        """Q*D + R == N and 0 <= R < D -- checked on the netlist."""
        sim = _cached_div8()
        out = sim.run_combinational(
            {"N": [n], "D": [d]}, signed=False
        )
        q, r = int(out["Q"][0]), int(out["R"][0])
        assert q * d + r == n
        assert 0 <= r < d

    @settings(max_examples=25, deadline=None)
    @given(
        x=st.integers(min_value=-2000, max_value=2000),
        y=st.integers(min_value=-2000, max_value=2000),
        z=st.integers(min_value=-(1 << 13), max_value=(1 << 13) - 1),
    )
    def test_cordic_norm_gain_property(self, x, y, z):
        """CORDIC rotation preserves |v| up to the constant gain (within
        the quantization error of the iteration count)."""
        assume(x * x + y * y > 100)
        from repro.sim.golden import cordic_reference

        out = cordic_reference(
            np.asarray([x]), np.asarray([y]), np.asarray([z]), 16, 12
        )
        norm_in = float(np.hypot(x, y))
        norm_out = float(np.hypot(out["XO"][0], out["YO"][0]))
        assert norm_out == pytest.approx(norm_in * 1.64676, rel=0.02, abs=24)


_DIV8_SIM = None


def _cached_div8():
    global _DIV8_SIM
    if _DIV8_SIM is None:
        from repro.operators import divider
        from repro.sim.simulator import LogicSimulator, SimulationMode

        netlist = divider(LIBRARY, width=8, registered=False, name="pdiv8")
        _DIV8_SIM = LogicSimulator(netlist, SimulationMode.TRANSPARENT)
    return _DIV8_SIM
