"""Device-physics model behaviour: monotonicity, limits, array support."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.techlib.fdsoi import NOMINAL_PROCESS
from repro.techlib.models import (
    delay_scale_factor,
    drive_strength,
    leakage_scale_factor,
    threshold_voltage,
)

VDD = NOMINAL_PROCESS.vdd_nominal
FBB = NOMINAL_PROCESS.fbb_voltage


class TestThresholdVoltage:
    def test_forward_bias_lowers_vth(self):
        assert threshold_voltage(FBB, VDD) < threshold_voltage(0.0, VDD)

    def test_reverse_bias_raises_vth(self):
        assert threshold_voltage(-0.5, VDD) > threshold_voltage(0.0, VDD)

    def test_boost_shift_combines_body_and_flavour(self):
        shift = threshold_voltage(0.0, VDD) - threshold_voltage(FBB, VDD)
        expected = (
            NOMINAL_PROCESS.body_factor * FBB + NOMINAL_PROCESS.lvt_offset
        )
        assert shift == pytest.approx(expected)

    def test_dibl_lowers_vth_at_high_vdd(self):
        assert threshold_voltage(0.0, 1.2) < threshold_voltage(0.0, 1.0)

    def test_accepts_arrays(self):
        vbb = np.asarray([0.0, FBB])
        result = threshold_voltage(vbb, VDD)
        assert result.shape == (2,)
        assert result[1] < result[0]

    @given(st.floats(min_value=-1.0, max_value=1.1))
    def test_monotone_in_vbb(self, vbb):
        eps = 0.01
        assert threshold_voltage(vbb + eps, VDD) < threshold_voltage(vbb, VDD)


class TestDelayFactor:
    def test_reference_corner_is_unity(self):
        assert delay_scale_factor(VDD, FBB) == pytest.approx(1.0)

    def test_nobb_slower_than_fbb(self):
        assert delay_scale_factor(VDD, 0.0) > 1.0

    def test_lower_vdd_slower(self):
        factors = [delay_scale_factor(v, FBB) for v in (1.0, 0.9, 0.8, 0.7, 0.6)]
        assert factors == sorted(factors)
        assert factors[-1] > factors[0]

    def test_subthreshold_supply_is_infeasible_not_error(self):
        # NoBB Vth at low VDD exceeds the supply: delay factor must be inf.
        assert delay_scale_factor(0.3, 0.0) == np.inf

    def test_array_mixed_feasibility(self):
        factors = delay_scale_factor(np.asarray([1.0, 0.3]), 0.0)
        assert np.isfinite(factors[0])
        assert factors[1] == np.inf

    @given(st.floats(min_value=0.7, max_value=1.0))
    def test_fbb_always_faster_than_nobb(self, vdd):
        assert delay_scale_factor(vdd, FBB) < delay_scale_factor(vdd, 0.0)


class TestLeakageFactor:
    def test_nobb_nominal_is_unity(self):
        assert leakage_scale_factor(VDD, 0.0) == pytest.approx(1.0)

    def test_boost_multiplies_leakage_by_an_order_of_magnitude(self):
        ratio = leakage_scale_factor(VDD, FBB)
        assert 5.0 < ratio < 50.0

    def test_leakage_drops_with_vdd(self):
        assert leakage_scale_factor(0.6, FBB) < leakage_scale_factor(1.0, FBB)

    @given(st.floats(min_value=0.6, max_value=1.0))
    def test_fbb_always_leakier(self, vdd):
        assert leakage_scale_factor(vdd, FBB) > leakage_scale_factor(vdd, 0.0)


class TestDriveStrength:
    def test_raises_below_threshold(self):
        with pytest.raises(ValueError, match="never switches"):
            drive_strength(0.2, 0.0)

    def test_speed_leakage_tradeoff_is_coupled(self):
        """The paper's core physics: boosting buys speed, costs leakage."""
        speedup = delay_scale_factor(VDD, 0.0) / delay_scale_factor(VDD, FBB)
        leak_cost = leakage_scale_factor(VDD, FBB) / leakage_scale_factor(VDD, 0.0)
        assert speedup > 1.2
        assert leak_cost > speedup  # leakage is the exponential side
