"""High-fanout buffering: compliance and functional equivalence."""

import numpy as np
import pytest

from repro.netlist.builder import NetlistBuilder
from repro.netlist.transform import buffer_high_fanout, reconnect_input
from repro.netlist.validate import validate_netlist
from repro.operators import booth_multiplier
from repro.sim.simulator import LogicSimulator, SimulationMode
from repro.sim import golden
from repro.techlib.library import Library


@pytest.fixture(scope="module")
def library():
    return Library()


def _max_signal_fanout(netlist):
    worst = 0
    for net in netlist.nets:
        if net.is_clock:
            continue
        if net.driver is not None and net.driver.cell.template.name in (
            "TIELO", "TIEHI",
        ):
            continue
        worst = max(worst, net.fanout)
    return worst


def test_buffering_enforces_fanout_limit(library):
    netlist = booth_multiplier(library, width=16)
    assert _max_signal_fanout(netlist) > 8
    inserted = buffer_high_fanout(netlist, max_fanout=8)
    assert inserted > 0
    assert _max_signal_fanout(netlist) <= 8
    validate_netlist(netlist)


def test_buffering_preserves_function(library):
    netlist = booth_multiplier(library, width=8, registered=False)
    buffer_high_fanout(netlist, max_fanout=6)
    rng = np.random.default_rng(11)
    a = rng.integers(-128, 128, 1000)
    b = rng.integers(-128, 128, 1000)
    sim = LogicSimulator(netlist, SimulationMode.TRANSPARENT)
    out = sim.run_combinational({"A": a, "B": b})["P"]
    assert np.array_equal(out, golden.multiply_reference(a, b, 8))


def test_buffering_is_idempotent(library):
    netlist = booth_multiplier(library, width=8)
    buffer_high_fanout(netlist, max_fanout=8)
    assert buffer_high_fanout(netlist, max_fanout=8) == 0


def test_compliant_netlist_untouched(library):
    builder = NetlistBuilder("t", library)
    a = builder.input_bus("A", 1)[0]
    builder.output_bus("Y", [builder.inv(a)])
    assert buffer_high_fanout(builder.netlist, max_fanout=8) == 0


def test_reconnect_input_moves_pin(library):
    builder = NetlistBuilder("t", library)
    a = builder.input_bus("A", 2)
    y = builder.inv(a[0])
    builder.output_bus("Y", [y])
    cell = builder.netlist.cells[0]
    pin = a[0].sinks[0]
    reconnect_input(builder.netlist, pin, a[1])
    assert cell.input_nets[0] is a[1]
    assert a[0].fanout == 0
    assert a[1].fanout == 1


def test_reconnect_rejects_output_pins(library):
    builder = NetlistBuilder("t", library)
    a = builder.input_bus("A", 1)[0]
    y = builder.inv(a)
    with pytest.raises(ValueError, match="input pins"):
        reconnect_input(builder.netlist, y.driver, a)
