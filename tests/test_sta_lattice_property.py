"""Property wall for the whole-lattice batched STA kernel.

Hypothesis generates random levelized DAGs (hand-built
:class:`TimingGraph` instances, no netlist needed on the analysis path)
and random per-domain delay factors, then checks the structural laws the
lattice pass must satisfy no matter the graph:

* **scalar grounding** -- every combo row of ``analyze_factors`` equals
  one scalar :meth:`StaEngine.analyze` call with the same factor row;
* **Vth monotonicity** -- slowing any domain (larger delay factors)
  never increases a combo's worst slack, so the feasibility mask is
  monotone in the bias lattice order;
* **permutation equivariance** -- the combo axis carries no state:
  permuting input rows permutes every output row identically;
* **NMAX = 0 degeneracy** -- a domainless design collapses to the
  scalar sweep at the NoBB corner.

Plus direct unit tests of :func:`resolve_sta_engine`'s env handling.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sta.constraints import ClockConstraint
from repro.sta.engine import NEG_INF, POS_INF, StaEngine
from repro.sta.graph import TimingGraph
from repro.sta.lattice import (
    STA_ENGINE_ENV_VAR,
    LatticeStaEngine,
    resolve_sta_engine,
)
from repro.sta.sweep import compile_schedule
from repro.techlib.library import Library

CONSTRAINT = ClockConstraint(period_ps=900.0, uncertainty_ps=0.0)


def build_graph(num_inputs, cell_fanins, arc_delays, launch_delays,
                endpoint_picks, setup_ps, orphan_endpoint):
    """Hand-assemble a levelized TimingGraph from drawn structure.

    Net layout: nets ``0..num_inputs-1`` are launch points (external
    inputs), net ``num_inputs + c`` is cell *c*'s output, and an optional
    trailing *orphan* net (no driver, no arcs) exercises the
    inactive-endpoint masking when picked as an endpoint.
    """
    num_cells = len(cell_fanins)
    num_nets = num_inputs + num_cells + (1 if orphan_endpoint else 0)
    arc_from, arc_to, arc_cell, arc_delay = [], [], [], []
    net_level = np.zeros(num_nets, dtype=np.int64)
    for c, fanin in enumerate(cell_fanins):
        out = num_inputs + c
        # Fan-in indices were drawn against the nets existing before this
        # cell, so the graph is a DAG by construction.
        sources = [f % (num_inputs + c) for f in fanin]
        for s in sources:
            arc_from.append(s)
            arc_to.append(out)
            arc_cell.append(c)
            arc_delay.append(arc_delays[len(arc_delay) % len(arc_delays)])
        net_level[out] = 1 + max(net_level[s] for s in sources)

    arc_to_arr = np.asarray(arc_to, dtype=np.int64)
    arc_sink_level = net_level[arc_to_arr] if len(arc_to) else arc_to_arr
    arc_order = np.lexsort((arc_to_arr, arc_sink_level))
    sorted_levels = arc_sink_level[arc_order]
    level_slices = []
    if len(sorted_levels):
        boundaries = np.nonzero(np.diff(sorted_levels))[0] + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(sorted_levels)]))
        level_slices = [slice(int(s), int(e)) for s, e in zip(starts, ends)]

    launch_nets = np.arange(num_inputs, dtype=np.int64)
    endpoints = sorted({p % num_nets for p in endpoint_picks})
    if orphan_endpoint:
        endpoints.append(num_nets - 1)

    graph = TimingGraph(
        netlist=None,
        num_nets=num_nets,
        num_cells=num_cells,
        arc_from=np.asarray(arc_from, dtype=np.int64),
        arc_to=arc_to_arr,
        arc_cell=np.asarray(arc_cell, dtype=np.int64),
        arc_delay_ps=np.asarray(arc_delay, dtype=np.float64),
        net_level=net_level,
        arc_order=arc_order,
        level_slices=level_slices,
        launch_nets=launch_nets,
        launch_delay_ps=np.asarray(launch_delays[:num_inputs], dtype=float),
        launch_cell=np.full(num_inputs, -1, dtype=np.int64),
        endpoint_nets=np.asarray(endpoints, dtype=np.int64),
        endpoint_setup_ps=np.full(len(endpoints), setup_ps, dtype=float),
        endpoint_cell=np.full(len(endpoints), -1, dtype=np.int64),
        net_load_ff=np.zeros(num_nets),
    )
    graph.schedule = compile_schedule(graph)
    return graph


@st.composite
def random_lattice_case(draw):
    """A random DAG plus a random (combos, cells) factor matrix."""
    num_inputs = draw(st.integers(1, 3))
    num_cells = draw(st.integers(1, 10))
    cell_fanins = [
        draw(st.lists(st.integers(0, 127), min_size=1, max_size=3))
        for _ in range(num_cells)
    ]
    arc_delays = draw(
        st.lists(st.floats(1.0, 400.0), min_size=1, max_size=8)
    )
    launch_delays = draw(
        st.lists(st.floats(0.0, 120.0), min_size=3, max_size=3)
    )
    endpoint_picks = draw(st.lists(st.integers(0, 127), min_size=1,
                                   max_size=4))
    setup_ps = draw(st.floats(0.0, 40.0))
    orphan = draw(st.booleans())
    graph = build_graph(num_inputs, cell_fanins, arc_delays, launch_delays,
                        endpoint_picks, setup_ps, orphan)

    num_domains = draw(st.integers(1, 3))
    domains = np.asarray(
        [draw(st.integers(0, num_domains - 1)) for _ in range(num_cells)],
        dtype=np.int64,
    )
    num_combos = draw(st.integers(1, 6))
    # Per-(combo, domain) delay factors model arbitrary per-domain Vth
    # deltas; cells inherit their domain's factor.
    domain_factors = np.asarray(
        [
            [draw(st.floats(0.5, 3.0)) for _ in range(num_domains)]
            for _ in range(num_combos)
        ]
    )
    factors = domain_factors[:, domains]
    return graph, domains, num_domains, factors


PROPERTY_SETTINGS = settings(max_examples=30, deadline=None)


@given(case=random_lattice_case())
@PROPERTY_SETTINGS
def test_every_combo_row_matches_scalar_engine(case):
    """The lattice pass is a stack of scalar sweeps -- bit for bit."""
    graph, domains, num_domains, factors = case
    library = Library()
    engine = LatticeStaEngine(graph, library, domains, num_domains)
    batched = engine.analyze_factors(
        CONSTRAINT, factors, compute_required=True, keep_arrays=True
    )
    scalar = StaEngine(graph, library)
    none_fbb = np.zeros(graph.num_cells, dtype=bool)
    for k in range(factors.shape[0]):
        report = scalar.analyze(
            CONSTRAINT, 1.0, none_fbb, factors=factors[k]
        )
        assert batched.worst_slack_ps[k] == report.worst_slack_ps
        assert batched.critical_endpoint_net[k] == report.critical_endpoint_net
        assert np.array_equal(batched.arrival_ps[k], report.arrival_ps)
        assert np.array_equal(batched.required_ps[k], report.required_ps)


@given(case=random_lattice_case(), scale=st.floats(1.0, 2.0))
@PROPERTY_SETTINGS
def test_feasibility_monotone_in_vth(case, scale):
    """Slowing any domain can only shrink slack: if a combo is infeasible,
    every uniformly slower variant of it stays infeasible (the paper's
    lattice-filter order)."""
    graph, domains, num_domains, factors = case
    engine = LatticeStaEngine(graph, Library(), domains, num_domains)
    fast = engine.analyze_factors(CONSTRAINT, factors)
    slow = engine.analyze_factors(CONSTRAINT, factors * scale)
    assert np.all(slow.worst_slack_ps <= fast.worst_slack_ps)
    assert np.all(fast.feasible | ~slow.feasible)  # slow ⟹ fast feasible


@given(case=random_lattice_case(), seed=st.integers(0, 2**31 - 1))
@PROPERTY_SETTINGS
def test_combo_axis_permutation_equivariant(case, seed):
    """The combo axis is pure batch: no row sees another row."""
    graph, domains, num_domains, factors = case
    engine = LatticeStaEngine(graph, Library(), domains, num_domains)
    perm = np.random.RandomState(seed).permutation(factors.shape[0])
    straight = engine.analyze_factors(
        CONSTRAINT, factors, compute_required=True, keep_arrays=True
    )
    permuted = engine.analyze_factors(
        CONSTRAINT, factors[perm], compute_required=True, keep_arrays=True
    )
    assert np.array_equal(permuted.worst_slack_ps,
                          straight.worst_slack_ps[perm])
    assert np.array_equal(permuted.critical_endpoint_net,
                          straight.critical_endpoint_net[perm])
    assert np.array_equal(permuted.arrival_ps, straight.arrival_ps[perm])
    assert np.array_equal(permuted.required_ps, straight.required_ps[perm])


@given(case=random_lattice_case(), vdd=st.sampled_from((1.0, 0.8, 0.6)))
@PROPERTY_SETTINGS
def test_nmax_zero_degenerates_to_scalar_sweep(case, vdd):
    """A domainless engine is exactly one scalar NoBB sweep."""
    graph, _, _, _ = case
    library = Library()
    engine = LatticeStaEngine(
        graph, library, np.zeros(graph.num_cells, dtype=np.int64), 0
    )
    result = engine.analyze(
        CONSTRAINT, vdd, configs=np.zeros((1, 0), dtype=bool),
        compute_required=True, keep_arrays=True,
    )
    report = StaEngine(graph, library).analyze(
        CONSTRAINT, vdd, np.zeros(graph.num_cells, dtype=bool)
    )
    assert result.worst_slack_ps.shape == (1,)
    assert result.worst_slack_ps[0] == report.worst_slack_ps
    assert result.critical_endpoint_net[0] == report.critical_endpoint_net
    assert np.array_equal(result.arrival_ps[0], report.arrival_ps)
    assert np.array_equal(result.required_ps[0], report.required_ps)


@given(case=random_lattice_case())
@PROPERTY_SETTINGS
def test_orphan_endpoints_masked_not_poisoned(case):
    """Endpoints on undriven nets report the unconstrained sentinel and
    never leak NEG_INF arithmetic into finite combos' slack."""
    graph, domains, num_domains, factors = case
    engine = LatticeStaEngine(graph, Library(), domains, num_domains)
    result = engine.analyze_factors(CONSTRAINT, factors, keep_arrays=True)
    finite = result.worst_slack_ps != POS_INF
    assert np.all(np.abs(result.worst_slack_ps[finite]) < 1e12)
    # Worst slack is either the sentinel or derived from a real arrival.
    for k in np.nonzero(finite)[0]:
        arrivals = result.arrival_ps[k, graph.endpoint_nets]
        assert np.any(arrivals > NEG_INF / 2)


class TestResolveStaEngine:
    def test_explicit_requests(self, monkeypatch):
        monkeypatch.delenv(STA_ENGINE_ENV_VAR, raising=False)
        assert resolve_sta_engine("lattice") == "lattice"
        assert resolve_sta_engine("pointwise") == "pointwise"
        assert resolve_sta_engine("auto") == "lattice"
        assert resolve_sta_engine(None) == "lattice"

    def test_env_steers_auto_only(self, monkeypatch):
        monkeypatch.setenv(STA_ENGINE_ENV_VAR, "pointwise")
        assert resolve_sta_engine("auto") == "pointwise"
        assert resolve_sta_engine(None) == "pointwise"
        # Explicit requests win over the environment.
        assert resolve_sta_engine("lattice") == "lattice"

    def test_empty_env_means_auto(self, monkeypatch):
        monkeypatch.setenv(STA_ENGINE_ENV_VAR, "")
        assert resolve_sta_engine("auto") == "lattice"

    def test_invalid_request_rejected(self, monkeypatch):
        monkeypatch.delenv(STA_ENGINE_ENV_VAR, raising=False)
        with pytest.raises(ValueError, match="unknown STA engine"):
            resolve_sta_engine("warp")

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv(STA_ENGINE_ENV_VAR, "warp")
        with pytest.raises(ValueError, match=STA_ENGINE_ENV_VAR):
            resolve_sta_engine("auto")
        # ...but never breaks explicit requests.
        assert resolve_sta_engine("pointwise") == "pointwise"
