"""Exhaustive exploration and the DVAS baseline."""

import numpy as np
import pytest

from repro.core.config import ExplorationSettings, OperatingPoint
from repro.core.dvas import dvas_explore
from repro.core.exploration import ExhaustiveExplorer
from repro.core.pareto import dominated_mask, pareto_points, power_saving

SETTINGS = ExplorationSettings(
    bitwidths=(2, 4, 6, 8),
    activity_cycles=12,
    activity_batch=12,
)


@pytest.fixture(scope="module")
def proposed(booth8_domained):
    return ExhaustiveExplorer(booth8_domained).run(SETTINGS)


@pytest.fixture(scope="module")
def dvas_fbb(booth8_base):
    return dvas_explore(booth8_base, fbb=True, settings=SETTINGS)


@pytest.fixture(scope="module")
def dvas_nobb(booth8_base):
    return dvas_explore(booth8_base, fbb=False, settings=SETTINGS)


class TestSettings:
    def test_defaults_match_paper(self):
        settings = ExplorationSettings()
        assert settings.bitwidths == tuple(range(1, 17))
        assert settings.vdd_values == (1.0, 0.9, 0.8, 0.7, 0.6)
        assert settings.num_knob_points == 80

    def test_validation(self):
        with pytest.raises(ValueError):
            ExplorationSettings(bitwidths=())
        with pytest.raises(ValueError):
            ExplorationSettings(bitwidths=(0,))
        with pytest.raises(ValueError):
            ExplorationSettings(vdd_values=(-0.5,))


class TestExploration:
    def test_every_bitwidth_has_a_winner(self, proposed):
        assert sorted(proposed.best_per_bitwidth) == [2, 4, 6, 8]

    def test_winners_are_feasible(self, proposed):
        for point in proposed.best_per_bitwidth.values():
            assert point.feasible
            assert point.total_power_w > 0.0

    def test_full_width_needs_every_domain_boosted(self, proposed):
        """At max accuracy with slack~0, the grid must be fully boosted
        (the all-FBB closure corner)."""
        top = proposed.best_per_bitwidth[8]
        assert top.num_boosted_domains >= 3

    def test_power_drops_with_accuracy(self, proposed):
        pareto = proposed.pareto()
        assert (
            pareto[0].total_power_w < pareto[-1].total_power_w
        )  # 2 bits cheaper than 8

    def test_point_accounting(self, proposed):
        # 16 configs x 4 bitwidths x 5 VDDs.
        assert proposed.points_evaluated == 16 * 4 * 5
        assert 0.0 < proposed.filtered_fraction < 1.0
        assert proposed.points_feasible == sum(
            proposed.feasible_counts.values()
        )

    def test_sta_filter_rate_near_paper(self, proposed):
        """Paper Section III-C: 'about 75% of the configurations are
        filtered by STA'."""
        assert 0.55 < proposed.filtered_fraction < 0.99


class TestDvas:
    def test_nobb_cannot_reach_max_accuracy(self, dvas_nobb):
        """Fig. 5: the standard DVAS (NoBB) curves stop at small widths."""
        assert dvas_nobb.max_reachable_bits < 8

    def test_fbb_reaches_max_accuracy(self, dvas_fbb):
        assert dvas_fbb.max_reachable_bits == 8

    def test_fbb_steps_down_vdd(self, dvas_fbb):
        vdds = [p.vdd for p in dvas_fbb.pareto()]
        assert min(vdds) < max(vdds)
        # Lower accuracy never needs a higher supply.
        assert vdds == sorted(vdds)

    def test_proposed_never_loses_to_dvas_by_much(self, proposed, dvas_fbb):
        """The proposed method explores a superset of DVAS's knobs on an
        almost identical die; it may lose only the small guardband
        overhead (the paper's butterfly shows the same at the extremes)."""
        for bits in (2, 4, 6, 8):
            saving = power_saving(
                dvas_fbb.best_per_bitwidth, proposed.best_per_bitwidth, bits
            )
            assert saving is not None
            assert saving > -0.25

    def test_proposed_wins_somewhere(self, proposed, dvas_fbb):
        savings = [
            power_saving(
                dvas_fbb.best_per_bitwidth, proposed.best_per_bitwidth, bits
            )
            for bits in (2, 4, 6, 8)
        ]
        assert max(s for s in savings if s is not None) > 0.05


class TestDefaultSettingsNotShared:
    """Regression: the entry points used to evaluate
    ``settings=ExplorationSettings()`` at *def* time, sharing one instance
    across every call site -- a state-leak hazard now that settings carry
    worker/cache execution state."""

    def test_no_instance_baked_into_signatures(self):
        import inspect

        from repro.core.domains_dse import explore_domain_configurations
        from repro.core.dvas import dvas_explore

        for func, param in (
            (ExhaustiveExplorer.run, "settings"),
            (dvas_explore, "settings"),
            (explore_domain_configurations, "settings"),
        ):
            default = inspect.signature(func).parameters[param].default
            assert default is None, (
                f"{func.__qualname__} bakes a shared ExplorationSettings "
                "instance into its signature"
            )

    def test_back_to_back_default_runs_share_nothing(self, library):
        from repro.core.flow import implement_base
        from repro.operators import adequate_adder

        design = implement_base(
            lambda: adequate_adder(library, width=4, name="defaults_adder"),
            library,
        )
        explorer = ExhaustiveExplorer(design)
        first = explorer.run()
        second = explorer.run()
        # Fresh settings per call, not one module-lifetime instance...
        assert first.settings is not second.settings
        assert first.settings == second.settings == ExplorationSettings()
        # ...and no state leaked between the runs.
        assert first.best_per_bitwidth == second.best_per_bitwidth
        assert first.feasible_counts == second.feasible_counts
        assert first.points_evaluated == second.points_evaluated


class TestPareto:
    def test_pareto_filters_dominated(self):
        points = [
            OperatingPoint(4, 1.0, (True,), 2e-3, 1e-3, 1e-3, 10.0),
            OperatingPoint(4, 0.9, (True,), 1e-3, 5e-4, 5e-4, 5.0),
            OperatingPoint(8, 1.0, (True,), 3e-3, 2e-3, 1e-3, 1.0),
        ]
        front = pareto_points(points)
        assert points[0] not in front
        assert points[1] in front and points[2] in front

    def test_dominated_mask_alignment(self):
        points = [
            OperatingPoint(4, 1.0, (True,), 2e-3, 1e-3, 1e-3, 10.0),
            OperatingPoint(8, 1.0, (True,), 1e-3, 5e-4, 5e-4, 5.0),
        ]
        mask = dominated_mask(points)
        assert mask.tolist() == [True, False]

    def test_power_saving_handles_missing(self):
        a = {4: OperatingPoint(4, 1.0, (True,), 2e-3, 1e-3, 1e-3, 1.0)}
        assert power_saving(a, {}, 4) is None
        assert power_saving({}, a, 4) is None
        b = {4: OperatingPoint(4, 1.0, (True,), 1e-3, 5e-4, 5e-4, 1.0)}
        assert power_saving(a, b, 4) == pytest.approx(0.5)
