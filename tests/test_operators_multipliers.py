"""Multiplier correctness: exhaustive small, random large, encoding units."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist.builder import NetlistBuilder
from repro.operators import array_multiplier, booth_multiplier
from repro.operators.encoding import booth_encode
from repro.operators.wallace import (
    columns_from_rows,
    reduction_stages,
    wallace_reduce,
)
from repro.sim import golden
from repro.sim.simulator import LogicSimulator, SimulationMode
from repro.techlib.library import Library

LIBRARY = Library()


class TestBoothMultiplier:
    @pytest.mark.parametrize("width", [2, 4, 6])
    def test_exhaustive(self, width):
        netlist = booth_multiplier(LIBRARY, width=width, registered=False)
        sim = LogicSimulator(netlist, SimulationMode.TRANSPARENT)
        lo, hi = -(1 << (width - 1)), 1 << (width - 1)
        a, b = np.meshgrid(np.arange(lo, hi), np.arange(lo, hi))
        a, b = a.ravel(), b.ravel()
        out = sim.run_combinational({"A": a, "B": b})["P"]
        assert np.array_equal(out, golden.multiply_reference(a, b, width))

    def test_random_16bit(self):
        netlist = booth_multiplier(LIBRARY, width=16, registered=False)
        sim = LogicSimulator(netlist, SimulationMode.TRANSPARENT)
        rng = np.random.default_rng(0)
        a = rng.integers(-(1 << 15), 1 << 15, 5000)
        b = rng.integers(-(1 << 15), 1 << 15, 5000)
        out = sim.run_combinational({"A": a, "B": b})["P"]
        assert np.array_equal(out, golden.multiply_reference(a, b, 16))

    def test_corner_operands_16bit(self):
        netlist = booth_multiplier(LIBRARY, width=16, registered=False)
        sim = LogicSimulator(netlist, SimulationMode.TRANSPARENT)
        extremes = np.asarray([-(1 << 15), (1 << 15) - 1, -1, 0, 1])
        a, b = np.meshgrid(extremes, extremes)
        a, b = a.ravel(), b.ravel()
        out = sim.run_combinational({"A": a, "B": b})["P"]
        assert np.array_equal(out, golden.multiply_reference(a, b, 16))

    def test_registered_latency_two_cycles(self):
        netlist = booth_multiplier(LIBRARY, width=8)
        sim = LogicSimulator(netlist, SimulationMode.CYCLE)
        a = np.asarray([17, -5])
        b = np.asarray([-3, 11])
        stim = [{"A": a, "B": b}] * 3
        trace = sim.run_cycles(stim)
        assert np.array_equal(
            trace.output("P", 2), golden.multiply_reference(a, b, 8)
        )

    def test_odd_width_rejected(self):
        with pytest.raises(ValueError, match="even"):
            booth_multiplier(LIBRARY, width=5)

    @settings(max_examples=40, deadline=None)
    @given(
        a=st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1),
        b=st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1),
    )
    def test_matches_python_semantics(self, a, b):
        sim = _cached_booth16()
        out = sim.run_combinational({"A": [a], "B": [b]})["P"][0]
        assert out == a * b


_BOOTH16_SIM = None


def _cached_booth16():
    global _BOOTH16_SIM
    if _BOOTH16_SIM is None:
        netlist = booth_multiplier(LIBRARY, width=16, registered=False)
        _BOOTH16_SIM = LogicSimulator(netlist, SimulationMode.TRANSPARENT)
    return _BOOTH16_SIM


class TestArrayMultiplier:
    @pytest.mark.parametrize("width", [2, 4, 5])
    def test_exhaustive_unsigned(self, width):
        netlist = array_multiplier(LIBRARY, width=width, registered=False)
        sim = LogicSimulator(netlist, SimulationMode.TRANSPARENT)
        a, b = np.meshgrid(np.arange(1 << width), np.arange(1 << width))
        a, b = a.ravel(), b.ravel()
        out = sim.run_combinational({"A": a, "B": b}, signed=False)["P"]
        assert np.array_equal(
            out, golden.multiply_unsigned_reference(a, b, width)
        )


class TestBoothEncoding:
    def test_group_count(self):
        builder = NetlistBuilder("t", LIBRARY)
        y = builder.input_bus("Y", 8)
        groups = booth_encode(builder, y)
        assert len(groups) == 4

    def test_odd_width_rejected(self):
        builder = NetlistBuilder("t", LIBRARY)
        y = builder.input_bus("Y", 3)
        with pytest.raises(ValueError, match="even"):
            booth_encode(builder, y)

    def test_digit_decode_exhaustive(self):
        """Each group's (single, double, negate) must encode the Booth digit.

        A 4-bit multiplier has two groups; group 0 sees the window
        (y1, y0, 0) and group 1 sees (y3, y2, y1).  The radix-4 digit of a
        window (h, m, l) is ``-2h + m + l``.
        """
        builder = NetlistBuilder("t", LIBRARY)
        y = builder.input_bus("Y", 4)
        groups = booth_encode(builder, y)
        control = []
        for group in groups:
            control.extend([group.single, group.double, group.negate])
        builder.output_bus("CTL", control, signed=False)
        sim = LogicSimulator(builder.build(), SimulationMode.TRANSPARENT)
        for word in range(16):
            out = int(
                sim.run_combinational(
                    {"Y": np.asarray([word])}, signed=False
                )["CTL"][0]
            )
            bits = [(word >> i) & 1 for i in range(4)]
            windows = [(bits[1], bits[0], 0), (bits[3], bits[2], bits[1])]
            for g, (h, m, l) in enumerate(windows):
                single = (out >> (3 * g)) & 1
                double = (out >> (3 * g + 1)) & 1
                negate = (out >> (3 * g + 2)) & 1
                digit = -2 * h + m + l
                assert single == (abs(digit) == 1), (word, g)
                assert double == (abs(digit) == 2), (word, g)
                if digit < 0:
                    assert negate == 1, (word, g)


class TestWallace:
    def test_reduction_stage_count(self):
        columns = [[None] * 9 for _ in range(4)]
        # 9 -> 6 -> 4 -> 3 -> 2: four stages.
        assert reduction_stages(columns) == 4

    def test_columns_from_rows_discards_overflow(self):
        builder = NetlistBuilder("t", LIBRARY)
        a = builder.input_bus("A", 4)
        columns = columns_from_rows([(2, a)], width=4)
        assert [len(c) for c in columns] == [0, 0, 1, 1]

    def test_wallace_preserves_sum(self):
        """Reducing a bit matrix then adding the two rows equals the sum."""
        builder = NetlistBuilder("t", LIBRARY)
        width = 6
        rows = [builder.input_bus(f"R{i}", width) for i in range(5)]
        columns = columns_from_rows([(0, r) for r in rows], width)
        row_a, row_b = wallace_reduce(builder, columns)
        from repro.operators.adders import ripple_carry_adder

        total, _ = ripple_carry_adder(builder, row_a, row_b)
        builder.output_bus("S", total, signed=False)
        sim = LogicSimulator(builder.build(), SimulationMode.TRANSPARENT)
        rng = np.random.default_rng(9)
        stim = {f"R{i}": rng.integers(0, 1 << width, 200) for i in range(5)}
        out = sim.run_combinational(stim, signed=False)["S"]
        expected = sum(stim[f"R{i}"] for i in range(5)) % (1 << width)
        assert np.array_equal(out, expected)


class TestPipelinedBooth:
    def test_three_cycle_latency_correct_product(self):
        netlist = booth_multiplier(LIBRARY, width=8, pipelined=True)
        sim = LogicSimulator(netlist, SimulationMode.CYCLE)
        rng = np.random.default_rng(2)
        a = rng.integers(-128, 128, 50)
        b = rng.integers(-128, 128, 50)
        stim = [{"A": a, "B": b}] * 4
        trace = sim.run_cycles(stim)
        assert np.array_equal(
            trace.output("P", 3), golden.multiply_reference(a, b, 8)
        )

    def test_streaming_pipeline(self):
        """New operands every cycle; products emerge 3 cycles later."""
        netlist = booth_multiplier(LIBRARY, width=6, pipelined=True)
        sim = LogicSimulator(netlist, SimulationMode.CYCLE)
        rng = np.random.default_rng(3)
        ops = [
            (rng.integers(-32, 32, 8), rng.integers(-32, 32, 8))
            for _ in range(6)
        ]
        stim = [{"A": a, "B": b} for a, b in ops]
        stim += [stim[-1]] * 3  # flush
        trace = sim.run_cycles(stim)
        for cycle, (a, b) in enumerate(ops):
            assert np.array_equal(
                trace.output("P", cycle + 3),
                golden.multiply_reference(a, b, 6),
            ), f"operand set {cycle}"

    def test_pipeline_shortens_critical_path(self):
        from repro.sta.engine import StaEngine
        from repro.sta.graph import compile_timing_graph

        flat = booth_multiplier(LIBRARY, width=8, name="flat8")
        piped = booth_multiplier(
            LIBRARY, width=8, name="piped8", pipelined=True
        )
        d_flat = StaEngine(
            compile_timing_graph(flat), LIBRARY
        ).critical_path_delay(1.0, np.ones(len(flat.cells), bool))
        d_piped = StaEngine(
            compile_timing_graph(piped), LIBRARY
        ).critical_path_delay(1.0, np.ones(len(piped.cells), bool))
        assert d_piped < 0.8 * d_flat

    def test_unregistered_pipeline_rejected(self):
        with pytest.raises(ValueError, match="registered"):
            booth_multiplier(LIBRARY, width=8, registered=False, pipelined=True)

    def test_flow_closes_faster_clock(self):
        """The implementation flow should sign off a higher fclk for the
        pipelined variant of the same multiplier."""
        from repro.core.flow import select_clock_for

        counter = {"n": 0}

        def flat_factory():
            counter["n"] += 1
            return booth_multiplier(LIBRARY, 8, name=f"pf{counter['n']}")

        def piped_factory():
            counter["n"] += 1
            return booth_multiplier(
                LIBRARY, 8, name=f"pp{counter['n']}", pipelined=True
            )

        flat_clock = select_clock_for(flat_factory, LIBRARY)
        piped_clock = select_clock_for(piped_factory, LIBRARY)
        assert piped_clock.frequency_ghz > flat_clock.frequency_ghz
