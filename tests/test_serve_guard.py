"""The runtime margin guard and the margin-carrying table schema.

Covers the three margin-guard behaviours (pass-through while safe,
cheapest-safe substitution, static fallback when nothing covers), the
guard's integration with the scheduler (fallback flags, transition
retries/backoff, generator dropouts), and the schema-2 artifact:
margins round-trip, schema-1 tables still load and serve, and every
malformed payload surfaces as one clear ServeError.
"""

import dataclasses
import io
import json

import pytest

from repro.faults import (
    FaultEvent,
    FaultSchedule,
    KIND_GEN_DROPOUT,
    KIND_STUCK_NOBB,
    KIND_TEMP_DRIFT,
    KIND_TRANSITION_TIMEOUT,
    SiliconEnvironment,
)
from repro.serve import (
    MarginGuard,
    ModeScheduler,
    ModeTable,
    ServeError,
    ServeRequest,
)
from repro.serve.table import ModeMargin

from .conftest import build_margined_table, build_synthetic_table


def guard_for(table, events=(), headroom_ps=0.0):
    return MarginGuard(
        table, SiliconEnvironment(FaultSchedule(events)), headroom_ps
    )


# -- guard semantics ---------------------------------------------------------


class TestMarginGuard:
    def test_benign_environment_passes_policy_through(self, margined_table):
        guard = guard_for(margined_table)
        for bits in margined_table.modes:
            assert guard.mode_is_safe(bits, now_ns=0.0)
        assert guard.guarded_key(2, 2, 0.0) == (2, False)

    def test_erosion_evicts_only_thin_margin_modes(self):
        # Mode 2 has 5 ps of guarded slack, everything else 100 ps; a
        # 20 C excursion at its peak eats 24 ps of the 1 GHz period.
        table = build_margined_table(guarded_slack_ps={2: 5.0})
        drift = FaultEvent(KIND_TEMP_DRIFT, 0.0, 200.0, magnitude=20.0)
        guard = guard_for(table, [drift])
        peak = 100.0
        assert not guard.mode_is_safe(2, peak)
        assert guard.mode_is_safe(4, peak)
        # Cheapest safe covering mode substitutes the unsafe pick.
        assert guard.guarded_key(2, 2, peak) == (4, True)
        # At the window edge the excursion is zero: mode 2 is safe again.
        assert guard.guarded_key(2, 2, 200.0) == (2, False)

    def test_headroom_tightens_the_check(self):
        table = build_margined_table(guarded_slack_ps={2: 30.0})
        guard_loose = guard_for(table)
        guard_tight = guard_for(table, headroom_ps=40.0)
        assert guard_loose.mode_is_safe(2, 0.0)
        assert not guard_tight.mode_is_safe(2, 0.0)

    def test_stuck_at_nobb_blocks_fbb_modes(self, margined_table):
        stuck = FaultEvent(KIND_STUCK_NOBB, 0.0, 100.0)
        guard = guard_for(margined_table, [stuck])
        # Mode 2 is the only NoBB mode; every FBB mode is unreachable.
        assert guard.mode_is_safe(2, 50.0)
        for bits in (4, 6, 8):
            assert not guard.mode_is_safe(bits, 50.0)
        # Nothing covering 4 bits is reachable: static fallback.
        assert guard.guarded_key(4, 4, 50.0) == (8, True)
        assert guard.guarded_key(2, 2, 50.0) == (2, False)

    def test_nothing_safe_falls_back_to_static(self):
        table = build_margined_table(
            guarded_slack_ps={2: 1.0, 4: 1.0, 6: 1.0, 8: 1.0}
        )
        drift = FaultEvent(KIND_TEMP_DRIFT, 0.0, 200.0, magnitude=50.0)
        guard = guard_for(table, [drift])
        assert guard.guarded_key(2, 2, 100.0) == (table.max_bits, True)

    def test_margin_less_table_warns_and_skips_margin_checks(
        self, synthetic_table
    ):
        drift = FaultEvent(KIND_TEMP_DRIFT, 0.0, 200.0, magnitude=60.0)
        with pytest.warns(RuntimeWarning, match="without margins"):
            guard = guard_for(synthetic_table, [drift])
        assert not guard.margins_enabled
        # Erosion is ignored (nothing to compare against)...
        assert guard.mode_is_safe(2, 100.0)
        # ...but hardware reachability still applies.
        guard = guard_for(
            synthetic_table,
            [FaultEvent(KIND_STUCK_NOBB, 0.0, 100.0)],
        )
        assert not guard.mode_is_safe(4, 50.0)

    def test_margin_warning_fires_once_per_fingerprint(self, synthetic_table):
        import warnings

        with pytest.warns(RuntimeWarning, match="without margins"):
            guard_for(synthetic_table)
        # A second guard over the same table fingerprint stays silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            guard_for(synthetic_table)
        # A different fingerprint (same design, other clock) warns anew.
        faster = dataclasses.replace(synthetic_table, fclk_ghz=2.0)
        with pytest.warns(RuntimeWarning, match="without margins"):
            guard_for(faster)
        # Resetting the dedup re-arms the original fingerprint.
        MarginGuard.reset_margin_warnings()
        with pytest.warns(RuntimeWarning, match="without margins"):
            guard_for(synthetic_table)

    def test_negative_headroom_rejected(self, margined_table):
        with pytest.raises(ValueError, match="headroom"):
            MarginGuard(margined_table, headroom_ps=-1.0)


# -- scheduler integration ---------------------------------------------------


class TestGuardedScheduler:
    def test_benign_guard_is_bit_identical_to_no_guard(self, margined_table):
        plain = ModeScheduler(margined_table)
        guarded = ModeScheduler(
            margined_table, guard=guard_for(margined_table)
        )
        requests = [(2, 500), (8, 200), (4, 900), (2, 100), (6, 400)]
        for bits, cycles in requests:
            a = plain.submit(ServeRequest("op", bits, cycles))
            b = guarded.submit(ServeRequest("op", bits, cycles))
            assert a == b
        assert plain.report("op") == guarded.report("op")

    def test_margin_fallback_is_flagged_and_counted(self):
        table = build_margined_table(guarded_slack_ps={2: 5.0})
        drift = FaultEvent(KIND_TEMP_DRIFT, 0.0, 1e6, magnitude=40.0)
        scheduler = ModeScheduler(table, guard=guard_for(table, [drift]))
        # Warm up past the window edge (erosion ~0 at start).
        served = scheduler.submit(ServeRequest("op", 2, 600_000))
        assert not served.margin_fallback
        # Mid-window the 2-bit mode is eroded away: the guard substitutes.
        served = scheduler.submit(ServeRequest("op", 2, 1000))
        assert served.margin_fallback
        assert served.served_bits >= 2
        assert served.mode is table.modes[4]
        assert scheduler.telemetry.counters["margin_fallbacks"] == 1

    def test_blocked_transition_retries_with_backoff(self, margined_table):
        block = FaultEvent(KIND_TRANSITION_TIMEOUT, 0.0, 1250.0)
        scheduler = ModeScheduler(
            margined_table,
            guard=guard_for(margined_table, [block]),
            max_transition_retries=5,
            retry_backoff_ns=100.0,
        )
        scheduler.submit(ServeRequest("op", 2, 1000))  # power-on, free
        # clock=1000 inside the blocked window [0, 1250); the backoff
        # ladder 100 then 200 lands at 1300, past the window edge.
        served = scheduler.submit(ServeRequest("op", 8, 1000))
        assert served.transition_retries == 2
        assert not served.degraded
        assert served.switched
        # The retry waits are part of the served queue wait.
        assert served.queue_wait_ns >= 300.0
        assert scheduler.telemetry.counters["transition_retries"] == 2
        assert scheduler.telemetry.counters["transition_failures"] == 0

    def test_exhausted_retry_budget_degrades(self, margined_table):
        block = FaultEvent(KIND_TRANSITION_TIMEOUT, 0.0, 1e9)
        scheduler = ModeScheduler(
            margined_table,
            guard=guard_for(margined_table, [block]),
            max_transition_retries=3,
            retry_backoff_ns=50.0,
        )
        scheduler.submit(ServeRequest("op", 2, 1000))
        served = scheduler.submit(ServeRequest("op", 4, 1000))
        assert served.degraded
        assert served.transition_retries == 3
        assert served.mode is margined_table.static_mode
        assert served.served_bits >= 4
        assert scheduler.telemetry.counters["transition_failures"] == 1

    def test_all_generators_dropped_degrades(self, margined_table):
        drops = [
            FaultEvent(KIND_GEN_DROPOUT, 0.0, 1e9, target=0),
            FaultEvent(KIND_GEN_DROPOUT, 0.0, 1e9, target=1),
        ]
        scheduler = ModeScheduler(
            margined_table,
            num_generators=2,
            guard=guard_for(margined_table, drops),
        )
        scheduler.submit(ServeRequest("op", 2, 1000))
        served = scheduler.submit(ServeRequest("op", 4, 1000))
        assert served.degraded
        assert served.mode is margined_table.static_mode
        assert scheduler.pool.dropouts == 2
        assert scheduler.pool.num_available == 0

    def test_single_dropout_serves_on_survivor(self, margined_table):
        drop = FaultEvent(KIND_GEN_DROPOUT, 0.0, 1e9, target=0)
        scheduler = ModeScheduler(
            margined_table,
            num_generators=2,
            guard=guard_for(margined_table, [drop]),
        )
        scheduler.submit(ServeRequest("op", 2, 1000))
        served = scheduler.submit(ServeRequest("op", 8, 1000))
        assert not served.degraded
        assert served.switched and served.settle_ns > 0.0
        assert scheduler.pool.dropouts == 1
        assert scheduler.pool.num_available == 1


# -- schema round-trips ------------------------------------------------------


class TestMarginSchema:
    def test_margins_round_trip(self, margined_table):
        payload = json.loads(json.dumps(margined_table.to_dict()))
        again = ModeTable.from_dict(payload)
        assert again.has_margins
        assert set(again.margins) == set(margined_table.margins)
        for bits, margin in margined_table.margins.items():
            assert again.margins[bits] == margin

    def test_margin_less_round_trip(self, synthetic_table):
        payload = json.loads(json.dumps(synthetic_table.to_dict()))
        assert payload["margins"] is None
        again = ModeTable.from_dict(payload)
        assert not again.has_margins

    def test_schema_1_payload_still_loads(self, margined_table):
        payload = margined_table.to_dict()
        payload["schema"] = 1
        del payload["margins"]
        again = ModeTable.from_dict(payload)
        assert not again.has_margins
        # ...and still serves.
        ModeScheduler(again).submit(ServeRequest("op", 2, 100))

    def test_margin_for(self, margined_table, synthetic_table):
        assert margined_table.margin_for(2).guarded_slack_ps == 50.0
        with pytest.raises(ServeError, match="without margins"):
            synthetic_table.margin_for(2)

    def test_margin_block_must_cover_modes(self, margined_table):
        margins = dict(margined_table.margins)
        del margins[2]
        with pytest.raises(ValueError, match="margin block"):
            dataclasses.replace(margined_table, margins=margins)

    def test_margin_validation(self):
        with pytest.raises(ValueError, match="target_yield"):
            ModeMargin(1.0, 1.0, 1.0, 0.5, 1.5, 8)
        with pytest.raises(ValueError, match="samples"):
            ModeMargin(1.0, 1.0, 1.0, 0.5, 0.99, 0)


class TestHardenedLoading:
    def test_non_dict_payload(self):
        with pytest.raises(ServeError, match="JSON object"):
            ModeTable.from_dict([1, 2, 3])

    def test_unsupported_schema(self, synthetic_table):
        payload = synthetic_table.to_dict()
        payload["schema"] = 99
        with pytest.raises(ServeError, match="unsupported mode-table schema"):
            ModeTable.from_dict(payload)

    @pytest.mark.parametrize(
        "mutilate",
        [
            lambda p: p.pop("modes"),
            lambda p: p.pop("generator"),
            lambda p: p.pop("transitions"),
            lambda p: p.__setitem__("modes", {}),
            lambda p: p["transitions"].pop(),
            lambda p: p.__setitem__("fclk_ghz", "fast"),
            lambda p: p.__setitem__("modes", {"2": {"truncated": True}}),
        ],
    )
    def test_corrupt_payloads_raise_serve_error(
        self, synthetic_table, mutilate
    ):
        payload = json.loads(json.dumps(synthetic_table.to_dict()))
        mutilate(payload)
        with pytest.raises(ServeError):
            ModeTable.from_dict(payload)

    def test_serve_error_is_a_value_error(self):
        # Existing `except ValueError` callers keep working.
        assert issubclass(ServeError, ValueError)

    def test_load_mode_table_wraps_bad_json(self):
        from repro.io.results import load_mode_table

        with pytest.raises(ServeError, match="not valid JSON"):
            load_mode_table(io.StringIO('{"schema": 2, "kind":'))

    def test_load_mode_table_round_trips_margins(self, margined_table):
        from repro.io.results import load_mode_table, save_mode_table

        stream = io.StringIO()
        save_mode_table(margined_table, stream)
        stream.seek(0)
        again = load_mode_table(stream)
        assert again.has_margins
        assert again.margins == dict(margined_table.margins)


# -- compiled margins from a real design -------------------------------------


def test_compile_margins_from_real_design(library):
    from repro.core.config import ExplorationSettings
    from repro.core.exploration import ExhaustiveExplorer
    from repro.core.flow import implement_with_domains
    from repro.core.runtime import BiasGeneratorModel
    from repro.operators import adequate_adder
    from repro.pnr.grid import GridPartition
    from repro.serve.table import compile_mode_table

    design = implement_with_domains(
        lambda: adequate_adder(library, width=4, name="guard_add"),
        library,
        GridPartition(2, 1),
    )
    settings = ExplorationSettings(
        bitwidths=(1, 2, 3, 4), activity_cycles=10, activity_batch=8
    )
    result = ExhaustiveExplorer(design).run(settings)
    table = compile_mode_table(
        design,
        result,
        BiasGeneratorModel(),
        with_margins=True,
        margin_samples=8,
    )
    assert table.has_margins
    assert set(table.margins) == set(table.modes)
    for bits, margin in table.margins.items():
        # The guarded (n-sigma worst) slack can never beat the mean.
        assert margin.guarded_slack_ps <= margin.mean_slack_ps
        assert margin.samples == 8
    # Margins are deterministic and order-independent (per-mode seeds).
    again = compile_mode_table(
        design, result, BiasGeneratorModel(),
        with_margins=True, margin_samples=8,
    )
    assert again.margins == table.margins
    # And they survive the JSON round trip.
    payload = json.loads(json.dumps(table.to_dict()))
    assert ModeTable.from_dict(payload).margins == table.margins
