"""Hold analysis and path reporting."""

import numpy as np
import pytest

from repro.netlist.builder import NetlistBuilder
from repro.operators import booth_multiplier
from repro.sta.caseanalysis import dvas_case
from repro.sta.constraints import ClockConstraint
from repro.sta.engine import StaEngine
from repro.sta.graph import compile_timing_graph
from repro.sta.hold import HoldAnalyzer
from repro.sta.report_timing import extract_path, report_timing
from repro.techlib.library import Library

LIBRARY = Library()


def _shift_register(stages, through_gate=True):
    """A shift register; with *through_gate* each hop has one buffer."""
    builder = NetlistBuilder("shift", LIBRARY)
    a = builder.input_bus("A", 1)
    builder.clock()
    net = a[0]
    for i in range(stages):
        q = builder.dff(net, name=f"stage{i}")
        net = builder.buf(q) if through_gate else q
    builder.output_bus("Q", [net])
    return builder.build()


class TestHold:
    def test_booth_meets_hold_at_fast_corner(self, booth8_base):
        graph = booth8_base.timing_graph()
        analyzer = HoldAnalyzer(graph, LIBRARY)
        report = analyzer.analyze(
            1.0, np.ones(graph.num_cells, bool)
        )
        assert report.feasible
        assert report.violations() == []

    def test_direct_q_to_d_violates_hold(self):
        netlist = _shift_register(3, through_gate=False)
        graph = compile_timing_graph(netlist)
        analyzer = HoldAnalyzer(graph, LIBRARY)
        report = analyzer.analyze(1.0, np.ones(graph.num_cells, bool))
        # clk-to-q (35 ps) exceeds hold (8 ps), so even direct hops pass.
        assert report.feasible

    def test_min_arrival_below_max_arrival(self):
        netlist = booth_multiplier(LIBRARY, width=6)
        graph = compile_timing_graph(netlist)
        fbb = np.ones(graph.num_cells, bool)
        hold = HoldAnalyzer(graph, LIBRARY).analyze(1.0, fbb)
        setup = StaEngine(graph, LIBRARY).analyze(
            ClockConstraint(1e6), 1.0, fbb
        )
        live = (hold.min_arrival_ps < 1e29) & (setup.arrival_ps > -1e29)
        assert np.all(
            hold.min_arrival_ps[live] <= setup.arrival_ps[live] + 1e-6
        )

    def test_boost_shrinks_min_arrival(self):
        netlist = booth_multiplier(LIBRARY, width=6)
        graph = compile_timing_graph(netlist)
        analyzer = HoldAnalyzer(graph, LIBRARY)
        fast = analyzer.analyze(1.0, np.ones(graph.num_cells, bool))
        slow = analyzer.analyze(1.0, np.zeros(graph.num_cells, bool))
        live = (fast.min_arrival_ps < 1e29) & (slow.min_arrival_ps < 1e29)
        assert np.all(
            fast.min_arrival_ps[live] <= slow.min_arrival_ps[live] + 1e-6
        )

    def test_case_analysis_deactivates_endpoints(self):
        netlist = booth_multiplier(LIBRARY, width=6)
        graph = compile_timing_graph(netlist)
        analyzer = HoldAnalyzer(graph, LIBRARY)
        case = dvas_case(netlist, 2)
        gated = analyzer.analyze(1.0, np.ones(graph.num_cells, bool), case=case)
        full = analyzer.analyze(1.0, np.ones(graph.num_cells, bool))
        assert gated.endpoint_active.sum() < full.endpoint_active.sum()


class TestReportTiming:
    @pytest.fixture(scope="class")
    def engine(self):
        netlist = booth_multiplier(LIBRARY, width=8)
        graph = compile_timing_graph(netlist)
        return StaEngine(graph, LIBRARY)

    def test_worst_path_arrival_matches_report(self, engine):
        fbb = np.ones(engine.graph.num_cells, bool)
        constraint = ClockConstraint(1000.0)
        paths = report_timing(engine, constraint, 1.0, fbb)
        assert len(paths) == 1
        path = paths[0]
        report = engine.analyze(constraint, 1.0, fbb, compute_required=False)
        worst_arrival = report.arrival_ps[
            engine.graph.endpoint_nets[report.endpoint_active]
        ].max()
        assert path.arrival_ps == pytest.approx(worst_arrival, abs=0.5)

    def test_incrementals_sum_to_arrival(self, engine):
        fbb = np.ones(engine.graph.num_cells, bool)
        path = report_timing(engine, ClockConstraint(1000.0), 1.0, fbb)[0]
        total = path.stages[0].arrival_ps + sum(
            s.incremental_ps for s in path.stages[1:]
        )
        assert total == pytest.approx(path.arrival_ps, abs=0.5)

    def test_slack_sign_matches_constraint(self, engine):
        fbb = np.ones(engine.graph.num_cells, bool)
        tight = report_timing(engine, ClockConstraint(200.0), 1.0, fbb)[0]
        loose = report_timing(engine, ClockConstraint(5000.0), 1.0, fbb)[0]
        assert tight.slack_ps < 0.0
        assert loose.slack_ps > 0.0
        assert "VIOLATED" in tight.format_text()
        assert "MET" in loose.format_text()

    def test_multiple_paths_ordered_by_slack(self, engine):
        fbb = np.ones(engine.graph.num_cells, bool)
        paths = report_timing(
            engine, ClockConstraint(1000.0), 1.0, fbb, max_paths=5
        )
        slacks = [p.slack_ps for p in paths]
        assert slacks == sorted(slacks)

    def test_gated_paths_avoid_constant_logic(self, engine):
        netlist = engine.graph.netlist
        fbb = np.ones(engine.graph.num_cells, bool)
        case = dvas_case(netlist, 3)
        path = report_timing(
            engine, ClockConstraint(1000.0), 1.0, fbb, case=case
        )[0]
        for stage in path.stages:
            net = netlist.net(stage.net_name)
            assert case.values[net.index] == 2  # UNKNOWN: still active

    def test_fully_gated_design_has_no_paths(self, engine):
        netlist = engine.graph.netlist
        fbb = np.ones(engine.graph.num_cells, bool)
        case = dvas_case(netlist, 0)
        paths = report_timing(
            engine, ClockConstraint(1000.0), 1.0, fbb, case=case
        )
        # Only the always-active register clocking remains, if anything.
        for path in paths:
            assert path.depth >= 0  # no crash; may be empty list
