"""Shared fixtures: the library and a couple of small implemented designs.

Heavy objects are session-scoped -- building and placing a Booth multiplier
takes a second or two, and dozens of tests want one.
"""

import numpy as np
import pytest

from repro.core.flow import implement_base, implement_with_domains
from repro.operators import booth_multiplier
from repro.pnr.grid import GridPartition
from repro.sta.constraints import ClockConstraint
from repro.techlib.library import Library


@pytest.fixture(scope="session")
def library():
    return Library()


@pytest.fixture(scope="session")
def booth8_factory(library):
    """Factory of a small (8-bit) registered Booth multiplier."""
    counter = {"n": 0}

    def factory():
        counter["n"] += 1
        return booth_multiplier(library, width=8, name=f"booth8_{counter['n']}")

    return factory


@pytest.fixture(scope="session")
def booth8_base(library, booth8_factory):
    """A fully implemented (placed, sized, closed) 8-bit Booth multiplier."""
    return implement_base(booth8_factory, library)


@pytest.fixture(scope="session")
def booth8_domained(library, booth8_factory, booth8_base):
    """The same design implemented with a 2x2 Vth-domain grid."""
    return implement_with_domains(
        booth8_factory,
        library,
        GridPartition(2, 2),
        constraint=booth8_base.constraint,
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(autouse=True)
def _reset_margin_warnings():
    """Isolate the guard's warn-once-per-fingerprint dedup between tests."""
    from repro.serve.guard import MarginGuard

    MarginGuard.reset_margin_warnings()
    yield
    MarginGuard.reset_margin_warnings()


def build_synthetic_table(generator=None):
    """A hand-built ModeTable exercising every transition flavour.

    Four modes over two domains: 2->4 flips one well, 4->6 flips the
    other, 6->8 is a VDD-only rail move, 2->8 moves everything.  Powers
    ascend with bits so greedy selection is unambiguous.
    """
    from repro.core.config import OperatingPoint
    from repro.core.runtime import BiasGeneratorModel
    from repro.serve.table import ModeTable, compile_transitions

    generator = generator if generator is not None else BiasGeneratorModel()
    spec = {
        2: (0.6, (False, False), 1.0e-3),
        4: (0.8, (True, False), 2.0e-3),
        6: (0.8, (True, True), 3.0e-3),
        8: (1.0, (True, True), 4.0e-3),
    }
    modes = {
        bits: OperatingPoint(
            active_bits=bits,
            vdd=vdd,
            bb_config=bb,
            total_power_w=power,
            dynamic_power_w=power * 0.6,
            leakage_power_w=power * 0.4,
            worst_slack_ps=10.0,
        )
        for bits, (vdd, bb, power) in spec.items()
    }
    areas = (1000.0, 2000.0)
    fbb = 1.1
    return ModeTable(
        design_name="synthetic",
        fclk_ghz=1.0,
        num_domains=2,
        domain_areas_um2=areas,
        fbb_voltage=fbb,
        generator=generator,
        modes=modes,
        transitions=compile_transitions(modes, areas, generator, fbb),
    )


def build_margined_table(guarded_slack_ps=None, generator=None):
    """The synthetic table plus a hand-built per-mode margin block.

    ``guarded_slack_ps`` maps mode key -> guarded slack; unlisted modes
    default to a comfortable 50 ps.  Tests shrink individual entries to
    make margin erosion bite deterministically.
    """
    import dataclasses

    from repro.serve.table import ModeMargin

    table = build_synthetic_table(generator)
    slack = dict(guarded_slack_ps or {})
    margins = {
        bits: ModeMargin(
            guarded_slack_ps=float(slack.get(bits, 50.0)),
            mean_slack_ps=float(slack.get(bits, 50.0)) + 20.0,
            sigma_slack_ps=5.0,
            timing_yield=1.0,
            target_yield=0.9987,
            samples=16,
        )
        for bits in table.modes
    }
    return dataclasses.replace(table, margins=margins)


def build_learned_table():
    """The synthetic table (expensive-slew variant) with a small trained
    learned-policy block.  Cached: training runs once per test session.
    """
    global _LEARNED_TABLE
    if _LEARNED_TABLE is None:
        from repro.core.runtime import BiasGeneratorModel
        from repro.serve.learned import train_on_suite

        table = build_synthetic_table(
            BiasGeneratorModel(
                well_cap_ff_per_um2=400.0, rail_cap_ff_per_um2=1500.0
            )
        )
        result = train_on_suite(
            table, seed=3, length=120, mean_cycles=300, suites=1, rounds=2
        )
        _LEARNED_TABLE = (table, result)
    table, result = _LEARNED_TABLE
    return table.with_learned(result.spec), result


_LEARNED_TABLE = None


@pytest.fixture()
def synthetic_table():
    return build_synthetic_table()


@pytest.fixture()
def margined_table():
    return build_margined_table()
