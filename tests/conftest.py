"""Shared fixtures: the library and a couple of small implemented designs.

Heavy objects are session-scoped -- building and placing a Booth multiplier
takes a second or two, and dozens of tests want one.
"""

import numpy as np
import pytest

from repro.core.flow import implement_base, implement_with_domains
from repro.operators import booth_multiplier
from repro.pnr.grid import GridPartition
from repro.sta.constraints import ClockConstraint
from repro.techlib.library import Library


@pytest.fixture(scope="session")
def library():
    return Library()


@pytest.fixture(scope="session")
def booth8_factory(library):
    """Factory of a small (8-bit) registered Booth multiplier."""
    counter = {"n": 0}

    def factory():
        counter["n"] += 1
        return booth_multiplier(library, width=8, name=f"booth8_{counter['n']}")

    return factory


@pytest.fixture(scope="session")
def booth8_base(library, booth8_factory):
    """A fully implemented (placed, sized, closed) 8-bit Booth multiplier."""
    return implement_base(booth8_factory, library)


@pytest.fixture(scope="session")
def booth8_domained(library, booth8_factory, booth8_base):
    """The same design implemented with a 2x2 Vth-domain grid."""
    return implement_with_domains(
        booth8_factory,
        library,
        GridPartition(2, 2),
        constraint=booth8_base.constraint,
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
