"""Leakage and dynamic power models."""

import numpy as np
import pytest

from repro.operators import booth_multiplier
from repro.pnr.grid import GridPartition, insert_domains
from repro.pnr.parasitics import extract_parasitics
from repro.pnr.placer import GlobalPlacer
from repro.power.analysis import PowerAnalyzer, PowerReport
from repro.power.dynamic import DynamicPowerModel, switched_capacitance
from repro.power.leakage import LeakageModel
from repro.sim.activity import measure_activity
from repro.sta.batch import all_bb_configs
from repro.techlib.library import Library

LIBRARY = Library()


@pytest.fixture(scope="module")
def booth6():
    return booth_multiplier(LIBRARY, width=6)


@pytest.fixture(scope="module")
def booth6_activity(booth6):
    return measure_activity(booth6, active_bits=6, cycles=16, batch=16)


class TestLeakage:
    def test_fbb_multiplies_leakage(self, booth6):
        model = LeakageModel(booth6)
        n = len(booth6.cells)
        nobb = model.total(1.0, np.zeros(n, bool))
        fbb = model.total(1.0, np.ones(n, bool))
        expected = LIBRARY.leakage_factor(LIBRARY.fbb_corner(1.0))
        assert fbb / nobb == pytest.approx(expected)

    def test_batch_matches_per_config(self, booth6):
        model = LeakageModel(booth6)
        rng = np.random.default_rng(0)
        domains = rng.integers(0, 4, len(booth6.cells))
        configs = all_bb_configs(4)
        batch = model.total_batch(0.9, domains, configs)
        for k, config in enumerate(configs):
            single = model.total(0.9, config[domains])
            assert batch[k] == pytest.approx(single)

    def test_refresh_tracks_resizing(self, booth6):
        model = LeakageModel(booth6)
        n = len(booth6.cells)
        before = model.total(1.0, np.zeros(n, bool))
        target = booth6.combinational_cells[0]
        old_drive = target.drive_name
        target.set_drive("X4")
        try:
            assert model.total(1.0, np.zeros(n, bool)) == before  # stale
            model.refresh()
            assert model.total(1.0, np.zeros(n, bool)) > before
        finally:
            target.set_drive(old_drive)

    def test_leakage_scales_down_with_vdd(self, booth6):
        model = LeakageModel(booth6)
        n = len(booth6.cells)
        fbb = np.ones(n, bool)
        assert model.total(0.6, fbb) < model.total(1.0, fbb)


class TestDynamic:
    def test_formula(self, booth6, booth6_activity):
        model = DynamicPowerModel(booth6)
        power = model.total(booth6_activity, 1.0, 1.0)
        manual = 0.5 * float(
            (booth6_activity.rates * model.switched_cap_ff).sum()
        ) * 1e-15 * 1e9
        assert power == pytest.approx(manual)

    def test_quadratic_in_vdd(self, booth6, booth6_activity):
        model = DynamicPowerModel(booth6)
        p_10 = model.total(booth6_activity, 1.0, 1.0)
        p_08 = model.total(booth6_activity, 0.8, 1.0)
        assert p_08 / p_10 == pytest.approx(0.64)

    def test_linear_in_frequency(self, booth6, booth6_activity):
        model = DynamicPowerModel(booth6)
        assert model.total(booth6_activity, 1.0, 2.0) == pytest.approx(
            2.0 * model.total(booth6_activity, 1.0, 1.0)
        )

    def test_wire_cap_adds_power(self, booth6, booth6_activity):
        placement = GlobalPlacer(booth6, seed=1).run()
        parasitics = extract_parasitics(placement)
        bare = DynamicPowerModel(booth6)
        wired = DynamicPowerModel(booth6, parasitics)
        assert wired.total(booth6_activity, 1.0, 1.0) > bare.total(
            booth6_activity, 1.0, 1.0
        )

    def test_activity_netlist_mismatch_rejected(self, booth6_activity):
        other = booth_multiplier(LIBRARY, width=4, name="other4")
        model = DynamicPowerModel(other)
        with pytest.raises(ValueError, match="does not match"):
            model.total(booth6_activity, 1.0, 1.0)

    def test_bad_frequency_rejected(self, booth6, booth6_activity):
        model = DynamicPowerModel(booth6)
        with pytest.raises(ValueError, match="frequency"):
            model.total(booth6_activity, 1.0, 0.0)

    def test_switched_cap_includes_driver_and_sinks(self, booth6):
        caps = switched_capacitance(booth6)
        assert np.all(caps[1:] >= 0.0)
        # A net with fanout should carry at least its sinks' input caps.
        net = max(booth6.nets, key=lambda n: n.fanout)
        floor = sum(p.cell.drive.input_cap_ff for p in net.sinks)
        assert caps[net.index] >= floor


class TestAnalyzer:
    def test_report_composition(self, booth6, booth6_activity):
        analyzer = PowerAnalyzer(booth6)
        n = len(booth6.cells)
        report = analyzer.report(booth6_activity, 1.0, 1.0, np.ones(n, bool))
        assert report.total_w == pytest.approx(
            report.dynamic_w + report.leakage_w
        )
        assert 0.0 < report.leakage_fraction < 1.0
        assert "mW" in str(report)

    def test_gating_cuts_dynamic_not_leakage(self, booth6, booth6_activity):
        analyzer = PowerAnalyzer(booth6)
        n = len(booth6.cells)
        gated_activity = measure_activity(
            booth6, active_bits=2, cycles=16, batch=16
        )
        full = analyzer.report(booth6_activity, 1.0, 1.0, np.ones(n, bool))
        gated = analyzer.report(gated_activity, 1.0, 1.0, np.ones(n, bool))
        assert gated.dynamic_w < full.dynamic_w
        assert gated.leakage_w == pytest.approx(full.leakage_w)

    def test_total_batch_matches_report(self, booth6, booth6_activity):
        placement = GlobalPlacer(booth6, seed=4).run()
        insertion = insert_domains(placement, GridPartition(2, 2))
        analyzer = PowerAnalyzer(booth6)
        configs = all_bb_configs(4)
        batch = analyzer.total_batch(
            booth6_activity, 0.9, 1.0, insertion.domains, configs
        )
        for k in (0, 7, 15):
            fbb_cells = configs[k][insertion.domains]
            report = analyzer.report(booth6_activity, 0.9, 1.0, fbb_cells)
            assert batch[k] == pytest.approx(report.total_w)
