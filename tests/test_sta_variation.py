"""Monte-Carlo timing yield under Vth variation."""

import numpy as np
import pytest

from repro.sta.constraints import ClockConstraint
from repro.sta.engine import StaEngine
from repro.sta.variation import MonteCarloTiming, YieldReport


@pytest.fixture(scope="module")
def mc(booth8_base, library):
    return MonteCarloTiming(
        booth8_base.timing_graph(), library, sigma_vth=0.012, seed=7
    )


class TestMonteCarlo:
    def test_zero_sigma_matches_nominal(self, booth8_base, library):
        graph = booth8_base.timing_graph()
        mc0 = MonteCarloTiming(graph, library, sigma_vth=0.0)
        fbb = np.ones(graph.num_cells, bool)
        report = mc0.analyze_yield(
            booth8_base.constraint, 1.0, fbb, samples=5
        )
        nominal = StaEngine(graph, library).analyze(
            booth8_base.constraint, 1.0, fbb
        )
        assert np.allclose(
            report.worst_slack_samples_ps, nominal.worst_slack_ps, atol=1e-6
        )
        assert report.timing_yield == 1.0

    def test_variation_spreads_slack(self, booth8_base, mc):
        fbb = np.ones(len(booth8_base.netlist.cells), bool)
        report = mc.analyze_yield(
            booth8_base.constraint, 1.0, fbb, samples=40
        )
        assert report.sigma_slack_ps > 0.0
        assert report.samples == 40

    def test_yield_degrades_with_tighter_clock(self, booth8_base, mc):
        fbb = np.ones(len(booth8_base.netlist.cells), bool)
        period = booth8_base.constraint.period_ps
        loose = mc.analyze_yield(
            ClockConstraint(period * 1.2), 1.0, fbb, samples=30
        )
        tight = mc.analyze_yield(
            ClockConstraint(period * 0.9), 1.0, fbb, samples=30
        )
        assert loose.timing_yield >= tight.timing_yield
        assert loose.timing_yield == 1.0

    def test_margin_for_yield(self, booth8_base, mc):
        fbb = np.ones(len(booth8_base.netlist.cells), bool)
        period = booth8_base.constraint.period_ps
        report = mc.analyze_yield(
            ClockConstraint(period * 0.92), 1.0, fbb, samples=40
        )
        margin = report.margin_for_yield(0.95)
        assert margin >= 0.0
        if report.timing_yield < 0.95:
            assert margin > 0.0
        with pytest.raises(ValueError):
            report.margin_for_yield(1.5)

    def test_deterministic_given_seed(self, booth8_base, library):
        graph = booth8_base.timing_graph()
        fbb = np.ones(graph.num_cells, bool)
        a = MonteCarloTiming(graph, library, seed=3).analyze_yield(
            booth8_base.constraint, 1.0, fbb, samples=10
        )
        b = MonteCarloTiming(graph, library, seed=3).analyze_yield(
            booth8_base.constraint, 1.0, fbb, samples=10
        )
        assert np.array_equal(
            a.worst_slack_samples_ps, b.worst_slack_samples_ps
        )

    def test_validation(self, booth8_base, library, mc):
        graph = booth8_base.timing_graph()
        with pytest.raises(ValueError, match="sigma"):
            MonteCarloTiming(graph, library, sigma_vth=-0.1)
        fbb = np.ones(graph.num_cells, bool)
        with pytest.raises(ValueError, match="at least one"):
            mc.analyze_yield(booth8_base.constraint, 1.0, fbb, samples=0)

    def test_summary_text(self, booth8_base, mc):
        fbb = np.ones(len(booth8_base.netlist.cells), bool)
        report = mc.analyze_yield(
            booth8_base.constraint, 1.0, fbb, samples=10
        )
        assert "yield" in report.summary()
