"""Golden-model self-consistency against plain numpy arithmetic."""

import numpy as np
import pytest

from repro.operators.fir import FirParameters
from repro.sim import golden


class TestWrapSigned:
    def test_wraps_into_range(self):
        assert golden._wrap_signed(np.asarray([128]), 8)[0] == -128
        assert golden._wrap_signed(np.asarray([-129]), 8)[0] == 127
        assert golden._wrap_signed(np.asarray([127]), 8)[0] == 127


class TestMultiplyReference:
    def test_matches_python(self):
        rng = np.random.default_rng(0)
        a = rng.integers(-(1 << 15), 1 << 15, 1000)
        b = rng.integers(-(1 << 15), 1 << 15, 1000)
        assert np.array_equal(golden.multiply_reference(a, b, 16), a * b)

    def test_wraps_out_of_range_operands(self):
        # Operands outside the width wrap before multiplying.
        out = golden.multiply_reference(np.asarray([300]), np.asarray([2]), 8)
        assert out[0] == golden._wrap_signed(np.asarray([300]), 8)[0] * 2


class TestButterflyReference:
    def test_matches_float_model_for_small_operands(self):
        """With small magnitudes (no truncation loss), WB ~ B*W/2^15."""
        rng = np.random.default_rng(1)
        n = 200
        ar = rng.integers(-1000, 1000, n)
        ai = rng.integers(-1000, 1000, n)
        br = rng.integers(-1000, 1000, n)
        bi = rng.integers(-1000, 1000, n)
        angles = rng.uniform(0, 2 * np.pi, n)
        wr = (np.cos(angles) * ((1 << 15) - 1)).astype(np.int64)
        wi = (np.sin(angles) * ((1 << 15) - 1)).astype(np.int64)
        out = golden.butterfly_reference(ar, ai, br, bi, wr, wi)
        wb = (br + 1j * bi) * (wr + 1j * wi) / (1 << 15)
        assert np.max(np.abs(out["XR"] - np.floor(ar + wb.real))) <= 2
        assert np.max(np.abs(out["YI"] - np.ceil(ai - wb.imag))) <= 2

    def test_zero_twiddle_passes_a(self):
        n = 8
        zeros = np.zeros(n, dtype=np.int64)
        ar = np.arange(n)
        ai = -np.arange(n)
        out = golden.butterfly_reference(ar, ai, zeros, zeros, zeros, zeros)
        assert np.array_equal(out["XR"], ar)
        assert np.array_equal(out["YR"], ar)
        assert np.array_equal(out["XI"], ai)
        assert np.array_equal(out["YI"], ai)


class TestFirReference:
    def test_tap_counter_sequence(self):
        params = FirParameters(taps=3, width=8)
        cycles = 9
        xs = [np.zeros(1, dtype=np.int64)] * cycles
        out = golden.fir_reference(xs, xs, params)
        assert [int(o["TAP"][0]) for o in out] == [0, 1, 2, 0, 1, 2, 0, 1, 2]

    def test_impulse_response_recovers_coefficients(self):
        """An impulse into the FIR replays the coefficient sequence."""
        params = FirParameters(taps=3, width=8)
        taps = params.taps
        coeffs = [2, -3, 5]
        rounds = 6
        xs, cs = [], []
        for cycle in range(rounds * taps):
            count = cycle % taps
            sample_idx = cycle // taps
            xs.append(np.asarray([1 if sample_idx == 0 else 0]))
            cs.append(np.asarray([coeffs[(count + 1) % taps]]))
        out = golden.fir_reference(xs, cs, params)
        # After the impulse shifts to stage k, the full sum equals c[k].
        # The impulse loads at end of round 0; reading Y at the start of
        # round k+2 sees the impulse at delay stage k.
        readings = [int(out[taps * (k + 2)]["Y"][0]) for k in range(taps)]
        assert readings == coeffs

    def test_mismatched_stimulus_rejected(self):
        params = FirParameters(taps=3, width=8)
        xs = [np.zeros(1)] * 3
        cs = [np.zeros(1)] * 2
        with pytest.raises(ValueError, match="same cycles"):
            golden.fir_reference(xs, cs, params)
