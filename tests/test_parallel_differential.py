"""Differential lock-in of the sharded exploration engine.

The contract under test: no execution knob -- worker count, cache state,
shard boundaries, process hops -- may change a single bit of the
exploration results.  Every case below compares against the legacy
serial sweep (``workers=0``, engine off) on the same design.
"""

import dataclasses
import pickle

import pytest

from repro.core.config import ExplorationSettings
from repro.core.exploration import ExhaustiveExplorer
from repro.core.flow import implement_with_domains
from repro.operators import adequate_adder, booth_multiplier, fir_filter
from repro.operators.fir import FirParameters
from repro.parallel.engine import ParallelExplorer
from repro.pnr.grid import GridPartition

SETTINGS = ExplorationSettings(
    bitwidths=(2, 3, 4, 6),
    activity_cycles=10,
    activity_batch=8,
)

OPERATORS = ["adder", "booth", "fir"]


def assert_identical(reference, result):
    """Bit-identical equality of everything the paper's flow consumes."""
    assert result.best_per_bitwidth == reference.best_per_bitwidth
    assert result.best_per_knob_point == reference.best_per_knob_point
    assert result.feasible_counts == reference.feasible_counts
    assert result.points_evaluated == reference.points_evaluated
    assert result.points_feasible == reference.points_feasible
    assert result.filtered_fraction == reference.filtered_fraction
    assert result.num_domains == reference.num_domains
    assert result.design_name == reference.design_name


@pytest.fixture(scope="module")
def designs(library):
    """Three small domained operators: ripple adder, Booth mult, FIR."""
    built = {}

    def factory(op):
        return {
            "adder": lambda: adequate_adder(library, width=6, name="diff_add"),
            "booth": lambda: booth_multiplier(library, width=6, name="diff_boo"),
            "fir": lambda: fir_filter(
                library, FirParameters(taps=4, width=6), name="diff_fir"
            ),
        }[op]

    for op, grid in (("adder", (2, 1)), ("booth", (2, 2)), ("fir", (2, 1))):
        built[op] = implement_with_domains(
            factory(op), library, GridPartition(*grid)
        )
    return built


@pytest.fixture(scope="module")
def serial_reference(designs):
    return {
        op: ExhaustiveExplorer(design).run(SETTINGS)
        for op, design in designs.items()
    }


@pytest.mark.parametrize("operator", OPERATORS)
@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("cache_mode", ["disabled", "cold", "warm"])
def test_engine_bit_identical(
    operator, workers, cache_mode, designs, serial_reference, tmp_path
):
    settings = dataclasses.replace(
        SETTINGS,
        workers=workers,
        cache=cache_mode != "disabled",
        cache_dir=str(tmp_path) if cache_mode != "disabled" else None,
    )
    explorer = ExhaustiveExplorer(designs[operator])
    result = explorer.run(settings)
    if cache_mode == "warm":
        first = result
        assert first.cache_stats.misses > 0 and first.cache_stats.hits == 0
        result = explorer.run(settings)
        assert result.cache_stats.hits == first.cache_stats.misses
        assert result.cache_stats.misses == 0
    assert_identical(serial_reference[operator], result)
    if cache_mode == "disabled":
        assert result.cache_stats is None


@pytest.mark.parametrize("max_vdds", [1, 2, 3])
def test_shard_boundaries_are_invisible(
    max_vdds, designs, serial_reference
):
    """Splitting the VDD axis across shards must not move any number."""
    engine = ParallelExplorer(designs["adder"])
    result = engine.run(
        dataclasses.replace(SETTINGS, workers=1),
        max_vdds_per_shard=max_vdds,
    )
    assert_identical(serial_reference["adder"], result)


@pytest.mark.parametrize("max_combos", [1, 3, 7])
def test_combo_shard_boundaries_are_invisible(
    max_combos, designs, serial_reference
):
    """Splitting the BB-combination axis across shards must not move any
    number: combo slices of the lattice tensor re-fold canonically."""
    engine = ParallelExplorer(designs["booth"])  # 16 combos (2x2 grid)
    for workers in (1, 2):
        result = engine.run(
            dataclasses.replace(SETTINGS, workers=workers),
            max_combos_per_shard=max_combos,
        )
        assert_identical(serial_reference["booth"], result)


@pytest.mark.parametrize("sta_engine", ["lattice", "pointwise"])
def test_combo_shards_identical_across_sta_engines(
    sta_engine, designs, serial_reference
):
    """Combo-sliced shards agree with the serial sweep under both STA
    engines (each shard runs a partial-lattice pass)."""
    result = ParallelExplorer(designs["booth"]).run(
        dataclasses.replace(SETTINGS, workers=2, sta_engine=sta_engine),
        max_combos_per_shard=5,
    )
    assert_identical(serial_reference["booth"], result)


@pytest.mark.parametrize("operator", OPERATORS)
def test_design_survives_process_boundary(
    operator, designs, serial_reference
):
    """Pickling an implemented design (what the pool ships to workers)
    preserves the exploration bit-for-bit."""
    from repro.sim.activity import clear_activity_cache

    design = pickle.loads(pickle.dumps(designs[operator]))
    clear_activity_cache()  # forget rates memoized under the same name
    result = ExhaustiveExplorer(design).run(SETTINGS)
    assert_identical(serial_reference[operator], result)


def test_configs_subset_matches_serial(designs):
    """The DVAS-style restricted config matrix also routes correctly."""
    import numpy as np

    design = designs["booth"]
    configs = np.array(
        [[False] * design.num_domains, [True] * design.num_domains]
    )
    serial = ExhaustiveExplorer(design).run(SETTINGS, configs=configs)
    parallel = ExhaustiveExplorer(design).run(
        dataclasses.replace(SETTINGS, workers=2), configs=configs
    )
    assert_identical(serial, parallel)
    assert serial.points_evaluated == 2 * SETTINGS.num_knob_points
