"""Small-surface behaviours not covered elsewhere."""

import numpy as np
import pytest

from repro.netlist.builder import NetlistBuilder
from repro.pnr.floorplan import Floorplan
from repro.sta.batch import BatchStaEngine
from repro.sta.constraints import ClockConstraint
from repro.sta.engine import StaEngine
from repro.sta.graph import compile_timing_graph
from repro.techlib.library import Library

LIBRARY = Library()


class TestPinRef:
    def test_pin_names_resolve(self):
        builder = NetlistBuilder("t", LIBRARY)
        a = builder.input_bus("A", 3)
        s, co = builder.full_adder(*a)
        fa = builder.netlist.cells[0]
        assert [p.pin_name for p in a[0].sinks] == ["A"]
        assert s.driver.pin_name == "S"
        assert co.driver.pin_name == "CO"
        assert s.driver.cell is fa


class TestFloorplanClamp:
    def test_clamps_into_die(self):
        plan = Floorplan(10.0, 6.0, 1.2)
        assert plan.clamp(-1.0, 3.0) == (0.0, 3.0)
        assert plan.clamp(11.0, 7.0) == (10.0, 6.0)
        assert plan.clamp(5.0, 5.0) == (5.0, 5.0)


class TestEngineValidation:
    def test_fbb_shape_checked(self):
        builder = NetlistBuilder("t", LIBRARY)
        a = builder.input_bus("A", 1)
        builder.output_bus("Y", [builder.inv(a[0])])
        graph = compile_timing_graph(builder.netlist)
        engine = StaEngine(graph, LIBRARY)
        with pytest.raises(ValueError, match="fbb_cells shape"):
            engine.analyze(
                ClockConstraint(100.0), 1.0, np.ones(99, bool)
            )

    def test_factor_override_shape_checked(self):
        builder = NetlistBuilder("t", LIBRARY)
        a = builder.input_bus("A", 1)
        builder.output_bus("Y", [builder.inv(a[0])])
        graph = compile_timing_graph(builder.netlist)
        engine = StaEngine(graph, LIBRARY)
        with pytest.raises(ValueError, match="factors shape"):
            engine.analyze(
                ClockConstraint(100.0), 1.0,
                np.ones(graph.num_cells, bool),
                factors=np.ones(3),
            )

    def test_factor_override_scales_delay(self):
        builder = NetlistBuilder("t", LIBRARY)
        a = builder.input_bus("A", 1)
        builder.clock()
        q = builder.register_word(a)
        net = builder.inv(q[0])
        builder.output_bus("Y", builder.register_word([net]))
        graph = compile_timing_graph(builder.netlist)
        engine = StaEngine(graph, LIBRARY)
        fbb = np.ones(graph.num_cells, bool)
        nominal = engine.analyze(
            ClockConstraint(1e6), 1.0, fbb, compute_required=False
        )
        doubled = engine.analyze(
            ClockConstraint(1e6), 1.0, fbb,
            factors=np.full(graph.num_cells, 2.0),
            compute_required=False,
        )
        assert (
            doubled.critical_path_delay_ps
            > 1.5 * nominal.critical_path_delay_ps
        )


class TestBatchStateValidation:
    @pytest.fixture()
    def engine(self, booth8_domained):
        graph = booth8_domained.timing_graph()
        return BatchStaEngine(
            graph, LIBRARY, booth8_domained.domains,
            booth8_domained.num_domains,
        ), booth8_domained

    def test_state_shape_checked(self, engine):
        batch, design = engine
        with pytest.raises(ValueError, match="incompatible"):
            batch.analyze_states(
                design.constraint, 1.0,
                np.zeros((4, 2), dtype=int), [0.0, 1.1],
            )

    def test_state_index_range_checked(self, engine):
        batch, design = engine
        with pytest.raises(ValueError, match="out of range"):
            batch.analyze_states(
                design.constraint, 1.0,
                np.full((2, design.num_domains), 7), [0.0, 1.1],
            )

    def test_two_state_configs_match_bool_engine(self, engine):
        batch, design = engine
        from repro.sta.batch import all_bb_configs, all_state_configs

        bool_result = batch.analyze(design.constraint, 0.9)
        fbb = design.netlist.library.process.fbb_voltage
        state_result = batch.analyze_states(
            design.constraint, 0.9,
            all_state_configs(design.num_domains, 2),
            [0.0, fbb],
        )
        assert np.allclose(
            bool_result.worst_slack_ps,
            state_result.worst_slack_ps,
            atol=0.5,
        )

    def test_chunked_equals_unchunked(self, engine):
        batch, design = engine
        from repro.sta.batch import all_state_configs

        fbb = design.netlist.library.process.fbb_voltage
        configs = all_state_configs(design.num_domains, 3)
        big = batch.analyze_states(
            design.constraint, 1.0, configs, [-fbb, 0.0, fbb], chunk=4096
        )
        small = batch.analyze_states(
            design.constraint, 1.0, configs, [-fbb, 0.0, fbb], chunk=7
        )
        assert np.allclose(big.worst_slack_ps, small.worst_slack_ps)


class TestCliCompare:
    def test_compare_small(self, capsys):
        from repro.cli import main

        assert main(
            ["compare", "--design", "adder", "--width", "4", "--grid", "1x2"]
        ) == 0
        out = capsys.readouterr().out
        assert "DVAS (FBB)" in out
        assert "power saving" in out
