"""Report formatting."""

import pytest

from repro.core.config import OperatingPoint
from repro.core.report import format_pareto_table, format_savings, format_table1


def _point(bits, power_mw, vdd=1.0):
    return OperatingPoint(
        active_bits=bits,
        vdd=vdd,
        bb_config=(True, False),
        total_power_w=power_mw * 1e-3,
        dynamic_power_w=power_mw * 0.6e-3,
        leakage_power_w=power_mw * 0.4e-3,
        worst_slack_ps=12.0,
    )


class TestParetoTable:
    def test_columns_and_missing_entries(self):
        table = format_pareto_table(
            {
                "Proposed": {4: _point(4, 1.0), 8: _point(8, 2.0)},
                "DVAS (NoBB)": {4: _point(4, 1.5)},
            },
            bitwidths=(4, 8),
        )
        assert "Proposed" in table and "DVAS (NoBB)" in table
        assert "--" in table  # NoBB missing at 8 bits
        assert "2.000 mW@1.0V" in table

    def test_rows_descend_by_bits(self):
        table = format_pareto_table(
            {"M": {2: _point(2, 1.0), 6: _point(6, 2.0)}}, bitwidths=(2, 6)
        )
        lines = table.splitlines()
        assert lines[2].strip().startswith("6")
        assert lines[3].strip().startswith("2")


class TestSavings:
    def test_percentages(self):
        text = format_savings(
            {8: _point(8, 2.0)}, {8: _point(8, 1.0)}, bitwidths=(8,)
        )
        assert "50.00%" in text

    def test_missing_marked_na(self):
        text = format_savings({}, {8: _point(8, 1.0)}, bitwidths=(8,))
        assert "n/a" in text


class TestTable1:
    def test_contains_design_rows(self, booth8_base, booth8_domained):
        table = format_table1([booth8_base, booth8_domained])
        assert "1x1" in table
        assert "2x2" in table
        assert "A [mm^2]" in table
        lines = table.splitlines()
        assert len(lines) == 3
