"""Differential lock-in of the whole-lattice batched STA kernel.

The contract: :meth:`LatticeStaEngine.analyze` sweeps every BB
combination in one ``(combos, nets)`` tensor pass and its per-combo WNS,
feasibility mask, critical-endpoint ids and arrival/required matrices
are **bit-identical** (``==``, not ``allclose``) to looping the scalar
:meth:`repro.sta.engine.StaEngine.analyze` over the combinations.

Three layers of comparison, over Table 1 operators x bitwidths x VDD
grid x case analyses:

* kernel vs the engine's own ``analyze_pointwise`` reference loop;
* kernel vs a hand-rolled scalar loop (guards the reference loop too);
* full exploration under ``--sta-engine lattice`` vs ``pointwise``.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.config import ExplorationSettings
from repro.core.exploration import ExhaustiveExplorer
from repro.core.flow import implement_with_domains
from repro.operators import booth_multiplier, fft_butterfly, fir_filter
from repro.operators.fir import FirParameters
from repro.pnr.grid import GridPartition
from repro.sta.batch import all_bb_configs
from repro.sta.caseanalysis import dvas_case
from repro.sta.engine import StaEngine
from repro.sta.lattice import LatticeStaEngine
from tests.test_parallel_differential import assert_identical

OPERATORS = ["booth", "butterfly", "fir"]

#: Paper's five-step VDD ladder endpoints plus the middle rung.
VDD_GRID = [1.0, 0.8, 0.6]


@pytest.fixture(scope="module")
def designs(library):
    """Three small domained Table 1 operators."""
    built = {}
    factories = {
        "booth": lambda: booth_multiplier(library, width=6, name="lat_boo"),
        "butterfly": lambda: fft_butterfly(library, width=4, name="lat_bfy"),
        "fir": lambda: fir_filter(
            library, FirParameters(taps=4, width=6), name="lat_fir"
        ),
    }
    for op, grid in (("booth", (2, 2)), ("butterfly", (2, 1)), ("fir", (2, 1))):
        built[op] = implement_with_domains(
            factories[op], library, GridPartition(*grid)
        )
    return built


def lattice_engine(design, graph=None):
    return LatticeStaEngine(
        graph if graph is not None else design.timing_graph(),
        design.netlist.library, design.domains, design.num_domains,
    )


def cases_for(design):
    """None (full precision) plus two DVAS accuracy modes."""
    width = max(bus.width for bus in design.netlist.input_buses.values())
    return {
        "full": None,
        "half": dvas_case(design.netlist, width // 2),
        "two": dvas_case(design.netlist, 2),
    }


@pytest.mark.parametrize("operator", OPERATORS)
@pytest.mark.parametrize("vdd", VDD_GRID)
def test_lattice_matches_pointwise_reference(operator, vdd, designs):
    """Engine-level differential: one tensor pass == the reference loop."""
    design = designs[operator]
    engine = lattice_engine(design)
    for label, case in cases_for(design).items():
        batched = engine.analyze(design.constraint, vdd, case=case)
        reference = engine.analyze_pointwise(design.constraint, vdd, case=case)
        context = f"{operator} vdd={vdd} case={label}"
        assert batched.worst_slack_ps.shape == (2 ** design.num_domains,)
        assert np.array_equal(
            batched.worst_slack_ps, reference.worst_slack_ps
        ), context
        assert np.array_equal(batched.feasible, reference.feasible), context
        assert np.array_equal(
            batched.critical_endpoint_net, reference.critical_endpoint_net
        ), context
        assert batched.num_feasible == reference.num_feasible
        assert batched.filtered_fraction == reference.filtered_fraction


@pytest.mark.parametrize("operator", OPERATORS)
def test_lattice_matches_hand_rolled_scalar_loop(operator, designs):
    """Both engine paths vs raw StaEngine.analyze, arrays included.

    Guards ``analyze_pointwise`` itself: if the reference loop ever
    drifted from the scalar engine, the kernel-vs-reference test alone
    could pass vacuously.
    """
    design = designs[operator]
    graph = design.timing_graph()
    engine = lattice_engine(design, graph)
    scalar = StaEngine(graph, design.netlist.library)
    configs = all_bb_configs(design.num_domains)
    for vdd in (1.0, 0.7):
        for case in cases_for(design).values():
            batched = engine.analyze(
                design.constraint, vdd, case=case,
                compute_required=True, keep_arrays=True,
            )
            for k, config in enumerate(configs):
                report = scalar.analyze(
                    design.constraint, vdd, config[design.domains], case=case
                )
                assert batched.worst_slack_ps[k] == report.worst_slack_ps
                assert (
                    batched.critical_endpoint_net[k]
                    == report.critical_endpoint_net
                )
                assert np.array_equal(
                    batched.arrival_ps[k], report.arrival_ps
                )
                assert np.array_equal(
                    batched.required_ps[k], report.required_ps
                )


@pytest.mark.parametrize("operator", OPERATORS)
def test_memoized_case_schedule_reused_bit_identically(operator, designs):
    """A CaseAnalysis memoizes its filtered levelized schedule; the second
    analyze must reuse it (same object) and reproduce the same bits."""
    design = designs[operator]
    engine = lattice_engine(design)
    case = dvas_case(design.netlist, 3)
    first = engine.analyze(design.constraint, 0.8, case=case)
    assert case._schedule_cache, "case schedule should be memoized"
    cached = next(iter(case._schedule_cache.values()))
    second = engine.analyze(design.constraint, 0.8, case=case)
    assert next(iter(case._schedule_cache.values())) is cached
    assert np.array_equal(first.worst_slack_ps, second.worst_slack_ps)
    assert np.array_equal(
        first.critical_endpoint_net, second.critical_endpoint_net
    )


@pytest.mark.parametrize("operator", OPERATORS)
def test_vdd_ladder_pass_matches_per_rung_analyze(operator, designs):
    """One stacked (VDD x combos) pass == one pass per VDD, bit for bit.

    The exploration loop runs the whole ladder per bitwidth through
    ``analyze_ladder``; each rung's slice must equal its standalone
    ``analyze`` result exactly.
    """
    design = designs[operator]
    engine = lattice_engine(design)
    vdds = [1.0, 0.9, 0.8, 0.7, 0.6]
    for case in cases_for(design).values():
        ladder = engine.analyze_ladder(design.constraint, vdds, case=case)
        assert [r.vdd for r in ladder] == vdds
        for rung in ladder:
            single = engine.analyze(design.constraint, rung.vdd, case=case)
            assert np.array_equal(rung.worst_slack_ps, single.worst_slack_ps)
            assert np.array_equal(
                rung.critical_endpoint_net, single.critical_endpoint_net
            )


def test_config_subset_slices_match_full_lattice(designs):
    """A combo-sliced call (the sharded path) equals rows of the full
    lattice -- no cross-combo coupling in the kernel."""
    design = designs["booth"]
    engine = lattice_engine(design)
    configs = all_bb_configs(design.num_domains)
    full = engine.analyze(design.constraint, 0.8, configs=configs)
    for lo in range(0, len(configs), 5):
        part = engine.analyze(
            design.constraint, 0.8, configs=configs[lo:lo + 5]
        )
        assert np.array_equal(
            part.worst_slack_ps, full.worst_slack_ps[lo:lo + 5]
        )
        assert np.array_equal(
            part.critical_endpoint_net, full.critical_endpoint_net[lo:lo + 5]
        )


@pytest.mark.parametrize("operator", OPERATORS)
def test_exploration_identical_across_sta_engines(operator, designs):
    """Pareto frontiers and feasibility masks are bit-identical whichever
    STA engine drives the exploration sweep."""
    settings = ExplorationSettings(
        bitwidths=(2, 4, 6),
        vdd_values=(1.0, 0.8, 0.6),
        activity_cycles=8,
        activity_batch=8,
        sta_engine="lattice",
    )
    design = designs[operator]
    lattice = ExhaustiveExplorer(design).run(settings)
    pointwise = ExhaustiveExplorer(design).run(
        dataclasses.replace(settings, sta_engine="pointwise")
    )
    assert_identical(lattice, pointwise)


def test_auto_resolves_to_lattice_numbers(designs, monkeypatch):
    monkeypatch.delenv("REPRO_STA_ENGINE", raising=False)
    settings = ExplorationSettings(
        bitwidths=(4,), vdd_values=(0.8,), activity_cycles=8, activity_batch=8
    )
    design = designs["fir"]
    auto = ExhaustiveExplorer(design).run(settings)
    explicit = ExhaustiveExplorer(design).run(
        dataclasses.replace(settings, sta_engine="lattice")
    )
    assert_identical(auto, explicit)
