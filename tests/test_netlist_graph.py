"""NetworkX export."""

import networkx as nx
import numpy as np
import pytest

from repro.netlist.graph import combinational_depth, to_networkx
from repro.operators import booth_multiplier
from repro.pnr.grid import GridPartition, insert_domains
from repro.pnr.placer import GlobalPlacer
from repro.techlib.library import Library

LIBRARY = Library()


@pytest.fixture(scope="module")
def booth():
    return booth_multiplier(LIBRARY, width=6)


class TestToNetworkx:
    def test_node_and_edge_population(self, booth):
        graph = to_networkx(booth)
        cell_nodes = [
            n for n, d in graph.nodes(data=True) if d["kind"] == "cell"
        ]
        port_nodes = [
            n for n, d in graph.nodes(data=True) if d["kind"] == "port"
        ]
        assert len(cell_nodes) == len(booth.cells)
        expected_ports = sum(
            b.width for b in booth.input_buses.values()
        ) + sum(b.width for b in booth.output_buses.values())
        assert len(port_nodes) == expected_ports
        assert graph.number_of_edges() > len(booth.cells)

    def test_is_a_dag_without_clock(self, booth):
        graph = to_networkx(booth, include_ports=False)
        # Sequential Q->D paths exist, but CK edges are excluded and the
        # booth pipeline has no combinational feedback.
        assert nx.is_directed_acyclic_graph(graph)

    def test_edge_attributes(self, booth):
        graph = to_networkx(booth)
        _u, _v, data = next(iter(graph.edges(data=True)))
        assert "net" in data and "fanout" in data

    def test_placement_attributes_exported(self, booth):
        placement = GlobalPlacer(booth, seed=2).run()
        insert_domains(placement, GridPartition(2, 2))
        graph = to_networkx(booth)
        cell = booth.cells[0]
        data = graph.nodes[cell.name]
        assert data["x"] == pytest.approx(cell.x)
        assert data["domain"] == cell.domain

    def test_clock_inclusion_flag(self, booth):
        without = to_networkx(booth, include_clock=False)
        with_clock = to_networkx(booth, include_clock=True)
        assert with_clock.number_of_edges() > without.number_of_edges()


class TestDepth:
    def test_depth_tracks_width(self):
        small = booth_multiplier(LIBRARY, width=4, name="gdepth4")
        large = booth_multiplier(LIBRARY, width=12, name="gdepth12")
        assert combinational_depth(large) > combinational_depth(small)

    def test_depth_positive_and_plausible(self, booth):
        depth = combinational_depth(booth)
        assert 5 < depth < 60
