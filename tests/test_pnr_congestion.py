"""RUDY congestion estimation."""

import numpy as np
import pytest

from repro.operators import booth_multiplier
from repro.pnr.congestion import estimate_congestion
from repro.pnr.grid import GridPartition, insert_domains
from repro.pnr.placer import GlobalPlacer
from repro.techlib.library import Library

LIBRARY = Library()


@pytest.fixture(scope="module")
def placement():
    return GlobalPlacer(booth_multiplier(LIBRARY, width=8), seed=6).run()


class TestCongestion:
    def test_map_shape_and_positivity(self, placement):
        cmap = estimate_congestion(placement, bins=(12, 10))
        assert cmap.demand.shape == (12, 10)
        assert cmap.peak > 0.0
        assert np.all(cmap.demand >= 0.0)

    def test_demand_concentrates_where_cells_are(self, placement):
        cmap = estimate_congestion(placement, bins=(8, 8))
        # The placer fills the whole die, so the interior must carry more
        # demand than the emptiest bin.
        assert cmap.peak_to_mean > 1.0

    def test_total_demand_tracks_wirelength(self, placement):
        from repro.pnr.wirelength import total_wirelength

        cmap = estimate_congestion(placement, bins=(8, 8))
        bin_area = cmap.bin_width_um * cmap.bin_height_um
        integrated = float(cmap.demand.sum()) * bin_area
        wirelength = total_wirelength(placement)
        # RUDY integrates each net's HPWL over its box: totals must agree
        # up to the degenerate-box clipping.
        assert integrated == pytest.approx(wirelength, rel=0.15)

    def test_guardbands_shift_demand(self, placement):
        insertion = insert_domains(placement, GridPartition(2, 2))
        before = estimate_congestion(placement, bins=(8, 8))
        after = estimate_congestion(insertion.placement, bins=(8, 8))
        # The expanded die spreads the same wiring over more area: average
        # demand per bin drops even though wirelength grew.
        assert after.mean < before.mean

    def test_hotspot_is_argmax(self, placement):
        cmap = estimate_congestion(placement, bins=(6, 6))
        row, col = cmap.hotspot()
        assert cmap.demand[row, col] == cmap.peak

    def test_ascii_rendering(self, placement):
        cmap = estimate_congestion(placement, bins=(5, 7))
        text = cmap.format_text()
        lines = text.splitlines()
        assert len(lines) == 5
        assert all(len(line) == 7 + 2 for line in lines)

    def test_bin_validation(self, placement):
        with pytest.raises(ValueError):
            estimate_congestion(placement, bins=(0, 4))
