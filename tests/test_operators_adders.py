"""All adder generators: exhaustive small widths, random larger, hypothesis."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist.builder import NetlistBuilder
from repro.operators.adders import (
    brent_kung_adder,
    carry_select_adder,
    kogge_stone_adder,
    ripple_carry_adder,
    sign_extend,
    subtractor,
)
from repro.sim.simulator import LogicSimulator, SimulationMode
from repro.techlib.library import Library

LIBRARY = Library()
ADDERS = {
    "ripple": ripple_carry_adder,
    "kogge_stone": kogge_stone_adder,
    "brent_kung": brent_kung_adder,
    "carry_select": carry_select_adder,
}


def _build_adder(adder, width, with_cin=False):
    builder = NetlistBuilder(f"add{width}", LIBRARY)
    a = builder.input_bus("A", width)
    b = builder.input_bus("B", width)
    cin = builder.input_bus("CIN", 1)[0] if with_cin else None
    sums, cout = adder(builder, a, b, cin=cin)
    builder.output_bus("S", sums, signed=False)
    builder.output_bus("CO", [cout], signed=False)
    return LogicSimulator(builder.build(), SimulationMode.TRANSPARENT)


@pytest.mark.parametrize("name", sorted(ADDERS))
@pytest.mark.parametrize("width", [1, 2, 3, 4, 5])
def test_exhaustive_small_widths(name, width):
    sim = _build_adder(ADDERS[name], width)
    values = np.arange(1 << width)
    a, b = np.meshgrid(values, values)
    a, b = a.ravel(), b.ravel()
    out = sim.run_combinational({"A": a, "B": b})
    total = a + b
    assert np.array_equal(out["S"], total % (1 << width)), name
    assert np.array_equal(out["CO"], total >> width), name


@pytest.mark.parametrize("name", sorted(ADDERS))
def test_exhaustive_with_carry_in(name):
    width = 3
    sim = _build_adder(ADDERS[name], width, with_cin=True)
    rows = list(itertools.product(range(8), range(8), range(2)))
    a = np.asarray([r[0] for r in rows])
    b = np.asarray([r[1] for r in rows])
    cin = np.asarray([r[2] for r in rows])
    out = sim.run_combinational({"A": a, "B": b, "CIN": cin})
    total = a + b + cin
    assert np.array_equal(out["S"], total % 8)
    assert np.array_equal(out["CO"], total >> width)


@pytest.mark.parametrize("name", sorted(ADDERS))
def test_random_wide(name):
    width = 24
    sim = _build_adder(ADDERS[name], width)
    rng = np.random.default_rng(7)
    a = rng.integers(0, 1 << width, 500)
    b = rng.integers(0, 1 << width, 500)
    out = sim.run_combinational({"A": a, "B": b})
    total = a + b
    assert np.array_equal(out["S"], total % (1 << width))
    assert np.array_equal(out["CO"], total >> width)


@settings(max_examples=30, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=(1 << 16) - 1),
    b=st.integers(min_value=0, max_value=(1 << 16) - 1),
)
def test_carry_select_matches_ripple_property(a, b):
    """The fast adder and the trivially-correct one always agree."""
    sim_fast = _build_adder(carry_select_adder, 16)
    sim_slow = _build_adder(ripple_carry_adder, 16)
    fast = sim_fast.run_combinational({"A": [a], "B": [b]})
    slow = sim_slow.run_combinational({"A": [a], "B": [b]})
    assert fast["S"][0] == slow["S"][0]
    assert fast["CO"][0] == slow["CO"][0]


def test_subtractor():
    builder = NetlistBuilder("sub4", LIBRARY)
    a = builder.input_bus("A", 4)
    b = builder.input_bus("B", 4)
    diff, _ = subtractor(builder, a, b)
    builder.output_bus("D", diff)
    sim = LogicSimulator(builder.build(), SimulationMode.TRANSPARENT)
    values = np.arange(-8, 8)
    a_v, b_v = np.meshgrid(values, values)
    a_v, b_v = a_v.ravel(), b_v.ravel()
    out = sim.run_combinational({"A": a_v, "B": b_v})["D"]
    expected = a_v - b_v
    expected = np.mod(expected + 8, 16) - 8  # wrap to signed 4-bit
    assert np.array_equal(out, expected)


class TestStructure:
    def test_width_mismatch_rejected(self):
        builder = NetlistBuilder("t", LIBRARY)
        a = builder.input_bus("A", 4)
        b = builder.input_bus("B", 3)
        with pytest.raises(ValueError, match="widths differ"):
            ripple_carry_adder(builder, a, b)

    def test_zero_width_rejected(self):
        builder = NetlistBuilder("t", LIBRARY)
        with pytest.raises(ValueError, match="zero-width"):
            ripple_carry_adder(builder, [], [])

    def test_carry_select_block_size_validated(self):
        builder = NetlistBuilder("t", LIBRARY)
        a = builder.input_bus("A", 4)
        b = builder.input_bus("B", 4)
        with pytest.raises(ValueError, match="block_size"):
            carry_select_adder(builder, a, b, block_size=0)

    def test_sign_extend_adds_no_gates(self):
        builder = NetlistBuilder("t", LIBRARY)
        a = builder.input_bus("A", 4)
        before = len(builder.netlist.cells)
        extended = sign_extend(a, 8)
        assert len(builder.netlist.cells) == before
        assert len(extended) == 8
        assert all(net is a[3] for net in extended[4:])

    def test_sign_extend_rejects_shrink(self):
        builder = NetlistBuilder("t", LIBRARY)
        a = builder.input_bus("A", 4)
        with pytest.raises(ValueError):
            sign_extend(a, 2)

    def test_brent_kung_smaller_than_kogge_stone(self):
        sizes = {}
        for name in ("kogge_stone", "brent_kung"):
            builder = NetlistBuilder("t", LIBRARY)
            a = builder.input_bus("A", 32)
            b = builder.input_bus("B", 32)
            ADDERS[name](builder, a, b)
            sizes[name] = len(builder.netlist.cells)
        assert sizes["brent_kung"] < sizes["kogge_stone"]
