"""Timed event-driven simulation and glitch activity."""

import numpy as np
import pytest

from repro.netlist.builder import NetlistBuilder
from repro.operators import booth_multiplier
from repro.sim.event import (
    GlitchReport,
    TimedEventSimulator,
    measure_glitch_activity,
)
from repro.techlib.library import Library

LIBRARY = Library()


def _settled_state(simulator, words):
    values = {n.index: False for n in simulator.netlist.nets}
    simulator._apply_words(values, words)
    simulator._settle(values)
    return values


class TestEventSimulator:
    def test_converges_to_settled_state(self):
        """Transition parity: a net toggles an odd number of times exactly
        when its settled value changed."""
        netlist = booth_multiplier(LIBRARY, width=6, registered=False)
        simulator = TimedEventSimulator(netlist)
        rng = np.random.default_rng(5)
        previous = {"A": 11, "B": -9}
        for _ in range(5):
            current = {
                "A": int(rng.integers(-32, 32)),
                "B": int(rng.integers(-32, 32)),
            }
            transitions = simulator.propagate(previous, current)
            before = _settled_state(simulator, previous)
            after = _settled_state(simulator, current)
            for net in netlist.nets:
                changed = before[net.index] != after[net.index]
                assert (transitions[net.index] % 2 == 1) == changed, net.name
            previous = current

    def test_identical_vectors_produce_no_events(self):
        netlist = booth_multiplier(LIBRARY, width=4, registered=False)
        simulator = TimedEventSimulator(netlist)
        words = {"A": 3, "B": -2}
        transitions = simulator.propagate(words, dict(words))
        assert transitions.sum() == 0

    def test_glitches_exceed_settled_toggles(self):
        """Unequal path delays must create some multi-toggle nets."""
        netlist = booth_multiplier(LIBRARY, width=6, registered=False)
        simulator = TimedEventSimulator(netlist)
        rng = np.random.default_rng(1)
        total_extra = 0
        previous = {"A": 0, "B": 0}
        for _ in range(8):
            current = {
                "A": int(rng.integers(-32, 32)),
                "B": int(rng.integers(-32, 32)),
            }
            transitions = simulator.propagate(previous, current)
            total_extra += int((transitions > 1).sum())
            previous = current
        assert total_extra > 0

    def test_single_gate_no_glitch(self):
        """A one-gate netlist cannot glitch."""
        builder = NetlistBuilder("t", LIBRARY)
        a = builder.input_bus("A", 2)
        builder.output_bus("Y", [builder.and2(a[0], a[1])], signed=False)
        simulator = TimedEventSimulator(builder.netlist)
        transitions = simulator.propagate({"A": 0}, {"A": 3})
        y_index = builder.netlist.output_buses["Y"].nets[0].index
        assert transitions[y_index] == 1


class TestGlitchReport:
    @pytest.fixture(scope="class")
    def report(self):
        netlist = booth_multiplier(LIBRARY, width=6, registered=False)
        return measure_glitch_activity(netlist, 6, samples=16)

    def test_glitch_factor_in_plausible_band(self, report):
        """Multipliers glitch: expect ~1.2x..4x the settled activity."""
        assert 1.1 < report.glitch_factor < 5.0

    def test_timed_never_below_settled(self, report):
        assert np.all(report.timed_rates >= report.settled_rates - 1e-9)

    def test_parity_consistency(self, report):
        """Excess transitions come in pulse pairs (even counts)."""
        excess = report.timed_rates - report.settled_rates
        # Average excess per pair of vectors is a multiple of 2/(pairs).
        pairs = report.samples - 1
        counts = np.round(excess * pairs).astype(int)
        assert np.all(counts % 2 == 0)

    def test_glitchiest_nets_ranked(self, report):
        top = report.glitchiest_nets(3)
        excess = report.timed_rates - report.settled_rates
        assert excess[top[0]] >= excess[top[1]] >= excess[top[2]]

    def test_sample_validation(self):
        netlist = booth_multiplier(LIBRARY, width=4, registered=False)
        with pytest.raises(ValueError, match="two samples"):
            measure_glitch_activity(netlist, 4, samples=1)

    def test_gating_reduces_absolute_glitching(self):
        netlist = booth_multiplier(LIBRARY, width=6, registered=False)
        full = measure_glitch_activity(netlist, 6, samples=12, seed=3)
        gated = measure_glitch_activity(netlist, 2, samples=12, seed=3)
        assert gated.timed_rates.sum() < full.timed_rates.sum()
