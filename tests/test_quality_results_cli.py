"""Quality-aware selection, JSON persistence and the CLI."""

import io
import json

import numpy as np
import pytest

from repro.core.config import ExplorationSettings
from repro.core.exploration import ExhaustiveExplorer
from repro.core.quality import (
    characterize_quality,
    select_mode_for_snr,
)
from repro.io.results import load_exploration, save_exploration
from repro.cli import build_parser, main

SETTINGS = ExplorationSettings(
    bitwidths=(2, 4, 6, 8), activity_cycles=12, activity_batch=12
)


@pytest.fixture(scope="module")
def exploration(booth8_domained):
    return ExhaustiveExplorer(booth8_domained).run(SETTINGS)


@pytest.fixture(scope="module")
def quality():
    return characterize_quality(
        lambda a, b: a * b, width=8, bitwidths=(2, 4, 6, 8)
    )


class TestQuality:
    def test_snr_monotone_in_bits(self, quality):
        snrs = [quality.reports[b].snr_db for b in (2, 4, 6, 8)]
        assert snrs == sorted(snrs)

    def test_min_bits_for_snr(self, quality):
        modest = quality.min_bits_for_snr(10.0)
        strict = quality.min_bits_for_snr(30.0)
        assert modest <= strict
        assert quality.reports[strict].snr_db >= 30.0

    def test_unreachable_snr_raises(self):
        # A table that stops short of full precision has a finite SNR cap.
        truncated = characterize_quality(
            lambda a, b: a * b, width=8, bitwidths=(2, 4, 6)
        )
        with pytest.raises(ValueError, match="no bitwidth"):
            truncated.min_bits_for_snr(1000.0)

    def test_min_bits_for_rmse(self, quality):
        bits = quality.min_bits_for_rmse(quality.reports[6].rmse + 1.0)
        assert bits <= 6

    def test_select_mode_combines_both_tables(self, exploration, quality):
        selection = select_mode_for_snr(exploration, quality, snr_db=15.0)
        assert selection.point.active_bits >= selection.required_bits
        assert "SNR" in selection.describe()
        # A stricter budget can only cost at least as much power.
        strict = select_mode_for_snr(exploration, quality, snr_db=35.0)
        assert strict.point.total_power_w >= selection.point.total_power_w

    def test_format_text(self, quality):
        text = quality.format_text()
        assert "SNR" in text and "RMSE" in text


class TestResultsJson:
    def test_roundtrip(self, exploration):
        stream = io.StringIO()
        save_exploration(exploration, stream)
        stream.seek(0)
        loaded = load_exploration(stream)
        assert loaded.design_name == exploration.design_name
        assert loaded.num_domains == exploration.num_domains
        assert loaded.points_evaluated == exploration.points_evaluated
        assert loaded.settings == exploration.settings
        assert sorted(loaded.best_per_bitwidth) == sorted(
            exploration.best_per_bitwidth
        )
        for bits, point in exploration.best_per_bitwidth.items():
            assert loaded.best_per_bitwidth[bits] == point
        assert loaded.best_per_knob_point == exploration.best_per_knob_point
        assert loaded.feasible_counts == exploration.feasible_counts

    def test_is_valid_json(self, exploration):
        stream = io.StringIO()
        save_exploration(exploration, stream)
        payload = json.loads(stream.getvalue())
        assert payload["schema"] == 1

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            load_exploration(io.StringIO('{"schema": 99}'))


class TestCli:
    def test_parser_has_all_commands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("explore", "compare", "report-timing", "characterize"):
            assert command in text

    def test_characterize_runs(self, capsys):
        assert main(["characterize"]) == 0
        out = capsys.readouterr().out
        assert "NAND2" in out

    def test_characterize_writes_liberty(self, tmp_path):
        path = tmp_path / "out.lib"
        assert main(["characterize", "--lib", str(path)]) == 0
        assert path.read_text().startswith("library (")

    def test_explore_small_design(self, capsys, tmp_path):
        out_json = tmp_path / "modes.json"
        code = main(
            [
                "explore", "--design", "adder", "--width", "4",
                "--grid", "1x2", "--output", str(out_json),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "explored" in out
        saved = json.loads(out_json.read_text())
        assert saved["design_name"].startswith("adder")

    def test_report_timing_runs(self, capsys):
        code = main(
            [
                "report-timing", "--design", "adder", "--width", "4",
                "--paths", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "data arrival" in out

    def test_unknown_design_rejected(self):
        with pytest.raises(SystemExit):
            main(["explore", "--design", "gpu"])

    def test_bad_grid_rejected(self):
        with pytest.raises(SystemExit):
            main(["explore", "--design", "adder", "--grid", "circle"])
