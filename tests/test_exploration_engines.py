"""Cross-engine lock-in of the exploration flow.

The simulation engine is an execution knob, not a semantic one: switching
``sim_engine`` between interpreted and packed must not move a single bit
of the exploration results -- serially, through the parallel sharded
engine, and through warm and cold persistent caches.  (The persistent
cache *fingerprint* does include the engine choice, so warmed entries are
never shared across engines; the results still must agree.)
"""

import dataclasses

import pytest

from repro.core.config import ExplorationSettings
from repro.core.exploration import ExhaustiveExplorer
from repro.core.flow import implement_with_domains
from repro.operators import booth_multiplier, fir_filter
from repro.operators.fir import FirParameters
from repro.pnr.grid import GridPartition
from repro.sim.activity import clear_activity_cache
from tests.test_parallel_differential import assert_identical

SETTINGS = ExplorationSettings(
    bitwidths=(2, 3, 4, 6),
    activity_cycles=10,
    activity_batch=8,
    sim_engine="interpreted",
)

OPERATORS = ["booth", "fir"]


@pytest.fixture(scope="module")
def designs(library):
    built = {}
    factories = {
        "booth": lambda: booth_multiplier(library, width=6, name="eng_boo"),
        "fir": lambda: fir_filter(
            library, FirParameters(taps=4, width=6), name="eng_fir"
        ),
    }
    for op, grid in (("booth", (2, 2)), ("fir", (2, 1))):
        built[op] = implement_with_domains(
            factories[op], library, GridPartition(*grid)
        )
    return built


@pytest.fixture(scope="module")
def interpreted_reference(designs):
    clear_activity_cache()
    return {
        op: ExhaustiveExplorer(design).run(SETTINGS)
        for op, design in designs.items()
    }


def test_sim_engine_validated():
    with pytest.raises(ValueError, match="sim_engine"):
        ExplorationSettings(sim_engine="simd")


def test_sim_engine_is_semantic():
    """The engine choice must show up in cache fingerprints."""
    assert "sim_engine" in SETTINGS.semantic_fields()


@pytest.mark.parametrize("operator", OPERATORS)
@pytest.mark.parametrize("engine", ["packed", "auto"])
def test_serial_exploration_engine_invariant(
    operator, engine, designs, interpreted_reference
):
    clear_activity_cache()
    settings = dataclasses.replace(SETTINGS, sim_engine=engine)
    result = ExhaustiveExplorer(designs[operator]).run(settings)
    assert_identical(interpreted_reference[operator], result)


@pytest.mark.parametrize("operator", OPERATORS)
@pytest.mark.parametrize("cache_mode", ["cold", "warm"])
def test_parallel_sharded_engine_invariant(
    operator, cache_mode, designs, interpreted_reference, tmp_path
):
    """The packed engine through the sharded parallel path, with a cold
    and a warmed persistent cache, agrees with the serial interpreted
    reference bit for bit."""
    clear_activity_cache()
    settings = dataclasses.replace(
        SETTINGS,
        sim_engine="packed",
        workers=2,
        cache=True,
        cache_dir=str(tmp_path),
    )
    explorer = ExhaustiveExplorer(designs[operator])
    result = explorer.run(settings)
    if cache_mode == "warm":
        first = result
        assert first.cache_stats.misses > 0 and first.cache_stats.hits == 0
        result = explorer.run(settings)
        assert result.cache_stats.hits == first.cache_stats.misses
        assert result.cache_stats.misses == 0
    assert_identical(interpreted_reference[operator], result)


def test_cache_entries_not_shared_across_engines(designs, tmp_path):
    """Switching engines against the same cache dir re-misses: the
    fingerprint keys on the engine choice (schema 2)."""
    clear_activity_cache()
    base = dataclasses.replace(
        SETTINGS, workers=1, cache=True, cache_dir=str(tmp_path)
    )
    explorer = ExhaustiveExplorer(designs["booth"])
    warmed = explorer.run(base)
    assert warmed.cache_stats.misses > 0
    switched = explorer.run(dataclasses.replace(base, sim_engine="packed"))
    assert switched.cache_stats.hits == 0
    assert switched.cache_stats.misses == warmed.cache_stats.misses
    assert_identical(warmed, switched)


def test_sta_engine_validated():
    with pytest.raises(ValueError, match="sta_engine"):
        ExplorationSettings(sta_engine="quantum")


@pytest.mark.parametrize("operator", OPERATORS)
def test_sta_engine_invariant_through_parallel_path(
    operator, designs, interpreted_reference, tmp_path
):
    """Both STA engines, through the sharded parallel path with a
    persistent cache, agree with the serial reference bit for bit."""
    for sta_engine in ("lattice", "pointwise"):
        clear_activity_cache()
        settings = dataclasses.replace(
            SETTINGS,
            sta_engine=sta_engine,
            workers=2,
            cache=True,
            cache_dir=str(tmp_path),
        )
        result = ExhaustiveExplorer(designs[operator]).run(settings)
        assert_identical(interpreted_reference[operator], result)


def test_cache_entries_not_shared_across_sta_engines(designs, tmp_path):
    """Lattice and pointwise shards coexist in one cache dir but never
    cross-serve: the fingerprint keys on the resolved STA engine."""
    clear_activity_cache()
    base = dataclasses.replace(
        SETTINGS,
        workers=1,
        cache=True,
        cache_dir=str(tmp_path),
        sta_engine="lattice",
    )
    explorer = ExhaustiveExplorer(designs["booth"])
    warmed = explorer.run(base)
    assert warmed.cache_stats.misses > 0
    switched = explorer.run(
        dataclasses.replace(base, sta_engine="pointwise")
    )
    assert switched.cache_stats.hits == 0
    assert switched.cache_stats.misses == warmed.cache_stats.misses
    assert_identical(warmed, switched)
    # "auto" resolves to lattice and must re-hit the lattice entries.
    rerun = explorer.run(dataclasses.replace(base, sta_engine="auto"))
    assert rerun.cache_stats.misses == 0
    assert rerun.cache_stats.hits == warmed.cache_stats.misses
    assert_identical(warmed, rerun)
