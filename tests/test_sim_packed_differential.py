"""Differential lock-in of the packed simulation engine.

The contract under test: the compiled bit-packed engine of
:mod:`repro.sim.packed` is *bit-identical* to the interpreted reference
simulator on every API -- combinational evaluation, cycle-accurate
traces, streaming toggle rates and memoized activity reports -- for any
netlist it accepts, at any batch size (including non-multiples of the
64-lane word).  Netlists are generated with hypothesis over the full
combinational cell mix plus registers; the FIR covers real sequential
feedback (delay line + accumulator).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.sim.activity as activity_module
from repro.netlist.builder import NetlistBuilder
from repro.operators import booth_multiplier, fir_filter
from repro.operators.fir import FirParameters
from repro.sim.activity import (
    activity_cache_size,
    clear_activity_cache,
    measure_activity,
)
from repro.sim.packed import (
    PackedCompileError,
    lane_mask,
    pack_lanes,
    popcount_rows,
    unpack_lanes,
    words_for,
)
from repro.sim.simulator import (
    ENGINE_ENV_VAR,
    LogicSimulator,
    SimulationMode,
    resolve_engine_request,
)
from repro.sim.vectors import random_words
from repro.techlib.cells import CellTemplate
from repro.techlib.library import Library

LIBRARY = Library()

#: Batch sizes straddling the 64-lane word boundary.
BATCHES = [1, 3, 63, 64, 65, 130]

_UNARY = ("INV", "BUF")
_BINARY = ("AND2", "OR2", "NAND2", "NOR2", "XOR2", "XNOR2")
_TERNARY = ("AND3", "OR3", "NAND3", "NOR3", "AOI21", "OAI21", "MUX2")


# ---------------------------------------------------------------------------
# Random-netlist strategies
# ---------------------------------------------------------------------------


@st.composite
def _netlists(draw, sequential: bool):
    """A random netlist over the full packed cell mix.

    With *sequential*, register stages are interleaved with the logic, so
    later gates consume state from earlier cycles (registered feedback).
    """
    width = draw(st.integers(min_value=2, max_value=5))
    builder = NetlistBuilder("rand", LIBRARY)
    if sequential:
        builder.clock()
    pool = list(builder.input_bus("A", width))
    if draw(st.booleans()):
        pool += builder.input_bus("B", draw(st.integers(1, 4)))
    if draw(st.booleans()):
        pool.append(builder.const(draw(st.booleans())))

    kinds = ["u", "b", "t", "ha", "fa"] + (["dff"] * 2 if sequential else [])
    num_gates = draw(st.integers(min_value=3, max_value=20))
    for _ in range(num_gates):
        kind = draw(st.sampled_from(kinds))
        pick = lambda: pool[draw(st.integers(0, len(pool) - 1))]
        if kind == "u":
            pool.append(builder.gate(draw(st.sampled_from(_UNARY)), pick()))
        elif kind == "b":
            pool.append(
                builder.gate(draw(st.sampled_from(_BINARY)), pick(), pick())
            )
        elif kind == "t":
            pool.append(
                builder.gate(
                    draw(st.sampled_from(_TERNARY)), pick(), pick(), pick()
                )
            )
        elif kind == "ha":
            pool.extend(builder.half_adder(pick(), pick()))
        elif kind == "fa":
            pool.extend(builder.full_adder(pick(), pick(), pick()))
        else:
            pool.append(builder.dff(pick()))

    out_width = min(len(pool), width + 2)
    builder.output_bus("Y", pool[-out_width:], signed=draw(st.booleans()))
    return builder.build()


def _stimulus(netlist, batch, rng):
    """One cycle of random full-range signed stimulus for every input bus."""
    return {
        name: random_words(rng, batch, bus.width, signed=True)
        for name, bus in netlist.input_buses.items()
    }


def _both_engines(netlist, mode):
    interpreted = LogicSimulator(netlist, mode, engine="interpreted")
    packed = LogicSimulator(netlist, mode, engine="packed")
    assert interpreted.engine == "interpreted"
    assert packed.engine == "packed"
    return interpreted, packed


# ---------------------------------------------------------------------------
# Engine differential on random netlists
# ---------------------------------------------------------------------------


class TestEngineDifferential:
    @settings(max_examples=40, deadline=None)
    @given(
        netlist=_netlists(sequential=False),
        batch=st.sampled_from(BATCHES),
        seed=st.integers(0, 2**16),
    )
    def test_combinational_bit_identical(self, netlist, batch, seed):
        interpreted, packed = _both_engines(
            netlist, SimulationMode.TRANSPARENT
        )
        inputs = _stimulus(netlist, batch, np.random.default_rng(seed))
        reference = interpreted.run_combinational(inputs)
        result = packed.run_combinational(inputs)
        assert set(result) == set(reference)
        for name in reference:
            np.testing.assert_array_equal(result[name], reference[name])

    @settings(max_examples=25, deadline=None)
    @given(
        netlist=_netlists(sequential=True),
        batch=st.sampled_from([1, 3, 64, 65]),
        cycles=st.integers(3, 6),
        seed=st.integers(0, 2**16),
    )
    def test_cycle_trace_bit_identical(self, netlist, batch, cycles, seed):
        interpreted, packed = _both_engines(netlist, SimulationMode.CYCLE)
        rng = np.random.default_rng(seed)
        stimulus = [_stimulus(netlist, batch, rng) for _ in range(cycles)]
        reference = interpreted.run_cycles(stimulus, collect_net_values=True)
        result = packed.run_cycles(stimulus, collect_net_values=True)
        for cycle in range(cycles):
            for name in reference.outputs_per_cycle[cycle]:
                np.testing.assert_array_equal(
                    result.output(name, cycle), reference.output(name, cycle)
                )
            np.testing.assert_array_equal(
                result.net_values_per_cycle[cycle],
                reference.net_values_per_cycle[cycle],
            )

    @settings(max_examples=25, deadline=None)
    @given(
        netlist=_netlists(sequential=True),
        batch=st.sampled_from([1, 3, 64, 65]),
        warmup=st.integers(0, 2),
        seed=st.integers(0, 2**16),
    )
    def test_toggle_rates_bit_identical(self, netlist, batch, warmup, seed):
        interpreted, packed = _both_engines(netlist, SimulationMode.CYCLE)
        rng = np.random.default_rng(seed)
        stimulus = [_stimulus(netlist, batch, rng) for _ in range(warmup + 4)]
        reference = interpreted.toggle_rates(stimulus, warmup_cycles=warmup)
        result = packed.toggle_rates(stimulus, warmup_cycles=warmup)
        np.testing.assert_array_equal(result, reference)


class TestOperatorDifferential:
    """The same contract on real Table 1 operators."""

    @pytest.fixture(scope="class")
    def booth6(self):
        return booth_multiplier(LIBRARY, width=6, name="pk_booth6")

    @pytest.fixture(scope="class")
    def fir6(self):
        return fir_filter(LIBRARY, FirParameters(taps=4, width=6), name="pk_fir6")

    @pytest.mark.parametrize("batch", BATCHES)
    def test_booth_cycle_all_batch_sizes(self, booth6, batch):
        interpreted, packed = _both_engines(booth6, SimulationMode.CYCLE)
        rng = np.random.default_rng(7 * batch + 1)
        stimulus = [_stimulus(booth6, batch, rng) for _ in range(5)]
        reference = interpreted.run_cycles(stimulus)
        result = packed.run_cycles(stimulus)
        for cycle in range(5):
            np.testing.assert_array_equal(
                result.output("P", cycle), reference.output("P", cycle)
            )
        np.testing.assert_array_equal(
            packed.toggle_rates(stimulus, warmup_cycles=1),
            interpreted.toggle_rates(stimulus, warmup_cycles=1),
        )

    def test_fir_sequential_feedback(self, fir6):
        """Accumulator/delay-line feedback through the packed state rows."""
        interpreted, packed = _both_engines(fir6, SimulationMode.CYCLE)
        rng = np.random.default_rng(99)
        stimulus = [_stimulus(fir6, 13, rng) for _ in range(8)]
        reference = interpreted.run_cycles(stimulus)
        result = packed.run_cycles(stimulus)
        for cycle in range(8):
            for name in reference.outputs_per_cycle[cycle]:
                np.testing.assert_array_equal(
                    result.output(name, cycle), reference.output(name, cycle)
                )

    def test_streaming_matches_collected_matrix(self, booth6):
        """The packed streaming accumulator equals the trace-matrix path
        run on the same packed engine (not just the interpreted one)."""
        packed = LogicSimulator(
            booth6, SimulationMode.CYCLE, engine="packed"
        )
        rng = np.random.default_rng(5)
        stimulus = [_stimulus(booth6, 13, rng) for _ in range(6)]
        trace = packed.run_cycles(stimulus, collect_net_values=True)
        trace.net_values_per_cycle = trace.net_values_per_cycle[2:]
        np.testing.assert_array_equal(
            packed.toggle_rates(stimulus, warmup_cycles=2),
            trace.toggle_counts(),
        )

    @pytest.mark.parametrize("active_bits", [2, 6])
    def test_measure_activity_cross_engine(self, fir6, active_bits):
        """DVAS-gated activity reports are engine-independent, bit for bit."""
        clear_activity_cache()
        reference = measure_activity(
            fir6, active_bits, cycles=10, batch=13, engine="interpreted"
        )
        result = measure_activity(
            fir6, active_bits, cycles=10, batch=13, engine="packed"
        )
        np.testing.assert_array_equal(result.rates, reference.rates)
        clear_activity_cache()


# ---------------------------------------------------------------------------
# Engine selection and fallback
# ---------------------------------------------------------------------------


def _netlist_with_unsupported_template():
    """A netlist using a template the packed engine has no op for."""
    builder = NetlistBuilder("weird", LIBRARY)
    a, b, c = builder.input_bus("A", 3)
    majority = CellTemplate(
        name="MAJ3",
        inputs=("A", "B", "C"),
        outputs=("Z",),
        evaluate=lambda a, b, c: ((a & b) | (b & c) | (a & c),),
        drives=LIBRARY.template("AND3").drives,
    )
    netlist = builder.build()
    out = netlist.add_net("maj_z")
    netlist.add_cell("maj0", majority, [a, b, c], [out])
    netlist.mark_output_bus("Y", [out], signed=False)
    return netlist


class TestEngineSelection:
    def test_auto_falls_back_on_unsupported_template(self):
        netlist = _netlist_with_unsupported_template()
        simulator = LogicSimulator(
            netlist, SimulationMode.TRANSPARENT, engine="auto"
        )
        assert simulator.engine == "interpreted"
        out = simulator.run_combinational({"A": np.array([0, 3, 5, 7])})
        np.testing.assert_array_equal(out["Y"], [0, 1, 1, 1])

    def test_explicit_packed_raises_on_unsupported_template(self):
        netlist = _netlist_with_unsupported_template()
        with pytest.raises(PackedCompileError, match="MAJ3"):
            LogicSimulator(netlist, SimulationMode.TRANSPARENT, engine="packed")

    def test_env_var_selects_engine(self, monkeypatch):
        netlist = booth_multiplier(LIBRARY, width=4, name="pk_env4")
        monkeypatch.setenv(ENGINE_ENV_VAR, "interpreted")
        assert LogicSimulator(netlist, SimulationMode.CYCLE).engine == (
            "interpreted"
        )
        monkeypatch.setenv(ENGINE_ENV_VAR, "packed")
        assert LogicSimulator(netlist, SimulationMode.CYCLE).engine == "packed"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown simulation engine"):
            resolve_engine_request("vectorized")


# ---------------------------------------------------------------------------
# Bitplane packing primitives
# ---------------------------------------------------------------------------


class TestPackingPrimitives:
    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.integers(1, 5),
        batch=st.sampled_from(BATCHES),
        seed=st.integers(0, 2**16),
    )
    def test_pack_unpack_roundtrip(self, rows, batch, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=(rows, batch)).astype(bool)
        packed = pack_lanes(bits)
        assert packed.shape == (rows, words_for(batch))
        np.testing.assert_array_equal(unpack_lanes(packed, batch), bits)

    @settings(max_examples=40, deadline=None)
    @given(rows=st.integers(1, 4), batch=st.sampled_from(BATCHES))
    def test_popcount_rows(self, rows, batch):
        rng = np.random.default_rng(rows * 1000 + batch)
        bits = rng.integers(0, 2, size=(rows, batch)).astype(bool)
        counts = popcount_rows(pack_lanes(bits))
        np.testing.assert_array_equal(counts, bits.sum(axis=1))

    @pytest.mark.parametrize("batch", BATCHES)
    def test_lane_mask_covers_exactly_the_batch(self, batch):
        mask = lane_mask(batch)
        assert mask.shape == (words_for(batch),)
        as_bits = unpack_lanes(mask[None, :], words_for(batch) * 64)[0]
        assert as_bits[:batch].all()
        assert not as_bits[batch:].any()


# ---------------------------------------------------------------------------
# Activity cache: content fingerprint + LRU bound
# ---------------------------------------------------------------------------


def _tiny_netlist(op: str):
    """Two structurally different netlists with identical name and counts."""
    builder = NetlistBuilder("twin", LIBRARY)
    a, b = builder.input_bus("A", 2)
    builder.clock()
    builder.output_bus("Y", [builder.dff(builder.gate(op, a, b))], signed=False)
    return builder.build()


class TestActivityCache:
    def test_fingerprint_distinguishes_same_name_same_counts(self):
        """The old (name, num_nets) key collided here; the content
        fingerprint must not."""
        xor_net = _tiny_netlist("XOR2")
        and_net = _tiny_netlist("AND2")
        assert xor_net.content_fingerprint() != and_net.content_fingerprint()
        clear_activity_cache()
        xor_rates = measure_activity(xor_net, 2, cycles=8, batch=16).rates
        and_rates = measure_activity(and_net, 2, cycles=8, batch=16).rates
        assert activity_cache_size() == 2
        assert not np.array_equal(xor_rates, and_rates)
        clear_activity_cache()

    def test_fingerprint_stable_across_rebuilds(self):
        assert (
            _tiny_netlist("XOR2").content_fingerprint()
            == _tiny_netlist("XOR2").content_fingerprint()
        )

    def test_cache_hit_returns_same_report(self):
        clear_activity_cache()
        netlist = _tiny_netlist("XOR2")
        first = measure_activity(netlist, 2, cycles=8, batch=16)
        again = measure_activity(netlist, 2, cycles=8, batch=16)
        assert again is first
        assert activity_cache_size() == 1
        clear_activity_cache()

    def test_lru_bound_evicts_oldest(self, monkeypatch):
        monkeypatch.setattr(activity_module, "ACTIVITY_CACHE_LIMIT", 2)
        clear_activity_cache()
        netlist = _tiny_netlist("XOR2")
        first = measure_activity(netlist, 1, cycles=8, batch=16)
        measure_activity(netlist, 2, cycles=8, batch=16)
        # Touch mode 1 so mode 2 is the LRU entry, then overflow.
        assert measure_activity(netlist, 1, cycles=8, batch=16) is first
        measure_activity(netlist, 3, cycles=8, batch=16)
        assert activity_cache_size() == 2
        assert measure_activity(netlist, 1, cycles=8, batch=16) is first
        # Mode 2 was evicted: recomputing it is a miss (new object).
        second = measure_activity(netlist, 2, cycles=8, batch=16)
        assert activity_cache_size() == 2
        assert measure_activity(netlist, 2, cycles=8, batch=16) is second
        clear_activity_cache()
