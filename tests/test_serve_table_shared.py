"""Shared-memory ModeTable export: layout, lifecycle, crash hygiene."""

import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.serve.errors import ServeError
from repro.serve.table import (
    MODE_TABLE_SCHEMA,
    SHARED_TABLE_MAGIC,
    ModeTable,
    SharedModeTable,
    parse_counters,
)
from tests.conftest import build_margined_table, build_synthetic_table


class TestRoundTrip:
    def test_synthetic_table_round_trips_bit_identically(self):
        table = build_synthetic_table()
        with table.to_shared() as shared:
            with ModeTable.from_shared(shared.name) as attached:
                assert attached.table == table
                assert attached.table.margins is None

    def test_margined_table_round_trips_bit_identically(self):
        table = build_margined_table()
        with table.to_shared() as shared:
            with ModeTable.from_shared(shared.name) as attached:
                assert attached.table == table
                assert attached.table.margins == table.margins

    def test_learned_table_round_trips_bit_identically(self):
        from tests.conftest import build_learned_table

        table, result = build_learned_table()
        with table.to_shared() as shared:
            with ModeTable.from_shared(shared.name) as attached:
                assert attached.table == table
                assert attached.table.learned == result.spec

    def test_mode_insertion_order_preserved(self):
        # Power tie-breaks replay identically only if key order survives.
        table = build_synthetic_table()
        with table.to_shared() as shared:
            with SharedModeTable.attach(shared.name) as attached:
                assert list(attached.mode_keys) == list(table.modes)
                assert list(attached.table.modes) == list(table.modes)

    def test_matrices_are_zero_copy_views_and_exact(self):
        table = build_synthetic_table()
        keys = list(table.modes)
        with table.to_shared() as shared:
            with SharedModeTable.attach(shared.name) as attached:
                energy = attached.transition_energy_matrix
                settle = attached.transition_settle_matrix
                # Views map the segment, they don't own a copy.
                assert not energy.flags.owndata
                assert not settle.flags.owndata
                for i, a in enumerate(keys):
                    for j, b in enumerate(keys):
                        cost = table.transitions[(a, b)]
                        assert energy[i, j] == cost.energy_j
                        assert settle[i, j] == cost.settle_ns
                del energy, settle  # release views before unmapping

    def test_margin_matrix_exact_or_absent(self):
        plain = build_synthetic_table()
        with plain.to_shared() as shared:
            with SharedModeTable.attach(shared.name) as attached:
                assert attached.margin_matrix is None
        margined = build_margined_table()
        with margined.to_shared() as shared:
            with SharedModeTable.attach(shared.name) as attached:
                rows = attached.margin_matrix
                assert not rows.flags.owndata
                for row, bits in enumerate(margined.modes):
                    margin = margined.margins[bits]
                    assert rows[row, 0] == margin.guarded_slack_ps
                    assert rows[row, 5] == float(margin.samples)
                del rows  # release view before unmapping

    def test_attach_bumps_shared_counter_not_json(self):
        table = build_synthetic_table()
        with table.to_shared() as shared:
            before = parse_counters()
            with SharedModeTable.attach(shared.name) as attached:
                attached.table  # materialize: still no JSON parse
                after = parse_counters()
        assert after["shared"] == before["shared"] + 1
        assert after["json"] == before["json"]


class TestLifecycle:
    def test_refcount_tracks_attaches(self):
        table = build_synthetic_table()
        shared = table.to_shared()
        try:
            assert shared.attach_count == 1
            first = SharedModeTable.attach(shared.name)
            second = SharedModeTable.attach(shared.name)
            assert shared.attach_count == 3
            first.close()
            assert shared.attach_count == 2
            second.close()
            assert shared.attach_count == 1
        finally:
            shared.unlink()

    def test_close_is_idempotent(self):
        table = build_synthetic_table()
        shared = table.to_shared()
        attached = SharedModeTable.attach(shared.name)
        attached.close()
        attached.close()  # second close must not double-decrement
        assert shared.attach_count == 1
        shared.unlink()

    def test_closed_handle_refuses_access(self):
        table = build_synthetic_table()
        shared = table.to_shared()
        attached = SharedModeTable.attach(shared.name)
        attached.close()
        with pytest.raises(ServeError, match="closed"):
            attached.transition_energy_matrix
        with pytest.raises(ServeError, match="closed"):
            attached.table
        shared.unlink()

    def test_unlink_makes_segment_unattachable(self):
        table = build_synthetic_table()
        shared = table.to_shared()
        name = shared.name
        shared.unlink()
        with pytest.raises(ServeError, match="gone or already unlinked"):
            ModeTable.from_shared(name)

    def test_named_segment_and_size_reporting(self):
        table = build_synthetic_table()
        name = f"repro_test_{os.getpid()}"
        with table.to_shared(name=name) as shared:
            assert shared.name == name
            assert shared.size_bytes > 0


class TestValidation:
    def test_bad_magic_rejected(self):
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=256)
        try:
            shm.buf[0:8] = b"notatabl"
            with pytest.raises(ServeError, match="bad magic"):
                SharedModeTable.attach(shm.name)
        finally:
            shm.close()
            shm.unlink()

    def test_unknown_schema_rejected(self):
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=256)
        try:
            shm.buf[0:8] = SHARED_TABLE_MAGIC
            np.frombuffer(shm.buf, "<i8", count=1, offset=8)[0] = (
                MODE_TABLE_SCHEMA + 99
            )
            with pytest.raises(ServeError, match="unsupported"):
                SharedModeTable.attach(shm.name)
        finally:
            shm.close()
            shm.unlink()

    def test_inconsistent_bb_widths_refused(self):
        table = build_synthetic_table()
        modes = dict(table.modes)
        bits, point = next(iter(modes.items()))
        modes[bits] = type(point)(
            active_bits=point.active_bits,
            vdd=point.vdd,
            bb_config=point.bb_config + (True,),
            total_power_w=point.total_power_w,
            dynamic_power_w=point.dynamic_power_w,
            leakage_power_w=point.leakage_power_w,
            worst_slack_ps=point.worst_slack_ps,
        )
        lopsided = ModeTable(
            design_name=table.design_name,
            fclk_ghz=table.fclk_ghz,
            num_domains=table.num_domains,
            domain_areas_um2=table.domain_areas_um2,
            fbb_voltage=table.fbb_voltage,
            generator=table.generator,
            modes=modes,
            transitions=table.transitions,
            margins=table.margins,
        )
        with pytest.raises(ServeError, match="inconsistent bb_config"):
            lopsided.to_shared()


def _attach_and_die(name: str) -> None:
    ModeTable.from_shared(name)  # attach, never close
    os.kill(os.getpid(), signal.SIGKILL)


class TestCrashHygiene:
    def test_attacher_crash_neither_leaks_nor_tears_down(self):
        """A SIGKILLed attacher must not unlink the segment its peers map,
        and the owner's unlink must still remove it afterwards."""
        table = build_synthetic_table()
        shared = table.to_shared()
        context = multiprocessing.get_context("spawn")
        victim = context.Process(
            target=_attach_and_die, args=(shared.name,), daemon=True
        )
        victim.start()
        victim.join(timeout=30)
        assert victim.exitcode == -signal.SIGKILL
        # Segment survived the crash: peers can still attach...
        with SharedModeTable.attach(shared.name) as attached:
            assert attached.table == table
        # ...and the owner's unlink leaves nothing behind.
        name = shared.name
        shared.unlink()
        with pytest.raises(ServeError, match="gone or already unlinked"):
            SharedModeTable.attach(name)
