"""Histogram edge cases and the telemetry counter contract."""

import json

import numpy as np
import pytest

from repro.serve.telemetry import Histogram, Telemetry, geometric_bounds


class TestGeometricBounds:
    def test_covers_range_inclusive(self):
        bounds = geometric_bounds(1.0, 1e3, per_decade=1)
        assert bounds == pytest.approx([1.0, 10.0, 100.0, 1000.0])

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError, match="0 < lo < hi"):
            geometric_bounds(0.0, 10.0)
        with pytest.raises(ValueError, match="0 < lo < hi"):
            geometric_bounds(-1.0, 10.0)
        with pytest.raises(ValueError, match="0 < lo < hi"):
            geometric_bounds(10.0, 10.0)


class TestHistogramEdges:
    def test_empty_histogram_is_all_zero(self):
        hist = Histogram([1.0, 2.0])
        assert hist.total == 0
        assert hist.mean == 0.0
        assert hist.percentile(50.0) == 0.0
        assert hist.percentile(99.0) == 0.0
        snap = hist.to_dict()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None

    def test_single_sample_dominates_every_percentile(self):
        hist = Histogram([1.0, 10.0, 100.0])
        hist.record(5.0)
        assert hist.total == 1
        assert hist.mean == 5.0
        assert hist.min == hist.max == 5.0
        # Conservative estimate: the upper edge of the 5.0 bucket.
        assert hist.percentile(0.0) == 10.0
        assert hist.percentile(50.0) == 10.0
        assert hist.percentile(100.0) == 10.0

    def test_value_on_bucket_edge_lands_in_lower_bucket(self):
        hist = Histogram([1.0, 10.0, 100.0])
        hist.record(10.0)
        assert hist.counts == [0, 1, 0, 0]
        assert hist.percentile(50.0) == 10.0

    def test_overflow_bucket_reports_observed_max(self):
        hist = Histogram([1.0, 10.0])
        hist.record(12345.0)
        assert hist.counts[-1] == 1
        assert hist.percentile(99.0) == 12345.0

    def test_percentile_out_of_range_rejected(self):
        hist = Histogram([1.0])
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            hist.percentile(-0.1)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            hist.percentile(100.1)

    def test_bounds_must_be_ascending_and_non_empty(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram([])
        with pytest.raises(ValueError, match="ascending"):
            Histogram([2.0, 1.0])

    def test_moments_exact_percentiles_bucketed(self):
        hist = Histogram([1.0, 2.0, 4.0, 8.0])
        for value in [0.5, 1.5, 3.0, 3.5, 7.0]:
            hist.record(value)
        assert hist.mean == pytest.approx(3.1)
        assert hist.min == 0.5 and hist.max == 7.0
        assert hist.percentile(50.0) == 4.0
        assert hist.percentile(99.0) == 8.0

    def test_to_dict_is_json_ready(self):
        hist = Histogram([1.0, 2.0], unit="ns")
        hist.record(1.5)
        round_tripped = json.loads(json.dumps(hist.to_dict()))
        assert round_tripped["unit"] == "ns"
        assert round_tripped["counts"] == [0, 1, 0]


class TestRecordManyEdges:
    """The vectorized record path at the same edges as the scalar one."""

    def test_values_on_every_bound_land_in_lower_buckets(self):
        bounds = [1.0, 10.0, 100.0]
        scalar = Histogram(bounds)
        vector = Histogram(bounds)
        values = [1.0, 10.0, 100.0]
        for value in values:
            scalar.record(value)
        vector.record_many(np.array(values))
        assert vector.counts == scalar.counts == [1, 1, 1, 0]

    def test_underflow_and_overflow_buckets(self):
        hist = Histogram([1.0, 10.0])
        hist.record_many(np.array([0.25, 0.5, 11.0, 1e9]))
        assert hist.counts == [2, 0, 2]
        assert hist.min == 0.25 and hist.max == 1e9

    def test_empty_batch_is_a_no_op(self):
        hist = Histogram([1.0, 2.0])
        hist.record(1.5)
        before = hist.to_dict()
        hist.record_many(np.array([], dtype=np.float64))
        assert hist.to_dict() == before

    def test_min_max_merge_with_prior_scalar_records(self):
        hist = Histogram([1.0, 10.0, 100.0])
        hist.record(5.0)
        hist.record_many(np.array([50.0, 2.0]))
        assert hist.min == 2.0 and hist.max == 50.0
        hist.record_many(np.array([0.5]))
        assert hist.min == 0.5 and hist.max == 50.0

    def test_sum_folds_left_to_right_like_scalar(self):
        # Values chosen so pairwise (numpy) summation disagrees with a
        # sequential fold in the last ulp -- the bit-identity contract.
        values = [1e16, 1.0, 1.0, 1.0, -1e16, 1.0]
        scalar = Histogram([1.0])
        vector = Histogram([1.0])
        for value in values:
            scalar.record(value)
        vector.record_many(np.array(values))
        assert vector.sum == scalar.sum
        assert vector.to_dict() == scalar.to_dict()


class TestTelemetryCounters:
    def test_fleet_counters_present_from_birth(self):
        counters = Telemetry().counters
        assert counters["fleet_alerts"] == 0
        assert counters["fleet_retreats"] == 0

    def test_bump_accumulates_and_admits_new_counters(self):
        telemetry = Telemetry()
        telemetry.bump("fleet_alerts")
        telemetry.bump("fleet_alerts", 2)
        assert telemetry.counters["fleet_alerts"] == 3
        telemetry.bump("ad_hoc")
        assert telemetry.counters["ad_hoc"] == 1

    def test_snapshot_survives_json_round_trip(self):
        telemetry = Telemetry()
        telemetry.bump("fleet_alerts")
        telemetry.bump("fleet_retreats", 3)
        snap = json.loads(json.dumps(telemetry.snapshot()))
        assert snap["counters"]["fleet_alerts"] == 1
        assert snap["counters"]["fleet_retreats"] == 3
