"""STA engine: hand-checkable netlists, corners, case analysis, reports."""

import numpy as np
import pytest

from repro.netlist.builder import NetlistBuilder
from repro.operators import booth_multiplier
from repro.sta.caseanalysis import dvas_case
from repro.sta.constraints import ClockConstraint
from repro.sta.engine import StaEngine
from repro.sta.graph import compile_timing_graph
from repro.sta.histogram import slack_histogram
from repro.techlib.library import Library

LIBRARY = Library()


def _inverter_chain(length, width_bus=1):
    builder = NetlistBuilder(f"chain{length}", LIBRARY)
    a = builder.input_bus("A", 1)
    builder.clock()
    net = builder.register_word(a)[0]
    for _ in range(length):
        net = builder.inv(net)
    builder.output_bus("Y", builder.register_word([net]))
    return builder.build()


class TestArrivalPropagation:
    def test_chain_delay_is_sum_of_stages(self):
        netlist = _inverter_chain(4)
        graph = compile_timing_graph(netlist)
        engine = StaEngine(graph, LIBRARY)
        fbb = np.ones(graph.num_cells, bool)
        delay = engine.critical_path_delay(1.0, fbb)
        # clk-to-q + 4 inverters + the output flop's D load; all at the
        # reference corner, so reconstruct from the library data.
        dff = LIBRARY.template("DFF")
        inv = LIBRARY.template("INV").drives["X1"]
        stage_load = inv.input_cap_ff
        expected = (
            dff.clk_to_q_ps
            + 3 * (inv.intrinsic_delay_ps + inv.load_coeff_ps_per_ff * stage_load)
            + (inv.intrinsic_delay_ps
               + inv.load_coeff_ps_per_ff * dff.drives["X1"].input_cap_ff)
        )
        assert delay == pytest.approx(expected, rel=1e-6)

    def test_longer_chain_is_slower(self):
        short = _inverter_chain(3)
        long = _inverter_chain(9)
        d_short = StaEngine(
            compile_timing_graph(short), LIBRARY
        ).critical_path_delay(1.0, np.ones(len(short.cells), bool))
        d_long = StaEngine(
            compile_timing_graph(long), LIBRARY
        ).critical_path_delay(1.0, np.ones(len(long.cells), bool))
        assert d_long > d_short

    def test_corner_scaling(self):
        netlist = _inverter_chain(6)
        graph = compile_timing_graph(netlist)
        engine = StaEngine(graph, LIBRARY)
        fbb = np.ones(graph.num_cells, bool)
        nobb = np.zeros(graph.num_cells, bool)
        d_ref = engine.critical_path_delay(1.0, fbb)
        d_slow = engine.critical_path_delay(0.8, nobb)
        expected_ratio = LIBRARY.delay_factor(LIBRARY.nobb_corner(0.8))
        assert d_slow / d_ref == pytest.approx(expected_ratio, rel=1e-6)

    def test_mixed_vth_between_pure_corners(self):
        netlist = _inverter_chain(8)
        graph = compile_timing_graph(netlist)
        engine = StaEngine(graph, LIBRARY)
        fbb = np.ones(graph.num_cells, bool)
        nobb = np.zeros(graph.num_cells, bool)
        half = np.arange(graph.num_cells) % 2 == 0
        d_fbb = engine.critical_path_delay(1.0, fbb)
        d_half = engine.critical_path_delay(1.0, half)
        d_nobb = engine.critical_path_delay(1.0, nobb)
        assert d_fbb < d_half < d_nobb


class TestSlackAndFeasibility:
    def test_feasible_iff_period_exceeds_delay(self):
        netlist = _inverter_chain(5)
        graph = compile_timing_graph(netlist)
        engine = StaEngine(graph, LIBRARY)
        fbb = np.ones(graph.num_cells, bool)
        delay = engine.critical_path_delay(1.0, fbb)
        setup = LIBRARY.template("DFF").setup_ps
        ok = engine.analyze(ClockConstraint(delay + setup + 1.0), 1.0, fbb)
        bad = engine.analyze(ClockConstraint(delay + setup - 1.0), 1.0, fbb)
        assert ok.feasible
        assert not bad.feasible

    def test_required_times_consistent_with_slack(self):
        netlist = booth_multiplier(LIBRARY, width=6)
        graph = compile_timing_graph(netlist)
        engine = StaEngine(graph, LIBRARY)
        fbb = np.ones(graph.num_cells, bool)
        report = engine.analyze(ClockConstraint(2000.0), 1.0, fbb)
        net_slack = report.net_slack_ps()
        live = (report.arrival_ps > -1e29) & (report.required_ps < 1e29)
        # On live nets, slack = required - arrival must also be what the
        # endpoint slacks bound from below.
        assert net_slack[live].min() == pytest.approx(
            report.worst_slack_ps, abs=1e-6
        )

    def test_clock_uncertainty_tightens(self):
        netlist = _inverter_chain(5)
        graph = compile_timing_graph(netlist)
        engine = StaEngine(graph, LIBRARY)
        fbb = np.ones(graph.num_cells, bool)
        loose = engine.analyze(ClockConstraint(500.0), 1.0, fbb)
        tight = engine.analyze(
            ClockConstraint(500.0, uncertainty_ps=50.0), 1.0, fbb
        )
        assert tight.worst_slack_ps == pytest.approx(
            loose.worst_slack_ps - 50.0
        )


class TestCaseAnalysisIntegration:
    def test_gating_never_slows_the_design(self):
        netlist = booth_multiplier(LIBRARY, width=8)
        graph = compile_timing_graph(netlist)
        engine = StaEngine(graph, LIBRARY)
        fbb = np.ones(graph.num_cells, bool)
        delays = [
            engine.critical_path_delay(
                1.0, fbb, case=dvas_case(netlist, bits)
            )
            for bits in (8, 6, 4, 2, 1)
        ]
        assert all(b <= a + 1e-9 for a, b in zip(delays, delays[1:]))

    def test_path_class_counts(self):
        netlist = booth_multiplier(LIBRARY, width=8)
        graph = compile_timing_graph(netlist)
        engine = StaEngine(graph, LIBRARY)
        fbb = np.ones(graph.num_cells, bool)
        case = dvas_case(netlist, 4)
        full_delay = engine.critical_path_delay(1.0, fbb)
        report = engine.analyze(
            ClockConstraint(full_delay * 0.8), 1.0, fbb, case=case
        )
        counts = report.path_class_counts()
        assert counts["disabled"] > 0
        assert counts["positive_slack"] > 0
        total = sum(counts.values())
        assert total == len(graph.endpoint_nets)


class TestHistogram:
    def test_histogram_totals(self):
        netlist = booth_multiplier(LIBRARY, width=8)
        graph = compile_timing_graph(netlist)
        engine = StaEngine(graph, LIBRARY)
        fbb = np.ones(graph.num_cells, bool)
        report = engine.analyze(ClockConstraint(900.0), 1.0, fbb)
        hist = slack_histogram(report, num_bins=16)
        assert hist.counts.sum() == hist.total
        assert hist.total == int(np.count_nonzero(report.endpoint_active))

    def test_violations_detected_at_low_vdd(self):
        netlist = booth_multiplier(LIBRARY, width=8)
        graph = compile_timing_graph(netlist)
        engine = StaEngine(graph, LIBRARY)
        fbb = np.ones(graph.num_cells, bool)
        delay = engine.critical_path_delay(1.0, fbb)
        constraint = ClockConstraint(delay * 1.05)
        at_nominal = slack_histogram(engine.analyze(constraint, 1.0, fbb))
        scaled = slack_histogram(engine.analyze(constraint, 0.8, fbb))
        assert at_nominal.violating == 0
        assert scaled.violating > 0
        assert scaled.violating_fraction > at_nominal.violating_fraction

    def test_format_text_marks_violations(self):
        netlist = booth_multiplier(LIBRARY, width=8)
        graph = compile_timing_graph(netlist)
        engine = StaEngine(graph, LIBRARY)
        fbb = np.ones(graph.num_cells, bool)
        delay = engine.critical_path_delay(1.0, fbb)
        report = engine.analyze(ClockConstraint(delay * 0.9), 1.0, fbb)
        text = slack_histogram(report).format_text()
        assert "#" in text  # violating bins
        assert "violating endpoints:" in text

    def test_empty_histogram(self):
        netlist = booth_multiplier(LIBRARY, width=4)
        graph = compile_timing_graph(netlist)
        engine = StaEngine(graph, LIBRARY)
        fbb = np.ones(graph.num_cells, bool)
        case = dvas_case(netlist, 0)  # everything gated
        report = engine.analyze(ClockConstraint(1000.0), 1.0, fbb, case=case)
        hist = slack_histogram(report)
        assert hist.total == 0
        assert hist.violating_fraction == 0.0
