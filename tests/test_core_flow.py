"""Implementation flow: clock selection, closure, domain insertion."""

import numpy as np
import pytest

from repro.core.flow import (
    implement_base,
    implement_with_domains,
    select_clock_for,
)
from repro.pnr.grid import GridPartition
from repro.sta.engine import StaEngine


class TestBaseImplementation:
    def test_design_is_closed_at_fbb_nominal(self, booth8_base, library):
        design = booth8_base
        graph = design.timing_graph()
        engine = StaEngine(graph, library)
        report = engine.analyze(
            design.constraint, 1.0, np.ones(graph.num_cells, bool)
        )
        assert report.feasible

    def test_fclk_on_50mhz_grid(self, booth8_base):
        steps = round(booth8_base.fclk_ghz / 0.05)
        assert booth8_base.fclk_ghz == pytest.approx(steps * 0.05)

    def test_no_domains(self, booth8_base):
        assert booth8_base.num_domains == 1
        assert booth8_base.area_overhead == 0.0
        assert np.all(booth8_base.domains == 0)

    def test_describe_mentions_key_facts(self, booth8_base):
        text = booth8_base.describe()
        assert "GHz" in text and "cells" in text

    def test_nobb_infeasible_at_nominal_full_width(self, booth8_base, library):
        """The paper's premise: timing closes only with the boost on."""
        design = booth8_base
        graph = design.timing_graph()
        engine = StaEngine(graph, library)
        report = engine.analyze(
            design.constraint, 1.0, np.zeros(graph.num_cells, bool)
        )
        assert not report.feasible


class TestDomainedImplementation:
    def test_same_clock_as_base(self, booth8_base, booth8_domained):
        assert booth8_domained.constraint == booth8_base.constraint

    def test_domains_cover_grid(self, booth8_domained):
        assert booth8_domained.num_domains == 4
        assert set(np.unique(booth8_domained.domains)) <= {0, 1, 2, 3}

    def test_area_overhead_in_paper_range(self, booth8_domained):
        # Table I: 15-17% for the paper's 2x2/3x3 configurations.
        assert 0.05 < booth8_domained.area_overhead < 0.45

    def test_closed_at_all_fbb(self, booth8_domained, library):
        design = booth8_domained
        graph = design.timing_graph()
        engine = StaEngine(graph, library)
        report = engine.analyze(
            design.constraint, 1.0, np.ones(graph.num_cells, bool)
        )
        assert report.feasible

    def test_die_larger_than_base(self, booth8_base, booth8_domained):
        assert booth8_domained.area_um2 > booth8_base.area_um2


class TestClockSelection:
    def test_deterministic(self, library, booth8_factory):
        a = select_clock_for(booth8_factory, library)
        b = select_clock_for(booth8_factory, library)
        assert a.period_ps == pytest.approx(b.period_ps)

    def test_impossible_netlist_raises(self, library, booth8_factory):
        with pytest.raises(RuntimeError, match="cannot close timing"):
            implement_base(
                booth8_factory,
                library,
                constraint=__import__(
                    "repro.sta.constraints", fromlist=["ClockConstraint"]
                ).ClockConstraint(10.0),
            )
