"""Simulation-based equivalence checking."""

import pytest

from repro.netlist.builder import NetlistBuilder
from repro.netlist.equivalence import check_equivalent
from repro.netlist.transform import buffer_high_fanout
from repro.operators import booth_multiplier
from repro.operators.adders import (
    brent_kung_adder,
    carry_select_adder,
    kogge_stone_adder,
    ripple_carry_adder,
)
from repro.techlib.library import Library

LIBRARY = Library()


def _adder_netlist(adder, width, name):
    builder = NetlistBuilder(name, LIBRARY)
    a = builder.input_bus("A", width)
    b = builder.input_bus("B", width)
    sums, cout = adder(builder, a, b)
    builder.output_bus("S", sums, signed=False)
    builder.output_bus("CO", [cout], signed=False)
    return builder.build()


class TestEquivalent:
    def test_adder_architectures_exhaustive(self):
        """All four adder architectures are one function (5-bit, 1024
        vectors, exhaustive)."""
        reference = _adder_netlist(ripple_carry_adder, 5, "ref")
        for adder in (kogge_stone_adder, brent_kung_adder, carry_select_adder):
            revised = _adder_netlist(adder, 5, adder.__name__)
            result = check_equivalent(reference, revised)
            assert result
            assert result.exhaustive
            assert "equivalent" in result.describe()

    def test_buffering_is_equivalence_preserving(self):
        golden = booth_multiplier(LIBRARY, width=8, registered=False,
                                  name="eq_gold")
        revised = booth_multiplier(LIBRARY, width=8, registered=False,
                                   name="eq_buf")
        buffer_high_fanout(revised, max_fanout=4)
        result = check_equivalent(golden, revised, max_vectors=800)
        assert result
        assert not result.exhaustive
        assert result.vectors == 800

    def test_resizing_is_equivalence_preserving(self):
        golden = booth_multiplier(LIBRARY, width=6, registered=False,
                                  name="eq_g2")
        revised = booth_multiplier(LIBRARY, width=6, registered=False,
                                   name="eq_r2")
        for cell in revised.cells[::3]:
            cell.set_drive("X4")
        assert check_equivalent(golden, revised, max_vectors=500)


class TestNotEquivalent:
    def test_detects_wrong_function_with_counterexample(self):
        builder_a = NetlistBuilder("and_gate", LIBRARY)
        a = builder_a.input_bus("A", 2)
        builder_a.output_bus("Y", [builder_a.and2(a[0], a[1])], signed=False)

        builder_b = NetlistBuilder("or_gate", LIBRARY)
        b = builder_b.input_bus("A", 2)
        builder_b.output_bus("Y", [builder_b.or2(b[0], b[1])], signed=False)

        result = check_equivalent(builder_a.build(), builder_b.build())
        assert not result
        assert result.mismatched_bus == "Y"
        # AND != OR exactly on the one-hot inputs.
        assert result.counterexample["A"] in (1, 2)
        assert "NOT equivalent" in result.describe()

    def test_interface_mismatch_rejected(self):
        narrow = _adder_netlist(ripple_carry_adder, 4, "narrow")
        wide = _adder_netlist(ripple_carry_adder, 5, "wide")
        with pytest.raises(ValueError, match="interface mismatch"):
            check_equivalent(narrow, wide)
