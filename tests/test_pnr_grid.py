"""Regular-grid Vth-domain partitioning and guardband geometry."""

import numpy as np
import pytest

from repro.operators import booth_multiplier
from repro.pnr.floorplan import Floorplan
from repro.pnr.grid import (
    GridPartition,
    area_overhead,
    assign_domains,
    guardband_geometry,
    insert_domains,
)
from repro.pnr.incremental import domain_boxes, incremental_place
from repro.pnr.placer import GlobalPlacer
from repro.techlib.fdsoi import NOMINAL_PROCESS
from repro.techlib.library import Library

LIBRARY = Library()


@pytest.fixture(scope="module")
def placement():
    return GlobalPlacer(booth_multiplier(LIBRARY, width=8), seed=3).run()


class TestGridPartition:
    def test_labels_and_counts(self):
        assert GridPartition(2, 2).label == "2x2"
        assert GridPartition(3, 3).num_domains == 9
        assert GridPartition(1, 2).num_domains == 2

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            GridPartition(0, 2)

    def test_domain_of(self):
        grid = GridPartition(2, 3)
        assert grid.domain_of(0, 0) == 0
        assert grid.domain_of(1, 2) == 5
        with pytest.raises(ValueError):
            grid.domain_of(2, 0)


class TestGuardbands:
    def test_geometry_row_quantization(self):
        gx, gy = guardband_geometry(NOMINAL_PROCESS)
        assert gx == pytest.approx(3.5)
        # 3.5 um rounded up to whole 1.2 um rows -> 3 rows = 3.6 um.
        assert gy == pytest.approx(3.6)

    def test_overhead_grows_with_domains(self):
        plan = Floorplan(50.0, 50.4, 1.2)
        overheads = [
            area_overhead(plan, GridPartition(*g))
            for g in ((1, 1), (1, 2), (2, 2), (3, 3))
        ]
        assert overheads[0] == pytest.approx(0.0)
        assert overheads == sorted(overheads)

    def test_paper_scale_overheads(self):
        """Table I reports ~15-17% for 2x2/3x3 grids on ~50 um dies."""
        plan = Floorplan(47.0, 46.8, 1.2)
        assert 0.10 < area_overhead(plan, GridPartition(2, 2)) < 0.20
        assert 0.25 < area_overhead(plan, GridPartition(3, 3)) < 0.40


class TestDomainAssignment:
    def test_every_cell_assigned(self, placement):
        domains = assign_domains(placement, GridPartition(2, 2))
        assert domains.shape == (len(placement.netlist.cells),)
        assert set(np.unique(domains)) <= {0, 1, 2, 3}

    def test_assignment_follows_geometry(self, placement):
        domains = assign_domains(placement, GridPartition(2, 2))
        plan = placement.floorplan
        for cell in placement.netlist.cells:
            col = int(cell.x >= plan.width_um / 2)
            row = int(cell.y >= plan.height_um / 2)
            expected = row * 2 + col
            # Boundary cells may fall either way due to the clamp.
            if (
                abs(cell.x - plan.width_um / 2) > 1e-6
                and abs(cell.y - plan.height_um / 2) > 1e-6
            ):
                assert domains[cell.index] == expected

    def test_reasonably_balanced(self, placement):
        domains = assign_domains(placement, GridPartition(2, 2))
        counts = np.bincount(domains, minlength=4)
        assert counts.min() > len(placement.netlist.cells) * 0.1


class TestInsertion:
    def test_expanded_die_and_shift(self, placement):
        result = insert_domains(placement, GridPartition(2, 2))
        original = placement.floorplan
        expanded = result.placement.floorplan
        assert expanded.width_um == pytest.approx(original.width_um + 3.5)
        assert expanded.height_um == pytest.approx(original.height_um + 3.6)
        assert result.area_overhead > 0.0

    def test_original_placement_untouched(self, placement):
        before = placement.positions.copy()
        insert_domains(placement, GridPartition(2, 2))
        assert np.array_equal(placement.positions, before)

    def test_domains_written_to_cells(self, placement):
        result = insert_domains(placement, GridPartition(3, 3))
        for cell, domain in zip(placement.netlist.cells, result.domains):
            assert cell.domain == domain

    def test_cells_per_domain_sums(self, placement):
        result = insert_domains(placement, GridPartition(2, 2))
        assert result.cells_per_domain().sum() == len(placement.netlist.cells)


class TestIncrementalPlacement:
    def test_cells_stay_inside_their_domain(self, placement):
        result = insert_domains(placement, GridPartition(2, 2))
        incremental_place(result, iterations=4)
        boxes = domain_boxes(result)
        half_row = result.placement.floorplan.row_height_um / 2
        for cell, domain in zip(placement.netlist.cells, result.domains):
            x0, y0, x1, y1 = boxes[int(domain)]
            assert x0 - 1e-6 <= cell.x <= x1 + 1e-6
            assert y0 - half_row - 1e-6 <= cell.y <= y1 + half_row + 1e-6

    def test_improves_wirelength(self, placement):
        from repro.pnr.wirelength import total_wirelength

        raw = insert_domains(placement, GridPartition(2, 2))
        before = total_wirelength(raw.placement)
        incremental_place(raw, iterations=8)
        after = total_wirelength(raw.placement)
        assert after <= before
