"""Domain-configuration design-space exploration."""

import pytest

from repro.core.config import ExplorationSettings
from repro.core.domains_dse import (
    DomainDseResult,
    explore_domain_configurations,
)

SETTINGS = ExplorationSettings(
    bitwidths=(4, 8), activity_cycles=10, activity_batch=8
)
CANDIDATES = ((1, 1), (1, 2), (2, 2))


@pytest.fixture(scope="module")
def dse(library, booth8_factory, booth8_base):
    return explore_domain_configurations(
        booth8_factory,
        library,
        booth8_base.constraint,
        candidates=CANDIDATES,
        settings=SETTINGS,
        area_budget=0.25,
    )


class TestDomainDse:
    def test_all_candidates_evaluated(self, dse):
        labels = {c.partition.label for c in dse.candidates}
        assert labels == {"1x1", "1x2", "2x2"}

    def test_sorted_by_mean_power(self, dse):
        powers = [c.mean_power_w for c in dse.candidates]
        assert powers == sorted(powers)

    def test_budget_filtering(self, dse):
        for candidate in dse.within_budget():
            assert candidate.area_overhead <= 0.25

    def test_best_respects_budget_and_coverage(self, dse):
        best = dse.best()
        assert best.area_overhead <= 0.25
        assert best.covered_bitwidths == max(
            c.covered_bitwidths for c in dse.within_budget()
        )

    def test_format_lists_every_candidate(self, dse):
        text = dse.format_text()
        for candidate in dse.candidates:
            assert candidate.partition.label in text
        assert "in budget" in text

    def test_impossible_budget_raises(self, dse):
        strict = DomainDseResult(
            candidates=[
                c for c in dse.candidates if c.partition.num_domains > 1
            ],
            area_budget=0.0,
            runtime_s=0.0,
        )
        with pytest.raises(ValueError, match="area budget"):
            strict.best()

    def test_max_domains_skips_large_grids(
        self, library, booth8_factory, booth8_base
    ):
        result = explore_domain_configurations(
            booth8_factory,
            library,
            booth8_base.constraint,
            candidates=((1, 2), (3, 3)),
            settings=SETTINGS,
            max_domains=4,
        )
        labels = {c.partition.label for c in result.candidates}
        assert labels == {"1x2"}

    def test_describe(self, dse):
        text = dse.candidates[0].describe()
        assert "mean" in text and "overhead" in text
