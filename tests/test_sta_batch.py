"""Batched STA must agree with the single-configuration engine."""

import numpy as np
import pytest

from repro.operators import booth_multiplier
from repro.pnr.grid import GridPartition, insert_domains
from repro.pnr.placer import GlobalPlacer
from repro.pnr.parasitics import extract_parasitics
from repro.sta.batch import BatchStaEngine, all_bb_configs
from repro.sta.caseanalysis import dvas_case
from repro.sta.constraints import ClockConstraint
from repro.sta.engine import StaEngine
from repro.sta.graph import compile_timing_graph
from repro.techlib.library import Library

LIBRARY = Library()


@pytest.fixture(scope="module")
def domained_booth():
    netlist = booth_multiplier(LIBRARY, width=8)
    placement = GlobalPlacer(netlist, seed=2).run()
    insertion = insert_domains(placement, GridPartition(2, 2))
    parasitics = extract_parasitics(insertion.placement)
    graph = compile_timing_graph(netlist, parasitics)
    return netlist, graph, insertion


class TestAllBbConfigs:
    def test_shape_and_extremes(self):
        configs = all_bb_configs(3)
        assert configs.shape == (8, 3)
        assert not configs[0].any()   # all-NoBB first
        assert configs[-1].all()      # all-FBB last
        assert len({tuple(r) for r in configs}) == 8

    def test_zero_domains(self):
        configs = all_bb_configs(0)
        assert configs.shape == (1, 0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            all_bb_configs(-1)


class TestBatchMatchesSingle:
    @pytest.mark.parametrize("vdd", [1.0, 0.8])
    @pytest.mark.parametrize("bits", [8, 4])
    def test_worst_slack_equivalence(self, domained_booth, vdd, bits):
        """The core soundness check of the exploration speed trick."""
        netlist, graph, insertion = domained_booth
        constraint = ClockConstraint(1200.0)
        case = dvas_case(netlist, bits)
        batch = BatchStaEngine(graph, LIBRARY, insertion.domains, 4)
        result = batch.analyze(constraint, vdd, case=case)
        single = StaEngine(graph, LIBRARY)
        for k, config in enumerate(result.configs):
            fbb_cells = config[insertion.domains]
            report = single.analyze(
                constraint, vdd, fbb_cells, case=case, compute_required=False
            )
            assert result.worst_slack_ps[k] == pytest.approx(
                report.worst_slack_ps, abs=0.5
            ), f"config {k}"

    def test_more_boost_never_hurts(self, domained_booth):
        """Monotonicity: turning a domain to FBB can only improve slack."""
        netlist, graph, insertion = domained_booth
        batch = BatchStaEngine(graph, LIBRARY, insertion.domains, 4)
        result = batch.analyze(ClockConstraint(1000.0), 0.9)
        slack = result.worst_slack_ps
        for k in range(16):
            for domain in range(4):
                if not (k >> domain) & 1:
                    boosted = k | (1 << domain)
                    assert slack[boosted] >= slack[k] - 1e-3

    def test_subset_configs(self, domained_booth):
        netlist, graph, insertion = domained_booth
        batch = BatchStaEngine(graph, LIBRARY, insertion.domains, 4)
        subset = np.asarray([[False] * 4, [True] * 4])
        result = batch.analyze(ClockConstraint(1000.0), 1.0, configs=subset)
        assert len(result.worst_slack_ps) == 2
        assert result.worst_slack_ps[1] > result.worst_slack_ps[0]

    def test_filtered_fraction(self, domained_booth):
        netlist, graph, insertion = domained_booth
        batch = BatchStaEngine(graph, LIBRARY, insertion.domains, 4)
        # A clock nothing can meet: everything filtered.
        result = batch.analyze(ClockConstraint(50.0), 1.0)
        assert result.num_feasible == 0
        assert result.filtered_fraction == 1.0
        # A clock everything meets: nothing filtered.
        result = batch.analyze(ClockConstraint(1e6), 1.0)
        assert result.filtered_fraction == 0.0


class TestValidation:
    def test_domain_shape_checked(self, domained_booth):
        _netlist, graph, _insertion = domained_booth
        with pytest.raises(ValueError, match="domains shape"):
            BatchStaEngine(graph, LIBRARY, np.zeros(3, dtype=int), 4)

    def test_domain_range_checked(self, domained_booth):
        _netlist, graph, insertion = domained_booth
        with pytest.raises(ValueError, match="out of range"):
            BatchStaEngine(graph, LIBRARY, insertion.domains, 2)

    def test_config_shape_checked(self, domained_booth):
        _netlist, graph, insertion = domained_booth
        batch = BatchStaEngine(graph, LIBRARY, insertion.domains, 4)
        with pytest.raises(ValueError, match="configs shape"):
            batch.analyze(
                ClockConstraint(1000.0), 1.0, configs=np.ones((2, 3), bool)
            )
