"""Closed-loop recalibration: canary probes, margin learning, re-advance.

Pins the whole PR-8 control loop: the seeded golden-vector probe, the
asymmetric EWMA margin learner with demote/re-advance hysteresis, the
virtual-time cadence driving it, its integration with the scheduler
(probe-before-decision, epoch-keyed compiled-mask refresh, scalar frame
fallback) and the server's ``recalibrate`` command.  The hypothesis
block at the bottom holds the accuracy invariant the module is built
around: a learned margin can only *restrict* relative to the
compile-time sign-off floor, under any seeded fault schedule, at any
instant.
"""

import asyncio
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import (
    FaultEvent,
    FaultSchedule,
    KIND_STUCK_NOBB,
    KIND_TEMP_DRIFT,
    SiliconEnvironment,
)
from repro.serve import (
    MarginGuard,
    MarginLearner,
    ModeScheduler,
    RecalibrationError,
    RecalibrationLoop,
    ServeError,
    ServeRequest,
    run_canary_probe,
)
from repro.serve.server import AccuracyServer

from .conftest import build_margined_table, build_synthetic_table

PROPERTY_SETTINGS = settings(max_examples=40, deadline=None)

#: Shared fixtures are cheap to build; hypothesis examples reuse this.
TABLE = build_margined_table()


def benign_env():
    return SiliconEnvironment(FaultSchedule([]))


def excursion_env(start_ns=0.0, duration_ns=200.0, magnitude=60.0):
    """A temp excursion eating up to 72 ps at 1 GHz -- past the 50 ps
    sign-off margin of the synthetic table at the window midpoint."""
    return SiliconEnvironment(
        FaultSchedule(
            [FaultEvent(KIND_TEMP_DRIFT, start_ns, duration_ns, magnitude)]
        )
    )


# -- the canary probe --------------------------------------------------------


class TestCanaryProbe:
    def test_margin_less_table_refuses(self):
        with pytest.raises(RecalibrationError, match="without margins"):
            run_canary_probe(
                build_synthetic_table(), benign_env(), 2, 0.0
            )

    def test_needs_at_least_one_vector(self):
        with pytest.raises(ValueError, match="probe vector"):
            run_canary_probe(TABLE, benign_env(), 2, 0.0, vectors=0)

    def test_benign_probe_observes_signoff_slack(self):
        result = run_canary_probe(TABLE, benign_env(), 4, 0.0, vectors=8)
        assert result.bits_key == 4
        assert result.observed_slack_ps == pytest.approx(50.0)
        assert result.functional_ok
        assert result.probe_cycles == 8
        # 8 cycles at 1 GHz at the 4-bit mode's 2 mW operating point.
        assert result.probe_energy_j == pytest.approx(2.0e-3 * 8e-9)

    def test_probe_is_deterministic(self):
        a = run_canary_probe(TABLE, benign_env(), 4, 0.0, seed=7, epoch=3)
        b = run_canary_probe(TABLE, benign_env(), 4, 0.0, seed=7, epoch=3)
        assert a == b

    def test_eroded_margin_fails_functionally(self):
        env = excursion_env()
        # Midpoint: 72 ps erosion against a 50 ps sign-off margin.
        result = run_canary_probe(TABLE, env, 2, 100.0)
        assert result.observed_slack_ps == pytest.approx(-22.0)
        assert not result.functional_ok
        # Window edge: triangular ramp is zero, the canary passes.
        edge = run_canary_probe(TABLE, env, 2, 200.0)
        assert edge.observed_slack_ps == pytest.approx(50.0)
        assert edge.functional_ok

    def test_stuck_at_nobb_fails_fbb_modes_outright(self):
        env = SiliconEnvironment(
            FaultSchedule([FaultEvent(KIND_STUCK_NOBB, 0.0, 100.0)])
        )
        # Mode 4 uses FBB: unreachable despite a comfortable margin.
        assert not run_canary_probe(TABLE, env, 4, 50.0).functional_ok
        # Mode 2 is NoBB: unaffected.
        assert run_canary_probe(TABLE, env, 2, 50.0).functional_ok


# -- the margin learner ------------------------------------------------------


class TestMarginLearner:
    def test_ctor_validation(self):
        with pytest.raises(RecalibrationError, match="without margins"):
            MarginLearner(build_synthetic_table())
        with pytest.raises(ValueError, match="alpha"):
            MarginLearner(TABLE, alpha=0.0)
        with pytest.raises(ValueError, match="bias_ps"):
            MarginLearner(TABLE, bias_ps=-1.0)
        with pytest.raises(ValueError, match="readvance_probes"):
            MarginLearner(TABLE, readvance_probes=0)

    def test_fast_attack_adopts_degradation_immediately(self):
        learner = MarginLearner(TABLE, bias_ps=2.0)
        learner.observe(2, 20.0, True)
        assert learner.effective_margin_ps(2) == pytest.approx(18.0)

    def test_slow_release_earns_recovery(self):
        learner = MarginLearner(TABLE, alpha=0.25, bias_ps=2.0)
        learner.observe(2, 20.0, True)
        learner.observe(2, 40.0, True)
        # Estimate moves a quarter of the 20 ps gap: 25 ps.
        assert learner.effective_margin_ps(2) == pytest.approx(23.0)

    def test_estimate_clamped_to_signoff_floor(self):
        learner = MarginLearner(TABLE, bias_ps=0.0)
        for _ in range(50):
            learner.observe(2, 500.0, True)
        assert learner.effective_margin_ps(2) == pytest.approx(50.0)

    def test_failed_probe_demotes_on_the_spot(self):
        learner = MarginLearner(TABLE)
        assert learner.admissible(2)
        assert not learner.observe(2, -5.0, False)
        assert not learner.admissible(2)
        assert learner.demotions == 1
        assert learner.healthy_streak(2) == 0

    def test_readvance_needs_full_healthy_streak(self):
        learner = MarginLearner(TABLE, readvance_probes=3, bias_ps=2.0)
        learner.observe(2, -5.0, False)
        learner.observe(2, 48.0, True)
        learner.observe(2, 48.0, True)
        assert not learner.admissible(2)
        # A relapse mid-streak resets the count.
        learner.observe(2, -5.0, False)
        learner.observe(2, 48.0, True)
        learner.observe(2, 48.0, True)
        assert not learner.admissible(2)
        learner.observe(2, 48.0, True)
        assert learner.admissible(2)
        assert learner.readvances == 1
        # The relapse happened while still restricted: one demotion,
        # counted at the transition into the restricted state.
        assert learner.demotions == 1

    def test_healthy_requires_bias_above_safe_floor(self):
        learner = MarginLearner(TABLE, bias_ps=2.0)
        # Functionally fine, but 5 - 2 < the guard's 10 ps headroom.
        assert not learner.observe(2, 5.0, True, safe_floor_ps=10.0)
        assert not learner.admissible(2)

    def test_state_round_trips_through_adopt(self):
        src = MarginLearner(TABLE)
        src.observe(2, 30.0, True)
        src.observe(4, -1.0, False)
        src.commit()
        estimates, admissible = src.state_arrays()
        dst = MarginLearner(TABLE)
        dst.adopt(estimates, admissible, src.epoch)
        assert dst.epoch == src.epoch
        for key in src.keys:
            assert dst.effective_margin_ps(key) == pytest.approx(
                src.effective_margin_ps(key)
            )
            assert dst.admissible(key) == src.admissible(key)
            assert dst.healthy_streak(key) == 0

    def test_adopt_clamps_to_local_floor_and_validates_length(self):
        learner = MarginLearner(TABLE, bias_ps=0.0)
        learner.adopt([999.0] * len(learner.keys), [True] * 4, 5)
        for key in learner.keys:
            assert learner.effective_margin_ps(key) <= 50.0
        with pytest.raises(ValueError, match="mode count"):
            learner.adopt([1.0], [True], 6)


# -- guard integration -------------------------------------------------------


class TestGuardWithLearner:
    def test_learner_must_match_the_table(self):
        guard = MarginGuard(TABLE)
        with pytest.raises(ServeError, match="different mode table"):
            guard.attach_learner(MarginLearner(build_margined_table()))

    def test_inadmissible_mode_is_unsafe_even_when_benign(self):
        guard = MarginGuard(TABLE)
        learner = MarginLearner(TABLE)
        guard.attach_learner(learner)
        assert guard.mode_is_safe(2, 0.0)
        learner.observe(2, -5.0, False)
        assert not guard.mode_is_safe(2, 0.0)
        # The compile-time check alone would still have passed.
        assert MarginGuard(TABLE).mode_is_safe(2, 0.0)

    def test_learned_margin_only_restricts(self):
        guard = MarginGuard(TABLE, headroom_ps=10.0)
        learner = MarginLearner(TABLE, bias_ps=2.0)
        guard.attach_learner(learner)
        # Learned 8 - 2 = 6 ps effective: below the 10 ps headroom.
        learner.observe(2, 8.0, True)
        assert not guard.mode_is_safe(2, 0.0)

    def test_margin_epoch_tracks_the_learner(self):
        guard = MarginGuard(TABLE)
        assert guard.margin_epoch == 0
        learner = MarginLearner(TABLE)
        guard.attach_learner(learner)
        learner.commit()
        assert guard.margin_epoch == 1

    def test_retreat_only_guard_latches_and_is_time_variant(self):
        guard = MarginGuard(
            TABLE, excursion_env(), retreat_only=True
        )
        assert not guard.is_time_invariant
        assert not guard.mode_is_safe(2, 100.0)  # mid-excursion
        # Recovered silicon, but the baseline never re-advances.
        assert not guard.mode_is_safe(2, 500.0)
        assert MarginGuard(TABLE, excursion_env()).mode_is_safe(2, 500.0)


# -- the recalibration loop --------------------------------------------------


class TestRecalibrationLoop:
    def make_loop(self, env=None, **kwargs):
        guard = MarginGuard(TABLE, env if env is not None else benign_env())
        kwargs.setdefault("interval_ns", 1_000.0)
        return RecalibrationLoop(guard, **kwargs)

    def test_ctor_validation(self):
        with pytest.raises(ValueError, match="margin guard"):
            RecalibrationLoop(None, 1_000.0)
        guard = MarginGuard(TABLE)
        with pytest.raises(ValueError, match="interval_ns"):
            RecalibrationLoop(guard, 0.0)

    def test_cadence_probes_once_per_due_crossing(self):
        loop = self.make_loop()
        assert not loop.due(999.0)
        assert loop.maybe_recalibrate(999.0) is None
        assert loop.maybe_recalibrate(1_000.0) == 1
        # Many skipped intervals still cost exactly one probe round.
        assert loop.maybe_recalibrate(7_500.0) == 2
        assert loop.next_due_ns == 8_000.0
        assert loop.probes_run == 2 * len(TABLE.modes)

    def test_injected_failure_raises_and_is_swallowed_by_maybe(self):
        from repro.serve.telemetry import Telemetry

        loop = self.make_loop()
        telemetry = Telemetry()
        loop.inject_failure()
        with pytest.raises(RecalibrationError, match="injected"):
            loop.recalibrate(0.0, telemetry)
        assert loop.failures == 1
        assert telemetry.counters["recal_failures"] == 1
        loop.inject_failure()
        assert loop.maybe_recalibrate(2_000.0, telemetry) is None
        # The loop recovers on the next round.
        assert loop.maybe_recalibrate(3_000.0, telemetry) == 1
        assert telemetry.counters["recal_epochs"] == 1
        assert telemetry.counters["recal_probes"] == len(TABLE.modes)

    def test_probe_cost_is_accounted(self):
        from repro.serve.telemetry import Telemetry

        telemetry = Telemetry()
        loop = self.make_loop(probe_vectors=8)
        loop.recalibrate(0.0, telemetry)
        # 8 cycles per mode at 1 GHz over the 1+2+3+4 mW modes.
        assert loop.probe_energy_j == pytest.approx(10.0e-3 * 8e-9)
        assert loop.probe_cycles == 8 * len(TABLE.modes)
        assert telemetry.probe_energy_pj.to_dict()["count"] == 1

    def test_snapshot_shape(self):
        loop = self.make_loop()
        loop.recalibrate(0.0)
        snap = loop.snapshot()
        assert snap["epoch"] == 1
        assert snap["probes_run"] == len(TABLE.modes)
        assert snap["failures"] == 0
        assert set(snap["margins_ps"]) == {"2", "4", "6", "8"}
        assert snap["restricted"] == []
        json.dumps(snap)  # wire-ready

    def test_excursion_demotes_then_readvances(self):
        loop = self.make_loop(
            excursion_env(0.0, 10_000.0, 60.0), readvance_probes=2
        )
        loop.recalibrate(5_000.0)  # midpoint: 72 ps erosion
        assert loop.snapshot()["restricted"] == [2, 4, 6, 8]
        loop.recalibrate(12_000.0)  # recovered, streak 1
        assert loop.snapshot()["restricted"] == [2, 4, 6, 8]
        loop.recalibrate(13_000.0)  # streak 2: re-advance
        assert loop.snapshot()["restricted"] == []
        assert loop.learner.readvances == len(TABLE.modes)


# -- scheduler integration ---------------------------------------------------


def make_guarded_scheduler(env, interval_ns=1_000.0, **recal_kwargs):
    guard = MarginGuard(TABLE, env)
    recal = RecalibrationLoop(guard, interval_ns, **recal_kwargs)
    return ModeScheduler(TABLE, guard=guard, recal=recal), guard, recal


class TestScheduledRecalibration:
    def test_recal_requires_its_own_guard(self):
        guard = MarginGuard(TABLE)
        recal = RecalibrationLoop(guard, 1_000.0)
        with pytest.raises(ValueError, match="requires a margin guard"):
            ModeScheduler(TABLE, recal=recal)
        with pytest.raises(ValueError, match="different guard"):
            ModeScheduler(TABLE, guard=MarginGuard(TABLE), recal=recal)

    def test_probe_runs_before_the_decision(self):
        """The margin epoch committed by a due probe governs the very
        request whose submission made it due -- including the learner's
        hysteresis keeping a recovered mode out until the streak fills."""
        scheduler, guard, recal = make_guarded_scheduler(
            excursion_env(0.0, 10_000.0, 60.0), readvance_probes=2
        )
        # Window edge: erosion 0, probe not yet due.
        first = scheduler.submit(ServeRequest("op", 2, 4_000))
        assert not first.margin_fallback
        assert recal.learner.epoch == 0
        # Mid-window: the probe demotes everything, the same submit's
        # decision then has to take the static fallback.
        second = scheduler.submit(ServeRequest("op", 2, 1_000))
        assert recal.learner.epoch == 1
        assert second.margin_fallback
        # Jump past the excursion; one more probe fails mid-window first.
        scheduler.submit(ServeRequest("op", 2, 10_000))
        # Recovered silicon, but streak 1 < 2: the learner still
        # restricts what the compile-time check would admit.
        fourth = scheduler.submit(ServeRequest("op", 2, 1_000))
        assert fourth.margin_fallback
        now = scheduler.latest_clock_ns()
        assert MarginGuard(
            TABLE, excursion_env(0.0, 10_000.0, 60.0)
        ).mode_is_safe(2, now)
        # Streak 2: re-advanced before this request's decision.
        fifth = scheduler.submit(ServeRequest("op", 2, 1_000))
        assert not fifth.margin_fallback
        assert fifth.served_bits == 2
        counters = scheduler.telemetry.counters
        assert counters["recal_epochs"] == 4
        assert counters["recal_probes"] == 4 * len(TABLE.modes)
        assert counters["recal_demotions"] == len(TABLE.modes)
        assert counters["recal_readvances"] == len(TABLE.modes)

    def test_batch_engine_matches_scalar_with_recal(self):
        """A local probe loop forces the scalar frame path: batched
        submits stay bit-identical to the scalar reference."""
        requests = [
            ServeRequest("op", bits, cycles)
            for bits, cycles in [(2, 800), (8, 300), (4, 2_000), (2, 500)]
        ]
        env = excursion_env(0.0, 2_000.0, 60.0)
        batch, _, _ = make_guarded_scheduler(env)
        scalar, _, _ = make_guarded_scheduler(env)
        batch.serve_engine = "batch"
        scalar.serve_engine = "scalar"
        served_batch = batch.submit_batch(requests)
        served_scalar = [scalar.submit(r) for r in requests]
        assert served_batch == served_scalar
        assert (
            batch.telemetry.counters["recal_epochs"]
            == scalar.telemetry.counters["recal_epochs"]
        )

    def test_epoch_keyed_mask_refresh_follows_adopted_state(self):
        """A guard with a *passively adopted* learner (the fleet-peer
        shape) stays batch-eligible; the compiled availability mask must
        chase the learner's epoch, both into and out of a demotion."""
        guard = MarginGuard(TABLE)
        learner = MarginLearner(TABLE, readvance_probes=1)
        guard.attach_learner(learner)
        scheduler = ModeScheduler(TABLE, guard=guard, engine="batch")
        served = scheduler.submit_batch([ServeRequest("op", 2, 500)])
        assert served[0].served_bits == 2
        # Demote mode 2 (a peer's committed verdict arriving on the bus).
        learner.observe(2, -5.0, False)
        learner.commit()
        served = scheduler.submit_batch([ServeRequest("op", 2, 500)])
        assert served[0].margin_fallback
        assert served[0].served_bits >= 4
        # Re-advance: the next epoch re-admits the aggressive mode.
        learner.observe(2, 48.0, True)
        learner.commit()
        served = scheduler.submit_batch([ServeRequest("op", 2, 500)])
        assert not served[0].margin_fallback
        assert served[0].served_bits == 2


# -- the server command ------------------------------------------------------


def run(coroutine):
    return asyncio.run(coroutine)


class TestServerRecalibrate:
    def make_server(self, with_recal=True):
        if with_recal:
            scheduler, _, _ = make_guarded_scheduler(benign_env())
        else:
            scheduler = ModeScheduler(build_synthetic_table())
        return AccuracyServer(scheduler)

    def test_no_loop_is_a_recoverable_error_frame(self):
        server = self.make_server(with_recal=False)
        reply = server.recalibrate()
        assert reply["error"]["kind"] == "recalibration_failed"
        assert reply["error"]["recoverable"]
        assert "recal-interval" in reply["error"]["message"]
        assert server.scheduler.telemetry.counters["errors"] == 1

    def test_wire_command_round_trip(self):
        server = self.make_server()

        async def body():
            reply = await server._handle_line(b'{"cmd": "recalibrate"}\n')
            assert reply["recalibrated"]["epoch"] == 1
            assert reply["recalibrated"]["restricted"] == []
            # A failing probe answers with the structured frame and the
            # connection-visible state recovers on the next command.
            server.scheduler.recal.inject_failure()
            reply = await server._handle_line(b'{"cmd": "recalibrate"}\n')
            assert reply["error"]["kind"] == "recalibration_failed"
            assert reply["error"]["recoverable"]
            reply = await server._handle_line(b'{"cmd": "recalibrate"}\n')
            assert reply["recalibrated"]["epoch"] == 2

        run(body())


# -- the accuracy invariant, property-style ----------------------------------


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    probe_times=st.lists(
        st.floats(min_value=0.0, max_value=1.2e5),
        min_size=1,
        max_size=6,
    ),
    check_times=st.lists(
        st.floats(min_value=0.0, max_value=1.5e5),
        min_size=1,
        max_size=8,
    ),
)
@PROPERTY_SETTINGS
def test_learned_safe_implies_signoff_safe(seed, probe_times, check_times):
    """Under ANY seeded fault schedule and ANY probe history, a mode the
    learned guard admits is also admitted by a fresh compile-time-only
    oracle at the same instant -- the sign-off floor is never crossed."""
    schedule = FaultSchedule.generate(seed, horizon_ns=1e5)
    guard = MarginGuard(TABLE, SiliconEnvironment(schedule))
    loop = RecalibrationLoop(guard, interval_ns=1_000.0, seed=seed)
    for now in sorted(probe_times):
        loop.recalibrate(now)
    oracle = MarginGuard(TABLE, SiliconEnvironment(schedule))
    for now in check_times:
        for bits in TABLE.modes:
            if guard.mode_is_safe(bits, now):
                assert oracle.mode_is_safe(bits, now)


@given(
    observations=st.lists(
        st.floats(min_value=-1e4, max_value=1e4),
        min_size=1,
        max_size=50,
    )
)
@PROPERTY_SETTINGS
def test_effective_margin_never_exceeds_signoff(observations):
    learner = MarginLearner(TABLE, bias_ps=0.0)
    floors = {k: TABLE.margins[k].guarded_slack_ps for k in learner.keys}
    for value in observations:
        learner.observe(4, value, True)
        estimates, _ = learner.state_arrays()
        for key, estimate in zip(learner.keys, estimates):
            assert estimate <= floors[key]
            assert learner.effective_margin_ps(key) <= floors[key]


@given(
    outcomes=st.lists(st.booleans(), min_size=1, max_size=30),
    readvance=st.integers(min_value=1, max_value=5),
)
@PROPERTY_SETTINGS
def test_readvance_hysteresis_prevents_flapping(outcomes, readvance):
    """Admissibility flips back only after `readvance` consecutive
    healthy probes -- checked against an independent reference model."""
    learner = MarginLearner(TABLE, readvance_probes=readvance, bias_ps=2.0)
    restricted, streak = False, 0
    for healthy in outcomes:
        learner.observe(2, 48.0 if healthy else -10.0, healthy)
        if healthy:
            streak += 1
            if restricted and streak >= readvance:
                restricted = False
        else:
            restricted, streak = True, 0
        assert learner.admissible(2) == (not restricted)
        assert learner.healthy_streak(2) == streak
