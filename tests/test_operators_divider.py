"""Non-restoring divider."""

import numpy as np
import pytest

from repro.netlist.validate import validate_netlist
from repro.operators import divider
from repro.sim.simulator import LogicSimulator, SimulationMode
from repro.techlib.library import Library

LIBRARY = Library()


class TestDivider:
    @pytest.mark.parametrize("width", [3, 5, 6])
    def test_exhaustive(self, width):
        netlist = divider(LIBRARY, width=width, registered=False)
        validate_netlist(netlist)
        sim = LogicSimulator(netlist, SimulationMode.TRANSPARENT)
        n, d = np.meshgrid(np.arange(1 << width), np.arange(1, 1 << width))
        n, d = n.ravel(), d.ravel()
        out = sim.run_combinational({"N": n, "D": d}, signed=False)
        assert np.array_equal(out["Q"], n // d)
        assert np.array_equal(out["R"], n % d)

    def test_random_wide(self):
        width = 12
        netlist = divider(LIBRARY, width=width, registered=False)
        sim = LogicSimulator(netlist, SimulationMode.TRANSPARENT)
        rng = np.random.default_rng(1)
        n = rng.integers(0, 1 << width, 3000)
        d = rng.integers(1, 1 << width, 3000)
        out = sim.run_combinational({"N": n, "D": d}, signed=False)
        assert np.array_equal(out["Q"], n // d)
        assert np.array_equal(out["R"], n % d)

    def test_division_by_zero_saturates(self):
        netlist = divider(LIBRARY, width=5, registered=False)
        sim = LogicSimulator(netlist, SimulationMode.TRANSPARENT)
        out = sim.run_combinational(
            {"N": np.asarray([13, 0]), "D": np.asarray([0, 0])}, signed=False
        )
        assert np.all(out["Q"] == 31)  # hardware-style all-ones

    def test_registered_latency(self):
        netlist = divider(LIBRARY, width=6)
        sim = LogicSimulator(netlist, SimulationMode.CYCLE)
        stim = [{"N": np.asarray([47]), "D": np.asarray([5])}] * 3
        trace = sim.run_cycles(stim)
        assert trace.output("Q", 2)[0] == 9
        assert trace.output("R", 2)[0] == 2

    def test_width_validation(self):
        with pytest.raises(ValueError):
            divider(LIBRARY, width=1)

    def test_quotient_depth_deactivates_late_under_gating(self):
        """Gating dividend LSBs makes the *last* quotient bits constant
        only when the divisor is gated too -- the stress case described in
        the module docstring.  Just assert the case analysis terminates
        and classifies sanely."""
        from repro.sta.caseanalysis import dvas_case

        netlist = divider(LIBRARY, width=8)
        case = dvas_case(netlist, 4)
        assert 0.0 < case.constant_fraction() < 1.0

    def test_flow_compatible(self):
        from repro.core.flow import implement_base

        counter = {"n": 0}

        def factory():
            counter["n"] += 1
            return divider(LIBRARY, width=8, name=f"div_{counter['n']}")

        design = implement_base(factory, LIBRARY)
        assert design.fclk_ghz > 0
