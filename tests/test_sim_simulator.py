"""Simulator modes, stimulus handling, traces."""

import numpy as np
import pytest

from repro.netlist.builder import NetlistBuilder
from repro.operators import booth_multiplier, fir_filter, FirParameters
from repro.sim.simulator import LogicSimulator, SimulationMode
from repro.techlib.library import Library

LIBRARY = Library()


def _pipeline_netlist():
    builder = NetlistBuilder("pipe", LIBRARY)
    a = builder.input_bus("A", 2)
    builder.clock()
    regged = builder.register_word(a)
    y = builder.xor2(regged[0], regged[1])
    builder.output_bus("Y", builder.register_word([y]), signed=False)
    return builder.build()


def _feedback_netlist():
    builder = NetlistBuilder("fb", LIBRARY)
    builder.clock()
    netlist = builder.netlist
    q = netlist.add_net("q")
    d = builder.inv(q)
    netlist.add_cell("ff", LIBRARY.template("DFF"), [d, netlist.clock_net], [q])
    netlist.mark_output_bus("Q", [q], signed=False)
    return netlist


class TestModes:
    def test_transparent_rejects_feedback(self):
        with pytest.raises(ValueError, match="sequential feedback"):
            LogicSimulator(_feedback_netlist(), SimulationMode.TRANSPARENT)

    def test_cycle_handles_feedback(self):
        sim = LogicSimulator(_feedback_netlist(), SimulationMode.CYCLE)
        trace = sim.run_cycles([{}] * 4)  # no input buses
        # Toggle flop: 0, 1, 0, 1.
        assert [trace.output("Q", t)[0] for t in range(4)] == [0, 1, 0, 1]

    def test_run_combinational_requires_transparent(self):
        sim = LogicSimulator(_pipeline_netlist(), SimulationMode.CYCLE)
        with pytest.raises(ValueError, match="TRANSPARENT"):
            sim.run_combinational({"A": np.asarray([1])})

    def test_run_cycles_requires_cycle_mode(self):
        sim = LogicSimulator(_pipeline_netlist(), SimulationMode.TRANSPARENT)
        with pytest.raises(ValueError, match="CYCLE"):
            sim.run_cycles([{"A": np.asarray([1])}])

    def test_transparent_pipeline_single_shot(self):
        sim = LogicSimulator(_pipeline_netlist(), SimulationMode.TRANSPARENT)
        out = sim.run_combinational({"A": np.asarray([0, 1, 2, 3])})["Y"]
        assert out.tolist() == [0, 1, 1, 0]

    def test_pipeline_latency_in_cycle_mode(self):
        sim = LogicSimulator(_pipeline_netlist(), SimulationMode.CYCLE)
        stim = [{"A": np.asarray([1])}, {"A": np.asarray([0])},
                {"A": np.asarray([0])}]
        trace = sim.run_cycles(stim)
        assert trace.output("Y", 0)[0] == 0  # reset state
        assert trace.output("Y", 2)[0] == 1  # A=1 after 2-cycle latency


class TestStimulusChecks:
    def test_missing_bus_rejected(self):
        netlist = booth_multiplier(LIBRARY, width=4, registered=False)
        sim = LogicSimulator(netlist, SimulationMode.TRANSPARENT)
        with pytest.raises(ValueError, match="missing stimulus"):
            sim.run_combinational({"A": np.asarray([1])})

    def test_batch_mismatch_rejected(self):
        netlist = booth_multiplier(LIBRARY, width=4, registered=False)
        sim = LogicSimulator(netlist, SimulationMode.TRANSPARENT)
        with pytest.raises(ValueError, match="batch"):
            sim.run_combinational(
                {"A": np.asarray([1, 2]), "B": np.asarray([1])}
            )

    def test_empty_cycle_list_rejected(self):
        sim = LogicSimulator(_pipeline_netlist(), SimulationMode.CYCLE)
        with pytest.raises(ValueError, match="at least one cycle"):
            sim.run_cycles([])


class TestTrace:
    def test_toggle_counts_require_collection(self):
        sim = LogicSimulator(_pipeline_netlist(), SimulationMode.CYCLE)
        trace = sim.run_cycles([{"A": np.asarray([1])}] * 3)
        with pytest.raises(ValueError, match="collect_net_values"):
            trace.toggle_counts()

    def test_toggle_counts_shape_and_clock(self):
        netlist = _pipeline_netlist()
        sim = LogicSimulator(netlist, SimulationMode.CYCLE)
        rng = np.random.default_rng(0)
        stim = [{"A": rng.integers(0, 4, 16)} for _ in range(10)]
        trace = sim.run_cycles(stim, collect_net_values=True)
        rates = trace.toggle_counts()
        assert rates.shape == (len(netlist.nets),)
        assert rates[netlist.clock_net.index] == 2.0
        assert np.all(rates >= 0.0)
        assert np.all(rates[rates != 2.0] <= 1.0)

    def test_constant_input_never_toggles(self):
        netlist = _pipeline_netlist()
        sim = LogicSimulator(netlist, SimulationMode.CYCLE)
        stim = [{"A": np.asarray([3, 3])}] * 8
        trace = sim.run_cycles(stim, collect_net_values=True)
        rates = trace.toggle_counts()
        a0 = netlist.input_buses["A"].nets[0].index
        assert rates[a0] == 0.0

    def test_fir_smoke_cycle_trace(self):
        params = FirParameters(taps=4, width=6)
        netlist = fir_filter(LIBRARY, params)
        sim = LogicSimulator(netlist, SimulationMode.CYCLE)
        rng = np.random.default_rng(2)
        stim = [
            {"X": rng.integers(-32, 32, 8), "C": rng.integers(-32, 32, 8)}
            for _ in range(12)
        ]
        trace = sim.run_cycles(stim)
        assert trace.cycles == 12
        taps = [int(trace.output("TAP", t)[0]) for t in range(12)]
        assert taps == [t % 4 for t in range(12)]
