"""Property-based bit-identity for the batched serve kernel.

Hypothesis drives randomized traces, frame shapes, policies and pool
configurations through twin schedulers (one per engine) and asserts the
batched kernel never diverges from the scalar reference -- the serve
analogue of ``tests/test_sta_lattice_property.py``.  Also home of the
``resolve_serve_engine`` selector contract (flag / env precedence and
error shapes, shared with the sim and STA selectors).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.runtime import WorkloadPhase
from repro.serve import (
    SERVE_ENGINES,
    ModeScheduler,
    ServeRequest,
    replay_trace,
    resolve_serve_engine,
)
from repro.serve.compiled import SERVE_ENGINE_ENV
from repro.serve.telemetry import Histogram
from tests.conftest import build_synthetic_table

PROPERTY_SETTINGS = settings(max_examples=40, deadline=None)

#: Any bits in [1, 8] is coverable by the synthetic table.
REQUEST = st.tuples(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=20_000),
)


@st.composite
def frame_sequence(draw):
    """A short sequence of frames over a couple of operators."""
    num_ops = draw(st.integers(min_value=1, max_value=3))
    operators = [f"op{i}" for i in range(num_ops)]
    frames = draw(
        st.lists(
            st.lists(
                st.tuples(st.sampled_from(operators), REQUEST),
                min_size=1,
                max_size=25,
            ),
            min_size=1,
            max_size=5,
        )
    )
    return [
        [ServeRequest(op, bits, cycles) for op, (bits, cycles) in frame]
        for frame in frames
    ]


@PROPERTY_SETTINGS
@given(
    policy=st.sampled_from(("greedy", "hysteresis", "lookahead")),
    trace=st.lists(REQUEST, min_size=1, max_size=80),
    window=st.integers(min_value=0, max_value=6),
)
def test_replay_engines_agree(policy, trace, window):
    table = build_synthetic_table()
    workload = [
        WorkloadPhase(required_bits=b, cycles=c) for b, c in trace
    ]
    assert replay_trace(
        table, workload, policy=policy, engine="scalar",
        lookahead_window=window,
    ) == replay_trace(
        table, workload, policy=policy, engine="batch",
        lookahead_window=window,
    )


@PROPERTY_SETTINGS
@given(
    policy=st.sampled_from(("greedy", "hysteresis", "lookahead")),
    frames=frame_sequence(),
    generators=st.integers(min_value=1, max_value=3),
    depth=st.integers(min_value=1, max_value=6),
)
def test_frames_bit_identical(policy, frames, generators, depth):
    scalar = ModeScheduler(
        build_synthetic_table(),
        num_generators=generators,
        policy=policy,
        max_queue_depth=depth,
        engine="scalar",
    )
    batch = ModeScheduler(
        build_synthetic_table(),
        num_generators=generators,
        policy=policy,
        max_queue_depth=depth,
        engine="batch",
    )
    for frame in frames:
        assert scalar.submit_batch(frame) == batch.submit_batch(frame)
    assert scalar.telemetry.snapshot() == batch.telemetry.snapshot()
    for operator in scalar.operators:
        assert scalar.report(operator) == batch.report(operator)


@PROPERTY_SETTINGS
@given(
    values=st.lists(
        st.floats(
            min_value=0.0,
            max_value=1e8,
            allow_nan=False,
            allow_infinity=False,
        ),
        min_size=0,
        max_size=60,
    )
)
def test_record_many_matches_scalar_record(values):
    bounds = [1.0, 10.0, 100.0, 1_000.0, 10_000.0]
    scalar = Histogram(bounds, unit="x")
    vector = Histogram(bounds, unit="x")
    for value in values:
        scalar.record(value)
    vector.record_many(np.asarray(values, dtype=np.float64))
    assert vector.to_dict() == scalar.to_dict()


class TestResolveServeEngine:
    def test_defaults_to_batch(self, monkeypatch):
        monkeypatch.delenv(SERVE_ENGINE_ENV, raising=False)
        assert resolve_serve_engine(None) == "batch"
        assert resolve_serve_engine("auto") == "batch"

    def test_explicit_requests_win(self, monkeypatch):
        monkeypatch.setenv(SERVE_ENGINE_ENV, "scalar")
        assert resolve_serve_engine("batch") == "batch"
        monkeypatch.setenv(SERVE_ENGINE_ENV, "batch")
        assert resolve_serve_engine("scalar") == "scalar"

    def test_env_steers_auto(self, monkeypatch):
        monkeypatch.setenv(SERVE_ENGINE_ENV, "scalar")
        assert resolve_serve_engine(None) == "scalar"
        assert resolve_serve_engine("auto") == "scalar"
        monkeypatch.setenv(SERVE_ENGINE_ENV, "batch")
        assert resolve_serve_engine("auto") == "batch"

    def test_unknown_request_message_shape(self):
        with pytest.raises(ValueError, match="unknown serve engine 'warp'"):
            resolve_serve_engine("warp")

    def test_bad_env_message_shape(self, monkeypatch):
        monkeypatch.setenv(SERVE_ENGINE_ENV, "warp")
        with pytest.raises(
            ValueError, match=r"\$REPRO_SERVE_ENGINE must be one of"
        ):
            resolve_serve_engine("auto")

    def test_engines_tuple_is_the_contract(self):
        assert SERVE_ENGINES == ("auto", "batch", "scalar")

    def test_scheduler_records_resolved_engine(self, monkeypatch):
        monkeypatch.delenv(SERVE_ENGINE_ENV, raising=False)
        table = build_synthetic_table()
        assert ModeScheduler(table).serve_engine == "batch"
        assert (
            ModeScheduler(table, engine="scalar").serve_engine == "scalar"
        )
        monkeypatch.setenv(SERVE_ENGINE_ENV, "scalar")
        assert ModeScheduler(table, engine="auto").serve_engine == "scalar"
