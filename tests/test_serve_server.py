"""The asyncio front end: in-proc API, JSON-lines socket, overload, shutdown."""

import asyncio
import json

import pytest

from repro.serve.scheduler import ModeScheduler
from repro.serve.server import AccuracyServer, phase_to_dict
from tests.conftest import build_synthetic_table


def run(coroutine):
    """Drive an async test body from sync pytest (no plugin needed)."""
    return asyncio.run(coroutine)


def make_server(**kwargs) -> AccuracyServer:
    scheduler = ModeScheduler(build_synthetic_table(), num_generators=2)
    return AccuracyServer(scheduler, **kwargs)


class TestInProcessApi:
    def test_serves_and_accounts(self):
        async def body():
            async with make_server() as server:
                served = await server.request("op", 4, 1_000)
                assert served.served_bits >= 4
                assert served.switched  # power-on
                again = await server.request("op", 4, 1_000)
                assert not again.switched
                stats = server.stats()
                assert stats["counters"]["requests"] == 2
                assert stats["per_operator"] == {"op": 2}

        run(body())

    def test_concurrent_clients_all_answered(self):
        async def body():
            async with make_server() as server:
                phases = await asyncio.gather(
                    *(
                        server.request(f"op{i % 3}", 2 + 2 * (i % 4), 100)
                        for i in range(60)
                    )
                )
                assert len(phases) == 60
                for phase in phases:
                    assert phase.served_bits >= phase.required_bits

        run(body())

    def test_bad_request_surfaces_to_caller(self):
        async def body():
            async with make_server() as server:
                with pytest.raises(ValueError, match="required_bits"):
                    await server.request("op", 0, 100)

        run(body())

    def test_overload_sheds_to_degraded_path(self):
        async def body():
            # One-slot queue and a slow drain: the second put finds the
            # queue full and must be served degraded, not blocked.
            async with make_server(
                max_pending=1, drain_delay_s=0.02
            ) as server:
                phases = await asyncio.gather(
                    *(server.request("op", 2, 10) for _ in range(8))
                )
                degraded = [p for p in phases if p.degraded]
                assert degraded, "full queue never shed load"
                for phase in degraded:
                    assert phase.served_bits == 8  # static max-accuracy
                counters = server.stats()["counters"]
                assert counters["degraded"] == len(degraded)

        run(body())


class TestSocket:
    @staticmethod
    async def talk(port, lines):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        replies = []
        for line in lines:
            writer.write(line.encode() + b"\n")
            await writer.drain()
            replies.append(json.loads(await reader.readline()))
        writer.close()
        await writer.wait_closed()
        return replies

    def test_json_lines_round_trip(self):
        async def body():
            async with make_server() as server:
                replies = await self.talk(
                    server.port,
                    [
                        json.dumps({"op": "sock", "bits": 4, "cycles": 500}),
                        json.dumps({"op": "sock", "bits": 8}),
                        json.dumps({"cmd": "stats"}),
                    ],
                )
                assert replies[0]["served_bits"] >= 4
                assert replies[0]["switched"] is True
                assert replies[1]["served_bits"] == 8
                assert replies[2]["stats"]["counters"]["requests"] == 2

        run(body())

    def test_malformed_lines_answered_with_structured_errors(self):
        async def body():
            async with make_server() as server:
                replies = await self.talk(
                    server.port,
                    [
                        "this is not json",
                        json.dumps([1, 2, 3]),
                        json.dumps({"bits": 4}),  # missing "op"
                        json.dumps({"op": "x", "bits": 0}),
                    ],
                )
                kinds = [r["error"]["kind"] for r in replies]
                assert kinds == [
                    "bad_json",
                    "not_object",
                    "bad_request",
                    "bad_request",
                ]
                for reply in replies:
                    assert reply["error"]["recoverable"] is True
                    assert reply["error"]["message"]
                assert "bad json" in replies[0]["error"]["message"]
                assert server.stats()["counters"]["errors"] == 4

        run(body())

    def test_oversized_line_rejected_without_crashing(self):
        async def body():
            async with make_server(max_line_bytes=256) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"x" * 1024 + b"\n")
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert reply["error"]["kind"] == "oversized_line"
                assert reply["error"]["recoverable"] is False
                assert await reader.readline() == b""  # server hung up
                writer.close()
                await writer.wait_closed()
                # The server survives and keeps serving new connections.
                replies = await self.talk(
                    server.port,
                    [json.dumps({"op": "after", "bits": 4, "cycles": 10})],
                )
                assert replies[0]["served_bits"] >= 4
                assert server.stats()["counters"]["errors"] == 1

        run(body())

    def test_partial_final_line_still_served_at_eof(self):
        async def body():
            async with make_server() as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                # No trailing newline: the client hangs up mid-line.
                payload = json.dumps({"op": "eof", "bits": 6, "cycles": 42})
                writer.write(payload.encode())
                await writer.drain()
                writer.write_eof()
                reply = json.loads(await reader.readline())
                assert reply["served_bits"] >= 6
                writer.close()
                await writer.wait_closed()
                assert server.stats()["per_operator"] == {"eof": 1}

        run(body())

    def test_clean_eof_without_partial_line_is_silent(self):
        async def body():
            async with make_server() as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write_eof()
                assert await reader.readline() == b""
                writer.close()
                await writer.wait_closed()
                assert server.stats()["counters"]["errors"] == 0

        run(body())

    def test_many_clients_share_one_scheduler(self):
        async def body():
            async with make_server() as server:
                async def client(name):
                    return await self.talk(
                        server.port,
                        [
                            json.dumps(
                                {"op": name, "bits": 4, "cycles": 100}
                            )
                            for _ in range(10)
                        ],
                    )

                replies = await asyncio.gather(
                    *(client(f"c{i}") for i in range(5))
                )
                assert all(
                    r["served_bits"] >= 4 for rs in replies for r in rs
                )
                per_op = server.stats()["per_operator"]
                assert per_op == {f"c{i}": 10 for i in range(5)}

        run(body())


class TestLifecycle:
    def test_stop_drains_in_flight_work(self):
        async def body():
            server = make_server(max_pending=64, drain_delay_s=0.001)
            await server.start()
            pending = [
                asyncio.ensure_future(server.request("op", 4, 10))
                for _ in range(10)
            ]
            await asyncio.sleep(0)  # let every task enqueue its request
            await server.stop()
            phases = await asyncio.gather(*pending)
            assert len(phases) == 10
            assert server.stats()["counters"]["requests"] == 10

        run(body())

    def test_request_after_stop_rejected(self):
        async def body():
            server = make_server()
            await server.start()
            await server.stop()
            with pytest.raises(RuntimeError, match="stopping"):
                await server.request("op", 4, 10)

        run(body())

    def test_double_start_rejected(self):
        async def body():
            server = make_server()
            await server.start()
            try:
                with pytest.raises(RuntimeError, match="already started"):
                    await server.start()
            finally:
                await server.stop()

        run(body())

    def test_port_unavailable_before_start(self):
        server = make_server()
        with pytest.raises(RuntimeError, match="not listening"):
            server.port


class TestWireFormat:
    def test_phase_to_dict_is_json_ready(self):
        async def body():
            async with make_server() as server:
                served = await server.request("op", 6, 100)
                payload = phase_to_dict(served)
                round_tripped = json.loads(json.dumps(payload))
                assert round_tripped["served_bits"] == served.served_bits
                assert round_tripped["degraded"] is False
                assert isinstance(round_tripped["bb_config"], list)

        run(body())