"""Fault events, schedules and the silicon environment they induce.

Everything in :mod:`repro.faults` must be deterministic and replayable:
same seed, same schedule; same schedule + instant, same electrical
state.  These tests pin the event algebra (windows, validation,
serialization) and the first-order erosion model the margin guard
consumes.
"""

import math

import pytest

from repro.faults import (
    ALL_KINDS,
    FAULT_SCHEDULE_SCHEMA,
    INFRA_KINDS,
    KIND_AGING_VTH,
    KIND_CACHE_CORRUPT,
    KIND_GEN_DROPOUT,
    KIND_STUCK_NOBB,
    KIND_TEMP_DRIFT,
    KIND_TRANSITION_TIMEOUT,
    KIND_VDD_DROOP,
    KIND_WORKER_CRASH,
    SILICON_KINDS,
    FaultEvent,
    FaultSchedule,
    SiliconEnvironment,
)
from repro.faults.environment import (
    AGING_ALPHA,
    DROOP_ALPHA,
    TEMP_SLOWDOWN_PER_C,
)


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("meteor_strike", 0.0, 10.0)

    @pytest.mark.parametrize("start", [-1.0, float("nan"), float("inf")])
    def test_bad_start_rejected(self, start):
        with pytest.raises(ValueError, match="start_ns"):
            FaultEvent(KIND_TEMP_DRIFT, start, 10.0)

    @pytest.mark.parametrize("duration", [0.0, -5.0, float("nan")])
    def test_bad_duration_rejected(self, duration):
        with pytest.raises(ValueError, match="duration_ns"):
            FaultEvent(KIND_TEMP_DRIFT, 0.0, duration)

    def test_window_is_half_open(self):
        event = FaultEvent(KIND_VDD_DROOP, 100.0, 50.0, magnitude=0.05)
        assert not event.active_at(99.999)
        assert event.active_at(100.0)
        assert event.active_at(149.999)
        assert not event.active_at(150.0)
        assert event.end_ns == 150.0

    def test_families_partition_all_kinds(self):
        assert SILICON_KINDS | INFRA_KINDS == ALL_KINDS
        assert not SILICON_KINDS & INFRA_KINDS
        assert FaultEvent(KIND_TEMP_DRIFT, 0.0, 1.0).is_silicon
        assert not FaultEvent(KIND_WORKER_CRASH, 0.0, 1.0).is_silicon

    def test_round_trip(self):
        event = FaultEvent(KIND_GEN_DROPOUT, 5.0, 7.0, target=1)
        assert FaultEvent.from_dict(event.to_dict()) == event

    def test_describe_mentions_kind_and_window(self):
        text = FaultEvent(KIND_STUCK_NOBB, 10.0, 20.0).describe()
        assert KIND_STUCK_NOBB in text
        assert "[10, 30)" in text


class TestFaultSchedule:
    def test_events_are_time_sorted(self):
        schedule = FaultSchedule(
            [
                FaultEvent(KIND_TEMP_DRIFT, 500.0, 10.0),
                FaultEvent(KIND_VDD_DROOP, 100.0, 10.0),
            ]
        )
        assert [e.start_ns for e in schedule] == [100.0, 500.0]

    def test_active_filters_by_time_and_kind(self):
        schedule = FaultSchedule(
            [
                FaultEvent(KIND_TEMP_DRIFT, 0.0, 100.0, magnitude=30.0),
                FaultEvent(KIND_VDD_DROOP, 50.0, 100.0, magnitude=0.05),
            ]
        )
        assert len(schedule.active(60.0)) == 2
        assert len(schedule.active(60.0, KIND_VDD_DROOP)) == 1
        assert schedule.active(200.0) == []

    def test_generate_is_deterministic(self):
        a = FaultSchedule.generate(42, horizon_ns=1e5)
        b = FaultSchedule.generate(42, horizon_ns=1e5)
        c = FaultSchedule.generate(43, horizon_ns=1e5)
        assert a.to_dict() == b.to_dict()
        assert a.to_dict() != c.to_dict()

    @pytest.mark.parametrize("seed", [0, 7, 2017])
    def test_generate_covers_every_required_kind(self, seed):
        schedule = FaultSchedule.generate(seed, horizon_ns=1e5)
        for kind in (
            KIND_TEMP_DRIFT,
            KIND_VDD_DROOP,
            KIND_AGING_VTH,
            KIND_GEN_DROPOUT,
            KIND_TRANSITION_TIMEOUT,
            KIND_WORKER_CRASH,
            KIND_CACHE_CORRUPT,
        ):
            assert schedule.of_kind(kind), f"missing {kind}"
        assert all(e.end_ns <= 1e5 * 1.0001 for e in schedule)

    def test_generate_targets_stay_in_range(self):
        schedule = FaultSchedule.generate(
            11, horizon_ns=1e5, num_generators=3, num_shards=4
        )
        for event in schedule.of_kind(KIND_GEN_DROPOUT):
            assert 0 <= event.target < 3
        for event in schedule.of_kind(KIND_WORKER_CRASH):
            assert 0 <= event.target < 4

    def test_round_trip(self):
        schedule = FaultSchedule.generate(7, horizon_ns=5e4)
        payload = schedule.to_dict()
        assert payload["schema"] == FAULT_SCHEDULE_SCHEMA
        again = FaultSchedule.from_dict(payload)
        assert again.to_dict() == payload
        assert again.seed == 7
        assert again.horizon_ns == 5e4

    def test_schema_mismatch_rejected(self):
        payload = FaultSchedule.generate(7).to_dict()
        payload["schema"] = 99
        with pytest.raises(ValueError, match="unsupported fault-schedule"):
            FaultSchedule.from_dict(payload)

    def test_describe_counts_families(self):
        schedule = FaultSchedule.generate(7, horizon_ns=1e5)
        text = schedule.describe()
        assert "silicon" in text and "infra" in text and "seed 7" in text


class TestSiliconEnvironment:
    def test_empty_environment_is_benign(self):
        env = SiliconEnvironment()
        assert env.temperature_delta_c(0.0) == 0.0
        assert env.vdd_droop_v(0.0) == 0.0
        assert env.aging_vth_shift_v(1e9) == 0.0
        assert env.slowdown_fraction(0.0, 0.8) == 0.0
        assert env.dropped_generators(0.0) == frozenset()
        assert not env.stuck_at_nobb(0.0)
        assert not env.transition_blocked(0.0)

    def test_temperature_ramp_is_triangular(self):
        env = SiliconEnvironment(
            FaultSchedule(
                [FaultEvent(KIND_TEMP_DRIFT, 100.0, 200.0, magnitude=40.0)]
            )
        )
        assert env.temperature_delta_c(100.0) == pytest.approx(0.0)
        assert env.temperature_delta_c(200.0) == pytest.approx(40.0)
        assert env.temperature_delta_c(150.0) == pytest.approx(20.0)
        assert env.temperature_delta_c(250.0) == pytest.approx(20.0)
        assert env.temperature_delta_c(299.999) == pytest.approx(0.0, abs=1e-2)
        assert env.temperature_delta_c(300.0) == 0.0

    def test_droop_is_square_and_additive(self):
        env = SiliconEnvironment(
            FaultSchedule(
                [
                    FaultEvent(KIND_VDD_DROOP, 0.0, 100.0, magnitude=0.03),
                    FaultEvent(KIND_VDD_DROOP, 50.0, 100.0, magnitude=0.02),
                ]
            )
        )
        assert env.vdd_droop_v(10.0) == pytest.approx(0.03)
        assert env.vdd_droop_v(60.0) == pytest.approx(0.05)
        assert env.vdd_droop_v(120.0) == pytest.approx(0.02)
        assert env.vdd_droop_v(200.0) == 0.0

    def test_aging_ramps_linearly_and_persists(self):
        env = SiliconEnvironment(
            FaultSchedule(
                [FaultEvent(KIND_AGING_VTH, 100.0, 100.0, magnitude=0.01)]
            )
        )
        assert env.aging_vth_shift_v(50.0) == 0.0
        assert env.aging_vth_shift_v(150.0) == pytest.approx(0.005)
        assert env.aging_vth_shift_v(200.0) == pytest.approx(0.01)
        # BTI-style: the shift never relaxes after the stress window.
        assert env.aging_vth_shift_v(1e6) == pytest.approx(0.01)

    def test_slowdown_composes_all_three_effects(self):
        env = SiliconEnvironment(
            FaultSchedule(
                [
                    FaultEvent(KIND_TEMP_DRIFT, 0.0, 200.0, magnitude=30.0),
                    FaultEvent(KIND_VDD_DROOP, 0.0, 200.0, magnitude=0.04),
                    FaultEvent(KIND_AGING_VTH, 0.0, 100.0, magnitude=0.01),
                ]
            )
        )
        now, vdd = 100.0, 0.8
        expected = (
            TEMP_SLOWDOWN_PER_C * 30.0
            + DROOP_ALPHA * 0.04 / vdd
            + AGING_ALPHA * 0.01 / vdd
        )
        assert env.slowdown_fraction(now, vdd) == pytest.approx(expected)
        # Erosion is the slowdown expressed in ps of the clock period.
        assert env.slack_erosion_ps(now, vdd, 1000.0) == pytest.approx(
            1000.0 * expected
        )
        assert math.isclose(
            env.slack_erosion_ps(now, vdd, 500.0),
            0.5 * env.slack_erosion_ps(now, vdd, 1000.0),
        )

    def test_erosion_validates_inputs(self):
        env = SiliconEnvironment()
        with pytest.raises(ValueError, match="vdd"):
            env.slowdown_fraction(0.0, 0.0)
        with pytest.raises(ValueError, match="period"):
            env.slack_erosion_ps(0.0, 0.8, 0.0)

    def test_hardware_windows(self):
        env = SiliconEnvironment(
            FaultSchedule(
                [
                    FaultEvent(KIND_GEN_DROPOUT, 0.0, 100.0, target=1),
                    FaultEvent(KIND_GEN_DROPOUT, 50.0, 100.0, target=0),
                    FaultEvent(KIND_STUCK_NOBB, 200.0, 50.0),
                    FaultEvent(KIND_TRANSITION_TIMEOUT, 300.0, 50.0),
                ]
            )
        )
        assert env.dropped_generators(10.0) == frozenset({1})
        assert env.dropped_generators(60.0) == frozenset({0, 1})
        assert env.dropped_generators(120.0) == frozenset({0})
        assert env.stuck_at_nobb(225.0)
        assert not env.stuck_at_nobb(199.0)
        assert env.transition_blocked(325.0)
        assert not env.transition_blocked(260.0)

    def test_temp_ramp_edges_are_exactly_zero(self):
        # Half-open window [100, 300): zero at the opening edge, full
        # magnitude only at the midpoint, and -- because the end instant
        # is outside the window -- *exactly* zero at and past the end,
        # not merely small.  The margin guard leans on this: a mode is
        # re-admittable the instant the excursion window closes.
        env = SiliconEnvironment(
            FaultSchedule(
                [FaultEvent(KIND_TEMP_DRIFT, 100.0, 200.0, magnitude=40.0)]
            )
        )
        assert env.temperature_delta_c(100.0) == 0.0
        assert env.temperature_delta_c(300.0) == 0.0
        assert env.temperature_delta_c(300.0 - 1e-9) == pytest.approx(
            0.0, abs=1e-6
        )
        # Erosion at the edges is therefore exactly zero too.
        assert env.slack_erosion_ps(100.0, 0.8, 1000.0) == 0.0
        assert env.slack_erosion_ps(300.0, 0.8, 1000.0) == 0.0
        # And symmetric around the midpoint.
        assert env.temperature_delta_c(150.0) == pytest.approx(
            env.temperature_delta_c(250.0)
        )

    def test_aging_saturates_exactly_at_window_end(self):
        # Aging uses of_kind (not active): progress clamps to 1.0 at
        # the window-end instant itself, even though the half-open
        # window no longer *covers* that instant -- the shift is
        # permanent, so end_ns must already see the full magnitude.
        env = SiliconEnvironment(
            FaultSchedule(
                [FaultEvent(KIND_AGING_VTH, 100.0, 100.0, magnitude=0.01)]
            )
        )
        assert env.aging_vth_shift_v(200.0) == pytest.approx(0.01)
        assert env.aging_vth_shift_v(200.0 - 1e-6) < 0.01
        assert env.aging_vth_shift_v(200.0 + 1e-6) == pytest.approx(0.01)
        # The instant before the window opens contributes nothing.
        assert env.aging_vth_shift_v(100.0 - 1e-9) == 0.0
        assert env.aging_vth_shift_v(100.0) == 0.0

    def test_overlapping_droop_and_temp_windows_compose(self):
        # A droop square pulse [0, 200) under a temp triangle [50, 250):
        # inside the overlap both effects add; on either side exactly
        # one survives; at 250 everything is gone.
        env = SiliconEnvironment(
            FaultSchedule(
                [
                    FaultEvent(KIND_VDD_DROOP, 0.0, 200.0, magnitude=0.04),
                    FaultEvent(KIND_TEMP_DRIFT, 50.0, 200.0, magnitude=30.0),
                ]
            )
        )
        vdd = 0.8
        droop_only = DROOP_ALPHA * 0.04 / vdd
        assert env.slowdown_fraction(25.0, vdd) == pytest.approx(droop_only)
        # Overlap at the triangle's peak (t=150): both effects.
        assert env.slowdown_fraction(150.0, vdd) == pytest.approx(
            droop_only + TEMP_SLOWDOWN_PER_C * 30.0
        )
        # The droop window closes at 200; the triangle (progress 0.75)
        # still contributes half its magnitude.
        assert env.slowdown_fraction(200.0, vdd) == pytest.approx(
            TEMP_SLOWDOWN_PER_C * 15.0
        )
        assert env.slowdown_fraction(250.0, vdd) == 0.0

    def test_describe_reflects_state(self):
        env = SiliconEnvironment(
            FaultSchedule(
                [FaultEvent(KIND_STUCK_NOBB, 0.0, 100.0)]
            )
        )
        assert "stuck-at-NoBB" in env.describe(50.0)
        assert "stuck-at-NoBB" not in env.describe(150.0)
