"""Workload-trace suite: determinism, artifacts, family structure."""

import json

import pytest

from repro.traces import (
    TRACE_FAMILIES,
    TRACE_KIND,
    TRACE_SCHEMA,
    TraceError,
    WorkloadTrace,
    generate_suite,
    generate_trace,
    load_trace_file,
)

LEVELS = (2, 4, 6, 8)


class TestDeterminism:
    @pytest.mark.parametrize("family", TRACE_FAMILIES)
    def test_same_seed_same_trace(self, family):
        a = generate_trace(family, seed=42, length=120, bits_levels=LEVELS)
        b = generate_trace(family, seed=42, length=120, bits_levels=LEVELS)
        assert a == b

    @pytest.mark.parametrize("family", TRACE_FAMILIES)
    def test_different_seed_different_trace(self, family):
        a = generate_trace(family, seed=1, length=120, bits_levels=LEVELS)
        b = generate_trace(family, seed=2, length=120, bits_levels=LEVELS)
        assert a.phases != b.phases

    def test_regeneration_from_recorded_provenance(self):
        """family/seed/params in the artifact reproduce the phases."""
        original = generate_trace(
            "bursty", seed=9, length=80, bits_levels=LEVELS, burst_rate=0.2
        )
        params = dict(original.params)
        regenerated = generate_trace(
            original.family,
            seed=original.seed,
            length=params.pop("length"),
            bits_levels=params.pop("bits_levels"),
            mean_cycles=params.pop("mean_cycles"),
            **params,
        )
        assert regenerated.phases == original.phases

    def test_suite_offsets_seeds_per_family(self):
        suite = generate_suite(seed=5, length=40)
        assert set(suite) == set(TRACE_FAMILIES)
        seeds = [suite[family].seed for family in TRACE_FAMILIES]
        assert seeds == [5, 6, 7, 8]


class TestFamilyStructure:
    @pytest.mark.parametrize("family", TRACE_FAMILIES)
    def test_levels_and_length_respected(self, family):
        trace = generate_trace(
            family, seed=3, length=150, bits_levels=LEVELS, mean_cycles=500
        )
        assert len(trace.phases) == 150
        assert {bits for bits, _ in trace.phases} <= set(LEVELS)
        for _, cycles in trace.phases:
            assert 1 <= cycles <= int(1.3 * 500)

    def test_bursty_is_mostly_low_with_high_bursts(self):
        trace = generate_trace("bursty", seed=0, length=400)
        bits = [b for b, _ in trace.phases]
        assert set(bits) <= {LEVELS[0], LEVELS[-1]}
        assert bits.count(LEVELS[0]) > bits.count(LEVELS[-1])

    def test_diurnal_visits_low_and_high(self):
        trace = generate_trace("diurnal", seed=0, length=400)
        bits = {b for b, _ in trace.phases}
        assert LEVELS[0] in bits and LEVELS[-1] in bits

    def test_phase_structured_spikes_from_a_distant_level(self):
        trace = generate_trace("phase_structured", seed=0, length=600)
        bits = [b for b, _ in trace.phases]
        # Active segments run at levels[1], not adjacent to the spike
        # level -- that distance is what makes spike round trips costly.
        assert LEVELS[1] in bits
        assert LEVELS[-1] in bits
        assert LEVELS[0] in bits

    def test_flapping_alternates_in_short_runs(self):
        trace = generate_trace(
            "adversarial_flapping", seed=0, length=600
        )
        bits = [b for b, _ in trace.phases]
        flips = sum(1 for a, b in zip(bits, bits[1:]) if a != b)
        assert flips > len(bits) // 10


class TestArtifact:
    def test_round_trip_is_bit_identical(self, tmp_path):
        trace = generate_trace("diurnal", seed=7, length=60)
        path = tmp_path / "trace.json"
        trace.save(path)
        assert WorkloadTrace.load(path) == trace

    def test_document_shape(self, tmp_path):
        trace = generate_trace("bursty", seed=1, length=10)
        path = tmp_path / "trace.json"
        trace.save(path)
        payload = json.loads(path.read_text())
        assert payload["kind"] == TRACE_KIND
        assert payload["schema"] == TRACE_SCHEMA
        assert payload["family"] == "bursty"
        assert len(payload["phases"]) == 10

    def test_load_trace_file_reads_artifact(self, tmp_path):
        trace = generate_trace("bursty", seed=1, length=10)
        path = tmp_path / "trace.json"
        trace.save(path)
        assert load_trace_file(path) == trace.to_phases()

    def test_load_trace_file_reads_legacy_list(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(
            json.dumps([{"bits": 4, "cycles": 100}, {"bits": 8, "cycles": 5}])
        )
        assert load_trace_file(path) == [(4, 100), (8, 5)]

    def test_load_trace_file_rejects_garbage(self, tmp_path):
        bad_json = tmp_path / "bad.json"
        bad_json.write_text("{not json")
        with pytest.raises(TraceError, match="not valid JSON"):
            load_trace_file(bad_json)
        bad_kind = tmp_path / "kind.json"
        bad_kind.write_text(json.dumps({"kind": "other", "schema": 1}))
        with pytest.raises(TraceError, match="not a workload trace"):
            load_trace_file(bad_kind)
        bad_list = tmp_path / "list.json"
        bad_list.write_text(json.dumps([{"bits": 4}]))
        with pytest.raises(TraceError, match="legacy trace list"):
            load_trace_file(bad_list)
        scalar = tmp_path / "scalar.json"
        scalar.write_text("3")
        with pytest.raises(TraceError, match="trace object or a legacy"):
            load_trace_file(scalar)

    def test_future_schema_rejected(self):
        payload = generate_trace("bursty", seed=1, length=4).to_dict()
        payload["schema"] = TRACE_SCHEMA + 1
        with pytest.raises(TraceError, match="unsupported trace schema"):
            WorkloadTrace.from_dict(payload)


class TestValidation:
    def test_unknown_family(self):
        with pytest.raises(TraceError, match="unknown trace family"):
            generate_trace("tidal", seed=0)

    def test_bad_levels_length_cycles(self):
        with pytest.raises(TraceError, match="bits_levels"):
            generate_trace("bursty", seed=0, bits_levels=())
        with pytest.raises(TraceError, match="bits_levels"):
            generate_trace("bursty", seed=0, bits_levels=(0, 4))
        with pytest.raises(TraceError, match="length"):
            generate_trace("bursty", seed=0, length=0)
        with pytest.raises(TraceError, match="mean_cycles"):
            generate_trace("bursty", seed=0, mean_cycles=0)

    def test_phase_validation(self):
        with pytest.raises(TraceError, match="bits must be positive"):
            WorkloadTrace(family="x", seed=0, phases=((0, 10),))
        with pytest.raises(TraceError, match="cycles must be positive"):
            WorkloadTrace(family="x", seed=0, phases=((4, 0),))
