"""Structural validation rules."""

import pytest

from repro.netlist.builder import NetlistBuilder
from repro.netlist.netlist import Netlist
from repro.netlist.validate import NetlistError, validate_netlist
from repro.operators import booth_multiplier
from repro.techlib.library import Library


@pytest.fixture(scope="module")
def library():
    return Library()


def test_valid_design_passes(library):
    netlist = booth_multiplier(library, width=4)
    assert validate_netlist(netlist) == []  # no warnings either


def test_undriven_net_rejected(library):
    netlist = Netlist("t", library)
    floating = netlist.add_net("floating")
    y = netlist.add_net("y")
    netlist.add_cell("i", library.template("INV"), [floating], [y])
    netlist.mark_output_bus("Y", [y])
    with pytest.raises(NetlistError, match="no driver"):
        validate_netlist(netlist)


def test_dangling_net_warns(library):
    builder = NetlistBuilder("t", library)
    a = builder.input_bus("A", 1)[0]
    builder.inv(a)  # output never consumed nor marked as PO
    warnings = validate_netlist(builder.netlist)
    assert any("no sinks" in w for w in warnings)


def test_excess_fanout_rejected(library):
    builder = NetlistBuilder("t", library)
    a = builder.input_bus("A", 1)[0]
    outs = [builder.inv(a) for _ in range(5)]
    builder.output_bus("Y", outs)
    with pytest.raises(NetlistError, match="fanout"):
        validate_netlist(builder.netlist, max_fanout=4)


def test_clock_exempt_from_fanout_rule(library):
    builder = NetlistBuilder("t", library)
    a = builder.input_bus("A", 8)
    builder.clock()
    builder.output_bus("Q", builder.register_word(a))
    # 8 DFFs on the clock, limit 4: must still pass.
    validate_netlist(builder.netlist, max_fanout=4)


def test_tie_nets_exempt_from_fanout_rule(library):
    builder = NetlistBuilder("t", library)
    a = builder.input_bus("A", 6)
    zero = builder.const(False)
    outs = [builder.and2(bit, zero) for bit in a]
    builder.output_bus("Y", outs)
    # The tie net fans out to 6 AND gates, limit 4: must still pass.
    validate_netlist(builder.netlist, max_fanout=4)


def test_dff_clock_pin_must_be_clock(library):
    builder = NetlistBuilder("t", library)
    a = builder.input_bus("A", 2)
    q = builder.netlist.add_net("q")
    builder.netlist.add_cell("ff", library.template("DFF"), [a[0], a[1]], [q])
    builder.netlist.mark_output_bus("Q", [q])
    with pytest.raises(NetlistError, match="non-clock"):
        validate_netlist(builder.netlist)
