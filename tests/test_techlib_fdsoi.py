"""Process parameter validation and paper-sourced constants."""

import dataclasses

import pytest

from repro.techlib.fdsoi import FdsoiProcess, NOMINAL_PROCESS


class TestNominalProcess:
    def test_validates(self):
        NOMINAL_PROCESS.validate()

    def test_paper_body_factor(self):
        # Section II-C: "the body factor ... is as high as 85 mV/V".
        assert NOMINAL_PROCESS.body_factor == pytest.approx(0.085)

    def test_paper_guardband_and_cell_height(self):
        # Section II-C: 3.5 um guardbands, 1.2 um cell rows.
        assert NOMINAL_PROCESS.guardband_width_um == pytest.approx(3.5)
        assert NOMINAL_PROCESS.cell_height_um == pytest.approx(1.2)

    def test_paper_fbb_voltage(self):
        # Section IV-B: "a BB voltage of +/-1.1 V ... as FBB condition".
        assert NOMINAL_PROCESS.fbb_voltage == pytest.approx(1.1)

    def test_paper_bb_range(self):
        # Section II-C: usable back-bias range "spanning more than 2 V".
        assert NOMINAL_PROCESS.max_bb_voltage >= 2.0

    def test_nominal_supply(self):
        assert NOMINAL_PROCESS.vdd_nominal == pytest.approx(1.0)


class TestValidation:
    def test_rejects_vth_above_vdd(self):
        with pytest.raises(ValueError, match="vth0"):
            dataclasses.replace(NOMINAL_PROCESS, vth0=1.5).validate()

    def test_rejects_zero_vth(self):
        with pytest.raises(ValueError, match="vth0"):
            dataclasses.replace(NOMINAL_PROCESS, vth0=0.0).validate()

    def test_rejects_negative_body_factor(self):
        with pytest.raises(ValueError, match="body_factor"):
            dataclasses.replace(NOMINAL_PROCESS, body_factor=-0.1).validate()

    def test_rejects_negative_lvt_offset(self):
        with pytest.raises(ValueError, match="lvt_offset"):
            dataclasses.replace(NOMINAL_PROCESS, lvt_offset=-0.01).validate()

    def test_rejects_unphysical_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            dataclasses.replace(NOMINAL_PROCESS, alpha=2.5).validate()
        with pytest.raises(ValueError, match="alpha"):
            dataclasses.replace(NOMINAL_PROCESS, alpha=0.5).validate()

    def test_rejects_zero_swing(self):
        with pytest.raises(ValueError, match="swing"):
            dataclasses.replace(NOMINAL_PROCESS, subthreshold_swing=0.0).validate()

    def test_rejects_fbb_beyond_range(self):
        with pytest.raises(ValueError, match="back-bias range"):
            dataclasses.replace(NOMINAL_PROCESS, fbb_voltage=3.0).validate()

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError, match="geometry"):
            dataclasses.replace(NOMINAL_PROCESS, guardband_width_um=0.0).validate()

    def test_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            NOMINAL_PROCESS.vth0 = 0.3
