"""Floorplanning, global placement and legalization."""

import numpy as np
import pytest

from repro.operators import booth_multiplier
from repro.pnr.floorplan import Floorplan, floorplan_for
from repro.pnr.legalize import cell_widths, legalize_rows
from repro.pnr.placer import GlobalPlacer
from repro.pnr.wirelength import (
    half_perimeter_wirelength,
    net_wirelengths,
    total_wirelength,
)
from repro.techlib.library import Library

LIBRARY = Library()


@pytest.fixture(scope="module")
def booth8():
    return booth_multiplier(LIBRARY, width=8)


@pytest.fixture(scope="module")
def placement(booth8):
    return GlobalPlacer(booth8, seed=1).run()


class TestFloorplan:
    def test_utilization_respected(self, booth8):
        plan = floorplan_for(booth8, utilization=0.7)
        utilization = booth8.cell_area_um2() / plan.area_um2
        assert 0.6 < utilization <= 0.7

    def test_rows_are_whole(self, booth8):
        plan = floorplan_for(booth8)
        assert plan.height_um == pytest.approx(
            plan.num_rows * plan.row_height_um
        )

    def test_aspect_ratio(self, booth8):
        tall = floorplan_for(booth8, aspect_ratio=2.0)
        assert tall.height_um > 1.5 * tall.width_um

    def test_rejects_bad_parameters(self, booth8):
        with pytest.raises(ValueError):
            floorplan_for(booth8, utilization=0.0)
        with pytest.raises(ValueError):
            floorplan_for(booth8, aspect_ratio=-1.0)

    def test_row_y_bounds(self):
        plan = Floorplan(10.0, 6.0, 1.2)
        assert plan.row_y(0) == pytest.approx(0.6)
        with pytest.raises(ValueError):
            plan.row_y(plan.num_rows)


class TestPlacer:
    def test_all_cells_inside_die(self, booth8, placement):
        plan = placement.floorplan
        assert np.all(placement.positions[:, 0] >= 0.0)
        assert np.all(placement.positions[:, 0] <= plan.width_um)
        assert np.all(placement.positions[:, 1] >= 0.0)
        assert np.all(placement.positions[:, 1] <= plan.height_um)

    def test_cells_snapped_to_rows(self, booth8, placement):
        plan = placement.floorplan
        ys = placement.positions[:, 1]
        row_centers = {plan.row_y(r) for r in range(plan.num_rows)}
        assert all(
            any(abs(y - c) < 1e-9 for c in row_centers) for y in ys
        )

    def test_positions_written_back(self, booth8, placement):
        for cell in booth8.cells:
            x, y = cell.position
            assert (x, y) == tuple(placement.positions[cell.index])

    def test_deterministic_for_seed(self, booth8):
        a = GlobalPlacer(booth8, seed=7).run()
        b = GlobalPlacer(booth8, seed=7).run()
        assert np.array_equal(a.positions, b.positions)

    def test_no_row_overflow(self, booth8, placement):
        plan = placement.floorplan
        widths = cell_widths(booth8)
        for row in range(plan.num_rows):
            members = [
                i for i in range(len(booth8.cells))
                if abs(placement.positions[i, 1] - plan.row_y(row)) < 1e-9
            ]
            assert widths[members].sum() <= plan.width_um * 1.001

    def test_connected_cells_are_close(self, booth8, placement):
        """The attraction model must beat random placement on wirelength."""
        measured = total_wirelength(placement)
        rng = np.random.default_rng(0)
        random_positions = rng.uniform(
            0,
            [placement.floorplan.width_um, placement.floorplan.height_um],
            size=placement.positions.shape,
        )
        shuffled = placement.positions.copy()
        placement.positions = random_positions
        random_wl = total_wirelength(placement)
        placement.positions = shuffled
        assert measured < 0.8 * random_wl


class TestLegalize:
    def test_no_overlaps_within_rows(self, booth8, placement):
        plan = placement.floorplan
        widths = cell_widths(booth8)
        for row in range(plan.num_rows):
            members = sorted(
                (
                    i for i in range(len(booth8.cells))
                    if abs(placement.positions[i, 1] - plan.row_y(row)) < 1e-9
                ),
                key=lambda i: placement.positions[i, 0],
            )
            for left, right in zip(members, members[1:]):
                left_edge = placement.positions[right, 0] - widths[right] / 2
                right_edge = placement.positions[left, 0] + widths[left] / 2
                assert left_edge >= right_edge - 1e-6

    def test_shape_validation(self, booth8):
        plan = floorplan_for(booth8)
        with pytest.raises(ValueError, match="positions shape"):
            legalize_rows(booth8, plan, np.zeros((3, 2)))


class TestWirelength:
    def test_hpwl_simple(self):
        assert half_perimeter_wirelength([(0, 0), (3, 4)]) == 7.0
        assert half_perimeter_wirelength([(1, 1)]) == 0.0

    def test_clock_excluded(self, booth8, placement):
        lengths = net_wirelengths(placement)
        assert lengths[booth8.clock_net.index] == 0.0

    def test_total_positive(self, placement):
        assert total_wirelength(placement) > 0.0
