"""Builder ergonomics: buses, constants, registers, naming."""

import pytest

from repro.netlist.builder import NetlistBuilder
from repro.techlib.library import Library


@pytest.fixture(scope="module")
def library():
    return Library()


class TestBuses:
    def test_input_bus_lsb_first(self, library):
        builder = NetlistBuilder("t", library)
        a = builder.input_bus("A", 3)
        assert [n.name for n in a] == ["A[0]", "A[1]", "A[2]"]
        assert all(n.is_primary_input for n in a)

    def test_output_bus_signedness(self, library):
        builder = NetlistBuilder("t", library)
        a = builder.input_bus("A", 2)
        builder.output_bus("Y", a, signed=False)
        assert builder.netlist.output_buses["Y"].signed is False


class TestConstants:
    def test_const_nets_are_shared(self, library):
        builder = NetlistBuilder("t", library)
        assert builder.const(False) is builder.const(False)
        assert builder.const(True) is builder.const(True)
        assert builder.const(False) is not builder.const(True)

    def test_const_cells_are_ties(self, library):
        builder = NetlistBuilder("t", library)
        builder.const(False)
        builder.const(True)
        counts = builder.netlist.count_by_template()
        assert counts == {"TIELO": 1, "TIEHI": 1}


class TestSequential:
    def test_dff_requires_clock(self, library):
        builder = NetlistBuilder("t", library)
        a = builder.input_bus("A", 1)[0]
        with pytest.raises(ValueError, match="clock"):
            builder.dff(a)

    def test_register_word_width(self, library):
        builder = NetlistBuilder("t", library)
        a = builder.input_bus("A", 4)
        builder.clock()
        q = builder.register_word(a)
        assert len(q) == 4
        assert len(builder.netlist.sequential_cells) == 4

    def test_single_clock_only(self, library):
        builder = NetlistBuilder("t", library)
        builder.clock()
        with pytest.raises(ValueError, match="clock already set"):
            builder.clock("clk2")


class TestGates:
    def test_gate_rejects_multi_output_templates(self, library):
        builder = NetlistBuilder("t", library)
        a = builder.input_bus("A", 3)
        with pytest.raises(ValueError, match="gate_multi"):
            builder.gate("FA", *a)

    def test_gate_multi_returns_template_order(self, library):
        builder = NetlistBuilder("t", library)
        a = builder.input_bus("A", 3)
        s, co = builder.gate_multi("FA", *a)
        assert s.name.endswith("_s")
        assert co.name.endswith("_co")

    def test_unique_names(self, library):
        builder = NetlistBuilder("t", library)
        a = builder.input_bus("A", 1)[0]
        names = {builder.inv(a).name for _ in range(5)}
        assert len(names) == 5

    def test_drive_override(self, library):
        builder = NetlistBuilder("t", library, default_drive="X1")
        a = builder.input_bus("A", 1)[0]
        builder.gate("INV", a, drive="X4")
        assert builder.netlist.cells[0].drive_name == "X4"
