"""The compiled ModeTable artifact: compilation, queries, round-trip."""

import dataclasses
import io
import json

import pytest

from repro.core.config import ExplorationSettings
from repro.core.exploration import ExhaustiveExplorer
from repro.core.runtime import AccuracyController, BiasGeneratorModel
from repro.io.results import load_mode_table, save_mode_table
from repro.serve.table import (
    MODE_TABLE_SCHEMA,
    ModeTable,
    TransitionCost,
    compile_mode_table,
)
from tests.conftest import build_synthetic_table

SETTINGS = ExplorationSettings(
    bitwidths=(2, 4, 6, 8), activity_cycles=12, activity_batch=12
)


@pytest.fixture(scope="module")
def exploration(booth8_domained):
    return ExhaustiveExplorer(booth8_domained).run(SETTINGS)


@pytest.fixture(scope="module")
def compiled(booth8_domained, exploration):
    return compile_mode_table(booth8_domained, exploration)


class TestCompilation:
    def test_metadata_frozen_from_design(self, booth8_domained, compiled):
        assert compiled.design_name == booth8_domained.netlist.name
        assert compiled.fclk_ghz == booth8_domained.fclk_ghz
        assert compiled.num_domains == booth8_domained.num_domains
        assert len(compiled.domain_areas_um2) == booth8_domained.num_domains
        assert compiled.total_area_um2 > 0.0

    def test_modes_are_the_exploration_bests(self, exploration, compiled):
        assert dict(compiled.modes) == exploration.best_per_bitwidth

    def test_transition_matrix_covers_every_pair(self, compiled):
        keys = list(compiled.modes)
        assert set(compiled.transitions) == {
            (a, b) for a in keys for b in keys
        }
        for key in keys:
            assert compiled.transitions[(key, key)].is_free

    def test_matrix_matches_controller_costing(
        self, booth8_domained, exploration, compiled
    ):
        """Precomputed entries equal the legacy controller's on-line cost."""
        controller = AccuracyController(booth8_domained, exploration)
        for (a, b), cost in compiled.transitions.items():
            energy, settle = controller.transition_cost(
                compiled.modes[a], compiled.modes[b]
            )
            assert cost.energy_j == energy
            assert cost.settle_ns == settle

    def test_mode_for_matches_controller(
        self, booth8_domained, exploration, compiled
    ):
        controller = AccuracyController(booth8_domained, exploration)
        for bits in SETTINGS.bitwidths:
            assert compiled.mode_for(bits) == controller.mode_for(bits)

    def test_unreachable_accuracy_rejected(self, compiled):
        with pytest.raises(ValueError, match="no feasible mode"):
            compiled.mode_key_for(99)

    def test_static_mode_is_max_bits(self, compiled):
        assert compiled.static_mode.active_bits == compiled.max_bits
        assert compiled.bitwidths == sorted(compiled.modes)

    def test_empty_exploration_rejected(self, booth8_domained, exploration):
        hollow = dataclasses.replace(exploration, best_per_bitwidth={})
        with pytest.raises(ValueError, match="no feasible"):
            compile_mode_table(booth8_domained, hollow)

    def test_describe_mentions_modes_and_domains(self, compiled):
        text = compiled.describe()
        assert "modes" in text
        assert "domains" in text


class TestValidation:
    def test_mismatched_mode_key_rejected(self, synthetic_table):
        modes = dict(synthetic_table.modes)
        modes[3] = modes.pop(2)  # key no longer matches active_bits
        with pytest.raises(ValueError, match="maps to a 2-bit point"):
            dataclasses.replace(synthetic_table, modes=modes)

    def test_incomplete_matrix_rejected(self, synthetic_table):
        transitions = dict(synthetic_table.transitions)
        del transitions[(2, 8)]
        with pytest.raises(ValueError, match="missing the \\(2, 8\\)"):
            dataclasses.replace(synthetic_table, transitions=transitions)

    def test_vdd_only_transition_is_not_free(self, synthetic_table):
        """6 -> 8 bits changes only the rail; it must still cost."""
        cost = synthetic_table.transition_between(6, 8)
        assert cost.energy_j > 0.0
        assert (
            cost.settle_ns
            == synthetic_table.generator.vdd_transition_time_ns
        )

    def test_combined_transition_settles_at_the_slower_knob(
        self, synthetic_table
    ):
        cost = synthetic_table.transition_between(2, 8)
        generator = synthetic_table.generator
        assert cost.settle_ns == max(
            generator.transition_time_ns, generator.vdd_transition_time_ns
        )

    def test_power_on_is_free(self, synthetic_table):
        assert synthetic_table.transition_between(None, 8).is_free


class TestRoundTrip:
    def test_load_save_identity(self, compiled):
        stream = io.StringIO()
        save_mode_table(compiled, stream)
        stream.seek(0)
        loaded = load_mode_table(stream)
        assert loaded == compiled  # dataclass equality: bit-exact floats

    def test_synthetic_round_trip_preserves_every_field(self):
        generator = BiasGeneratorModel(
            transition_time_ns=123.0,
            well_cap_ff_per_um2=0.1 + 0.2,  # deliberately non-representable
            pump_efficiency=0.7,
            vdd_transition_time_ns=77.0,
            rail_cap_ff_per_um2=1.0 / 3.0,
            regulator_efficiency=0.85,
        )
        table = build_synthetic_table(generator)
        stream = io.StringIO()
        save_mode_table(table, stream)
        stream.seek(0)
        loaded = load_mode_table(stream)
        assert loaded.generator == generator
        for bits, point in table.modes.items():
            other = loaded.modes[bits]
            assert other.vdd == point.vdd
            assert other.bb_config == point.bb_config
            assert other.total_power_w == point.total_power_w
            assert other.dynamic_power_w == point.dynamic_power_w
            assert other.leakage_power_w == point.leakage_power_w
            assert other.worst_slack_ps == point.worst_slack_ps
        assert loaded.transitions == table.transitions

    def test_round_trip_preserves_mode_order(self, compiled):
        stream = io.StringIO()
        save_mode_table(compiled, stream)
        stream.seek(0)
        loaded = load_mode_table(stream)
        assert list(loaded.modes) == list(compiled.modes)

    def test_learned_block_round_trips(self):
        from tests.conftest import build_learned_table

        table, result = build_learned_table()
        stream = io.StringIO()
        save_mode_table(table, stream)
        stream.seek(0)
        loaded = load_mode_table(stream)
        assert loaded.learned == result.spec
        assert loaded == table

    def test_older_schema_without_learned_block_accepted(
        self, synthetic_table
    ):
        # Schema bumped for the learned block; pre-bump artifacts must
        # still load (learned absent, everything else intact).
        payload = synthetic_table.to_dict()
        payload["schema"] = MODE_TABLE_SCHEMA - 1
        payload.pop("learned", None)
        stream = io.StringIO(json.dumps(payload))
        loaded = load_mode_table(stream)
        assert loaded.learned is None
        assert list(loaded.modes) == list(synthetic_table.modes)

    def test_version_mismatch_rejected(self, synthetic_table):
        payload = synthetic_table.to_dict()
        payload["schema"] = MODE_TABLE_SCHEMA + 1
        stream = io.StringIO(json.dumps(payload))
        with pytest.raises(ValueError, match="unsupported mode-table schema"):
            load_mode_table(stream)

    def test_missing_schema_rejected(self, synthetic_table):
        payload = synthetic_table.to_dict()
        del payload["schema"]
        with pytest.raises(ValueError, match="unsupported mode-table schema"):
            ModeTable.from_dict(payload)


class TestTransitionCost:
    def test_is_free(self):
        assert TransitionCost(0.0, 0.0).is_free
        assert not TransitionCost(1e-12, 0.0).is_free
        assert not TransitionCost(0.0, 50.0).is_free
