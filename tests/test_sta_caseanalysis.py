"""Case analysis: constant propagation, sequential fixpoint, sensitization."""

import numpy as np
import pytest

from repro.netlist.builder import NetlistBuilder
from repro.operators import booth_multiplier, fir_filter, FirParameters
from repro.sta.caseanalysis import (
    UNKNOWN,
    ZERO,
    ONE,
    dvas_case,
    propagate_constants,
)
from repro.sta.graph import compile_timing_graph
from repro.techlib.library import Library

LIBRARY = Library()


class TestCombinationalPropagation:
    def test_and_with_zero_is_zero(self):
        builder = NetlistBuilder("t", LIBRARY)
        a = builder.input_bus("A", 2)
        y = builder.and2(a[0], a[1])
        builder.output_bus("Y", [y])
        case = propagate_constants(builder.netlist, {a[0].index: False})
        assert case.values[y.index] == ZERO

    def test_or_with_zero_stays_unknown(self):
        builder = NetlistBuilder("t", LIBRARY)
        a = builder.input_bus("A", 2)
        y = builder.or2(a[0], a[1])
        builder.output_bus("Y", [y])
        case = propagate_constants(builder.netlist, {a[0].index: False})
        assert case.values[y.index] == UNKNOWN

    def test_or_with_one_is_one(self):
        builder = NetlistBuilder("t", LIBRARY)
        a = builder.input_bus("A", 2)
        y = builder.or2(a[0], a[1])
        builder.output_bus("Y", [y])
        case = propagate_constants(builder.netlist, {a[0].index: True})
        assert case.values[y.index] == ONE

    def test_tie_cells_are_constant(self):
        builder = NetlistBuilder("t", LIBRARY)
        a = builder.input_bus("A", 1)
        zero = builder.const(False)
        one = builder.const(True)
        y = builder.and2(a[0], one)
        builder.output_bus("Y", [y])
        case = propagate_constants(builder.netlist, {})
        assert case.values[zero.index] == ZERO
        assert case.values[one.index] == ONE
        assert case.values[y.index] == UNKNOWN

    def test_xor_cancellation_not_assumed(self):
        """x XOR x is always 0, but 3-valued analysis cannot see it."""
        builder = NetlistBuilder("t", LIBRARY)
        a = builder.input_bus("A", 1)
        y = builder.xor2(a[0], a[0])
        builder.output_bus("Y", [y])
        case = propagate_constants(builder.netlist, {})
        assert case.values[y.index] == UNKNOWN  # pessimistic but sound


class TestSequentialFixpoint:
    def test_constant_d_keeps_reset_value(self):
        builder = NetlistBuilder("t", LIBRARY)
        a = builder.input_bus("A", 1)
        builder.clock()
        zero = builder.const(False)
        q = builder.dff(builder.and2(a[0], zero))
        builder.output_bus("Q", [q])
        case = propagate_constants(builder.netlist, {})
        assert case.values[q.index] == ZERO

    def test_toggling_flop_goes_unknown(self):
        builder = NetlistBuilder("t", LIBRARY)
        builder.clock()
        netlist = builder.netlist
        q = netlist.add_net("q")
        d = builder.inv(q)
        netlist.add_cell("ff", LIBRARY.template("DFF"), [d, netlist.clock_net], [q])
        netlist.mark_output_bus("Q", [q])
        case = propagate_constants(netlist, {})
        assert case.values[q.index] == UNKNOWN

    def test_fir_delay_line_deactivates_under_gating(self):
        """The headline sequential case: gated sample LSBs stay constant
        through the whole delay line, accumulator and beyond."""
        params = FirParameters(taps=4, width=8)
        netlist = fir_filter(LIBRARY, params)
        case = dvas_case(netlist, active_bits=4)
        # Every delay-line register of a gated bit must be constant zero.
        constant_regs = 0
        for cell in netlist.sequential_cells:
            if cell.name.startswith("dl") and "_reg" in cell.name:
                if case.values[cell.output_nets[0].index] == ZERO:
                    constant_regs += 1
        assert constant_regs >= params.taps * 4  # 4 gated bits per stage

    def test_counter_stays_active(self):
        params = FirParameters(taps=4, width=8)
        netlist = fir_filter(LIBRARY, params)
        case = dvas_case(netlist, active_bits=2)
        tap_bus = netlist.output_buses["TAP"]
        for net in tap_bus.nets:
            assert case.values[net.index] == UNKNOWN


class TestDvasCase:
    def test_forces_low_bits_of_every_bus(self):
        netlist = booth_multiplier(LIBRARY, width=8)
        case = dvas_case(netlist, active_bits=3)
        for bus in netlist.input_buses.values():
            for net in bus.nets[:5]:
                assert case.values[net.index] == ZERO
            for net in bus.nets[5:]:
                assert case.values[net.index] == UNKNOWN

    def test_product_lsbs_become_constant(self):
        netlist = booth_multiplier(LIBRARY, width=8, registered=False)
        case = dvas_case(netlist, active_bits=4)
        product = netlist.output_buses["P"]
        # Structurally provable zeros: the bottom 4 product bits (multiples
        # of the gated multiplicand LSBs).  Bits 4..7 are also zero
        # *arithmetically* (the product is a multiple of 2^8), but the
        # proof needs same-signal cancellation (neg XOR neg), which
        # three-valued case analysis -- like PrimeTime's -- soundly
        # over-approximates as unknown.
        for net in product.nets[:4]:
            assert case.values[net.index] == ZERO
        assert case.values[product.nets[10].index] == UNKNOWN

    def test_constant_fraction_monotone_in_gating(self):
        netlist = booth_multiplier(LIBRARY, width=8)
        fractions = [
            dvas_case(netlist, bits).constant_fraction()
            for bits in (8, 6, 4, 2)
        ]
        assert fractions == sorted(fractions)

    def test_per_bus_override(self):
        netlist = booth_multiplier(LIBRARY, width=8)
        case = dvas_case(netlist, active_bits=8, buses={"A": 2})
        a = netlist.input_buses["A"]
        b = netlist.input_buses["B"]
        assert case.values[a.nets[0].index] == ZERO
        assert case.values[b.nets[0].index] == UNKNOWN


class TestSensitization:
    def test_mux_select_constant_blocks_unselected_input(self):
        builder = NetlistBuilder("t", LIBRARY)
        a = builder.input_bus("A", 3)  # a[2] is the select
        y = builder.mux2(a[0], a[1], a[2])
        builder.output_bus("Y", [y])
        netlist = builder.netlist
        case = propagate_constants(netlist, {a[2].index: False})
        graph = compile_timing_graph(netlist)
        mask = case.active_arc_mask(graph)
        # Arc order within the MUX cell: inputs (A, B, S) -> output Y.
        mux_arcs = [
            i for i in range(len(graph.arc_from))
            if netlist.cells[graph.arc_cell[i]].template.name == "MUX2"
        ]
        arc_a, arc_b, arc_s = mux_arcs
        assert mask[arc_a]          # selected input propagates
        assert not mask[arc_b]      # unselected input is blocked
        assert not mask[arc_s]      # constant select has no arc

    def test_and_side_zero_blocks_other_input(self):
        builder = NetlistBuilder("t", LIBRARY)
        a = builder.input_bus("A", 2)
        y = builder.and2(a[0], a[1])
        builder.output_bus("Y", [y])
        netlist = builder.netlist
        case = propagate_constants(netlist, {a[1].index: False})
        graph = compile_timing_graph(netlist)
        mask = case.active_arc_mask(graph)
        assert not mask.any()  # output is constant: nothing propagates

    def test_full_accuracy_blocks_only_tie_fed_arcs(self):
        """At full bitwidth nothing is gated, so the only inactive arcs
        belong to cells with a structurally constant (tie) side input."""
        netlist = booth_multiplier(LIBRARY, width=4)
        case = dvas_case(netlist, active_bits=4)
        graph = compile_timing_graph(netlist)
        mask = case.active_arc_mask(graph)
        assert mask.mean() > 0.9
        for ordinal in np.nonzero(~mask)[0]:
            cell = netlist.cells[graph.arc_cell[ordinal]]
            codes = [case.values[n.index] for n in cell.input_nets]
            assert any(code != UNKNOWN for code in codes)
