"""Property/invariant tests of the content-addressed shard cache.

Three families:

* **key stability** -- the same inputs always produce the same key, no
  matter the dict insertion order, the process, or ``PYTHONHASHSEED``;
* **key sensitivity** -- any mutation of any input (netlist, parasitics,
  constraint, settings, configs, shard slice) changes the key;
* **corruption safety** -- a damaged entry is detected, discarded and
  recomputed, never silently served.
"""

import dataclasses
import json
import random
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import ExplorationSettings
from repro.core.exploration import ExhaustiveExplorer, KnobCellResult
from repro.core.flow import implement_with_domains
from repro.operators import adequate_adder
from repro.parallel.cache import CacheStats, ResultCache
from repro.parallel.fingerprint import (
    canonical_json,
    configs_fingerprint,
    design_fingerprint,
    shard_key,
)
from repro.parallel.shards import Shard, plan_shards
from repro.pnr.grid import GridPartition
from repro.sta.batch import all_bb_configs

SETTINGS = ExplorationSettings(
    bitwidths=(2, 4), activity_cycles=8, activity_batch=8
)

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

#: Deterministic rebuild recipe shared with the subprocess test.
BUILD_SNIPPET = """
from repro.core.flow import implement_with_domains
from repro.operators import adequate_adder
from repro.pnr.grid import GridPartition
from repro.techlib.library import Library

library = Library()
design = implement_with_domains(
    lambda: adequate_adder(library, width=4, name="keytest"),
    library,
    GridPartition(2, 1),
)
"""


@pytest.fixture(scope="module")
def design(library):
    return implement_with_domains(
        lambda: adequate_adder(library, width=4, name="keytest"),
        library,
        GridPartition(2, 1),
    )


@pytest.fixture(scope="module")
def key_parts(design):
    configs = all_bb_configs(design.num_domains)
    shard = plan_shards(SETTINGS)[0]
    return {
        "design": design_fingerprint(design),
        "configs": configs_fingerprint(configs),
        "shard": shard,
        "raw_configs": configs,
    }


def make_key(parts, settings=SETTINGS, shard=None):
    return shard_key(
        parts["design"],
        settings,
        parts["configs"],
        shard if shard is not None else parts["shard"],
    )


class TestKeyStability:
    def test_canonical_json_ignores_insertion_order(self):
        rng = random.Random(20170314)
        for _ in range(50):
            items = [(f"k{i}", rng.randint(0, 999)) for i in range(8)]
            nested = [("inner", {"x": 1, "y": [3, 2, 1]})]
            shuffled = list(items) + nested
            rng.shuffle(shuffled)
            reference = canonical_json(dict(sorted(items) + nested))
            assert canonical_json(dict(shuffled)) == reference

    def test_key_repeatable_within_process(self, key_parts):
        assert make_key(key_parts) == make_key(key_parts)

    def test_key_stable_across_processes_and_hash_seeds(self, key_parts):
        """A fresh interpreter with a different PYTHONHASHSEED (so str
        hashing, set/dict iteration incidentals all differ) rebuilds the
        same design and derives the same key."""
        script = BUILD_SNIPPET + (
            "from repro.core.config import ExplorationSettings\n"
            "from repro.parallel.fingerprint import ("
            "configs_fingerprint, design_fingerprint, shard_key)\n"
            "from repro.parallel.shards import plan_shards\n"
            "from repro.sta.batch import all_bb_configs\n"
            "settings = ExplorationSettings("
            "bitwidths=(2, 4), activity_cycles=8, activity_batch=8)\n"
            "print(shard_key(design_fingerprint(design), settings,"
            " configs_fingerprint(all_bb_configs(design.num_domains)),"
            " plan_shards(settings)[0]))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={
                "PYTHONPATH": REPO_SRC,
                "PYTHONHASHSEED": "271828",
                "PATH": "/usr/bin:/bin",
            },
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == make_key(key_parts)

    def test_key_independent_of_shard_index_and_names(self, key_parts, library):
        """Shard index is positional bookkeeping; netlist names are not
        semantic.  Neither may enter the key."""
        shard = key_parts["shard"]
        renumbered = Shard(99, shard.bitwidths, shard.vdd_values)
        assert make_key(key_parts, shard=renumbered) == make_key(key_parts)

        renamed = implement_with_domains(
            lambda: adequate_adder(library, width=4, name="other_name"),
            library,
            GridPartition(2, 1),
        )
        assert design_fingerprint(renamed) == key_parts["design"]

    def test_key_ignores_execution_knobs(self, key_parts):
        for variant in (
            dataclasses.replace(SETTINGS, workers=4),
            dataclasses.replace(SETTINGS, cache=True, cache_dir="/elsewhere"),
        ):
            assert make_key(key_parts, settings=variant) == make_key(key_parts)


class TestKeySensitivity:
    def test_settings_mutations_change_key(self, key_parts):
        baseline = make_key(key_parts)
        for variant in (
            dataclasses.replace(SETTINGS, seed=SETTINGS.seed + 1),
            dataclasses.replace(SETTINGS, activity_cycles=12),
            dataclasses.replace(SETTINGS, activity_batch=12),
        ):
            assert make_key(key_parts, settings=variant) != baseline

    def test_shard_slice_changes_key(self, key_parts):
        baseline = make_key(key_parts)
        shard = key_parts["shard"]
        assert (
            make_key(key_parts, shard=Shard(0, (3,), shard.vdd_values))
            != baseline
        )
        assert (
            make_key(key_parts, shard=Shard(0, shard.bitwidths, (1.0, 0.9)))
            != baseline
        )

    def test_configs_change_key(self, key_parts):
        trimmed = key_parts["raw_configs"][:-1]
        assert configs_fingerprint(trimmed) != key_parts["configs"]

    def test_combo_span_changes_key(self, key_parts):
        """Two slices of the combo tensor are different results; the key
        must tell them apart even when bitwidths/VDDs coincide."""
        shard = key_parts["shard"]
        baseline = make_key(key_parts)
        first = Shard(0, shard.bitwidths, shard.vdd_values, 0, 8)
        second = Shard(0, shard.bitwidths, shard.vdd_values, 8, 16)
        assert make_key(key_parts, shard=first) != baseline
        assert make_key(key_parts, shard=second) != baseline
        assert make_key(key_parts, shard=first) != make_key(
            key_parts, shard=second
        )

    def test_netlist_mutation_changes_fingerprint(self, design):
        baseline = design_fingerprint(design)
        cell = design.netlist.cells[0]
        original = cell.drive_name
        alternative = next(
            d for d in cell.template.drives if d != original
        )
        cell.set_drive(alternative)
        try:
            assert design_fingerprint(design) != baseline
        finally:
            cell.set_drive(original)
        assert design_fingerprint(design) == baseline

    def test_constraint_and_parasitics_change_fingerprint(self, design):
        baseline = design_fingerprint(design)
        relaxed = dataclasses.replace(
            design,
            constraint=dataclasses.replace(
                design.constraint, period_ps=design.constraint.period_ps * 2
            ),
        )
        assert design_fingerprint(relaxed) != baseline
        rescaled = dataclasses.replace(
            design, parasitics=design.parasitics.scaled(1.01)
        )
        assert design_fingerprint(rescaled) != baseline

    def test_random_field_permutations_never_collide(self, key_parts):
        """Randomized invariant: distinct (settings, shard) inputs map to
        distinct keys -- 200 draws, no collisions."""
        rng = random.Random(977)
        seen = {}
        for _ in range(200):
            settings = dataclasses.replace(
                SETTINGS,
                seed=rng.randint(0, 50),
                activity_cycles=rng.choice((8, 10, 12)),
            )
            shard = Shard(
                0,
                (rng.choice((2, 3, 4)),),
                tuple(sorted(rng.sample((1.0, 0.9, 0.8, 0.7), 2))),
            )
            identity = (
                settings.seed,
                settings.activity_cycles,
                shard.bitwidths,
                shard.vdd_values,
            )
            key = make_key(key_parts, settings=settings, shard=shard)
            if identity in seen:
                assert seen[identity] == key
            else:
                assert key not in seen.values()
                seen[identity] = key


class TestStaEngineKeying:
    """The key embeds the *resolved* STA engine + lattice kernel schema.

    ``auto`` and an explicit ``lattice`` run the same kernel, so they
    share entries; ``pointwise`` results must never be served to a
    lattice run (or vice versa), even though the engines are
    differential-tested bit-identical.
    """

    def test_resolved_engine_in_key(self, key_parts, monkeypatch):
        monkeypatch.delenv("REPRO_STA_ENGINE", raising=False)
        auto = make_key(key_parts)  # SETTINGS defaults to sta_engine="auto"
        lattice = make_key(
            key_parts,
            settings=dataclasses.replace(SETTINGS, sta_engine="lattice"),
        )
        pointwise = make_key(
            key_parts,
            settings=dataclasses.replace(SETTINGS, sta_engine="pointwise"),
        )
        assert lattice != pointwise
        assert auto == lattice, "auto resolves to lattice; same kernel"

    def test_env_override_rekeys_auto(self, key_parts, monkeypatch):
        """$REPRO_STA_ENGINE redirects ``auto`` runs, so it must redirect
        their cache keys too -- to exactly the explicit engine's keys."""
        monkeypatch.delenv("REPRO_STA_ENGINE", raising=False)
        explicit_pointwise = make_key(
            key_parts,
            settings=dataclasses.replace(SETTINGS, sta_engine="pointwise"),
        )
        monkeypatch.setenv("REPRO_STA_ENGINE", "pointwise")
        assert make_key(key_parts) == explicit_pointwise
        # Explicit requests ignore the env: still the lattice key.
        assert (
            make_key(
                key_parts,
                settings=dataclasses.replace(SETTINGS, sta_engine="lattice"),
            )
            != explicit_pointwise
        )

    def test_lattice_schema_version_in_key(self, key_parts, monkeypatch):
        import repro.sta.lattice as lattice_mod

        baseline = make_key(key_parts)
        monkeypatch.setattr(lattice_mod, "LATTICE_SCHEMA", 9999)
        assert make_key(key_parts) != baseline

    def test_pointwise_shards_never_served_to_lattice_run(
        self, tmp_path, design, monkeypatch
    ):
        monkeypatch.delenv("REPRO_STA_ENGINE", raising=False)
        pointwise = dataclasses.replace(
            SETTINGS, cache=True, cache_dir=str(tmp_path),
            sta_engine="pointwise",
        )
        first = ExhaustiveExplorer(design).run(pointwise)
        assert first.cache_stats.writes > 0

        lattice = dataclasses.replace(pointwise, sta_engine="lattice")
        cross = ExhaustiveExplorer(design).run(lattice)
        assert cross.cache_stats.hits == 0, (
            "lattice run must not consume pointwise shards"
        )
        assert cross.cache_stats.writes == first.cache_stats.writes
        assert cross.best_per_bitwidth == first.best_per_bitwidth

        # Both engines' entries now coexist; each re-run is all-hits.
        for settings in (pointwise, lattice):
            rerun = ExhaustiveExplorer(design).run(settings)
            assert rerun.cache_stats.misses == 0
            assert rerun.cache_stats.hits > 0


class TestCorruption:
    def _populated(self, tmp_path, design):
        settings = dataclasses.replace(
            SETTINGS, cache=True, cache_dir=str(tmp_path)
        )
        result = ExhaustiveExplorer(design).run(settings)
        cache = ResultCache(tmp_path)
        entries = cache._entries()
        assert entries, "expected cached shards"
        return settings, result, cache, entries

    def test_truncated_entry_recomputed(self, tmp_path, design):
        settings, reference, cache, entries = self._populated(tmp_path, design)
        entries[0].write_text('{"schema": 1, "key": "')
        rerun = ExhaustiveExplorer(design).run(settings)
        assert rerun.cache_stats.invalidations == 1
        assert rerun.cache_stats.writes == 1
        assert rerun.best_per_bitwidth == reference.best_per_bitwidth

    def test_bitflipped_body_detected_by_checksum(self, tmp_path, design):
        settings, reference, cache, entries = self._populated(tmp_path, design)
        entry = json.loads(entries[0].read_text())
        entry["body"]["cells"][0]["feasible_count"] += 1
        entries[0].write_text(json.dumps(entry))
        stats = CacheStats()
        key = entries[0].stem
        assert cache.load(key, stats) is None
        assert stats.invalidations == 1 and stats.hits == 0
        assert not entries[0].exists(), "corrupt entry must be dropped"
        rerun = ExhaustiveExplorer(design).run(settings)
        assert rerun.best_per_bitwidth == reference.best_per_bitwidth

    def test_entry_under_wrong_key_rejected(self, tmp_path, design):
        _, _, cache, entries = self._populated(tmp_path, design)
        stolen = entries[0].read_text()
        fake_key = "0" * 64
        (tmp_path / f"{fake_key}.json").write_text(stolen)
        assert cache.load(fake_key) is None
        assert cache.stats.invalidations == 1

    def test_stale_schema_rejected(self, tmp_path, design):
        _, _, cache, entries = self._populated(tmp_path, design)
        entry = json.loads(entries[0].read_text())
        entry["schema"] = 0
        entries[0].write_text(json.dumps(entry))
        assert cache.load(entries[0].stem) is None
        assert cache.stats.invalidations == 1

    def test_roundtrip_preserves_cells(self, tmp_path):
        cache = ResultCache(tmp_path)
        cells = [
            KnobCellResult(bits=4, vdd=0.9, evaluated=4, feasible_count=0,
                           best=None),
            KnobCellResult(bits=4, vdd=0.9, evaluated=4, feasible_count=0,
                           best=None, combo_lo=8),
        ]
        cache.store("k" * 64, cells)
        assert cache.load("k" * 64) == cells

    def test_legacy_cell_dict_defaults_combo_lo(self):
        """Pre-combo-tensor cell payloads (no combo_lo) still decode --
        the fingerprint schema bump retires them, but the decoder must
        not crash on one."""
        legacy = {"bits": 4, "vdd": 0.9, "evaluated": 4,
                  "feasible_count": 2, "best": None}
        cell = KnobCellResult.from_dict(legacy)
        assert cell.combo_lo == 0
        assert cell.combo_hi == 4
