"""CORDIC rotator: bit-exactness, trigonometric behaviour, flow fit."""

import numpy as np
import pytest

from repro.netlist.validate import validate_netlist
from repro.operators import cordic_rotator
from repro.operators.cordic import cordic_angle_lsbs
from repro.sim import golden
from repro.sim.simulator import LogicSimulator, SimulationMode
from repro.techlib.library import Library

LIBRARY = Library()

#: CORDIC gain for >= 8 iterations.
GAIN = 1.64676


class TestAngleTable:
    def test_first_angle_is_45_degrees(self):
        angles = cordic_angle_lsbs(8, 16)
        # atan(1) = pi/4 -> a quarter of the half-range.
        assert angles[0] == pytest.approx((1 << 15) / 4, abs=1)

    def test_angles_halve_roughly(self):
        angles = cordic_angle_lsbs(10, 16)
        for a, b in zip(angles, angles[1:]):
            assert 0.4 < b / a < 0.6


class TestBitExactness:
    @pytest.mark.parametrize("width,iterations", [(10, 6), (12, 8), (16, 12)])
    def test_matches_golden(self, width, iterations):
        netlist = cordic_rotator(
            LIBRARY, width=width, iterations=iterations, registered=False
        )
        validate_netlist(netlist)
        sim = LogicSimulator(netlist, SimulationMode.TRANSPARENT)
        rng = np.random.default_rng(width)
        half = 1 << (width - 2)
        x = rng.integers(-half, half, 400)
        y = rng.integers(-half, half, 400)
        z = rng.integers(-(1 << (width - 1)), 1 << (width - 1), 400)
        out = sim.run_combinational({"X": x, "Y": y, "Z": z})
        ref = golden.cordic_reference(x, y, z, width, iterations)
        for port in ("XO", "YO", "ZO"):
            assert np.array_equal(out[port], ref[port]), port

    def test_registered_latency(self):
        netlist = cordic_rotator(LIBRARY, width=10, iterations=6)
        sim = LogicSimulator(netlist, SimulationMode.CYCLE)
        stim = [{"X": np.asarray([100]), "Y": np.asarray([0]),
                 "Z": np.asarray([64])}] * 3
        trace = sim.run_cycles(stim)
        ref = golden.cordic_reference(
            np.asarray([100]), np.asarray([0]), np.asarray([64]), 10, 6
        )
        assert trace.output("XO", 2)[0] == ref["XO"][0]


class TestTrigonometry:
    def test_rotation_angles(self):
        """Rotating (r, 0) by theta lands near gain*r*(cos, sin)(theta)."""
        width, iterations = 16, 12
        r = 4000
        for degrees in (-60, -30, 0, 30, 45, 80):
            theta = degrees * np.pi / 180.0
            z_lsb = int(theta / np.pi * (1 << (width - 1)))
            out = golden.cordic_reference(
                np.asarray([r]), np.asarray([0]), np.asarray([z_lsb]),
                width, iterations,
            )
            expected_x = GAIN * r * np.cos(theta)
            expected_y = GAIN * r * np.sin(theta)
            assert out["XO"][0] == pytest.approx(expected_x, abs=r * 0.01)
            assert out["YO"][0] == pytest.approx(expected_y, abs=r * 0.01)

    def test_residual_angle_shrinks_with_iterations(self):
        width = 16
        z = np.asarray([3000])
        coarse = golden.cordic_reference(
            np.asarray([2000]), np.asarray([0]), z, width, 4
        )
        fine = golden.cordic_reference(
            np.asarray([2000]), np.asarray([0]), z, width, 12
        )
        assert abs(int(fine["ZO"][0])) < abs(int(coarse["ZO"][0]))

    def test_iteration_precision_tradeoff(self):
        """More iterations -> smaller rotation error: the algorithmic
        accuracy knob that composes with DVAS bitwidth gating."""
        width, r = 16, 4000
        theta = 0.6
        z_lsb = int(theta / np.pi * (1 << (width - 1)))
        errors = []
        for iterations in (4, 8, 12):
            out = golden.cordic_reference(
                np.asarray([r]), np.asarray([0]), np.asarray([z_lsb]),
                width, iterations,
            )
            expected = GAIN * r * np.cos(theta)
            errors.append(abs(float(out["XO"][0]) - expected))
        assert errors[2] < errors[1] < errors[0] + 1


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError, match="iteration"):
            cordic_rotator(LIBRARY, width=16, iterations=0)
        with pytest.raises(ValueError, match="width"):
            cordic_rotator(LIBRARY, width=8, iterations=9)

    def test_flow_compatible(self):
        from repro.core.flow import implement_base

        counter = {"n": 0}

        def factory():
            counter["n"] += 1
            return cordic_rotator(
                LIBRARY, width=10, iterations=6, name=f"cordic_{counter['n']}"
            )

        design = implement_base(factory, LIBRARY)
        assert design.fclk_ghz > 0
