"""Cross-checks between the characterization tables and the delay engine.

These tests close the loop between the three views of the same physics:
the raw model functions, the characterization tables, and what STA
actually computes -- inconsistencies here would silently skew every
experiment.
"""

import numpy as np
import pytest

from repro.netlist.builder import NetlistBuilder
from repro.sta.constraints import ClockConstraint
from repro.sta.engine import StaEngine
from repro.sta.graph import compile_timing_graph
from repro.techlib.characterize import characterize
from repro.techlib.library import Library
from repro.techlib.models import delay_scale_factor, leakage_scale_factor

LIBRARY = Library()


class TestModelTableEngineConsistency:
    @pytest.mark.parametrize("vdd", [1.0, 0.8, 0.6])
    @pytest.mark.parametrize("fbb", [True, False])
    def test_sta_uses_exactly_the_table_numbers(self, vdd, fbb):
        """An inverter chain's STA delay must equal the characterized
        cell numbers, stage by stage."""
        corner = (
            LIBRARY.fbb_corner(vdd) if fbb else LIBRARY.nobb_corner(vdd)
        )
        factor = LIBRARY.delay_factor(corner)
        if not np.isfinite(factor):
            pytest.skip("corner below threshold")
        table = characterize(LIBRARY, [corner])
        row = table.lookup("INV", "X1", corner)

        builder = NetlistBuilder("chain", LIBRARY)
        a = builder.input_bus("A", 1)
        builder.clock()
        net = builder.register_word(a)[0]
        stages = 5
        for _ in range(stages):
            net = builder.inv(net)
        builder.output_bus("Y", builder.register_word([net]))
        netlist = builder.build()

        graph = compile_timing_graph(netlist)
        engine = StaEngine(graph, LIBRARY)
        fbb_cells = np.full(graph.num_cells, fbb, dtype=bool)
        delay = engine.critical_path_delay(vdd, fbb_cells)

        inv_cap = LIBRARY.template("INV").drives["X1"].input_cap_ff
        dff = LIBRARY.template("DFF")
        dff_cap = dff.drives["X1"].input_cap_ff
        expected = (
            dff.clk_to_q_ps * factor
            + (stages - 1)
            * (row.intrinsic_delay_ps + row.load_coeff_ps_per_ff * inv_cap)
            + (row.intrinsic_delay_ps + row.load_coeff_ps_per_ff * dff_cap)
        )
        assert delay == pytest.approx(expected, rel=1e-9)

    def test_model_functions_match_library_cache(self):
        for vdd in (1.0, 0.8):
            for vbb in (0.0, 1.1, -1.1):
                from repro.techlib.library import Corner

                corner = Corner(vdd, vbb)
                assert LIBRARY.delay_factor(corner) == pytest.approx(
                    delay_scale_factor(vdd, vbb, LIBRARY.process)
                )
                assert LIBRARY.leakage_factor(corner) == pytest.approx(
                    leakage_scale_factor(vdd, vbb, LIBRARY.process)
                )

    def test_delay_leakage_antimonotone_in_vbb(self):
        """Across the full bias range: more forward bias = faster and
        leakier, with no crossovers."""
        vbbs = np.linspace(-1.1, 1.1, 12)
        delays = [delay_scale_factor(1.0, v) for v in vbbs]
        leaks = [leakage_scale_factor(1.0, v) for v in vbbs]
        assert all(b < a for a, b in zip(delays, delays[1:]))
        assert all(b > a for a, b in zip(leaks, leaks[1:]))


class TestUncertaintyValidation:
    def test_constraint_rejects_bad_uncertainty(self):
        with pytest.raises(ValueError):
            ClockConstraint(100.0, uncertainty_ps=100.0)
        with pytest.raises(ValueError):
            ClockConstraint(100.0, uncertainty_ps=-1.0)
        with pytest.raises(ValueError):
            ClockConstraint(0.0)

    def test_frequency_roundtrip(self):
        constraint = ClockConstraint(800.0)
        assert constraint.frequency_ghz == pytest.approx(1.25)
