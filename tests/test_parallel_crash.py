"""Crash resilience of the sharded engine: kill it and demand identical bits.

The contract: worker crashes, hung shards, corrupted cache entries and
interrupts may cost retries and respawns -- never results.  Every
recovery path below ends with a bit-identical comparison against the
legacy serial sweep, and the survived faults must be visible in
``result.fault_stats``.
"""

import dataclasses

import pytest

from repro.core.config import ExplorationSettings
from repro.core.exploration import ExhaustiveExplorer
from repro.core.flow import implement_with_domains
from repro.faults import WorkerFaultPlan, corrupt_cache_entries
from repro.operators import adequate_adder
from repro.parallel.engine import (
    WORKERS_ENV,
    ParallelExplorer,
    ResilienceStats,
    ShardRetryExhausted,
    SweepInterrupted,
    interrupt_event,
    resolve_worker_count,
)
from repro.pnr.grid import GridPartition

SETTINGS = ExplorationSettings(
    bitwidths=(2, 3, 4, 6),
    activity_cycles=10,
    activity_batch=8,
)


def assert_identical(reference, result):
    assert result.best_per_bitwidth == reference.best_per_bitwidth
    assert result.best_per_knob_point == reference.best_per_knob_point
    assert result.feasible_counts == reference.feasible_counts
    assert result.points_evaluated == reference.points_evaluated
    assert result.points_feasible == reference.points_feasible


@pytest.fixture(scope="module")
def design(library):
    return implement_with_domains(
        lambda: adequate_adder(library, width=6, name="crash_add"),
        library,
        GridPartition(2, 1),
    )


@pytest.fixture(scope="module")
def serial_reference(design):
    return ExhaustiveExplorer(design).run(SETTINGS)


@pytest.fixture(autouse=True)
def clear_interrupt():
    interrupt_event().clear()
    yield
    interrupt_event().clear()


def pool_settings(tmp_path, workers=2, cache=True):
    return dataclasses.replace(
        SETTINGS,
        workers=workers,
        cache=cache,
        cache_dir=str(tmp_path / "cache") if cache else None,
    )


class TestWorkerCrash:
    def test_killed_worker_is_respawned_and_results_match(
        self, design, serial_reference, tmp_path
    ):
        plan = WorkerFaultPlan(
            marker_dir=str(tmp_path / "faults"), crash_shards=(1,)
        )
        result = ParallelExplorer(design, fault_plan=plan).run(
            pool_settings(tmp_path)
        )
        assert_identical(serial_reference, result)
        stats = result.fault_stats
        assert stats.worker_crashes >= 1
        assert stats.pool_respawns >= 1
        assert stats.shard_retries >= 1
        assert stats.any_faults
        assert "crash-1" in plan.fired()
        assert "crashes" in stats.describe()

    def test_crashes_on_several_shards(
        self, design, serial_reference, tmp_path
    ):
        plan = WorkerFaultPlan(
            marker_dir=str(tmp_path / "faults"), crash_shards=(0, 2)
        )
        result = ParallelExplorer(
            design, fault_plan=plan, max_shard_retries=3
        ).run(pool_settings(tmp_path))
        assert_identical(serial_reference, result)
        assert result.fault_stats.worker_crashes >= 1
        assert sorted(plan.fired()) == ["crash-0", "crash-2"]

    def test_exhausted_retry_budget_raises(self, design, tmp_path):
        plan = WorkerFaultPlan(
            marker_dir=str(tmp_path / "faults"), crash_shards=(0,)
        )
        with pytest.raises(ShardRetryExhausted, match="budget"):
            ParallelExplorer(
                design, fault_plan=plan, max_shard_retries=0
            ).run(pool_settings(tmp_path, cache=False))

    def test_clean_run_reports_no_faults(
        self, design, serial_reference, tmp_path
    ):
        result = ParallelExplorer(design).run(pool_settings(tmp_path))
        assert_identical(serial_reference, result)
        assert not result.fault_stats.any_faults
        assert result.fault_stats.to_dict() == {
            "worker_crashes": 0,
            "pool_respawns": 0,
            "shard_retries": 0,
            "shard_timeouts": 0,
        }


class TestHungShard:
    def test_hung_worker_times_out_and_work_is_requeued(
        self, design, serial_reference, tmp_path
    ):
        plan = WorkerFaultPlan(
            marker_dir=str(tmp_path / "faults"),
            hang_shards=(0,),
            hang_s=30.0,
        )
        result = ParallelExplorer(
            design, fault_plan=plan, shard_timeout_s=0.5
        ).run(pool_settings(tmp_path))
        assert_identical(serial_reference, result)
        stats = result.fault_stats
        assert stats.shard_timeouts >= 1
        assert stats.pool_respawns >= 1
        assert "hang-0" in plan.fired()

    def test_timeout_validation(self, design):
        with pytest.raises(ValueError, match="shard_timeout_s"):
            ParallelExplorer(design, shard_timeout_s=0.0)
        with pytest.raises(ValueError, match="max_shard_retries"):
            ParallelExplorer(design, max_shard_retries=-1)


class TestCacheCorruption:
    def test_corrupt_entries_are_detected_and_recomputed(
        self, design, serial_reference, tmp_path
    ):
        settings = pool_settings(tmp_path, workers=1)
        warm = ParallelExplorer(design).run(settings)
        assert_identical(serial_reference, warm)
        damaged = corrupt_cache_entries(settings.cache_dir, count=2)
        assert damaged == 2
        again = ParallelExplorer(design).run(settings)
        assert_identical(serial_reference, again)
        assert again.cache_stats.invalidations >= 2
        # Third run: the repaired entries hit clean again.
        third = ParallelExplorer(design).run(settings)
        assert third.cache_stats.invalidations == 0
        assert third.cache_stats.hits == len(SETTINGS.bitwidths)

    def test_corrupting_a_missing_directory_is_a_noop(self, tmp_path):
        assert corrupt_cache_entries(tmp_path / "nope") == 0


class TestInterrupt:
    def test_serial_sweep_stops_on_interrupt(self, design, tmp_path):
        interrupt_event().set()
        with pytest.raises(SweepInterrupted, match="0/4"):
            ParallelExplorer(design).run(pool_settings(tmp_path, workers=1))

    def test_pool_sweep_flushes_then_resumes(
        self, design, serial_reference, tmp_path
    ):
        settings = pool_settings(tmp_path)

        def stop_after_first(shard, from_cache):
            interrupt_event().set()

        with pytest.raises(SweepInterrupted) as stop:
            ParallelExplorer(
                design, on_shard_complete=stop_after_first
            ).run(settings)
        assert stop.value.completed >= 1
        interrupt_event().clear()
        # Completed shards are durable: the resumed run hits the cache
        # for them and still matches the serial reference exactly.
        resumed = ParallelExplorer(design).run(settings)
        assert_identical(serial_reference, resumed)
        assert resumed.cache_stats.hits >= 1


class TestWorkerCountResolution:
    def test_bad_env_chains_the_original_error(self, monkeypatch):
        from repro.core.config import AUTO_WORKERS

        monkeypatch.setenv(WORKERS_ENV, "lots")
        with pytest.raises(ValueError, match="must be an integer") as err:
            resolve_worker_count(AUTO_WORKERS)
        assert isinstance(err.value.__cause__, ValueError)

    def test_stats_object_is_standalone(self):
        stats = ResilienceStats(worker_crashes=1)
        assert stats.any_faults
        assert stats.to_dict()["worker_crashes"] == 1
