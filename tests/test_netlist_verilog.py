"""Structural Verilog round trips."""

import io

import numpy as np
import pytest

from repro.netlist.verilog import read_verilog, write_verilog
from repro.operators import booth_multiplier, fft_butterfly
from repro.sim.simulator import LogicSimulator, SimulationMode
from repro.techlib.library import Library


@pytest.fixture(scope="module")
def library():
    return Library()


def _roundtrip(netlist, library):
    stream = io.StringIO()
    write_verilog(netlist, stream)
    stream.seek(0)
    return read_verilog(stream, library)


def test_roundtrip_preserves_structure(library):
    original = booth_multiplier(library, width=4)
    restored = _roundtrip(original, library)
    assert restored.name == original.name
    assert len(restored.cells) == len(original.cells)
    assert len(restored.nets) == len(original.nets)
    assert restored.count_by_template() == original.count_by_template()
    assert {b: v.width for b, v in restored.input_buses.items()} == {
        b: v.width for b, v in original.input_buses.items()
    }
    assert restored.clock_net is not None


def test_roundtrip_preserves_drives(library):
    original = booth_multiplier(library, width=4)
    original.cells[3].set_drive("X4")
    restored = _roundtrip(original, library)
    assert restored.cells[3].drive_name in {
        c.drive_name for c in restored.cells
    }
    by_name = {c.name: c for c in restored.cells}
    assert by_name[original.cells[3].name].drive_name == "X4"


def test_roundtrip_is_functionally_identical(library):
    original = booth_multiplier(library, width=6, registered=False)
    restored = _roundtrip(original, library)
    rng = np.random.default_rng(3)
    a = rng.integers(-32, 32, 500)
    b = rng.integers(-32, 32, 500)
    sim_a = LogicSimulator(original, SimulationMode.TRANSPARENT)
    sim_b = LogicSimulator(restored, SimulationMode.TRANSPARENT)
    out_a = sim_a.run_combinational({"A": a, "B": b})["P"]
    out_b = sim_b.run_combinational({"A": a, "B": b})["P"]
    assert np.array_equal(out_a, out_b)


def test_verilog_text_shape(library):
    netlist = booth_multiplier(library, width=4)
    stream = io.StringIO()
    write_verilog(netlist, stream)
    text = stream.getvalue()
    assert text.startswith(f"module {netlist.name} (")
    assert text.rstrip().endswith("endmodule")
    assert "input [3:0] A;" in text
    assert "output [7:0] P;" in text
    assert "input clk;" in text


def test_read_rejects_missing_module(library):
    with pytest.raises(ValueError, match="module"):
        read_verilog(io.StringIO("wire x;"), library)


def test_roundtrip_large_sequential_design(library):
    original = fft_butterfly(library, width=8)
    restored = _roundtrip(original, library)
    assert len(restored.cells) == len(original.cells)
    assert len(restored.sequential_cells) == len(original.sequential_cells)


def test_roundtrip_preserves_bus_signedness(library):
    """The unsigned pragma must survive a write/read cycle (the FIR's TAP
    counter would otherwise decode as negative after import)."""
    from repro.operators import fir_filter
    from repro.operators.fir import FirParameters

    original = fir_filter(library, FirParameters(taps=4, width=6))
    restored = _roundtrip(original, library)
    assert restored.output_buses["TAP"].signed is False
    assert restored.output_buses["Y"].signed is True


def test_roundtrip_sequential_function(library):
    """A sequential design must behave identically after a round trip."""
    from repro.operators import fir_filter
    from repro.operators.fir import FirParameters
    from repro.sim.simulator import LogicSimulator, SimulationMode

    params = FirParameters(taps=3, width=6)
    original = fir_filter(library, params, name="fir_rt")
    restored = _roundtrip(original, library)
    rng = np.random.default_rng(8)
    stim = [
        {"X": rng.integers(-32, 32, 10), "C": rng.integers(-32, 32, 10)}
        for _ in range(12)
    ]
    trace_a = LogicSimulator(original, SimulationMode.CYCLE).run_cycles(stim)
    trace_b = LogicSimulator(restored, SimulationMode.CYCLE).run_cycles(stim)
    for cycle in range(12):
        for bus in ("Y", "TAP"):
            assert np.array_equal(
                trace_a.output(bus, cycle), trace_b.output(bus, cycle)
            )
