"""Multi-Vth (RBB) extension and the runtime accuracy controller."""

import numpy as np
import pytest

from repro.core.config import ExplorationSettings
from repro.core.exploration import ExhaustiveExplorer
from repro.core.runtime import (
    AccuracyController,
    BiasGeneratorModel,
    WorkloadPhase,
)
from repro.core.tristate import STATE_NAMES, TriStateExplorer
from repro.sta.batch import all_state_configs

SETTINGS = ExplorationSettings(
    bitwidths=(2, 4, 6, 8), activity_cycles=12, activity_batch=12
)


@pytest.fixture(scope="module")
def two_state(booth8_domained):
    return ExhaustiveExplorer(booth8_domained).run(SETTINGS)


@pytest.fixture(scope="module")
def three_state(booth8_domained):
    return TriStateExplorer(booth8_domained).run(SETTINGS)


class TestAllStateConfigs:
    def test_shape_and_uniqueness(self):
        configs = all_state_configs(3, 3)
        assert configs.shape == (27, 3)
        assert len({tuple(r) for r in configs}) == 27
        assert configs.min() == 0 and configs.max() == 2

    def test_two_state_matches_bb_configs(self):
        from repro.sta.batch import all_bb_configs

        general = all_state_configs(4, 2)
        classic = all_bb_configs(4).astype(np.int64)
        assert np.array_equal(general, classic)

    def test_validation(self):
        with pytest.raises(ValueError):
            all_state_configs(-1, 3)
        with pytest.raises(ValueError):
            all_state_configs(2, 0)


class TestTriState:
    def test_never_worse_than_two_state(self, two_state, three_state):
        """{RBB, NoBB, FBB} is a superset of {NoBB, FBB}."""
        for bits in SETTINGS.bitwidths:
            p2 = two_state.best_per_bitwidth.get(bits)
            p3 = three_state.best_per_bitwidth.get(bits)
            assert p3 is not None
            if p2 is not None:
                assert p3.total_power_w <= p2.total_power_w * 1.0001

    def test_rbb_used_at_low_accuracy(self, three_state):
        low = three_state.best_per_bitwidth[min(SETTINGS.bitwidths)]
        high = three_state.best_per_bitwidth[max(SETTINGS.bitwidths)]
        assert low.count_state(0) >= high.count_state(0)

    def test_full_accuracy_needs_boost(self, three_state):
        top = three_state.best_per_bitwidth[max(SETTINGS.bitwidths)]
        assert top.count_state(2) >= 3  # almost everything FBB

    def test_describe_encodes_states(self, three_state):
        text = three_state.best_per_bitwidth[2].describe()
        assert "Vth[" in text
        assert STATE_NAMES == ("RBB", "NoBB", "FBB")

    def test_config_count(self, three_state, booth8_domained):
        expected = (
            3**booth8_domained.num_domains
            * len(SETTINGS.bitwidths)
            * len(SETTINGS.vdd_values)
        )
        assert three_state.points_evaluated == expected

    def test_domain_limit_guard(self, booth8_domained):
        with pytest.raises(ValueError, match="exceed the limit"):
            TriStateExplorer(booth8_domained, max_configs=10)


class TestRuntimeController:
    def test_mode_for_picks_cheapest_sufficient(
        self, booth8_domained, two_state
    ):
        controller = AccuracyController(booth8_domained, two_state)
        for bits in SETTINGS.bitwidths:
            mode = controller.mode_for(bits)
            assert mode.active_bits >= bits
        assert (
            controller.mode_for(2).total_power_w
            <= controller.mode_for(8).total_power_w
        )

    def test_unreachable_accuracy_rejected(self, booth8_domained, two_state):
        controller = AccuracyController(booth8_domained, two_state)
        with pytest.raises(ValueError, match="no feasible mode"):
            controller.mode_for(99)

    def test_transition_energy_zero_for_same_config(
        self, booth8_domained, two_state
    ):
        controller = AccuracyController(booth8_domained, two_state)
        mode = controller.mode_for(8)
        energy, settle = controller.transition_cost(mode, mode)
        assert energy == 0.0 and settle == 0.0

    def test_transition_energy_positive_for_bias_change(
        self, booth8_domained, two_state
    ):
        controller = AccuracyController(booth8_domained, two_state)
        low = controller.mode_for(2)
        high = controller.mode_for(8)
        if low.bb_config != high.bb_config:
            energy, settle = controller.transition_cost(low, high)
            assert energy > 0.0
            assert settle == controller.generator.transition_time_ns

    def test_replay_accounting(self, booth8_domained, two_state):
        controller = AccuracyController(booth8_domained, two_state)
        workload = [
            WorkloadPhase(required_bits=8, cycles=10_000),
            WorkloadPhase(required_bits=2, cycles=90_000),
            WorkloadPhase(required_bits=8, cycles=10_000),
        ]
        report = controller.replay(workload)
        assert report.total_cycles == 110_000
        assert report.phases == 3
        assert report.total_energy_j == pytest.approx(
            report.compute_energy_j + report.transition_energy_j
        )
        # Mostly-low-accuracy workload: adaptation must save energy.
        assert report.adaptive_saving > 0.1
        assert report.transition_overhead < 0.05
        assert "saved" in report.summary()

    def test_static_workload_has_no_switches(self, booth8_domained, two_state):
        controller = AccuracyController(booth8_domained, two_state)
        report = controller.replay(
            [WorkloadPhase(required_bits=8, cycles=1000)] * 3
        )
        # First phase powers the bias rails once; then nothing changes.
        assert report.mode_switches <= 1
        assert report.adaptive_saving == pytest.approx(0.0, abs=1e-9)

    def test_empty_workload_rejected(self, booth8_domained, two_state):
        controller = AccuracyController(booth8_domained, two_state)
        with pytest.raises(ValueError, match="empty"):
            controller.replay([])

    def test_generator_model_energy_scales(self):
        generator = BiasGeneratorModel()
        small = generator.transition_energy_j(100.0, 0.0, 1.1)
        large = generator.transition_energy_j(1000.0, 0.0, 1.1)
        assert large == pytest.approx(10 * small)
        assert generator.transition_energy_j(100.0, 1.1, 1.1) == 0.0


class TestVddRailTransitions:
    """Satellite regression: a VDD-only mode change is not free."""

    def test_rail_energy_scales_with_area_and_swing(self):
        generator = BiasGeneratorModel()
        small = generator.rail_transition_energy_j(100.0, 0.6, 1.0)
        large = generator.rail_transition_energy_j(1000.0, 0.6, 1.0)
        assert small > 0.0
        assert large == pytest.approx(10 * small)
        double_swing = generator.rail_transition_energy_j(100.0, 0.2, 1.0)
        assert double_swing == pytest.approx(4 * small)
        assert generator.rail_transition_energy_j(100.0, 0.8, 0.8) == 0.0

    def test_rail_slew_direction_symmetric(self):
        generator = BiasGeneratorModel()
        up = generator.rail_transition_energy_j(500.0, 0.6, 1.0)
        down = generator.rail_transition_energy_j(500.0, 1.0, 0.6)
        assert up == down

    def test_vdd_only_transition_costs(self, booth8_domained, two_state):
        """Two points differing only in VDD: energy > 0, rail settle."""
        import dataclasses

        controller = AccuracyController(booth8_domained, two_state)
        mode = controller.mode_for(8)
        other_vdd = 0.6 if mode.vdd != 0.6 else 1.0
        sibling = dataclasses.replace(mode, vdd=other_vdd)
        energy, settle = controller.transition_cost(mode, sibling)
        assert energy > 0.0
        assert settle == controller.generator.vdd_transition_time_ns

    def test_combined_transition_takes_slower_settle(
        self, booth8_domained, two_state
    ):
        import dataclasses

        controller = AccuracyController(booth8_domained, two_state)
        mode = controller.mode_for(8)
        flipped = tuple(not b for b in mode.bb_config)
        other_vdd = 0.6 if mode.vdd != 0.6 else 1.0
        sibling = dataclasses.replace(
            mode, vdd=other_vdd, bb_config=flipped
        )
        energy, settle = controller.transition_cost(mode, sibling)
        generator = controller.generator
        assert energy > generator.rail_transition_energy_j(
            0.0, mode.vdd, other_vdd
        )
        assert settle == max(
            generator.transition_time_ns, generator.vdd_transition_time_ns
        )

    def test_power_on_from_none_is_free(self, booth8_domained, two_state):
        controller = AccuracyController(booth8_domained, two_state)
        assert controller.transition_cost(None, controller.mode_for(8)) == (
            0.0,
            0.0,
        )


class TestSwitchCounting:
    """Satellite regression: a switch is any operating-point change,
    even one whose transition happens to cost nothing."""

    def test_point_change_counts_even_if_free(
        self, booth8_domained, two_state
    ):
        controller = AccuracyController(booth8_domained, two_state)
        trace = [
            WorkloadPhase(required_bits=8, cycles=1_000),
            WorkloadPhase(required_bits=2, cycles=1_000),
            WorkloadPhase(required_bits=8, cycles=1_000),
        ]
        report = controller.replay(trace)
        points = [controller.mode_for(p.required_bits) for p in trace]
        expected = sum(
            1
            for i, point in enumerate(points)
            if i == 0 or point != points[i - 1]
        )
        assert report.mode_switches == expected

    def test_reference_and_scheduler_agree_on_counting(
        self, booth8_domained, two_state
    ):
        controller = AccuracyController(booth8_domained, two_state)
        rng = np.random.default_rng(3)
        trace = [
            WorkloadPhase(
                required_bits=int(rng.choice(SETTINGS.bitwidths)),
                cycles=int(rng.integers(1, 10_000)),
            )
            for _ in range(20)
        ]
        assert (
            controller.replay(trace).mode_switches
            == controller.replay_reference(trace).mode_switches
        )
