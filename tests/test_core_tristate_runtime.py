"""Multi-Vth (RBB) extension and the runtime accuracy controller."""

import numpy as np
import pytest

from repro.core.config import ExplorationSettings
from repro.core.exploration import ExhaustiveExplorer
from repro.core.runtime import (
    AccuracyController,
    BiasGeneratorModel,
    WorkloadPhase,
)
from repro.core.tristate import STATE_NAMES, TriStateExplorer
from repro.sta.batch import all_state_configs

SETTINGS = ExplorationSettings(
    bitwidths=(2, 4, 6, 8), activity_cycles=12, activity_batch=12
)


@pytest.fixture(scope="module")
def two_state(booth8_domained):
    return ExhaustiveExplorer(booth8_domained).run(SETTINGS)


@pytest.fixture(scope="module")
def three_state(booth8_domained):
    return TriStateExplorer(booth8_domained).run(SETTINGS)


class TestAllStateConfigs:
    def test_shape_and_uniqueness(self):
        configs = all_state_configs(3, 3)
        assert configs.shape == (27, 3)
        assert len({tuple(r) for r in configs}) == 27
        assert configs.min() == 0 and configs.max() == 2

    def test_two_state_matches_bb_configs(self):
        from repro.sta.batch import all_bb_configs

        general = all_state_configs(4, 2)
        classic = all_bb_configs(4).astype(np.int64)
        assert np.array_equal(general, classic)

    def test_validation(self):
        with pytest.raises(ValueError):
            all_state_configs(-1, 3)
        with pytest.raises(ValueError):
            all_state_configs(2, 0)


class TestTriState:
    def test_never_worse_than_two_state(self, two_state, three_state):
        """{RBB, NoBB, FBB} is a superset of {NoBB, FBB}."""
        for bits in SETTINGS.bitwidths:
            p2 = two_state.best_per_bitwidth.get(bits)
            p3 = three_state.best_per_bitwidth.get(bits)
            assert p3 is not None
            if p2 is not None:
                assert p3.total_power_w <= p2.total_power_w * 1.0001

    def test_rbb_used_at_low_accuracy(self, three_state):
        low = three_state.best_per_bitwidth[min(SETTINGS.bitwidths)]
        high = three_state.best_per_bitwidth[max(SETTINGS.bitwidths)]
        assert low.count_state(0) >= high.count_state(0)

    def test_full_accuracy_needs_boost(self, three_state):
        top = three_state.best_per_bitwidth[max(SETTINGS.bitwidths)]
        assert top.count_state(2) >= 3  # almost everything FBB

    def test_describe_encodes_states(self, three_state):
        text = three_state.best_per_bitwidth[2].describe()
        assert "Vth[" in text
        assert STATE_NAMES == ("RBB", "NoBB", "FBB")

    def test_config_count(self, three_state, booth8_domained):
        expected = (
            3**booth8_domained.num_domains
            * len(SETTINGS.bitwidths)
            * len(SETTINGS.vdd_values)
        )
        assert three_state.points_evaluated == expected

    def test_domain_limit_guard(self, booth8_domained):
        with pytest.raises(ValueError, match="exceed the limit"):
            TriStateExplorer(booth8_domained, max_configs=10)


class TestRuntimeController:
    def test_mode_for_picks_cheapest_sufficient(
        self, booth8_domained, two_state
    ):
        controller = AccuracyController(booth8_domained, two_state)
        for bits in SETTINGS.bitwidths:
            mode = controller.mode_for(bits)
            assert mode.active_bits >= bits
        assert (
            controller.mode_for(2).total_power_w
            <= controller.mode_for(8).total_power_w
        )

    def test_unreachable_accuracy_rejected(self, booth8_domained, two_state):
        controller = AccuracyController(booth8_domained, two_state)
        with pytest.raises(ValueError, match="no feasible mode"):
            controller.mode_for(99)

    def test_transition_energy_zero_for_same_config(
        self, booth8_domained, two_state
    ):
        controller = AccuracyController(booth8_domained, two_state)
        mode = controller.mode_for(8)
        energy, settle = controller.transition_cost(mode, mode)
        assert energy == 0.0 and settle == 0.0

    def test_transition_energy_positive_for_bias_change(
        self, booth8_domained, two_state
    ):
        controller = AccuracyController(booth8_domained, two_state)
        low = controller.mode_for(2)
        high = controller.mode_for(8)
        if low.bb_config != high.bb_config:
            energy, settle = controller.transition_cost(low, high)
            assert energy > 0.0
            assert settle == controller.generator.transition_time_ns

    def test_replay_accounting(self, booth8_domained, two_state):
        controller = AccuracyController(booth8_domained, two_state)
        workload = [
            WorkloadPhase(required_bits=8, cycles=10_000),
            WorkloadPhase(required_bits=2, cycles=90_000),
            WorkloadPhase(required_bits=8, cycles=10_000),
        ]
        report = controller.replay(workload)
        assert report.total_cycles == 110_000
        assert report.phases == 3
        assert report.total_energy_j == pytest.approx(
            report.compute_energy_j + report.transition_energy_j
        )
        # Mostly-low-accuracy workload: adaptation must save energy.
        assert report.adaptive_saving > 0.1
        assert report.transition_overhead < 0.05
        assert "saved" in report.summary()

    def test_static_workload_has_no_switches(self, booth8_domained, two_state):
        controller = AccuracyController(booth8_domained, two_state)
        report = controller.replay(
            [WorkloadPhase(required_bits=8, cycles=1000)] * 3
        )
        # First phase powers the bias rails once; then nothing changes.
        assert report.mode_switches <= 1
        assert report.adaptive_saving == pytest.approx(0.0, abs=1e-9)

    def test_empty_workload_rejected(self, booth8_domained, two_state):
        controller = AccuracyController(booth8_domained, two_state)
        with pytest.raises(ValueError, match="empty"):
            controller.replay([])

    def test_generator_model_energy_scales(self):
        generator = BiasGeneratorModel()
        small = generator.transition_energy_j(100.0, 0.0, 1.1)
        large = generator.transition_energy_j(1000.0, 0.0, 1.1)
        assert large == pytest.approx(10 * small)
        assert generator.transition_energy_j(100.0, 1.1, 1.1) == 0.0
