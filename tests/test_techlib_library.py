"""Library facade: corners, factors, characterization tables."""

import pytest

from repro.techlib.characterize import (
    CharacterizationTable,
    characterize,
    default_corner_grid,
)
from repro.techlib.library import Corner, Library


@pytest.fixture(scope="module")
def library():
    return Library()


class TestCorner:
    def test_labels(self):
        assert Corner(1.0, 0.0).label == "1.00V/NoBB"
        assert Corner(0.8, 1.1).label == "0.80V/FBB"
        assert Corner(0.8, -0.5).label == "0.80V/RBB"


class TestLibrary:
    def test_reference_corner_is_fbb_nominal(self, library):
        ref = library.reference_corner
        assert ref.vdd == library.process.vdd_nominal
        assert ref.vbb == library.process.fbb_voltage
        assert library.delay_factor(ref) == pytest.approx(1.0)

    def test_factor_caching_returns_same_value(self, library):
        corner = library.nobb_corner(0.8)
        assert library.delay_factor(corner) == library.delay_factor(corner)
        assert library.leakage_factor(corner) == library.leakage_factor(corner)

    def test_vdd_sweep_matches_paper(self, library):
        # Section III-C: 100 mV step between 0.6 V and 1.0 V -> NVDD = 5.
        sweep = library.vdd_sweep()
        assert sweep == [1.0, 0.9, 0.8, 0.7, 0.6]

    def test_vdd_sweep_rejects_bad_step(self, library):
        with pytest.raises(ValueError):
            library.vdd_sweep(step=0.0)

    def test_unknown_template(self, library):
        with pytest.raises(KeyError):
            library.template("FOO")

    def test_has_template(self, library):
        assert library.has_template("NAND2")
        assert not library.has_template("FOO")


class TestCharacterization:
    def test_characterize_covers_all_cells_and_corners(self, library):
        corners = default_corner_grid(library)
        table = characterize(library, corners)
        assert len(corners) == 10  # 5 VDDs x {NoBB, FBB}
        per_corner = len(table.rows) / len(corners)
        drives = sum(
            len(t.drives) for t in library.templates.values()
        )
        assert per_corner == drives

    def test_slow_corner_has_larger_delay(self, library):
        table = characterize(
            library, [library.fbb_corner(1.0), library.fbb_corner(0.6)]
        )
        fast = table.lookup("NAND2", "X1", library.fbb_corner(1.0))
        slow = table.lookup("NAND2", "X1", library.fbb_corner(0.6))
        assert slow.intrinsic_delay_ps > fast.intrinsic_delay_ps
        assert slow.load_coeff_ps_per_ff > fast.load_coeff_ps_per_ff

    def test_lookup_missing_raises(self, library):
        table = characterize(library, [library.fbb_corner(1.0)])
        with pytest.raises(KeyError):
            table.lookup("NAND2", "X1", library.fbb_corner(0.6))

    def test_format_text_lists_requested_cells(self, library):
        table = characterize(library, [library.nobb_corner()])
        text = table.format_text(cells=("INV",))
        assert "INV" in text
        assert "NAND2" not in text
