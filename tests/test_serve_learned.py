"""Learned mode-selection: offline training, frozen spec, serving parity."""

import dataclasses
import json

import pytest

from repro.core.runtime import BiasGeneratorModel, WorkloadPhase
from repro.io.results import load_mode_table, save_mode_table
from repro.serve import ModeScheduler, ServeRequest, replay_trace
from repro.serve.errors import ServeError
from repro.serve.learned import (
    DEFAULT_OCCUPANCY_EDGES,
    DEFAULT_VOLATILITY_EDGES,
    LearnedPolicy,
    bucketize,
    default_level_edges,
    train_on_suite,
    train_policy,
)
from repro.serve.policy import (
    DemandTracker,
    PolicyContext,
    make_policy,
)
from repro.serve.table import LearnedPolicySpec
from repro.traces import generate_suite, generate_trace
from tests.conftest import build_learned_table, build_synthetic_table

#: Slew energies comparable to phase compute -- the regime the learned
#: policy is trained for (and the benchmark uses).
GENERATOR = BiasGeneratorModel(
    well_cap_ff_per_um2=400.0, rail_cap_ff_per_um2=1500.0
)


def expensive_table():
    return build_synthetic_table(GENERATOR)


TABLE = expensive_table()
LEARNED, RESULT = build_learned_table()
SPEC = RESULT.spec


def suite_phases(seed=77, length=100):
    return {
        family: [
            WorkloadPhase(bits, cycles) for bits, cycles in trace.phases
        ]
        for family, trace in generate_suite(
            seed=seed,
            length=length,
            bits_levels=tuple(TABLE.bitwidths),
            mean_cycles=300,
        ).items()
    }


class TestTraining:
    def test_deterministic_for_seed_and_corpus(self):
        again = train_on_suite(
            TABLE, seed=3, length=120, mean_cycles=300, suites=1, rounds=2
        )
        assert again.spec == SPEC
        assert again.samples == RESULT.samples
        assert again.states_visited == RESULT.states_visited

    def test_different_seed_changes_diagnostics(self):
        other = train_on_suite(
            TABLE, seed=4, length=120, mean_cycles=300, suites=1, rounds=2
        )
        assert other.spec.decisions != SPEC.decisions

    def test_spec_shape_and_provenance(self):
        assert SPEC.mode_states == tuple(TABLE.modes)
        assert SPEC.max_bits == TABLE.max_bits
        assert len(SPEC.decisions) == len(TABLE.modes) + 1
        assert SPEC.training["seed"] == 3
        assert RESULT.samples > 0
        assert 0 < RESULT.states_visited <= SPEC.num_states

    def test_every_decision_respects_accuracy(self):
        for cube in SPEC.decisions:
            for plane in cube:
                for row in plane:
                    for cell in row:
                        for bits, key in enumerate(cell):
                            assert TABLE.modes[key].active_bits >= bits

    def test_trainer_validates_arguments(self):
        trace = generate_trace("bursty", seed=0, length=10)
        with pytest.raises(ValueError, match="at least one"):
            train_policy(TABLE, [])
        with pytest.raises(ValueError, match="epsilon"):
            train_policy(TABLE, [trace], epsilon=1.5)
        with pytest.raises(ValueError, match="gamma"):
            train_policy(TABLE, [trace], gamma=1.0)
        with pytest.raises(ValueError, match="rounds"):
            train_policy(TABLE, [trace], rounds=0)
        with pytest.raises(ValueError, match="suites"):
            train_on_suite(TABLE, suites=0)


class TestSpecValidation:
    def test_mode_states_mismatch_rejected(self):
        shifted = dataclasses.replace(
            SPEC, mode_states=tuple(reversed(SPEC.mode_states))
        )
        with pytest.raises(ValueError, match="trained over mode states"):
            shifted.validate_for(TABLE.modes)

    def test_bad_edges_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            dataclasses.replace(SPEC, level_edges=(5.0, 3.0))

    def test_wrong_decision_shape_rejected(self):
        with pytest.raises(ValueError, match="decisions"):
            dataclasses.replace(SPEC, decisions=SPEC.decisions[:-1])

    def test_alpha_mismatch_refused_at_serve_time(self):
        stale = dataclasses.replace(SPEC, demand_alpha=0.5)
        with pytest.raises(ServeError, match="EWMA constants"):
            LearnedPolicy(TABLE, spec=stale)

    def test_max_bits_mismatch_refused(self):
        # A spec trained for a smaller device must not serve this one.
        stale = dataclasses.replace(
            SPEC,
            max_bits=SPEC.max_bits + 2,
            decisions=tuple(
                tuple(
                    tuple(
                        tuple(tuple(cell) + (cell[-1], cell[-1]) for cell in row)
                        for row in plane
                    )
                    for plane in cube
                )
                for cube in SPEC.decisions
            ),
        )
        with pytest.raises(ServeError, match="covers bits up to"):
            LearnedPolicy(TABLE, spec=stale)

    def test_table_without_learned_block_refused(self):
        with pytest.raises(ServeError, match="no learned policy"):
            make_policy("learned", TABLE)


class TestDecide:
    def test_lookup_matches_spec_tensor(self):
        policy = LearnedPolicy(LEARNED)
        ctx = PolicyContext(
            required_bits=4,
            current_bits=8,
            demand_level=4.2,
            demand_volatility=0.9,
            pool_occupancy=0,
        )
        row = list(SPEC.mode_states).index(8)
        expected = SPEC.decisions[row][
            bucketize(SPEC.level_edges, 4.2)
        ][bucketize(SPEC.volatility_edges, 0.9)][
            bucketize(SPEC.occupancy_edges, 0.0)
        ][4]
        assert policy.decide(ctx) == expected

    def test_cold_start_uses_power_on_row(self):
        policy = LearnedPolicy(LEARNED)
        none_row = len(SPEC.mode_states)
        got = policy.decide(PolicyContext(required_bits=6))
        assert got == SPEC.decisions[none_row][
            bucketize(SPEC.level_edges, 0.0)
        ][0][bucketize(SPEC.occupancy_edges, 0.0)][6]

    def test_out_of_range_bits_defer_to_table(self):
        policy = LearnedPolicy(LEARNED)
        with pytest.raises(ValueError):
            policy.decide(PolicyContext(required_bits=SPEC.max_bits + 1))

    def test_never_serves_fewer_bits_than_requested(self):
        policy = LearnedPolicy(LEARNED)
        for bits in range(SPEC.max_bits + 1):
            for current in (None, *SPEC.mode_states):
                key = policy.decide(
                    PolicyContext(required_bits=bits, current_bits=current)
                )
                assert LEARNED.modes[key].active_bits >= bits


class TestArtifactRoundTrip:
    def test_json_round_trip_preserves_learned_block(self, tmp_path):
        path = tmp_path / "table.json"
        with open(path, "w") as stream:
            save_mode_table(LEARNED, stream)
        with open(path) as stream:
            reloaded = load_mode_table(stream)
        assert reloaded.learned == SPEC
        # The reloaded artifact must serve, not just parse.
        report = replay_trace(
            reloaded,
            [WorkloadPhase(4, 100), WorkloadPhase(8, 100)],
            policy="learned",
        )
        assert report.phases == 2

    def test_spec_dict_round_trip(self):
        assert (
            LearnedPolicySpec.from_dict(json.loads(json.dumps(SPEC.to_dict())))
            == SPEC
        )


class TestBatchDifferential:
    @pytest.mark.parametrize(
        "family",
        ["bursty", "diurnal", "phase_structured", "adversarial_flapping"],
    )
    def test_replay_bit_identical(self, family):
        phases = suite_phases()[family]
        scalar = replay_trace(
            LEARNED, phases, policy="learned", engine="scalar"
        )
        batch = replay_trace(LEARNED, phases, policy="learned", engine="batch")
        assert scalar == batch

    def test_submit_batch_equals_submit_loop(self):
        phases = suite_phases(seed=5)["adversarial_flapping"]
        requests = [ServeRequest("op", p.required_bits, p.cycles) for p in phases]
        reference = ModeScheduler(LEARNED, policy="learned", engine="scalar")
        batch = ModeScheduler(LEARNED, policy="learned", engine="batch")
        expected = [reference.submit(r) for r in requests]
        assert batch.submit_batch(requests) == expected
        assert reference.telemetry.snapshot() == batch.telemetry.snapshot()
        assert reference.report("op") == batch.report("op")

    @pytest.mark.parametrize("saturate_at", [1, 3, 7])
    def test_degradation_replan_parity(self, monkeypatch, saturate_at):
        # A single operator's own slews always start at acquisition, so
        # a lone learned frame can never saturate the pool naturally --
        # force saturation at the Nth depth probe instead, identically
        # for both engines (scalar and batch probe at the same non-free
        # switch decisions), and check the learned plan re-derives its
        # suffix from the forced static mode bit-identically.
        from repro.serve.scheduler import GeneratorPool

        phases = suite_phases(seed=9)["phase_structured"]
        requests = [
            ServeRequest("op", p.required_bits, p.cycles) for p in phases
        ]
        real_queue_depth = GeneratorPool.queue_depth
        pair = []
        for engine in ("scalar", "batch"):
            calls = {"n": 0}

            def fake_depth(pool, now_ns, _calls=calls):
                _calls["n"] += 1
                if _calls["n"] == saturate_at:
                    return 999
                return real_queue_depth(pool, now_ns)

            monkeypatch.setattr(GeneratorPool, "queue_depth", fake_depth)
            scheduler = ModeScheduler(
                LEARNED, policy="learned", engine=engine, num_generators=1
            )
            pair.append((scheduler, scheduler.submit_batch(requests)))
        monkeypatch.setattr(GeneratorPool, "queue_depth", real_queue_depth)
        (scalar, scalar_phases), (batch, batch_phases) = pair
        assert scalar_phases == batch_phases
        assert scalar.telemetry.snapshot() == batch.telemetry.snapshot()
        assert scalar.telemetry.counters["degraded"] > 0

    def test_multi_operator_frame_falls_back_identically(self):
        # >1 operator per frame: the batch engine must refuse the
        # learned fast path (occupancy is not provably zero) and serve
        # through the scalar loop -- results stay identical.
        requests = []
        trace = suite_phases(seed=13)["bursty"]
        for index, phase in enumerate(trace):
            requests.append(
                ServeRequest(
                    f"op{index % 3}", phase.required_bits, phase.cycles
                )
            )
        pair = []
        for engine in ("scalar", "batch"):
            scheduler = ModeScheduler(
                LEARNED, policy="learned", engine=engine, num_generators=2
            )
            pair.append((scheduler, scheduler.submit_batch(requests)))
        (scalar, scalar_phases), (batch, batch_phases) = pair
        assert scalar_phases == batch_phases
        assert scalar.telemetry.snapshot() == batch.telemetry.snapshot()

    def test_state_carries_across_frames(self):
        suite = suite_phases(seed=21)
        scalar = ModeScheduler(LEARNED, policy="learned", engine="scalar")
        batch = ModeScheduler(LEARNED, policy="learned", engine="batch")
        for family in suite:
            requests = [
                ServeRequest("op", p.required_bits, p.cycles)
                for p in suite[family][:40]
            ]
            assert scalar.submit_batch(requests) == batch.submit_batch(
                requests
            ), f"diverged on {family}"
            probe = ServeRequest("op", 4, 111)
            assert scalar.submit(probe) == batch.submit(probe)
        assert scalar.telemetry.snapshot() == batch.telemetry.snapshot()


class TestSchedulerIntegration:
    def test_make_policy_learned(self):
        policy = make_policy("learned", LEARNED)
        assert isinstance(policy, LearnedPolicy)
        assert policy.spec == SPEC

    def test_scheduler_serves_learned_end_to_end(self):
        scheduler = ModeScheduler(LEARNED, policy="learned")
        for phase in suite_phases(seed=31)["phase_structured"][:60]:
            served = scheduler.submit(
                ServeRequest("op", phase.required_bits, phase.cycles)
            )
            assert served.served_bits >= phase.required_bits

    def test_default_edges_sit_between_bitwidths(self):
        assert default_level_edges(TABLE) == (3.0, 5.0, 7.0)
        assert bucketize(DEFAULT_VOLATILITY_EDGES, 0.0) == 0
        assert bucketize(DEFAULT_OCCUPANCY_EDGES, 1.0) == 1

    def test_tracker_features_match_training_fold(self):
        tracker = DemandTracker()
        assert tracker.features_for(8) == (8.0, 0.0)
        tracker.update(8)
        tracker.update(2)
        level, vol = tracker.features_for(4)
        assert level == pytest.approx(0.25 * 2 + 0.75 * 8.0)
        assert vol == pytest.approx(0.25 * 6.0)
