"""Alternative partitioning (the future-work ablation helpers)."""

import numpy as np
import pytest

from repro.core.exploration import ExhaustiveExplorer
from repro.core.config import ExplorationSettings
from repro.pnr.partition import slack_oracle_domains, with_custom_domains
from repro.sta.caseanalysis import dvas_case
from repro.sta.engine import StaEngine


class TestSlackOracle:
    def test_covers_all_cells_and_domains(self, booth8_domained):
        domains = slack_oracle_domains(booth8_domained, 6, 4)
        assert domains.shape == (len(booth8_domained.netlist.cells),)
        assert set(np.unique(domains)) == {0, 1, 2, 3}

    def test_domain_zero_is_most_critical(self, booth8_domained, library):
        design = booth8_domained
        domains = slack_oracle_domains(design, 6, 4)
        graph = design.timing_graph()
        engine = StaEngine(graph, library)
        report = engine.analyze(
            design.constraint, 1.0,
            np.ones(graph.num_cells, bool),
            case=dvas_case(design.netlist, 6),
        )
        slack = report.cell_slack_ps()
        mean_first = slack[domains == 0].mean()
        mean_last = slack[domains == 3].mean()
        assert mean_first < mean_last

    def test_single_domain(self, booth8_domained):
        domains = slack_oracle_domains(booth8_domained, 8, 1)
        assert set(np.unique(domains)) == {0}

    def test_invalid_count_rejected(self, booth8_domained):
        with pytest.raises(ValueError):
            slack_oracle_domains(booth8_domained, 8, 0)


class TestCustomDomains:
    def test_view_preserves_everything_but_domains(self, booth8_domained):
        domains = slack_oracle_domains(booth8_domained, 6, 4)
        view = with_custom_domains(booth8_domained, domains, 4)
        assert view.netlist is booth8_domained.netlist
        assert view.constraint is booth8_domained.constraint
        assert view.area_overhead == booth8_domained.area_overhead
        assert np.array_equal(view.domains, domains)
        assert view.num_domains == 4

    def test_explorable(self, booth8_domained):
        domains = slack_oracle_domains(booth8_domained, 6, 2)
        view = with_custom_domains(booth8_domained, domains, 2)
        settings = ExplorationSettings(
            bitwidths=(4, 8), activity_cycles=10, activity_batch=8
        )
        result = ExhaustiveExplorer(view).run(settings)
        assert result.points_evaluated == 4 * 2 * 5  # 2^2 x 2 bits x 5 VDDs
        assert 8 in result.best_per_bitwidth

    def test_shape_validation(self, booth8_domained):
        with pytest.raises(ValueError, match="every cell"):
            with_custom_domains(booth8_domained, np.zeros(3, int), 2)

    def test_range_validation(self, booth8_domained):
        n = len(booth8_domained.netlist.cells)
        with pytest.raises(ValueError, match="out of range"):
            with_custom_domains(booth8_domained, np.full(n, 5), 4)


class TestSlackBandedPartition:
    def test_bands_are_contiguous_in_y(self, booth8_domained):
        from repro.pnr.partition import slack_banded_partition

        domains = slack_banded_partition(booth8_domained, 6, 3)
        ys = booth8_domained.placement.positions[:, 1]
        # For every pair of bands a < b, every cell of a sits below every
        # cell of b (contiguity = physical implementability).
        for low in range(3):
            for high in range(low + 1, 3):
                low_cells = ys[domains == low]
                high_cells = ys[domains == high]
                if len(low_cells) and len(high_cells):
                    assert low_cells.max() <= high_cells.min() + 1e-6

    def test_every_cell_assigned(self, booth8_domained):
        from repro.pnr.partition import slack_banded_partition

        domains = slack_banded_partition(booth8_domained, 6, 4)
        assert domains.shape == (len(booth8_domained.netlist.cells),)
        assert domains.min() >= 0 and domains.max() < 4

    def test_concentrates_critical_cells(self, booth8_domained, library):
        """The band holding the critical cells should be identifiable and
        the non-critical bands should be genuinely non-critical."""
        from repro.pnr.partition import slack_banded_partition
        from repro.sta.caseanalysis import dvas_case
        from repro.sta.engine import StaEngine

        bits, num_bands = 6, 3
        domains = slack_banded_partition(booth8_domained, bits, num_bands)
        graph = booth8_domained.timing_graph()
        engine = StaEngine(graph, library)
        report = engine.analyze(
            booth8_domained.constraint, 1.0,
            np.ones(graph.num_cells, bool),
            case=dvas_case(booth8_domained.netlist, bits),
        )
        slack = report.cell_slack_ps()
        threshold = booth8_domained.constraint.period_ps * 0.12
        critical_bands = {
            int(domains[i])
            for i in range(graph.num_cells)
            if slack[i] < threshold
        }
        # At least one band stays free of critical logic (otherwise the
        # partition buys nothing); the DP guarantees it when possible.
        assert len(critical_bands) < num_bands

    def test_validation(self, booth8_domained):
        from repro.pnr.partition import slack_banded_partition

        with pytest.raises(ValueError):
            slack_banded_partition(booth8_domained, 6, 0)
