"""Bit packing, random words and the DVAS LSB-gating knob."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim.vectors import bits_to_int, int_to_bits, random_words, zero_lsbs


class TestPacking:
    def test_known_values(self):
        bits = int_to_bits(np.asarray([5]), 4)
        assert bits.tolist() == [[True, False, True, False]]

    def test_negative_twos_complement(self):
        bits = int_to_bits(np.asarray([-1]), 4)
        assert bits.tolist() == [[True, True, True, True]]
        assert bits_to_int(bits, signed=True)[0] == -1
        assert bits_to_int(bits, signed=False)[0] == 15

    @given(
        st.lists(
            st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1),
            min_size=1,
            max_size=50,
        )
    )
    def test_roundtrip_signed(self, values):
        array = np.asarray(values)
        assert np.array_equal(
            bits_to_int(int_to_bits(array, 16), signed=True), array
        )

    @given(
        st.lists(
            st.integers(min_value=0, max_value=(1 << 16) - 1),
            min_size=1,
            max_size=50,
        )
    )
    def test_roundtrip_unsigned(self, values):
        array = np.asarray(values)
        assert np.array_equal(
            bits_to_int(int_to_bits(array, 16), signed=False), array
        )


class TestRandomWords:
    def test_signed_range(self):
        rng = np.random.default_rng(0)
        words = random_words(rng, 10000, 8, signed=True)
        assert words.min() >= -128 and words.max() <= 127
        assert words.min() < 0 < words.max()

    def test_unsigned_range(self):
        rng = np.random.default_rng(0)
        words = random_words(rng, 10000, 8, signed=False)
        assert words.min() >= 0 and words.max() <= 255


class TestZeroLsbs:
    def test_full_width_is_identity(self):
        values = np.asarray([13, -7, 0])
        assert np.array_equal(zero_lsbs(values, 8, 8), values)

    def test_masks_low_bits(self):
        assert zero_lsbs(np.asarray([0b0011_0111]), 8, 4)[0] == 0b0011_0000

    def test_preserves_sign(self):
        gated = zero_lsbs(np.asarray([-3]), 8, 4)
        assert gated[0] == -16  # 0b...11110000

    def test_zero_active_bits_zeroes_everything(self):
        values = np.asarray([123, -45])
        assert np.array_equal(zero_lsbs(values, 8, 0), [0, 0])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            zero_lsbs(np.asarray([1]), 8, 9)
        with pytest.raises(ValueError):
            zero_lsbs(np.asarray([1]), 8, -1)

    @given(
        st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1),
        st.integers(min_value=0, max_value=16),
    )
    def test_quantization_error_bound(self, value, active):
        """Gating k LSBs perturbs a value by less than 2**k (mod 2**16)."""
        gated = zero_lsbs(np.asarray([value]), 16, active)[0]
        assert int(gated) == int(gated) & ~((1 << (16 - active)) - 1) or \
            active == 0
        assert (value - int(gated)) % (1 << 16) < (1 << (16 - active))
        assert -(1 << 15) <= int(gated) < (1 << 15)
