"""Benchmark: the learned mode-selection policy vs the hand-written ones.

Trains the offline fitted-Q policy on a seeded workload-trace suite,
then replays a held-out suite (different seeds, every family) through
all four policies on the same table and records per-family adaptive
energy, switch counts and the learned policy's saving over the best
*memoryless* baseline (min of greedy and hysteresis -- with default
knobs hysteresis degenerates to greedy in this energy regime, so the
min is an honest floor, not a strawman).

Two floors are enforced:

* on the structured families (``phase_structured``,
  ``adversarial_flapping``) the learned policy must save at least 5%
  energy over the best memoryless baseline -- the whole point of
  carrying a trained artifact;
* accuracy is non-negotiable: every served phase of every policy on
  every family is re-checked against its request, and the count of
  violations must be zero.

The energy regime matters: the table uses a bias generator sized so
slew energies are comparable to phase compute energies (hundreds of pJ
to nJ).  With near-free transitions every policy collapses to greedy
and there is nothing to learn.

Set ``$REPRO_BENCH_OUTPUT`` to collect the records into one JSON
artifact (CI merges it into ``BENCH_summary.json``).
"""

import json
import os
import time

from repro.core.runtime import BiasGeneratorModel, WorkloadPhase
from repro.serve import ModeScheduler, ServeRequest, replay_trace
from repro.serve.learned import train_on_suite
from repro.traces import TRACE_FAMILIES, generate_suite
from tests.conftest import build_synthetic_table

SMALL = bool(int(os.environ.get("REPRO_BENCH_SMALL", "0")))

#: Families where exploitable temporal structure exists; the 5% floor
#: applies here.  (bursty is near-memoryless by construction: the floor
#: there is only "not materially worse".)
STRUCTURED = ("phase_structured", "adversarial_flapping")
SAVING_FLOOR = 0.05

TRAIN_SEED = 3
TRAIN_LENGTH = 200 if SMALL else 400
EVAL_SEED = 77
EVAL_LENGTH = 150 if SMALL else 250
MEAN_CYCLES = 300

_RECORDS = {}


def _dump_records(key, records):
    _RECORDS[key] = records
    output = os.environ.get("REPRO_BENCH_OUTPUT")
    if output:
        with open(output, "w") as handle:
            json.dump(_RECORDS, handle, indent=2)


def _expensive_table():
    # Slew energies comparable to phase compute -- the regime where
    # mode-selection strategy actually moves total energy.
    return build_synthetic_table(
        BiasGeneratorModel(
            well_cap_ff_per_um2=400.0, rail_cap_ff_per_um2=1500.0
        )
    )


def test_learned_policy_beats_memoryless_on_structured_families():
    table = _expensive_table()
    started = time.perf_counter()
    result = train_on_suite(
        table, seed=TRAIN_SEED, length=TRAIN_LENGTH, mean_cycles=MEAN_CYCLES
    )
    train_seconds = time.perf_counter() - started
    learned_table = table.with_learned(result.spec)

    suite = generate_suite(
        seed=EVAL_SEED,
        length=EVAL_LENGTH,
        bits_levels=tuple(table.bitwidths),
        mean_cycles=MEAN_CYCLES,
    )

    records = {
        "train": {
            "seed": TRAIN_SEED,
            "length": TRAIN_LENGTH,
            "mean_cycles": MEAN_CYCLES,
            "samples": result.samples,
            "states_visited": result.states_visited,
            "rounds": result.rounds,
            "seconds": round(train_seconds, 3),
        },
        "eval": {"seed": EVAL_SEED, "length": EVAL_LENGTH},
        "families": {},
    }

    violations = 0
    for family in TRACE_FAMILIES:
        phases = [
            WorkloadPhase(bits, cycles)
            for bits, cycles in suite[family].phases
        ]
        reports = {
            policy: replay_trace(learned_table, phases, policy=policy)
            for policy in ("greedy", "hysteresis", "lookahead", "learned")
        }
        # Accuracy audit: replay again through a scheduler and re-check
        # every served phase against its request (the scheduler also
        # raises internally -- this is the independent count the floor
        # below asserts on).
        scheduler = ModeScheduler(learned_table, policy="learned")
        for phase in phases:
            served = scheduler.submit(
                ServeRequest("op", phase.required_bits, phase.cycles)
            )
            if served.served_bits < phase.required_bits:
                violations += 1

        baseline = min(
            reports["greedy"].total_energy_j,
            reports["hysteresis"].total_energy_j,
        )
        learned_e = reports["learned"].total_energy_j
        saving = 1.0 - learned_e / baseline
        records["families"][family] = {
            "phases": len(phases),
            "memoryless_baseline_j": baseline,
            "saving_vs_memoryless": round(saving, 4),
            **{
                policy: {
                    "energy_j": report.total_energy_j,
                    "mode_switches": report.mode_switches,
                    "transition_energy_j": report.transition_energy_j,
                }
                for policy, report in reports.items()
            },
        }
        print(json.dumps({"policy_bench": family, **records["families"][family]}))

    records["accuracy_violations"] = violations
    _dump_records("policy_learned", records)

    assert violations == 0, f"{violations} accuracy violations"
    for family in STRUCTURED:
        saving = records["families"][family]["saving_vs_memoryless"]
        assert saving >= SAVING_FLOOR, (
            f"learned policy saves only {saving:.1%} over the best "
            f"memoryless baseline on {family} (floor {SAVING_FLOOR:.0%})"
        )
    # On the (near-)memoryless families the learned policy must not be
    # materially worse than the baseline it generalizes.
    for family in set(TRACE_FAMILIES) - set(STRUCTURED):
        saving = records["families"][family]["saving_vs_memoryless"]
        assert saving >= -0.05, (
            f"learned policy regresses {-saving:.1%} on {family}"
        )
