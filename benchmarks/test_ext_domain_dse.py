"""Extension: automatic selection of the domain configuration.

The paper's conclusion calls for "an investigation of the optimal number
and configuration of domains", observing that the automated flow makes
exhaustive sweeps feasible for <= 10 groups.  This bench runs that sweep
on the Booth multiplier under a 20% area budget and reports the ranking.
"""

from repro.core.domains_dse import explore_domain_configurations

CANDIDATES = ((1, 1), (1, 2), (2, 1), (2, 2), (3, 3))
AREA_BUDGET = 0.20


def test_domain_configuration_dse(benchmark, bundles, settings, library):
    bundle = bundles["booth"]
    constraint = bundle.constraint()

    def run():
        return explore_domain_configurations(
            bundle.factory,
            library,
            constraint,
            candidates=CANDIDATES,
            settings=settings,
            area_budget=AREA_BUDGET,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n--- domain-configuration DSE (Booth, 20% area budget) ---")
    print(result.format_text())
    best = result.best()
    print(f"\nrecommended: {best.describe()}")
    print(f"sweep wall time: {result.runtime_s:.1f} s")

    # The 3x3 grid busts the 20% budget; the winner must respect it.
    assert best.area_overhead <= AREA_BUDGET
    # Partitioned grids beat the trivial 1x1 on mean power (the 1x1 cannot
    # trim any leakage, it is effectively DVAS with guard overhead 0).
    one_by_one = next(
        c for c in result.candidates if c.partition.label == "1x1"
    )
    assert best.mean_power_w <= one_by_one.mean_power_w
