"""Shared benchmark fixtures: the paper's three designs, fully implemented.

Everything heavy is session-scoped so each figure's benchmark only pays for
the step it actually measures.  Set ``REPRO_BENCH_SMALL=1`` to run the whole
harness on reduced operator sizes (useful on slow machines); the shapes of
all results are preserved, only absolute numbers shrink.
"""

import os

import pytest

from repro.core.config import ExplorationSettings
from repro.core.dvas import dvas_explore
from repro.core.exploration import ExhaustiveExplorer
from repro.core.flow import (
    implement_base,
    implement_with_domains,
    select_clock_for,
)
from repro.operators import booth_multiplier, fft_butterfly, fir_filter
from repro.operators.fir import FirParameters
from repro.pnr.grid import GridPartition
from repro.techlib.library import Library

SMALL = bool(int(os.environ.get("REPRO_BENCH_SMALL", "0")))

#: Operator width (the paper uses 16-bit fixed point).
WIDTH = 8 if SMALL else 16
#: FIR tap count (the paper uses 30).
TAPS = 8 if SMALL else 30
#: Grid configurations from Table I.
TABLE1_GRIDS = {"booth": (2, 2), "butterfly": (3, 3), "fir": (3, 3)}


def _fresh_name(counters, base):
    counters[base] = counters.get(base, 0) + 1
    return f"{base}_{counters[base]}"


@pytest.fixture(scope="session")
def library():
    return Library()


@pytest.fixture(scope="session")
def settings():
    return ExplorationSettings(bitwidths=tuple(range(1, WIDTH + 1)))


@pytest.fixture(scope="session")
def factories(library):
    counters = {}
    return {
        "booth": lambda: booth_multiplier(
            library, WIDTH, name=_fresh_name(counters, "booth")
        ),
        "butterfly": lambda: fft_butterfly(
            library, WIDTH, name=_fresh_name(counters, "butterfly")
        ),
        "fir": lambda: fir_filter(
            library,
            FirParameters(taps=TAPS, width=WIDTH),
            name=_fresh_name(counters, "fir"),
        ),
    }


class DesignBundle:
    """Lazily built implementation + exploration results for one design."""

    def __init__(self, name, factory, library, settings):
        self.name = name
        self.factory = factory
        self.library = library
        self.settings = settings
        self._cache = {}

    def constraint(self):
        if "constraint" not in self._cache:
            self._cache["constraint"] = select_clock_for(
                self.factory, self.library
            )
        return self._cache["constraint"]

    def base(self):
        if "base" not in self._cache:
            self._cache["base"] = implement_base(
                self.factory, self.library, constraint=self.constraint()
            )
        return self._cache["base"]

    def domained(self, grid=None):
        grid = grid or TABLE1_GRIDS[self.name]
        key = ("domained", grid)
        if key not in self._cache:
            self._cache[key] = implement_with_domains(
                self.factory,
                self.library,
                GridPartition(*grid),
                constraint=self.constraint(),
            )
        return self._cache[key]

    def proposed(self, grid=None):
        grid = grid or TABLE1_GRIDS[self.name]
        key = ("proposed", grid)
        if key not in self._cache:
            self._cache[key] = ExhaustiveExplorer(self.domained(grid)).run(
                self.settings
            )
        return self._cache[key]

    def dvas(self, fbb):
        key = ("dvas", fbb)
        if key not in self._cache:
            self._cache[key] = dvas_explore(
                self.base(), fbb=fbb, settings=self.settings
            )
        return self._cache[key]


@pytest.fixture(scope="session")
def bundles(factories, library, settings):
    return {
        name: DesignBundle(name, factory, library, settings)
        for name, factory in factories.items()
    }
