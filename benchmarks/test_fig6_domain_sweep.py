"""Fig. 6: impact of the number/shape of Vth domains (Booth multiplier).

Fig. 6a plots the proposed method's power at accuracies 8..16 bits for the
grid configurations 1x2, 2x1, 1x3, 3x1, 2x2, 3x3; Fig. 6b their guardband
area overheads.  Expected shape: more domains generally reduce power
(especially at high accuracy), while area overhead grows with the domain
count and depends only weakly on the grid shape.
"""

import numpy as np

from benchmarks.figure5 import maybe_write_csv
from repro.core.exploration import ExhaustiveExplorer

GRIDS = [(1, 2), (2, 1), (1, 3), (3, 1), (2, 2), (3, 3)]


def test_fig6_domain_sweep(benchmark, bundles, settings):
    bundle = bundles["booth"]
    max_bits = max(settings.bitwidths)
    # Fig. 6a reports accuracies 8..16 ("< 8 bits are seldom needed").
    shown_bits = [b for b in settings.bitwidths if b >= max_bits // 2]

    def run():
        results = {}
        for grid in GRIDS:
            design = bundle.domained(grid)
            results[grid] = (design, bundle.proposed(grid))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n--- Fig. 6a: power [mW] at each accuracy, per grid config ---")
    header = "config | " + " | ".join(f"{b:>7d}b" for b in shown_bits)
    print(header)
    print("-" * len(header))
    for grid, (design, result) in results.items():
        cells = []
        for bits in shown_bits:
            point = result.best_per_bitwidth.get(bits)
            cells.append(
                f"{point.total_power_w * 1e3:8.3f}" if point else "      --"
            )
        print(f"{grid[0]}x{grid[1]:<4d} | " + " | ".join(cells))

    print("\n--- Fig. 6b: area overhead per grid config ---")
    for grid, (design, _result) in results.items():
        print(f"{grid[0]}x{grid[1]}: {design.area_overhead * 100:5.1f}%")

    maybe_write_csv(
        "fig6a_power.csv",
        ["grid"] + [f"bits_{b}" for b in shown_bits],
        [
            [f"{g[0]}x{g[1]}"]
            + [
                results[g][1].best_per_bitwidth[b].total_power_w
                if b in results[g][1].best_per_bitwidth
                else ""
                for b in shown_bits
            ]
            for g in GRIDS
        ],
    )
    maybe_write_csv(
        "fig6b_overhead.csv",
        ["grid", "area_overhead"],
        [[f"{g[0]}x{g[1]}", results[g][0].area_overhead] for g in GRIDS],
    )

    # Fig. 6b: overhead grows with domain count; shape is secondary.
    overhead = {g: results[g][0].area_overhead for g in GRIDS}
    assert overhead[(3, 3)] > overhead[(2, 2)] > overhead[(1, 2)]
    assert abs(overhead[(1, 2)] - overhead[(2, 1)]) < 0.08
    assert abs(overhead[(1, 3)] - overhead[(3, 1)]) < 0.08

    # Fig. 6a: within every grid configuration, power rises with accuracy.
    for grid, (_design, result) in results.items():
        powers = [
            result.best_per_bitwidth[b].total_power_w for b in shown_bits
        ]
        assert powers[0] < powers[-1], grid
        # Weak monotonicity (a 2% tolerance absorbs activity noise).
        assert all(
            b <= a * 1.02 for a, b in zip(powers[1:], powers)
        ), grid

    # The paper notes the domain-count trend "is not always respected";
    # in this reproduction the guardband timing/power penalty is relatively
    # larger (smaller synthetic die), so count-vs-power flips are common.
    # Quantify and report them instead of asserting a direction; the
    # *orientation* effect (1x2 vs 2x1 at equal overhead) is the clearest
    # instance of the paper's structure-dependence observation.
    flips = 0
    for bits in shown_bits:
        p_22 = results[(2, 2)][1].best_per_bitwidth.get(bits)
        p_33 = results[(3, 3)][1].best_per_bitwidth.get(bits)
        if p_22 and p_33 and p_33.total_power_w > p_22.total_power_w:
            flips += 1
    print(f"\naccuracies where 3x3 loses to 2x2 (paper: happens): {flips}")
    p_12 = results[(1, 2)][1].best_per_bitwidth
    p_21 = results[(2, 1)][1].best_per_bitwidth
    deltas = [
        abs(1.0 - p_21[b].total_power_w / p_12[b].total_power_w)
        for b in shown_bits
    ]
    print(
        f"orientation effect |1x2 vs 2x1| at equal overhead: "
        f"up to {max(deltas) * 100:.1f}% power"
    )
