"""Fig. 5b: FFT butterfly, proposed (3x3 domains) vs DVAS.

Paper headline: 16.5% power saving vs DVAS at 8-bit accuracy; the butterfly
is the least affected by the wall of slack (most linear DVAS curves) and
the only design where DVAS is marginally better at the accuracy extremes.
"""

from benchmarks.figure5 import assert_figure5_shape, print_figure5, run_figure5
from repro.core.pareto import power_saving


def test_fig5b_butterfly(benchmark, bundles, settings):
    bundle = bundles["butterfly"]

    def run():
        return run_figure5(bundle)

    proposed, dvas_nobb, dvas_fbb = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_figure5("FFT butterfly", settings, proposed, dvas_nobb, dvas_fbb)
    assert_figure5_shape(settings, proposed, dvas_nobb, dvas_fbb)

    mid = max(settings.bitwidths) // 2
    saving = power_saving(
        dvas_fbb.best_per_bitwidth, proposed.best_per_bitwidth, mid
    )
    print(
        f"\nsaving vs DVAS (FBB) at {mid} bits: {saving * 100:.2f}% "
        f"(paper: 16.5% at 8 bits)"
    )
