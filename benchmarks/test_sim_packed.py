"""Perf bench: bit-packed activity extraction vs the interpreted engine.

Activity extraction is the simulation-bound half of the exploration
(one cycle-accurate run per accuracy mode); the packed engine exists to
make it cheap.  This bench measures ``LogicSimulator.toggle_rates`` --
the exact kernel ``measure_activity`` runs -- on the paper's Table 1
operators under both engines, re-checks that the per-net rates are
bit-identical, and asserts a speedup floor so a regression in the packed
path fails CI rather than silently slowing the exploration down.

The floor is deliberately conservative (measured ~12x for the 16-bit
Booth on an idle machine); small operators amortize the compile step
less, so the floor scales down under ``REPRO_BENCH_SMALL``.
"""

import time

import numpy as np

import pytest

from repro.sim.activity import _gated_stimulus
from repro.sim.simulator import LogicSimulator, SimulationMode

from .conftest import SMALL, WIDTH

CYCLES = 48
BATCH = 64
WARMUP = 4

#: Required packed/interpreted speedup on toggle extraction per operator.
#: The acceptance target is the full-size Booth (the paper's headline
#: multiplier); the others mostly guard against pathological regressions.
FLOORS = {
    "booth": 3.0 if SMALL else 10.0,
    "butterfly": 3.0 if SMALL else 8.0,
    "fir": 3.0 if SMALL else 8.0,
}


def _toggle_stimulus(netlist):
    """The exact stimulus schedule ``measure_activity`` would generate."""
    rng = np.random.default_rng(2017 + 977 * WIDTH)
    return [
        _gated_stimulus(rng, netlist, WIDTH, BATCH) for _ in range(CYCLES)
    ]


def _best_of(fn, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.mark.parametrize("operator", ["booth", "butterfly", "fir"])
def test_packed_activity_speedup(benchmark, bundles, operator):
    netlist = bundles[operator].factory()
    stimulus = _toggle_stimulus(netlist)

    interpreted = LogicSimulator(
        netlist, SimulationMode.CYCLE, engine="interpreted"
    )
    packed = LogicSimulator(netlist, SimulationMode.CYCLE, engine="packed")

    interpreted_time, reference = _best_of(
        lambda: interpreted.toggle_rates(stimulus, warmup_cycles=WARMUP),
        rounds=1 if SMALL else 2,
    )
    rates = benchmark.pedantic(
        lambda: packed.toggle_rates(stimulus, warmup_cycles=WARMUP),
        rounds=5,
        iterations=1,
    )
    packed_time, _ = _best_of(
        lambda: packed.toggle_rates(stimulus, warmup_cycles=WARMUP)
    )

    # Equivalence first: speed means nothing if the rates moved.
    np.testing.assert_array_equal(rates, reference)

    speedup = interpreted_time / packed_time
    print(
        f"\n{operator} ({len(netlist.cells)} cells, {CYCLES} cycles x "
        f"{BATCH} lanes): interpreted {interpreted_time * 1e3:.1f} ms, "
        f"packed {packed_time * 1e3:.1f} ms -> {speedup:.1f}x"
    )
    assert speedup > FLOORS[operator]
