"""Ablation: how much dynamic power does zero-delay activity miss?

The flow's power analysis annotates switching activity from a zero-delay
(levelized) simulation, as the paper's VCD-based flow does.  Real logic
glitches; this bench quantifies the underestimate with the timed
event-driven simulator and reports the glitch factor per accuracy mode of
the (unregistered core of the) Booth multiplier.
"""

from repro.operators import booth_multiplier
from repro.sim.event import measure_glitch_activity
from benchmarks.conftest import WIDTH


def test_glitch_power_ablation(benchmark, library, settings):
    netlist = booth_multiplier(
        library, WIDTH, name="booth_glitch", registered=False
    )
    probe_bits = sorted(
        {max(settings.bitwidths), max(settings.bitwidths) // 2, 2}
    )

    def run():
        return {
            bits: measure_glitch_activity(netlist, bits, samples=24)
            for bits in probe_bits
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n--- glitch factor (timed / zero-delay activity) ---")
    for bits, report in sorted(reports.items(), reverse=True):
        print(
            f"{bits:3d} bits: factor {report.glitch_factor:.2f} "
            f"(timed {report.timed_rates.sum():.1f} vs settled "
            f"{report.settled_rates.sum():.1f} toggles/vector)"
        )
    print(
        "interpretation: the paper-style zero-delay activity annotation "
        "underestimates the multiplier's dynamic power by roughly this "
        "factor; the Pareto *comparisons* are unaffected (the same "
        "activity model feeds every method)."
    )

    for report in reports.values():
        assert 1.0 <= report.glitch_factor < 6.0
    full = reports[max(probe_bits)]
    assert full.glitch_factor > 1.2  # multipliers demonstrably glitch
