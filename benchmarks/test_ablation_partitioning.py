"""Ablation: regular grid vs slack-oracle Vth-domain construction.

Section III-B argues the regular grid "might fail to isolate gates
belonging to the paths that require speedup", forcing whole domains to
boost; better partitions are future work.  This bench quantifies the gap
by re-running the exploration with a non-physical slack-quantile oracle
partition (same die, same sizing, same domain count).
"""

from repro.core.exploration import ExhaustiveExplorer
from repro.pnr.partition import (
    slack_banded_partition,
    slack_oracle_domains,
    with_custom_domains,
)


def test_grid_vs_oracle_partitioning(benchmark, bundles, settings):
    bundle = bundles["booth"]
    design = bundle.domained()
    grid_result = bundle.proposed()
    max_bits = max(settings.bitwidths)
    probe_bits = max_bits * 3 // 4  # a mid/high accuracy mode

    def run():
        oracle = with_custom_domains(
            design,
            slack_oracle_domains(design, probe_bits, design.num_domains),
            design.num_domains,
        )
        banded = with_custom_domains(
            design,
            slack_banded_partition(design, probe_bits, design.num_domains),
            design.num_domains,
        )
        return (
            ExhaustiveExplorer(oracle).run(settings),
            ExhaustiveExplorer(banded).run(settings),
        )

    oracle_result, banded_result = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    print(
        "\n--- partitioning ablation (same domain count): regular grid vs "
        "slack-banded (implementable) vs slack-oracle (upper bound) ---"
    )
    print(
        f"{'bits':>4s} {'grid [mW]':>10s} {'banded [mW]':>12s} "
        f"{'oracle [mW]':>12s} {'oracle gap':>11s}"
    )
    gaps = {}
    for bits in sorted(settings.bitwidths, reverse=True):
        grid_point = grid_result.best_per_bitwidth.get(bits)
        oracle_point = oracle_result.best_per_bitwidth.get(bits)
        banded_point = banded_result.best_per_bitwidth.get(bits)
        if grid_point is None or oracle_point is None:
            continue
        gap = 1.0 - oracle_point.total_power_w / grid_point.total_power_w
        gaps[bits] = gap
        banded_text = (
            f"{banded_point.total_power_w * 1e3:12.3f}"
            if banded_point
            else f"{'--':>12s}"
        )
        print(
            f"{bits:4d} {grid_point.total_power_w * 1e3:10.3f} "
            f"{banded_text} "
            f"{oracle_point.total_power_w * 1e3:12.3f} {gap * 100:10.1f}%"
        )

    # The oracle (clustered by criticality at probe_bits) beats the grid
    # somewhere -- the headroom the paper's future-work partitioning
    # research targets -- and must not lose at the accuracy it was built
    # for.  It MAY lose at other bitwidths: Section III-B's observation
    # that "a solution that is optimal for a given input bitwidth might
    # not be optimal for another bitwidth" applies to any single-mode
    # partition, oracle included.
    assert max(gaps.values()) > 0.0
    assert gaps[probe_bits] > -0.02
    losers = [bits for bits, gap in gaps.items() if gap < -0.02]
    print(
        f"\nbitwidths where the {probe_bits}-bit oracle loses to the grid "
        f"(Section III-B cross-mode effect): {losers or 'none'}"
    )
