"""Extension: how temperature changes the method's value.

Sub-threshold leakage roughly doubles every 20 degC.  The proposed method's
savings come from *leakage* trimming (un-boosting domains), so at a hot
corner the same design saves more vs DVAS (FBB), while at a cold corner
the advantage shrinks.  The paper evaluates one (unstated) temperature;
this bench sweeps it.
"""

from repro.core.config import ExplorationSettings
from repro.core.dvas import dvas_explore
from repro.core.exploration import ExhaustiveExplorer
from repro.core.flow import (
    implement_base,
    implement_with_domains,
    select_clock_for,
)
from repro.core.pareto import power_saving
from repro.operators import booth_multiplier
from repro.pnr.grid import GridPartition
from repro.techlib.library import Library
from benchmarks.conftest import WIDTH

TEMPERATURES_C = (0.0, 25.0, 85.0)


def test_temperature_sweep(benchmark, settings):
    probe_bits = max(settings.bitwidths) // 2

    def run():
        savings = {}
        for temperature in TEMPERATURES_C:
            library = Library(temperature_c=temperature)
            counter = {"n": 0}

            def factory():
                counter["n"] += 1
                return booth_multiplier(
                    library, WIDTH, name=f"t{int(temperature)}_{counter['n']}"
                )

            constraint = select_clock_for(factory, library)
            base = implement_base(factory, library, constraint=constraint)
            domained = implement_with_domains(
                factory, library, GridPartition(2, 2), constraint=constraint
            )
            proposed = ExhaustiveExplorer(domained).run(settings)
            dvas = dvas_explore(base, fbb=True, settings=settings)
            savings[temperature] = (
                power_saving(
                    dvas.best_per_bitwidth,
                    proposed.best_per_bitwidth,
                    probe_bits,
                ),
                proposed.best_per_bitwidth.get(probe_bits),
                dvas.best_per_bitwidth.get(probe_bits),
            )
        return savings

    savings = benchmark.pedantic(run, rounds=1, iterations=1)

    print(
        f"\n--- proposed vs DVAS (FBB) at {probe_bits} bits across "
        "temperature ---"
    )
    for temperature, (saving, ours, theirs) in savings.items():
        ours_text = (
            f"{ours.total_power_w * 1e3:7.3f} mW "
            f"(leak {ours.leakage_power_w / ours.total_power_w * 100:4.1f}%)"
            if ours
            else "--"
        )
        print(
            f"{temperature:5.0f} C: proposed {ours_text}, DVAS "
            f"{theirs.total_power_w * 1e3:7.3f} mW, saving "
            f"{(saving or 0) * 100:+5.1f}%"
        )

    # Leakage fraction and therefore the method's edge grow with heat.
    fractions = [
        point.leakage_power_w / point.total_power_w
        for _s, point, _d in savings.values()
        if point is not None
    ]
    assert fractions == sorted(fractions)
    cold_saving = savings[TEMPERATURES_C[0]][0]
    hot_saving = savings[TEMPERATURES_C[-1]][0]
    if cold_saving is not None and hot_saving is not None:
        assert hot_saving >= cold_saving - 0.02
