"""Shared machinery for the Fig. 5 Pareto benchmarks.

Each Fig. 5 sub-figure compares three curves on the accuracy/power plane:

* Proposed method (grid Vth domains, exhaustive BB x VDD exploration),
* DVAS (NoBB) -- the standard implementation from [14],
* DVAS (FBB) -- all cells boosted.

Absolute watts differ from the paper (synthetic PDK); the reproduction
targets are the curve *shapes*: NoBB truncation, FBB step-wise front,
proposed at-or-below FBB through the mid-range accuracy band.
"""

import csv
import os

from repro.core.pareto import power_saving
from repro.core.report import format_pareto_table, format_savings


def maybe_write_csv(filename, header, rows):
    """Dump a benchmark series to $REPRO_ARTIFACTS_DIR/<filename>, if set.

    Lets plotting scripts regenerate the paper's figures from the exact
    numbers a benchmark run produced.
    """
    directory = os.environ.get("REPRO_ARTIFACTS_DIR")
    if not directory:
        return None
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, filename)
    with open(path, "w", newline="") as stream:
        writer = csv.writer(stream)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def run_figure5(bundle, grid=None):
    """Produce the three Fig. 5 curves for one design bundle."""
    proposed = bundle.proposed(grid)
    dvas_nobb = bundle.dvas(fbb=False)
    dvas_fbb = bundle.dvas(fbb=True)
    return proposed, dvas_nobb, dvas_fbb


def print_figure5(name, settings, proposed, dvas_nobb, dvas_fbb):
    bitwidths = settings.bitwidths
    rows = []
    for bits in sorted(bitwidths):
        entry = [bits]
        for frontier in (proposed, dvas_nobb, dvas_fbb):
            point = frontier.best_per_bitwidth.get(bits)
            entry.extend(
                [point.total_power_w, point.vdd] if point else ["", ""]
            )
        rows.append(entry)
    slug = name.lower().replace(" ", "_")
    maybe_write_csv(
        f"fig5_{slug}.csv",
        ["bits", "proposed_w", "proposed_vdd", "dvas_nobb_w",
         "dvas_nobb_vdd", "dvas_fbb_w", "dvas_fbb_vdd"],
        rows,
    )
    print(f"\n--- Fig. 5 ({name}): bitwidth vs power Pareto frontiers ---")
    print(
        format_pareto_table(
            {
                "Proposed": proposed.best_per_bitwidth,
                "DVAS (NoBB)": dvas_nobb.best_per_bitwidth,
                "DVAS (FBB)": dvas_fbb.best_per_bitwidth,
            },
            bitwidths,
        )
    )
    print()
    print(
        format_savings(
            dvas_fbb.best_per_bitwidth,
            proposed.best_per_bitwidth,
            bitwidths,
        )
    )


def assert_figure5_shape(settings, proposed, dvas_nobb, dvas_fbb,
                         min_peak_saving=0.10):
    """The qualitative claims every Fig. 5 sub-figure shares."""
    max_bits = max(settings.bitwidths)

    # DVAS (NoBB) cannot reach maximum accuracy (all three designs).
    assert dvas_nobb.max_reachable_bits < max_bits

    # DVAS (FBB) reaches maximum accuracy and its front steps down in VDD.
    assert dvas_fbb.max_reachable_bits == max_bits
    fbb_vdds = [p.vdd for p in dvas_fbb.pareto()]
    assert min(fbb_vdds) < max(fbb_vdds)

    # The proposed method covers every accuracy mode.
    assert sorted(proposed.best_per_bitwidth) == sorted(settings.bitwidths)

    # And it beats DVAS (FBB) by a clear margin somewhere in the range.
    savings = [
        power_saving(
            dvas_fbb.best_per_bitwidth, proposed.best_per_bitwidth, bits
        )
        for bits in settings.bitwidths
    ]
    savings = [s for s in savings if s is not None]
    assert max(savings) > min_peak_saving

    # Power grows with accuracy overall (front endpoints ordered).
    front = proposed.pareto()
    assert front[0].total_power_w < front[-1].total_power_w
