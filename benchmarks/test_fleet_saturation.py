"""Benchmark: fleet saturation -- req/s at 1, 2 and 4 workers.

Drives one deterministic request mix through the fleet router at three
fleet sizes over a ModeTable compiled from the Booth multiplier, and
records sustained requests/second per size plus the 2-worker and
4-worker speedups over the single-worker fleet.

Two details make the numbers honest:

* the operator set is *chosen to hash evenly* onto both the 2- and
  4-worker rings (a lopsided split caps the ideal 2-worker speedup at
  the biggest share, not at 2x), and
* the >= 1.8x scaling floor is only asserted when the host actually has
  a core per process (parent + workers); on fewer cores the workers
  time-slice one CPU and parallel speedup is physically unavailable.
  CI's perf-smoke runners have >= 4 vCPUs, so the floor is enforced
  there.

Results are emitted as one JSON object per fleet size so CI logs are
machine-scrapeable (perf-smoke uploads them as BENCH_fleet.json).
"""

import json
import os
import time

import numpy as np

from repro.fleet import ConsistentHashRing, FleetRouter
from repro.serve.table import compile_mode_table

WORKER_COUNTS = (1, 2, 4)
REQUESTS = 20_000
OPERATORS = 32
BATCH_WINDOW = 64
MAX_INFLIGHT = 4
SCALING_FLOOR_2W = 1.8


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def balanced_operators(count: int = OPERATORS) -> list:
    """Operator names that hash evenly onto the 2- and 4-worker rings.

    Greedy pick over ``op<i>``: a candidate is kept only while its
    2-worker and 4-worker owners both still have quota.  Deterministic
    (the ring hash is keyed blake2b), so every run measures the same
    partition.
    """
    rings = {
        workers: ConsistentHashRing(range(workers))
        for workers in WORKER_COUNTS
        if workers > 1
    }
    quotas = {
        workers: {w: count // workers for w in range(workers)}
        for workers in rings
    }
    picked = []
    candidate = 0
    while len(picked) < count:
        name = f"op{candidate}"
        candidate += 1
        owners = {
            workers: ring.worker_for(name) for workers, ring in rings.items()
        }
        if all(quotas[w][owner] > 0 for w, owner in owners.items()):
            picked.append(name)
            for workers, owner in owners.items():
                quotas[workers][owner] -= 1
        if candidate > 100_000:  # pragma: no cover - degenerate ring
            raise AssertionError("could not balance the operator set")
    return picked


def _drive(table, trace, workers):
    """Run *trace* through a fresh fleet; return (stats, req/s)."""
    with FleetRouter(
        table,
        workers=workers,
        batch_window=BATCH_WINDOW,
        max_inflight=MAX_INFLIGHT,
    ) as router:
        router.submit_many(trace[:1_000])  # warm: spawn, attach, register
        start = time.perf_counter()
        phases = router.submit_many(trace)
        elapsed = time.perf_counter() - start
        for (op, bits, _cycles), phase in zip(trace, phases):
            assert phase is not None and phase.served_bits >= bits
        stats = router.stats()
    return stats, len(trace) / elapsed


def test_fleet_saturation(bundles):
    bundle = bundles["booth"]
    table = compile_mode_table(bundle.domained(), bundle.proposed())

    operators = balanced_operators()
    rng = np.random.default_rng(2017)
    bitwidths = sorted(table.modes)
    trace = [
        (
            operators[i % len(operators)],
            int(rng.choice(bitwidths)),
            int(rng.integers(100, 10_000)),
        )
        for i in range(REQUESTS)
    ]

    cores = _cores()
    rates = {}
    records = []
    for workers in WORKER_COUNTS:
        stats, rate = _drive(table, trace, workers)
        rates[workers] = rate
        counters = stats["counters"]
        json_reparses = sum(w["parse"]["json"] for w in stats["workers"])
        record = {
            "workers": workers,
            "cores": cores,
            "requests": REQUESTS,
            "req_per_s": round(rate, 1),
            "speedup_vs_1w": round(rate / rates[1], 2),
            "violations": counters["accuracy_violations"],
            "json_reparses": json_reparses,
            "segment_bytes": stats["segment_bytes"],
        }
        records.append(record)
        print(f"\nfleet_bench {json.dumps(record, sort_keys=True)}")

        assert counters["accuracy_violations"] == 0
        # The zero-copy invariant: workers attach the shared segment,
        # they never re-parse the JSON artifact.
        assert json_reparses == 0

    output = os.environ.get("REPRO_BENCH_OUTPUT")
    if output:
        with open(output, "w") as handle:
            json.dump({"fleet_saturation": records}, handle, indent=2)

    # Anything below this means the router grew an accidental O(n^2).
    assert rates[1] > 1_000

    # The scaling floor needs a core per process to be physical.
    if cores >= max(WORKER_COUNTS[:2]) + 1:
        assert rates[2] >= SCALING_FLOOR_2W * rates[1], (
            f"2-worker fleet served {rates[2]:.0f} req/s vs "
            f"{rates[1]:.0f} single-worker on {cores} cores: below the "
            f"{SCALING_FLOOR_2W}x saturation floor"
        )
    else:
        print(
            f"\nfleet_bench_note scaling floor skipped: {cores} core(s), "
            f"need >= {max(WORKER_COUNTS[:2]) + 1} for parallel speedup"
        )
