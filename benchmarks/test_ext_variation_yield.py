"""Extension: timing yield of the selected operating points under variation.

The exploration deliberately picks near-zero-slack points (that is where
the power minimum lives), which makes them sensitive to local Vth
variation.  This bench Monte-Carlo-samples the Booth multiplier's winning
configuration at a few accuracies and reports the yield and the clock
margin a sign-off team would add.
"""

import numpy as np

from repro.sta.variation import MonteCarloTiming
from repro.sta.caseanalysis import dvas_case

SIGMA_VTH = 0.012  # 12 mV local sigma, a plausible 28nm FDSOI value
SAMPLES = 60


def test_variation_yield(benchmark, bundles, settings, library):
    bundle = bundles["booth"]
    design = bundle.domained()
    result = bundle.proposed()
    max_bits = max(settings.bitwidths)
    probe_bits = sorted({max_bits, max_bits * 3 // 4, max_bits // 2})

    mc = MonteCarloTiming(
        design.timing_graph(), library, sigma_vth=SIGMA_VTH
    )

    def run():
        reports = {}
        for bits in probe_bits:
            point = result.best_per_bitwidth.get(bits)
            if point is None:
                continue
            fbb_cells = np.asarray(point.bb_config)[design.domains]
            reports[bits] = (
                point,
                mc.analyze_yield(
                    design.constraint,
                    point.vdd,
                    fbb_cells,
                    case=dvas_case(design.netlist, bits),
                    samples=SAMPLES,
                ),
            )
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    print(
        f"\n--- timing yield of the winning configurations "
        f"(sigma_vth = {SIGMA_VTH * 1e3:.0f} mV, {SAMPLES} samples) ---"
    )
    for bits, (point, report) in sorted(reports.items(), reverse=True):
        print(
            f"{bits:3d} bits @ {point.vdd:.1f} V "
            f"(nominal slack {point.worst_slack_ps:+.0f} ps): "
            f"{report.summary()}"
        )
        margin = report.margin_for_yield(0.99)
        print(f"         margin for 99% yield: +{margin:.1f} ps of clock")

    # Shapes: yield is a probability; generous nominal slack means high
    # yield; and the margin recommendation is consistent with the yield.
    for bits, (point, report) in reports.items():
        assert 0.0 <= report.timing_yield <= 1.0
        if point.worst_slack_ps > 6 * report.sigma_slack_ps:
            assert report.timing_yield == 1.0
        if report.timing_yield == 1.0:
            assert report.margin_for_yield(0.9) == 0.0
