"""Benchmark: sharded + cached exploration vs the serial sweep.

Records three numbers on the Booth multiplier (the paper's Table I
workhorse):

* serial wall-clock of the full knob sweep (the Fig. 4 bottleneck);
* the same sweep sharded over a 4-worker process pool;
* a cache-warm re-run of an identical sweep (all shards hit).

The differential suite guarantees all three produce bit-identical
results; this bench guarantees the fast paths are actually fast.  The
parallel assertion needs real cores: on runners with fewer than 4 CPUs
the number is recorded but not enforced.
"""

import dataclasses
import os
import time

import pytest

from repro.core.exploration import ExhaustiveExplorer
from repro.sim.activity import clear_activity_cache


def _timed(explorer, settings):
    clear_activity_cache()  # every variant pays the full simulation cost
    start = time.perf_counter()
    result = explorer.run(settings)
    return result, time.perf_counter() - start


def test_parallel_and_cache_speedups(bundles, settings, tmp_path):
    design = bundles["booth"].domained()
    explorer = ExhaustiveExplorer(design)

    serial_result, serial_s = _timed(explorer, settings)

    pooled = dataclasses.replace(settings, workers=4)
    parallel_result, parallel_s = _timed(explorer, pooled)

    cached = dataclasses.replace(
        settings, cache=True, cache_dir=str(tmp_path)
    )
    cold_result, cold_s = _timed(explorer, cached)
    warm_result, warm_s = _timed(explorer, cached)

    parallel_speedup = serial_s / parallel_s
    warm_speedup = serial_s / warm_s
    print(
        f"\nserial sweep:     {serial_s * 1e3:8.1f} ms"
        f"\n4-worker pool:    {parallel_s * 1e3:8.1f} ms"
        f"  ({parallel_speedup:.2f}x)"
        f"\ncache cold:       {cold_s * 1e3:8.1f} ms"
        f"  (+{(cold_s - serial_s) * 1e3:.1f} ms write overhead)"
        f"\ncache warm:       {warm_s * 1e3:8.1f} ms"
        f"  ({warm_speedup:.2f}x, {warm_result.cache_stats.hits} shards hit)"
    )

    # Identical numbers on every path (the differential suite's contract,
    # re-checked here on the benchmark workload).
    for result in (parallel_result, cold_result, warm_result):
        assert result.best_per_bitwidth == serial_result.best_per_bitwidth
        assert result.feasible_counts == serial_result.feasible_counts

    assert warm_result.cache_stats.misses == 0
    assert warm_speedup >= 5.0, (
        f"cache-warm re-run only {warm_speedup:.1f}x faster than serial"
    )

    cpus = os.cpu_count() or 1
    if cpus < 4:
        pytest.skip(
            f"only {cpus} CPU(s): recorded {parallel_speedup:.2f}x at "
            "4 workers, assertion needs >= 4 cores"
        )
    assert parallel_speedup >= 2.0, (
        f"4-worker pool only {parallel_speedup:.1f}x faster than serial"
    )
