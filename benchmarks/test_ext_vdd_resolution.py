"""Extension: supply-resolution sensitivity (the paper's NVDD parameter).

Section III-C: "NVDD depends on the resolution of the supply voltage
generator and the allowed range of variation of VDD: assuming a 100 mV
step and a range between 0.6 V and 1.0 V, NVDD = 5."  This bench sweeps
the generator resolution and measures what a finer (or coarser) supply
buys: exploration cost grows linearly with NVDD, while the Pareto front
improves only where a new step lands between two old ones.
"""

import numpy as np

from repro.core.config import ExplorationSettings
from repro.core.exploration import ExhaustiveExplorer


def _vdd_grid(step: float, lo: float = 0.6, hi: float = 1.0):
    count = int(round((hi - lo) / step)) + 1
    return tuple(round(hi - i * step, 4) for i in range(count))


RESOLUTIONS_MV = (200, 100, 50)


def test_vdd_resolution(benchmark, bundles, settings):
    bundle = bundles["booth"]
    design = bundle.domained()
    probe_bits = tuple(
        sorted({2, max(settings.bitwidths) // 2, max(settings.bitwidths)})
    )

    def run():
        results = {}
        for step_mv in RESOLUTIONS_MV:
            sweep_settings = ExplorationSettings(
                bitwidths=settings.bitwidths,
                vdd_values=_vdd_grid(step_mv / 1000.0),
                activity_cycles=settings.activity_cycles,
                activity_batch=settings.activity_batch,
                seed=settings.seed,
            )
            results[step_mv] = ExhaustiveExplorer(design).run(sweep_settings)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n--- supply-generator resolution sweep (Booth 2x2) ---")
    print(
        f"{'step':>6s} {'NVDD':>5s} {'points':>8s} {'runtime':>8s} "
        + " ".join(f"{b:>9d}b" for b in probe_bits)
    )
    for step_mv, result in results.items():
        nvdd = len(result.settings.vdd_values)
        powers = [
            (
                f"{result.best_per_bitwidth[b].total_power_w * 1e3:8.3f}mW"
                if b in result.best_per_bitwidth
                else f"{'--':>10s}"
            )
            for b in probe_bits
        ]
        print(
            f"{step_mv:4d}mV {nvdd:5d} {result.points_evaluated:8d} "
            f"{result.runtime_s:7.2f}s " + " ".join(powers)
        )

    # The paper's configuration (100 mV) is the reference.
    base = results[100]
    assert len(base.settings.vdd_values) == 5  # the paper's NVDD = 5

    # Finer resolution can only improve (or tie) every accuracy mode;
    # coarser can only worsen (or tie).  Check against the 100 mV grid,
    # whose steps are a subset of the 50 mV grid and a superset of 200 mV.
    fine, coarse = results[50], results[200]
    for bits in settings.bitwidths:
        if bits in base.best_per_bitwidth:
            assert (
                fine.best_per_bitwidth[bits].total_power_w
                <= base.best_per_bitwidth[bits].total_power_w * 1.0001
            )
        if bits in coarse.best_per_bitwidth:
            assert (
                coarse.best_per_bitwidth[bits].total_power_w
                >= base.best_per_bitwidth[bits].total_power_w * 0.9999
            )

    # Cost scales with NVDD.
    assert fine.points_evaluated > base.points_evaluated > coarse.points_evaluated

    improvements = [
        1.0
        - fine.best_per_bitwidth[b].total_power_w
        / base.best_per_bitwidth[b].total_power_w
        for b in settings.bitwidths
        if b in base.best_per_bitwidth
    ]
    print(
        f"\n50 mV vs 100 mV resolution: best improvement "
        f"{max(improvements) * 100:.1f}%, median "
        f"{np.median(improvements) * 100:.1f}% "
        "(gains appear only where a new step lands inside a DVAS plateau)"
    )
