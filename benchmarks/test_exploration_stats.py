"""Section III-C: exploration size, STA filter rate, analysis speed.

The paper reports that exhaustive exploration stays feasible because (i)
the design-point count O(2^NMAX * B * NVDD) is only thousands, (ii) about
75% of the points are filtered by a fast STA run, and (iii) the per-point
analyses take fractions of a second.  This bench reproduces those claims
and measures our engine's throughput.
"""

import time

import numpy as np

from repro.sta.batch import BatchStaEngine, all_bb_configs
from repro.sta.caseanalysis import dvas_case


def test_exploration_statistics(benchmark, bundles, settings):
    bundle = bundles["booth"]
    design = bundle.domained()

    def run():
        return bundle.proposed()

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    num_configs = 1 << design.num_domains
    expected_points = (
        num_configs * len(settings.bitwidths) * len(settings.vdd_values)
    )
    print(
        f"\ndesign points: {result.points_evaluated} "
        f"(2^{design.num_domains} BB x {len(settings.bitwidths)} bitwidths "
        f"x {len(settings.vdd_values)} VDDs)"
    )
    print(
        f"STA filter removed {result.filtered_fraction * 100:.1f}% "
        "(paper: ~75%)"
    )
    print(f"full exploration wall time: {result.runtime_s:.2f} s")

    assert result.points_evaluated == expected_points
    # "In the order of some thousands" for the paper's parameters.
    assert expected_points >= 1000 or design.num_domains < 6
    # The filter dominates: most points never reach power analysis.
    assert 0.5 < result.filtered_fraction < 0.995

    # Per-point STA cost: the paper quotes ~0.1 s per netlist in
    # PrimeTime; our batched engine amortizes far below that.
    graph = design.timing_graph()
    engine = BatchStaEngine(
        graph, design.netlist.library, design.domains, design.num_domains
    )
    case = dvas_case(design.netlist, max(settings.bitwidths) // 2)
    start = time.perf_counter()
    engine.analyze(design.constraint, 0.8, case=case)
    elapsed = time.perf_counter() - start
    per_point_ms = elapsed / num_configs * 1e3
    print(
        f"batched STA: {elapsed * 1e3:.1f} ms for {num_configs} configs "
        f"({per_point_ms:.3f} ms/config; paper: ~100 ms/config)"
    )
    assert per_point_ms < 100.0
