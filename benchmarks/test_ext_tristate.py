"""Extension: three Vth states per domain ({RBB, NoBB, FBB}).

Section III: the methodology "can however be applied to more than two Vth
values".  This bench quantifies what the third state (reverse back bias,
~12x less leakage than NoBB in this library) buys on the Booth multiplier:
domains whose logic a low accuracy mode deactivates can park in RBB.
"""

import numpy as np

from repro.core.tristate import TriStateExplorer
from repro.sta.caseanalysis import dvas_case


def test_tristate_extension(benchmark, bundles, settings):
    bundle = bundles["booth"]
    design = bundle.domained()
    two_state = bundle.proposed()

    def run():
        return TriStateExplorer(design).run(settings)

    three_state = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n--- two-state vs three-state exploration (Booth) ---")
    print(f"{'bits':>4s} {'2-state [mW]':>13s} {'3-state [mW]':>13s} "
          f"{'extra':>7s}  best 3-state config")
    extras = {}
    for bits in sorted(settings.bitwidths, reverse=True):
        p2 = two_state.best_per_bitwidth.get(bits)
        p3 = three_state.best_per_bitwidth.get(bits)
        if p2 is None or p3 is None:
            continue
        extra = 1.0 - p3.total_power_w / p2.total_power_w
        extras[bits] = extra
        code = "".join("RNF"[s] for s in p3.states)
        print(
            f"{bits:4d} {p2.total_power_w * 1e3:13.3f} "
            f"{p3.total_power_w * 1e3:13.3f} {extra * 100:6.2f}%  [{code}]"
        )
    print(
        f"\nexplored {three_state.points_evaluated} points "
        f"(3^{design.num_domains} configs per knob point) in "
        f"{three_state.runtime_s:.1f} s"
    )

    # The superset can never lose.
    assert all(extra > -1e-6 for extra in extras.values())

    # RBB is only usable for domains with *no* remaining active logic (any
    # active path through a 2.25x-slower RBB domain busts timing).  Find
    # the accuracy modes where the case analysis fully deactivates a
    # domain; exactly there the three-state optimizer must choose RBB.
    graph = design.timing_graph()
    fully_dead = {}
    for bits in settings.bitwidths:
        case = dvas_case(design.netlist, bits)
        active_arcs = case.active_arc_mask(graph)
        active_domains = set(
            design.domains[graph.arc_cell[np.nonzero(active_arcs)[0]]]
        )
        dead = [
            d for d in range(design.num_domains) if d not in active_domains
        ]
        if dead:
            fully_dead[bits] = dead
    if fully_dead:
        for bits, dead in fully_dead.items():
            point = three_state.best_per_bitwidth.get(bits)
            if point is None:
                continue
            for domain in dead:
                assert point.states[domain] == 0, (bits, domain)
            assert extras.get(bits, 0.0) > 0.0
        print(f"fully deactivated domains per accuracy: {fully_dead}")
    else:
        print(
            "no accuracy mode fully deactivates a domain on this placement "
            "-- RBB brings no gain here (every domain keeps an active "
            "near-critical path), which the table above confirms."
        )
