"""Ablation: batched STA vs per-configuration STA loop.

The paper's exploration leans on STA being cheap (~0.1 s per run in
PrimeTime).  Our engine goes further: one levelized numpy sweep evaluates
all 2^NMAX back-bias assignments simultaneously.  This bench measures the
speedup of the batched sweep over the straightforward loop of
single-configuration analyses (both produce identical worst slacks, which
the test also re-checks).
"""

import time

import numpy as np

from repro.sta.batch import BatchStaEngine, all_bb_configs
from repro.sta.caseanalysis import dvas_case
from repro.sta.engine import StaEngine


def test_sta_batching_speedup(benchmark, bundles, settings):
    bundle = bundles["booth"]
    design = bundle.domained()
    library = design.netlist.library
    graph = design.timing_graph()
    case = dvas_case(design.netlist, max(settings.bitwidths) // 2)
    configs = all_bb_configs(design.num_domains)
    vdd = 0.9

    batch_engine = BatchStaEngine(
        graph, library, design.domains, design.num_domains
    )

    def batched():
        return batch_engine.analyze(design.constraint, vdd, case=case)

    result = benchmark.pedantic(batched, rounds=3, iterations=1)

    single_engine = StaEngine(graph, library)
    start = time.perf_counter()
    looped = []
    for config in configs:
        fbb_cells = config[design.domains]
        report = single_engine.analyze(
            design.constraint, vdd, fbb_cells, case=case,
            compute_required=False,
        )
        looped.append(report.worst_slack_ps)
    loop_time = time.perf_counter() - start

    start = time.perf_counter()
    batch_again = batched()
    batch_time = time.perf_counter() - start

    speedup = loop_time / batch_time
    print(
        f"\nper-config loop: {loop_time * 1e3:.1f} ms for "
        f"{len(configs)} configs; batched sweep: {batch_time * 1e3:.1f} ms "
        f"-> {speedup:.1f}x speedup"
    )

    # Equivalence: both engines agree on every configuration.
    assert np.allclose(batch_again.worst_slack_ps, looped, atol=0.5)
    # The batched sweep must amortize meaningfully.
    assert speedup > 2.0
