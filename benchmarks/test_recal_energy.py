"""Benchmark: energy reclaimed by closed-loop recalibration.

Races the retreat-only margin guard against the recalibrating one on a
recover-after-excursion schedule over a margin-compiled Booth table: one
early temperature excursion erodes every mode's margin past its sign-off
slack, then the die cools.  The retreat-only baseline stays latched in
the expensive static mode for the whole clean tail; the canary-probe
loop re-advances once its healthy streak fills, and the difference --
with the probes' own energy charged to the recalibrating run -- is the
reclaimed energy this PR exists for.

Everything runs in seeded virtual time, so the numbers are bit-stable
across hosts; the >= 10% reclaim floor is a correctness assertion, not a
machine-speed one.  The excursion magnitude is derived from the compiled
margins themselves (1.5x the widest guarded slack), so the demote phase
engages no matter what the margin compiler produced.

Results go to one JSON record (perf-smoke uploads it as
BENCH_recal.json and merges it into BENCH_summary).
"""

import json
import os

from repro.faults import recovery_schedule, run_recal_chaos
from repro.faults.environment import TEMP_SLOWDOWN_PER_C
from repro.serve.table import compile_mode_table

SMALL = bool(int(os.environ.get("REPRO_BENCH_SMALL", "0")))

REQUESTS = 128 if SMALL else 512
NUM_OPERATORS = 3
SEED = 7
RECLAIM_FLOOR = 0.10
#: 96 requests over 3 operators span ~3e5 ns of virtual time.
HORIZON_NS = 3e5 * (REQUESTS / 96.0)


def excursion_magnitude_c(table) -> float:
    """Degrees C whose peak erosion clears every mode's sign-off slack."""
    period_ps = 1e3 / table.fclk_ghz
    worst_slack = max(m.guarded_slack_ps for m in table.margins.values())
    return 1.5 * worst_slack / (TEMP_SLOWDOWN_PER_C * period_ps)


def test_recal_energy_reclaim(bundles):
    bundle = bundles["booth"]
    table = compile_mode_table(
        bundle.domained(),
        bundle.proposed(),
        with_margins=True,
        margin_samples=8,
    )

    schedule = recovery_schedule(
        HORIZON_NS,
        magnitude=excursion_magnitude_c(table),
        relapse=True,
        seed=1,
    )
    report = run_recal_chaos(
        table,
        schedule,
        num_operators=NUM_OPERATORS,
        requests=REQUESTS,
        seed=SEED,
    )

    recal = report.recalibrating
    record = {
        "requests": REQUESTS,
        "horizon_ns": HORIZON_NS,
        "retreat_only_energy_j": report.retreat_only.energy_j,
        "recalibrating_energy_j": recal.energy_j,
        "probe_energy_j": recal.probe_energy_j,
        "energy_reclaimed_j": report.energy_reclaimed_j,
        "energy_reclaimed_fraction": round(
            report.energy_reclaimed_fraction, 4
        ),
        "recal_epochs": recal.recal_epochs,
        "recal_demotions": recal.recal_demotions,
        "recal_readvances": recal.recal_readvances,
        "margin_fallbacks_baseline": report.retreat_only.margin_fallbacks,
        "margin_fallbacks_recal": recal.margin_fallbacks,
    }
    print(f"\nrecal_bench {json.dumps(record, sort_keys=True)}")

    output = os.environ.get("REPRO_BENCH_OUTPUT")
    if output:
        with open(output, "w") as handle:
            json.dump({"recal_energy": record}, handle, indent=2)

    # Both runs must hold the accuracy invariant outright...
    assert report.ok, report.describe()
    assert report.retreat_only.margin_violations == 0
    assert recal.margin_violations == 0
    # ...the loop must have actually cycled (demote AND re-advance)...
    assert recal.recal_demotions > 0
    assert recal.recal_readvances > 0
    # ...and recalibration must pay for its probes at least 10x over.
    assert report.energy_reclaimed_fraction >= RECLAIM_FLOOR, (
        f"reclaimed only {100 * report.energy_reclaimed_fraction:.1f}% "
        f"of the retreat-only baseline (floor {100 * RECLAIM_FLOOR:.0f}%)"
    )
