"""Fig. 1: endpoint slack histogram of the 16x16 multiplier.

The paper shows the multiplier's endpoint slack histogram after P&R at
VDD = 1.0 V (Fig. 1a, everything piled just above zero slack -- the wall
of slack) and at VDD = 0.8 V (Fig. 1b, a large share of endpoints in
violation, red bars).  This bench regenerates both histograms and reports
the violating fractions.
"""

import numpy as np

from repro.sta.engine import StaEngine
from repro.sta.histogram import slack_histogram


def _histogram(design, library, vdd, num_bins=14):
    engine = StaEngine(design.timing_graph(), library)
    fbb = np.ones(len(design.netlist.cells), bool)
    report = engine.analyze(design.constraint, vdd, fbb)
    span = design.constraint.period_ps
    return slack_histogram(
        report, num_bins=num_bins, bin_range_ps=(-span * 0.5, span * 0.5)
    )


def test_fig1_wall_of_slack(benchmark, bundles, library):
    bundle = bundles["booth"]
    design = bundle.base()

    def run():
        return (
            _histogram(design, library, 1.0),
            _histogram(design, library, 0.8),
        )

    nominal, scaled = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n--- Fig. 1a: multiplier endpoint slack at VDD = 1.0 V ---")
    print(nominal.format_text())
    print("\n--- Fig. 1b: multiplier endpoint slack at VDD = 0.8 V ---")
    print(scaled.format_text())
    print(
        f"\nwall-of-slack mass within 20% of zero slack at 1.0 V: "
        f"{nominal.wall_of_slack_fraction(design.constraint.period_ps * 0.2):.2f}"
    )

    # Fig. 1a: nominal voltage meets timing, slack concentrated low.
    assert nominal.violating == 0

    # Fig. 1b: scaling to 0.8 V puts a large share of the *datapath*
    # endpoints in violation (trivial reg-to-reg/port endpoints carry
    # near-full-period slack and sit outside the plotted window, as the
    # paper's histogram only shows the interesting range).
    period = design.constraint.period_ps
    engine = StaEngine(design.timing_graph(), library)
    fbb = np.ones(len(design.netlist.cells), bool)
    report = engine.analyze(design.constraint, 0.8, fbb)
    slacks = report.endpoint_slack_ps[report.endpoint_active]
    datapath = slacks[slacks < period * 0.5]
    violating_fraction = float(np.mean(datapath < 0.0))
    print(f"datapath endpoints violating at 0.8 V: {violating_fraction:.2f}")
    assert violating_fraction > 0.4
    assert scaled.violating_fraction > nominal.violating_fraction
