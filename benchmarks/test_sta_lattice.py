"""Perf bench: whole-lattice batched STA vs the pointwise scalar loop.

The optimization phase's STA half evaluates every BB combination of
every (bitwidth, VDD) knob point; the lattice engine exists to make
that a handful of tensor passes instead of thousands of scalar sweeps.
This bench measures the exact work ``evaluate_cells`` dispatches -- one
(VDD ladder x 2^NMAX combos) feasibility scan of a Table 1 multiplier --
under both engines on cold caches, re-checks bit-identity, and asserts
a speedup floor so a regression in the lattice path fails CI rather
than silently slowing exploration down.

The 16-bit Booth multiplier is the acceptance target (the paper's
headline operator): the lattice must beat the pointwise loop by >= 5x.
The 8-bit point guards the small-operator end, where fixed per-pass
overhead amortizes over fewer nets.  Measured ~8.3x (8-bit) and ~6.6x
(16-bit) on an idle machine; floors are deliberately conservative.

A second bench tracks end-to-end ``explore`` wall-clock (activity
simulation included) in the BENCH JSON so exploration-level regressions
stay visible even when the kernel floor holds.
"""

import time

import numpy as np
import pytest

from repro.core.config import ExplorationSettings
from repro.core.exploration import ExhaustiveExplorer
from repro.core.flow import implement_with_domains, select_clock_for
from repro.operators import booth_multiplier
from repro.pnr.grid import GridPartition
from repro.sta.lattice import LatticeStaEngine
from repro.techlib.library import Library

from .conftest import SMALL

VDD_LADDER = (1.0, 0.9, 0.8, 0.7, 0.6)

#: Required lattice/pointwise speedup on the full feasibility scan.  The
#: 16-bit floor is the acceptance criterion; 5.0 exactly.
FLOORS = {8: 3.0, 16: 5.0}

WIDTHS = [8] if SMALL else [8, 16]


def _best_of(fn, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _booth_engine(width, library):
    factory = lambda: booth_multiplier(library, width)
    constraint = select_clock_for(factory, library)
    design = implement_with_domains(
        factory, library, GridPartition(2, 2), constraint=constraint
    )
    engine = LatticeStaEngine(
        design.timing_graph(), library, design.domains, design.num_domains
    )
    return design, engine


@pytest.mark.parametrize("width", WIDTHS)
def test_lattice_sta_speedup(benchmark, library, width):
    design, engine = _booth_engine(width, library)

    def lattice():
        return engine.analyze_ladder(design.constraint, VDD_LADDER)

    def pointwise():
        return [
            engine.analyze_pointwise(design.constraint, vdd)
            for vdd in VDD_LADDER
        ]

    pointwise_time, reference = _best_of(pointwise, rounds=2)
    ladder = benchmark.pedantic(lattice, rounds=7, iterations=1, warmup_rounds=1)
    lattice_time, _ = _best_of(lattice, rounds=5)

    # Equivalence first: speed means nothing if the bits moved.
    for rung, ref in zip(ladder, reference):
        np.testing.assert_array_equal(rung.worst_slack_ps, ref.worst_slack_ps)
        np.testing.assert_array_equal(
            rung.critical_endpoint_net, ref.critical_endpoint_net
        )

    combos = 2 ** design.num_domains
    speedup = pointwise_time / lattice_time
    print(
        f"\nbooth{width} ({combos} combos x {len(VDD_LADDER)} VDDs): "
        f"pointwise {pointwise_time * 1e3:.2f} ms, "
        f"lattice {lattice_time * 1e3:.2f} ms -> {speedup:.1f}x"
    )
    assert speedup > FLOORS[width]


def test_explore_wall_clock_tracked(benchmark, library):
    """End-to-end exploration under the lattice engine, for BENCH JSON.

    Activity simulation is shared between the engines, so the end-to-end
    ratio is far below the kernel's; this bench exists to keep the
    explore wall-clock visible over time, with a loose sanity floor that
    the lattice engine never makes exploration *slower*.
    """
    width = 8 if SMALL else 16
    design, _ = _booth_engine(width, library)
    settings = ExplorationSettings(
        bitwidths=(width // 2, width),
        activity_cycles=16,
        activity_batch=16,
        sta_engine="lattice",
    )
    explorer = ExhaustiveExplorer(design)

    pointwise_time, reference = _best_of(
        lambda: ExhaustiveExplorer(design).run(
            ExplorationSettings(
                bitwidths=settings.bitwidths,
                activity_cycles=settings.activity_cycles,
                activity_batch=settings.activity_batch,
                sta_engine="pointwise",
            )
        ),
        rounds=1 if SMALL else 2,
    )
    result = benchmark.pedantic(
        lambda: ExhaustiveExplorer(design).run(settings),
        rounds=3,
        iterations=1,
    )
    lattice_time, _ = _best_of(
        lambda: ExhaustiveExplorer(design).run(settings), rounds=2
    )

    assert result.best_per_knob_point == reference.best_per_knob_point
    assert result.feasible_counts == reference.feasible_counts

    ratio = pointwise_time / lattice_time
    print(
        f"\nbooth{width} explore: pointwise {pointwise_time * 1e3:.0f} ms, "
        f"lattice {lattice_time * 1e3:.0f} ms -> {ratio:.2f}x"
    )
    assert ratio > 1.0
