"""Extension: the methodology on a pipelined operator.

The paper evaluates single-cycle datapaths.  Real accelerators pipeline;
the flow must keep working when the operator's paths are reg-to-reg
across internal stages.  This bench runs the full comparison on a
two-stage (Wallace / final-adder split) Booth multiplier: the clock
roughly doubles, and the proposed-vs-DVAS structure must survive.
"""

from repro.core.dvas import dvas_explore
from repro.core.exploration import ExhaustiveExplorer
from repro.core.flow import (
    implement_base,
    implement_with_domains,
    select_clock_for,
)
from repro.core.pareto import power_saving
from repro.operators import booth_multiplier
from repro.pnr.grid import GridPartition
from benchmarks.conftest import WIDTH


def test_pipelined_multiplier(benchmark, bundles, settings, library):
    counter = {"n": 0}

    def factory():
        counter["n"] += 1
        return booth_multiplier(
            library, WIDTH, name=f"piped_{counter['n']}", pipelined=True
        )

    def run():
        constraint = select_clock_for(factory, library)
        base = implement_base(factory, library, constraint=constraint)
        domained = implement_with_domains(
            factory, library, GridPartition(2, 2), constraint=constraint
        )
        proposed = ExhaustiveExplorer(domained).run(settings)
        dvas_fbb = dvas_explore(base, fbb=True, settings=settings)
        dvas_nobb = dvas_explore(base, fbb=False, settings=settings)
        return base, proposed, dvas_fbb, dvas_nobb

    base, proposed, dvas_fbb, dvas_nobb = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    flat_clock = bundles["booth"].constraint()
    print(
        f"\npipelined multiplier closes {base.fclk_ghz:.2f} GHz vs "
        f"{flat_clock.frequency_ghz:.2f} GHz single-cycle"
    )
    max_bits = max(settings.bitwidths)
    savings = {
        bits: power_saving(
            dvas_fbb.best_per_bitwidth, proposed.best_per_bitwidth, bits
        )
        for bits in settings.bitwidths
    }
    shown = {b: f"{(s or 0) * 100:+.1f}%" for b, s in savings.items()
             if b in (2, max_bits // 2, max_bits)}
    print(f"proposed vs DVAS (FBB) savings: {shown}")
    print(f"DVAS (NoBB) reaches {dvas_nobb.max_reachable_bits} bits")

    # The structural claims survive pipelining.
    assert base.fclk_ghz > flat_clock.frequency_ghz
    assert dvas_nobb.max_reachable_bits < max_bits
    assert sorted(proposed.best_per_bitwidth) == sorted(settings.bitwidths)
    real_savings = [s for s in savings.values() if s is not None]
    assert max(real_savings) > 0.05
