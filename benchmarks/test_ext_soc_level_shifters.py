"""Extension: the paper's level-shifter claim, quantified.

Section I claims the method "permits to independently configure the
bitwidth of different units in the same die without the need of inserting
level shifters"; Section II-B recalls that multi-VDD DVAS "must be placed
in a separate voltage domain ... level shifters ... introduce significant
power overheads".  This bench composes the paper's three operators into a
system running at mixed accuracies and compares the two strategies.
"""

from repro.core.soc import OperatorSlot, SocComposer


def test_soc_level_shifters(benchmark, bundles, settings):
    max_bits = max(settings.bitwidths)
    requirements = {
        "booth": max_bits // 2,       # mid accuracy
        "butterfly": max_bits // 4,   # coarse accuracy
        "fir": max_bits,              # full accuracy
    }

    def run():
        slots = []
        for name, bits in requirements.items():
            bundle = bundles[name]
            slots.append(
                OperatorSlot(
                    name,
                    bundle.domained(),
                    bundle.proposed(),
                    required_bits=bits,
                    dvas_exploration=bundle.dvas(fbb=True),
                )
            )
        return SocComposer(slots).compare()

    shared, islands, saving = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n--- multi-operator system at mixed accuracies ---")
    for name, bits in requirements.items():
        print(f"  {name}: requires {bits} bits")
    print(f"\n{shared.describe()}")
    print(f"{islands.describe()}")
    print(f"system saving of shared supply + BB: {saving * 100:+.1f}%")

    # The proposed strategy never pays shifters; whenever the island
    # solution scales any operator's supply, the shifters cost real power.
    assert shared.shifter_power_w == 0.0
    scaled = [
        p for p in islands.operator_points.values() if p.vdd < 1.0
    ]
    if scaled:
        assert islands.shifter_power_w > 0.0
        print(
            f"({len(scaled)} operator(s) on scaled islands pay "
            f"{islands.shifter_power_w * 1e3:.3f} mW of shifters)"
        )
    # Accuracy requirements met in both strategies.
    for name, bits in requirements.items():
        assert shared.operator_points[name].active_bits >= bits
        assert islands.operator_points[name].active_bits >= bits
