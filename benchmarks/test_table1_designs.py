"""Table I: post-P&R design characteristics and groups configurations.

Regenerates the paper's Table I: silicon area, nominal clock frequency,
grid configuration and guardband area overhead per design.  Absolute area
and frequency depend on the synthetic library; the orderings and the
overhead range are the reproduction targets.
"""

from benchmarks.conftest import TABLE1_GRIDS
from benchmarks.figure5 import maybe_write_csv
from repro.core.report import format_table1

#: Paper values for reference printing: (area mm^2, fclk GHz, grid, ovh %).
PAPER_TABLE1 = {
    "booth": (2.59e-3, 1.25, "2x2", 15.0),
    "butterfly": (7.71e-3, 1.00, "3x3", 17.0),
    "fir": (9.10e-3, 0.75, "3x3", 16.0),
}


def test_table1(benchmark, bundles):
    def run():
        return {name: bundles[name].domained() for name in TABLE1_GRIDS}

    designs = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n--- Table I (measured) ---")
    print(format_table1(designs.values()))
    maybe_write_csv(
        "table1.csv",
        ["design", "area_um2", "fclk_ghz", "grid", "area_overhead"],
        [
            [
                name,
                design.area_um2,
                design.fclk_ghz,
                design.insertion.partition.label,
                design.area_overhead,
            ]
            for name, design in designs.items()
        ],
    )
    print("\n--- Table I (paper) ---")
    for name, (area, fclk, grid, ovh) in PAPER_TABLE1.items():
        print(f"{name:12s} {area:12.2e} {fclk:11.2f} {grid:>7s} {ovh:9.1f}")

    booth = designs["booth"]
    butterfly = designs["butterfly"]
    fir = designs["fir"]

    # The multiplier is the smallest and fastest design, as in the paper.
    assert booth.area_um2 < butterfly.area_um2
    assert booth.area_um2 < fir.area_um2
    assert booth.fclk_ghz >= butterfly.fclk_ghz
    assert booth.fclk_ghz >= fir.fclk_ghz

    # Grid configurations match the paper's Table I.
    assert booth.insertion.partition.label == "2x2"
    assert butterfly.insertion.partition.label == "3x3"
    assert fir.insertion.partition.label == "3x3"

    # Guardband overheads land in the paper's 15-17% band (+/- tolerance
    # for the synthetic die sizes).
    for design in designs.values():
        assert 0.05 < design.area_overhead < 0.45
