"""Fig. 5a: Booth multiplier, proposed (2x2 domains) vs DVAS.

Paper headline: 32.67% power saving vs DVAS at 10-bit accuracy; DVAS (NoBB)
limited to very small bitwidths; DVAS (FBB) shows a step-wise front.
"""

from benchmarks.figure5 import assert_figure5_shape, print_figure5, run_figure5
from repro.core.pareto import power_saving


def test_fig5a_booth(benchmark, bundles, settings):
    bundle = bundles["booth"]

    def run():
        return run_figure5(bundle)

    proposed, dvas_nobb, dvas_fbb = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_figure5("Booth multiplier", settings, proposed, dvas_nobb, dvas_fbb)
    assert_figure5_shape(settings, proposed, dvas_nobb, dvas_fbb)

    # Paper: 32.67% saving at 10-bit.  Report where our peak lands.
    best_bits, best_saving = max(
        (
            (bits, power_saving(
                dvas_fbb.best_per_bitwidth, proposed.best_per_bitwidth, bits
            ))
            for bits in settings.bitwidths
        ),
        key=lambda item: item[1] if item[1] is not None else -1.0,
    )
    print(
        f"\npeak saving vs DVAS (FBB): {best_saving * 100:.2f}% at "
        f"{best_bits} bits (paper: 32.67% at 10 bits)"
    )
    assert best_saving > 0.10
