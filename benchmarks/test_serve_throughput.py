"""Benchmark: the serving subsystem end to end, plus the batch kernel.

Drives the asyncio server in-process with a deterministic three-operator
request mix over a ModeTable compiled from the Booth multiplier, once
per policy, and records:

* sustained requests/second through the bounded queue + drain worker;
* p99 service latency in virtual ns (queue wait + settling, from the
  telemetry histogram) -- the mode-switch latency an operator would
  observe on the modeled hardware;
* mode switches and degradations, where hysteresis must not switch more
  than greedy.

A second benchmark races the batched serve kernel against the scalar
per-request path on single-worker trace replay and enforces the >= 5x
speedup floor the compiled fast path exists for -- after asserting the
two reports are bit-identical, so the floor can never be bought with a
semantics change.

The numbers are emitted as one JSON object per record so CI logs are
machine-scrapeable; set ``$REPRO_BENCH_OUTPUT`` to also collect every
record emitted by this module into one JSON artifact.
"""

import asyncio
import json
import os
import time

import numpy as np

from repro.core.runtime import WorkloadPhase
from repro.serve.scheduler import ModeScheduler, replay_trace
from repro.serve.server import AccuracyServer
from repro.serve.table import compile_mode_table

SMALL = bool(int(os.environ.get("REPRO_BENCH_SMALL", "0")))

REQUESTS = 5_000
OPERATORS = ("mac0", "mac1", "mac2")

#: Single-worker replay length for the kernel race (phase-structured).
REPLAY_PHASES = 6_000 if SMALL else 20_000
#: The batched kernel's reason to exist, enforced in CI.
KERNEL_SPEEDUP_FLOOR = 5.0

#: Records of every benchmark in this module, merged into one artifact.
_RECORDS = {}


def _dump_records(key, records):
    _RECORDS[key] = records
    output = os.environ.get("REPRO_BENCH_OUTPUT")
    if output:
        with open(output, "w") as handle:
            json.dump(_RECORDS, handle, indent=2)


def _drive(table, policy):
    """Run the request mix against a fresh server; return (stats, seconds)."""
    scheduler = ModeScheduler(
        table,
        num_generators=2,
        policy=policy,
        max_queue_depth=8,
        policy_kwargs={"dwell_cycles": 5_000} if policy == "hysteresis" else {},
    )
    rng = np.random.default_rng(2017)
    bitwidths = sorted(table.modes)
    trace = [
        (
            OPERATORS[i % 3],
            int(rng.choice(bitwidths)),
            int(rng.integers(100, 10_000)),
        )
        for i in range(REQUESTS)
    ]

    async def body():
        async with AccuracyServer(scheduler, max_pending=256) as server:
            start = time.perf_counter()
            for chunk_start in range(0, REQUESTS, 64):
                chunk = trace[chunk_start : chunk_start + 64]
                phases = await asyncio.gather(
                    *(server.request(op, bits, cycles)
                      for op, bits, cycles in chunk)
                )
                for (op, bits, _cycles), phase in zip(chunk, phases):
                    assert phase.served_bits >= bits
            elapsed = time.perf_counter() - start
            return server.stats(), elapsed

    return asyncio.run(body())


def test_serve_throughput_greedy_vs_hysteresis(bundles):
    bundle = bundles["booth"]
    table = compile_mode_table(bundle.domained(), bundle.proposed())

    results = {}
    for policy in ("greedy", "hysteresis"):
        stats, elapsed = _drive(table, policy)
        counters = stats["counters"]
        record = {
            "policy": policy,
            "requests": counters["requests"],
            "req_per_s": round(counters["requests"] / elapsed, 1),
            "p99_latency_ns": stats["latency_ns"]["p99"],
            "p50_latency_ns": stats["latency_ns"]["p50"],
            "mode_switches": counters["mode_switches"],
            "batched_slews": counters["batched_slews"],
            "degraded": counters["degraded"],
            "violations": counters["accuracy_violations"],
        }
        results[policy] = record
        print(f"\nserve_bench {json.dumps(record, sort_keys=True)}")

    for record in results.values():
        assert record["requests"] == REQUESTS
        assert record["violations"] == 0
        # Pure-python scheduler behind an asyncio queue: anything under
        # this floor means an accidental O(n^2) crept into the hot path.
        assert record["req_per_s"] > 1_000

    # Debouncing exists to cut switch count; it must never raise it.
    assert (
        results["hysteresis"]["mode_switches"]
        <= results["greedy"]["mode_switches"]
    )

    _dump_records("serve_throughput", list(results.values()))


def _replay_workload(table):
    """Phase-structured trace: runs of equal bits, the serving shape."""
    rng = np.random.default_rng(2017)
    bitwidths = sorted(table.modes)
    phases = []
    while len(phases) < REPLAY_PHASES:
        bits = int(rng.choice(bitwidths))
        for _ in range(int(rng.integers(1, 8))):
            phases.append(
                WorkloadPhase(
                    required_bits=bits,
                    cycles=int(rng.integers(100, 10_000)),
                )
            )
            if len(phases) == REPLAY_PHASES:
                break
    return phases


def _replay_rate(table, workload, policy, engine, repeats=3):
    best = 0.0
    report = None
    for _ in range(repeats):
        start = time.perf_counter()
        report = replay_trace(table, workload, policy=policy, engine=engine)
        best = max(best, len(workload) / (time.perf_counter() - start))
    return report, best


def test_batch_kernel_replay_speedup(bundles):
    bundle = bundles["booth"]
    table = compile_mode_table(bundle.domained(), bundle.proposed())
    workload = _replay_workload(table)

    records = []
    for policy in ("greedy", "hysteresis", "lookahead"):
        scalar_report, scalar_rate = _replay_rate(
            table, workload, policy, "scalar"
        )
        batch_report, batch_rate = _replay_rate(
            table, workload, policy, "batch"
        )
        # Bit identity first: a faster kernel that drifts is worthless.
        assert batch_report == scalar_report, policy
        record = {
            "policy": policy,
            "phases": REPLAY_PHASES,
            "scalar_req_per_s": round(scalar_rate, 1),
            "batch_req_per_s": round(batch_rate, 1),
            "speedup": round(batch_rate / scalar_rate, 2),
        }
        records.append(record)
        print(f"\nserve_kernel_bench {json.dumps(record, sort_keys=True)}")

    _dump_records("serve_batch_kernel", records)

    for record in records:
        assert record["speedup"] >= KERNEL_SPEEDUP_FLOOR, (
            f"{record['policy']} batch kernel replayed at "
            f"{record['batch_req_per_s']:.0f} req/s vs "
            f"{record['scalar_req_per_s']:.0f} scalar: below the "
            f"{KERNEL_SPEEDUP_FLOOR}x floor"
        )
