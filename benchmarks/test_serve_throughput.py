"""Benchmark: the serving subsystem end to end, greedy vs hysteresis.

Drives the asyncio server in-process with a deterministic three-operator
request mix over a ModeTable compiled from the Booth multiplier, once
per policy, and records:

* sustained requests/second through the bounded queue + drain worker;
* p99 service latency in virtual ns (queue wait + settling, from the
  telemetry histogram) -- the mode-switch latency an operator would
  observe on the modeled hardware;
* mode switches and degradations, where hysteresis must not switch more
  than greedy.

The numbers are emitted as one JSON object per policy so CI logs are
machine-scrapeable.
"""

import asyncio
import json
import time

import numpy as np

from repro.serve.scheduler import ModeScheduler
from repro.serve.server import AccuracyServer
from repro.serve.table import compile_mode_table

REQUESTS = 5_000
OPERATORS = ("mac0", "mac1", "mac2")


def _drive(table, policy):
    """Run the request mix against a fresh server; return (stats, seconds)."""
    scheduler = ModeScheduler(
        table,
        num_generators=2,
        policy=policy,
        max_queue_depth=8,
        policy_kwargs={"dwell_cycles": 5_000} if policy == "hysteresis" else {},
    )
    rng = np.random.default_rng(2017)
    bitwidths = sorted(table.modes)
    trace = [
        (
            OPERATORS[i % 3],
            int(rng.choice(bitwidths)),
            int(rng.integers(100, 10_000)),
        )
        for i in range(REQUESTS)
    ]

    async def body():
        async with AccuracyServer(scheduler, max_pending=256) as server:
            start = time.perf_counter()
            for chunk_start in range(0, REQUESTS, 64):
                chunk = trace[chunk_start : chunk_start + 64]
                phases = await asyncio.gather(
                    *(server.request(op, bits, cycles)
                      for op, bits, cycles in chunk)
                )
                for (op, bits, _cycles), phase in zip(chunk, phases):
                    assert phase.served_bits >= bits
            elapsed = time.perf_counter() - start
            return server.stats(), elapsed

    return asyncio.run(body())


def test_serve_throughput_greedy_vs_hysteresis(bundles):
    bundle = bundles["booth"]
    table = compile_mode_table(bundle.domained(), bundle.proposed())

    results = {}
    for policy in ("greedy", "hysteresis"):
        stats, elapsed = _drive(table, policy)
        counters = stats["counters"]
        record = {
            "policy": policy,
            "requests": counters["requests"],
            "req_per_s": round(counters["requests"] / elapsed, 1),
            "p99_latency_ns": stats["latency_ns"]["p99"],
            "p50_latency_ns": stats["latency_ns"]["p50"],
            "mode_switches": counters["mode_switches"],
            "batched_slews": counters["batched_slews"],
            "degraded": counters["degraded"],
            "violations": counters["accuracy_violations"],
        }
        results[policy] = record
        print(f"\nserve_bench {json.dumps(record, sort_keys=True)}")

    for record in results.values():
        assert record["requests"] == REQUESTS
        assert record["violations"] == 0
        # Pure-python scheduler behind an asyncio queue: anything under
        # this floor means an accidental O(n^2) crept into the hot path.
        assert record["req_per_s"] > 1_000

    # Debouncing exists to cut switch count; it must never raise it.
    assert (
        results["hysteresis"]["mode_switches"]
        <= results["greedy"]["mode_switches"]
    )
