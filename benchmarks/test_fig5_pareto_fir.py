"""Fig. 5c: 30-tap FIR filter, proposed (3x3 domains) vs DVAS.

Paper headline: 39.92% power saving vs DVAS at 10-bit accuracy, the largest
of the three designs -- the FIR suffers most from the wall of slack (its
"step-wise" DVAS front), so selective boosting pays off most.
"""

from benchmarks.figure5 import assert_figure5_shape, print_figure5, run_figure5
from repro.core.pareto import power_saving


def test_fig5c_fir(benchmark, bundles, settings):
    bundle = bundles["fir"]

    def run():
        return run_figure5(bundle)

    proposed, dvas_nobb, dvas_fbb = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_figure5("30-tap FIR", settings, proposed, dvas_nobb, dvas_fbb)
    assert_figure5_shape(settings, proposed, dvas_nobb, dvas_fbb)

    best_bits, best_saving = max(
        (
            (bits, power_saving(
                dvas_fbb.best_per_bitwidth, proposed.best_per_bitwidth, bits
            ))
            for bits in settings.bitwidths
        ),
        key=lambda item: item[1] if item[1] is not None else -1.0,
    )
    print(
        f"\npeak saving vs DVAS (FBB): {best_saving * 100:.2f}% at "
        f"{best_bits} bits (paper: 39.92% at 10 bits)"
    )
