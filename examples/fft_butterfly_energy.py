#!/usr/bin/env python3
"""FFT butterfly: who gets boosted?  A look inside the Vth domains.

Implements the paper's butterfly unit with a 3x3 grid of back-bias
domains, explores the knobs, and then *visualizes* which domains the
optimizer boosts at each accuracy mode -- an ASCII rendering of the die
with its guardbands, the physical intuition behind Fig. 5b.

Run time: ~1 minute at the reduced 12-bit width used here.
"""

import numpy as np

from repro import (
    ExhaustiveExplorer,
    ExplorationSettings,
    GridPartition,
    Library,
    dvas_explore,
    implement_base,
    implement_with_domains,
)
from repro.core.flow import select_clock_for
from repro.operators import fft_butterfly

WIDTH = 12
GRID = GridPartition(3, 3)


def domain_map(point, partition):
    """Render the die: 'F' = forward-biased (boosted) domain, '.' = NoBB."""
    lines = []
    for row in reversed(range(partition.rows)):  # die y grows upward
        cells = []
        for col in range(partition.cols):
            domain = partition.domain_of(row, col)
            cells.append("[FFF]" if point.bb_config[domain] else "[...]")
        lines.append(" ".join(cells))
    return "\n".join(lines)


def main():
    library = Library()

    def factory():
        return fft_butterfly(library, WIDTH)

    constraint = select_clock_for(factory, library)
    base = implement_base(factory, library, constraint=constraint)
    domained = implement_with_domains(
        factory, library, GRID, constraint=constraint
    )
    print(domained.describe())
    insertion = domained.insertion
    print(
        f"cells per domain: {insertion.cells_per_domain().tolist()} "
        f"(guardbands {insertion.guardband_x_um:.1f} x "
        f"{insertion.guardband_y_um:.1f} um)"
    )

    settings = ExplorationSettings(bitwidths=tuple(range(2, WIDTH + 1, 2)))
    proposed = ExhaustiveExplorer(domained).run(settings)
    dvas = dvas_explore(base, fbb=True, settings=settings)

    for bits in sorted(settings.bitwidths, reverse=True):
        point = proposed.best_per_bitwidth.get(bits)
        if point is None:
            continue
        reference = dvas.best_per_bitwidth.get(bits)
        saving = (
            f", saving {(1 - point.total_power_w / reference.total_power_w) * 100:+.1f}%"
            " vs DVAS FBB"
            if reference
            else ""
        )
        print(
            f"\n{bits} active bits -> {point.total_power_w * 1e3:.3f} mW @ "
            f"{point.vdd:.1f} V ({point.num_boosted_domains}/"
            f"{GRID.num_domains} domains boosted{saving})"
        )
        print(domain_map(point, GRID))

    energy_full = proposed.best_per_bitwidth[WIDTH].total_power_w
    energy_half = proposed.best_per_bitwidth[WIDTH // 2].total_power_w
    print(
        f"\nan FFT stage willing to run at {WIDTH // 2} fractional bits "
        f"spends {energy_half / energy_full * 100:.0f}% of the full-accuracy "
        "butterfly power."
    )


if __name__ == "__main__":
    main()
