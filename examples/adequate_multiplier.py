#!/usr/bin/env python3
"""Fig. 5a end-to-end: a 16x16 adequate Booth multiplier.

Reproduces the paper's headline experiment: the Booth/Wallace multiplier
implemented with a 2x2 grid of back-bias domains, compared against DVAS
(NoBB and FBB) on the accuracy/power plane.  Prints the three Pareto
frontiers as a table and as an ASCII plot.

Run time: ~1 minute.
"""

from repro import (
    ExhaustiveExplorer,
    ExplorationSettings,
    GridPartition,
    Library,
    dvas_explore,
    implement_base,
    implement_with_domains,
)
from repro.core.flow import select_clock_for
from repro.core.report import format_pareto_table, format_savings
from repro.operators import booth_multiplier

WIDTH = 16


def ascii_plot(frontiers, bitwidths, columns=56):
    """Plot power-vs-bits curves with one character column per power bin."""
    all_powers = [
        p.total_power_w
        for frontier in frontiers.values()
        for p in frontier.values()
    ]
    lo, hi = min(all_powers), max(all_powers)
    span = hi - lo or 1.0
    markers = "*o+x"
    lines = [
        f"power axis: {lo * 1e3:.2f} mW .. {hi * 1e3:.2f} mW "
        f"({', '.join(f'{m}={name}' for m, name in zip(markers, frontiers))})"
    ]
    for bits in sorted(bitwidths, reverse=True):
        row = [" "] * (columns + 1)
        for marker, frontier in zip(markers, frontiers.values()):
            point = frontier.get(bits)
            if point is None:
                continue
            column = int((point.total_power_w - lo) / span * columns)
            row[column] = marker
        lines.append(f"{bits:3d}b |" + "".join(row))
    return "\n".join(lines)


def main():
    library = Library()

    def factory():
        return booth_multiplier(library, WIDTH)

    constraint = select_clock_for(factory, library)
    base = implement_base(factory, library, constraint=constraint)
    domained = implement_with_domains(
        factory, library, GridPartition(2, 2), constraint=constraint
    )
    print(base.describe())
    print(domained.describe())

    settings = ExplorationSettings()
    proposed = ExhaustiveExplorer(domained).run(settings)
    dvas_nobb = dvas_explore(base, fbb=False, settings=settings)
    dvas_fbb = dvas_explore(base, fbb=True, settings=settings)

    frontiers = {
        "Proposed (2x2)": proposed.best_per_bitwidth,
        "DVAS (NoBB)": dvas_nobb.best_per_bitwidth,
        "DVAS (FBB)": dvas_fbb.best_per_bitwidth,
    }
    print()
    print(format_pareto_table(frontiers, settings.bitwidths))
    print()
    print(ascii_plot(frontiers, settings.bitwidths))
    print()
    print(
        format_savings(
            dvas_fbb.best_per_bitwidth,
            proposed.best_per_bitwidth,
            settings.bitwidths,
        )
    )
    print(
        f"\nDVAS (NoBB) reaches at most {dvas_nobb.max_reachable_bits} bits "
        "at the nominal clock -- the paper's 'cannot reach maximum "
        "accuracy' observation."
    )


if __name__ == "__main__":
    main()
