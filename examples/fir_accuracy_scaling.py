#!/usr/bin/env python3
"""What does an 'accuracy mode' buy at application level?  (FIR filter)

The paper's accuracy axis is the active bitwidth.  This example grounds it:
for each accuracy mode of the serial FIR datapath it reports

* the minimum-power operating point found by the proposed exploration,
* the arithmetic accuracy of LSB-gated multiplication (RMSE / SNR),
* the end-to-end signal quality of an actual low-pass filtering job run
  through the gate-level netlist simulator.

This is the knob an application-level controller (out of the paper's
scope) would use to trade quality for power at runtime.

Run time: ~1 minute with the reduced tap count used here.
"""

import numpy as np

from repro import (
    ExhaustiveExplorer,
    ExplorationSettings,
    GridPartition,
    Library,
    implement_with_domains,
)
from repro.core.flow import select_clock_for
from repro.operators import fir_filter
from repro.operators.fir import FirParameters
from repro.sim import golden
from repro.sim.errors import compare, error_metrics
from repro.sim.vectors import zero_lsbs

PARAMS = FirParameters(taps=8, width=16)


def lowpass_coefficients(taps):
    """A small windowed-sinc low-pass, quantized to Q1.15."""
    n = np.arange(taps) - (taps - 1) / 2
    cutoff = 0.25
    sinc = np.sinc(2 * cutoff * n) * np.hamming(taps)
    sinc /= sinc.sum()
    return np.round(sinc * (1 << 15)).astype(np.int64)


def filter_quality(active_bits, samples=24):
    """Run a noisy-tone filtering job at one accuracy mode (golden model,
    which is bit-exact with the netlist) and report output SNR vs the
    full-precision result."""
    rng = np.random.default_rng(42)
    taps, width = PARAMS.taps, PARAMS.width
    t = np.arange(samples)
    signal = 0.4 * np.sin(2 * np.pi * 0.05 * t)
    noise = 0.2 * np.sin(2 * np.pi * 0.45 * t) + 0.05 * rng.standard_normal(
        samples
    )
    x = np.round((signal + noise) * ((1 << (width - 1)) - 1)).astype(np.int64)
    coeffs = lowpass_coefficients(taps)

    def run(x_words, c_words):
        xs, cs = [], []
        for cycle in range(taps * (samples + 2)):
            count = cycle % taps
            idx = cycle // taps
            xs.append(np.asarray([x_words[idx] if idx < samples else 0]))
            cs.append(np.asarray([c_words[(count + 1) % taps]]))
        out = golden.fir_reference(xs, cs, PARAMS)
        return np.asarray(
            [out[taps * (n + 2)]["Y"][0] for n in range(samples - 2)]
        )

    exact = run(x, coeffs)
    gated = run(
        zero_lsbs(x, width, active_bits),
        zero_lsbs(coeffs, width, active_bits),
    )
    return compare(exact, gated, active_bits)


def main():
    library = Library()

    def factory():
        return fir_filter(library, PARAMS)

    constraint = select_clock_for(factory, library)
    domained = implement_with_domains(
        factory, library, GridPartition(3, 3), constraint=constraint
    )
    print(domained.describe())

    bitwidths = (16, 12, 10, 8, 6, 4)
    settings = ExplorationSettings(bitwidths=bitwidths)
    result = ExhaustiveExplorer(domained).run(settings)

    print(
        f"\n{'bits':>4s} {'power':>10s} {'VDD':>5s} {'boosted':>8s} "
        f"{'mult SNR':>9s} {'filter SNR':>11s}"
    )
    for bits in bitwidths:
        point = result.best_per_bitwidth.get(bits)
        if point is None:
            continue
        mult = error_metrics(lambda a, b: a * b, PARAMS.width, bits)
        app = filter_quality(bits)
        print(
            f"{bits:4d} {point.total_power_w * 1e3:8.3f}mW "
            f"{point.vdd:5.1f} {point.num_boosted_domains:5d}/9 "
            f"{mult.snr_db:8.1f}dB {app.snr_db:10.1f}dB"
        )

    full = result.best_per_bitwidth[16]
    low = result.best_per_bitwidth[8]
    print(
        f"\ndropping 16 -> 8 bits saves "
        f"{(1 - low.total_power_w / full.total_power_w) * 100:.0f}% power "
        f"and still delivers ~{filter_quality(8).snr_db:.0f} dB of filtered "
        "signal quality."
    )


if __name__ == "__main__":
    main()
