#!/usr/bin/env python3
"""Quickstart: make one operator accuracy-configurable with back biasing.

Builds a small Booth multiplier, runs the paper's two-phase flow (implement
with a 2x2 grid of Vth domains, then exhaustively explore the back-bias /
bitwidth / supply knobs) and prints the minimum-power configuration for
every accuracy mode.

Run time: a few seconds.  For the paper-scale experiments see the other
examples and the benchmarks directory.
"""

from repro import (
    ExhaustiveExplorer,
    ExplorationSettings,
    GridPartition,
    Library,
    dvas_explore,
    implement_base,
    implement_with_domains,
)
from repro.core.flow import select_clock_for
from repro.operators import booth_multiplier


def main():
    library = Library()
    width = 8

    def factory():
        return booth_multiplier(library, width)

    # Implementation phase: one clock for both designs, then the reference
    # (no-domain) die for DVAS and the 2x2-partitioned die for the method.
    constraint = select_clock_for(factory, library)
    base = implement_base(factory, library, constraint=constraint)
    domained = implement_with_domains(
        factory, library, GridPartition(2, 2), constraint=constraint
    )
    print(base.describe())
    print(domained.describe())

    # Optimization phase: exhaustive (BB x bitwidth x VDD) exploration.
    settings = ExplorationSettings(bitwidths=tuple(range(1, width + 1)))
    proposed = ExhaustiveExplorer(domained).run(settings)
    dvas = dvas_explore(base, fbb=True, settings=settings)

    print(
        f"\nexplored {proposed.points_evaluated} design points in "
        f"{proposed.runtime_s:.1f} s; STA filtered "
        f"{proposed.filtered_fraction * 100:.0f}%"
    )
    print("\nminimum-power configuration per accuracy mode:")
    print("  (BB string: one letter per domain, F = forward-biased)")
    for point in proposed.pareto():
        reference = dvas.best_per_bitwidth.get(point.active_bits)
        delta = (
            f"  ({(point.total_power_w / reference.total_power_w - 1) * 100:+.1f}% "
            "power vs DVAS FBB)"
            if reference
            else ""
        )
        print(f"  {point.describe()}{delta}")


if __name__ == "__main__":
    main()
