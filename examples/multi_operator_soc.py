#!/usr/bin/env python3
"""Many operators, one supply: the level-shifter argument, end to end.

The paper's introduction promises that the Vth knob "permits to
independently configure the bitwidth of different units in the same die
without the need of inserting level shifters".  This example builds a
small DSP subsystem -- a multiplier, an adder and an L1-norm kernel, each
with its own accuracy requirement -- and compares:

* one shared supply, each operator trimmed by per-domain back bias, vs.
* per-operator voltage islands with level-shifted I/O (multi-VDD DVAS).

Run time: < 1 minute.
"""

from repro import (
    ExhaustiveExplorer,
    ExplorationSettings,
    GridPartition,
    Library,
    dvas_explore,
    implement_base,
    implement_with_domains,
)
from repro.core.flow import select_clock_for
from repro.core.soc import LevelShifterModel, OperatorSlot, SocComposer
from repro.operators import adequate_adder, booth_multiplier, l1_norm

WIDTH = 10


def build_slot(name, factory, library, grid, required_bits, settings):
    constraint = select_clock_for(factory, library)
    design = implement_with_domains(
        factory, library, grid, constraint=constraint
    )
    base = implement_base(factory, library, constraint=constraint)
    exploration = ExhaustiveExplorer(design).run(settings)
    dvas = dvas_explore(base, fbb=True, settings=settings)
    print(f"  {name}: {design.describe()}")
    return OperatorSlot(name, design, exploration, required_bits, dvas)


def main():
    library = Library()
    settings = ExplorationSettings(bitwidths=tuple(range(2, WIDTH + 1, 2)))

    print("implementing the subsystem operators:")
    slots = [
        build_slot(
            "mult",
            lambda: booth_multiplier(library, WIDTH),
            library, GridPartition(2, 2), required_bits=WIDTH, settings=settings,
        ),
        build_slot(
            "adder",
            lambda: adequate_adder(library, WIDTH),
            library, GridPartition(1, 2), required_bits=4, settings=settings,
        ),
        build_slot(
            "l1norm",
            lambda: l1_norm(library, elements=4, width=WIDTH),
            library, GridPartition(2, 2), required_bits=6, settings=settings,
        ),
    ]

    composer = SocComposer(slots)
    shared, islands, saving = composer.compare()
    print("\nsystem comparison:")
    print(" ", shared.describe())
    for name, point in shared.operator_points.items():
        bb = "".join("F" if f else "-" for f in point.bb_config)
        print(f"    {name}: {point.active_bits} bits, BB[{bb}]")
    print(" ", islands.describe())
    for name, point in islands.operator_points.items():
        print(f"    {name}: {point.active_bits} bits @ {point.vdd:.1f} V")
    print(f"\nshared-supply saving: {saving * 100:+.1f}%")

    # Sensitivity: pricier level shifters make islands look worse.
    print("\nsensitivity to the level-shifter model:")
    for scale in (0.5, 1.0, 2.0, 4.0):
        model = LevelShifterModel(
            energy_cap_ff=3.0 * scale, leakage_nw=25.0 * scale
        )
        _shared, priced, s = SocComposer(slots, shifters=model).compare()
        print(
            f"  shifter cost x{scale:<4g}: islands "
            f"{priced.total_power_w * 1e3:7.3f} mW "
            f"(shifters {priced.shifter_power_w * 1e3:6.3f} mW), "
            f"saving {s * 100:+5.1f}%"
        )


if __name__ == "__main__":
    main()
