#!/usr/bin/env python3
"""Runtime accuracy adaptation: the IoT scenario from the paper's intro.

The paper motivates adequate operators with "mobile and IoT applications
[that] must balance increasing processing demands with limited power
budgets" and "time-varying tolerance to errors".  This example closes the
loop: it builds the mode table for a Booth multiplier, then drives it from
an :class:`AccuracyController` through a bursty sensing workload --
long low-precision monitoring phases punctuated by short high-precision
bursts -- accounting the energy of every back-bias mode switch (charge
pump slewing the domain wells, as sketched in the paper's Section III).

Run time: a few seconds.
"""

import numpy as np

from repro import (
    ExhaustiveExplorer,
    ExplorationSettings,
    GridPartition,
    Library,
    implement_with_domains,
)
from repro.core.flow import select_clock_for
from repro.core.runtime import (
    AccuracyController,
    BiasGeneratorModel,
    WorkloadPhase,
)
from repro.operators import booth_multiplier

WIDTH = 12


def sensing_workload(rng, phases=40):
    """Mostly coarse monitoring; occasional high-precision analysis bursts."""
    workload = []
    for _ in range(phases):
        roll = rng.uniform()
        if roll < 0.70:
            workload.append(WorkloadPhase(required_bits=2, cycles=80_000))
        elif roll < 0.92:
            workload.append(WorkloadPhase(required_bits=8, cycles=15_000))
        else:
            workload.append(WorkloadPhase(required_bits=WIDTH, cycles=5_000))
    return workload


def main():
    library = Library()

    def factory():
        return booth_multiplier(library, WIDTH)

    constraint = select_clock_for(factory, library)
    design = implement_with_domains(
        factory, library, GridPartition(2, 2), constraint=constraint
    )
    print(design.describe())

    settings = ExplorationSettings(bitwidths=tuple(range(2, WIDTH + 1, 2)))
    exploration = ExhaustiveExplorer(design).run(settings)
    controller = AccuracyController(design, exploration)

    print("\nmode table (cheapest mode per requirement):")
    for bits in settings.bitwidths:
        mode = controller.mode_for(bits)
        bb = "".join("F" if f else "-" for f in mode.bb_config)
        print(
            f"  need {bits:2d} bits -> use {mode.active_bits:2d}-bit mode, "
            f"{mode.total_power_w * 1e3:.3f} mW @ {mode.vdd:.1f} V, BB[{bb}]"
        )

    rng = np.random.default_rng(7)
    workload = sensing_workload(rng)
    report = controller.replay(workload)
    print("\nbursty sensing workload:")
    print(" ", report.summary())

    # How sensitive is the saving to mode-switch cost?  Sweep the charge
    # pump model an order of magnitude either way.
    print("\nsensitivity to bias-generator cost:")
    for scale in (0.1, 1.0, 10.0, 100.0):
        generator = BiasGeneratorModel(
            transition_time_ns=100.0 * scale,
            well_cap_ff_per_um2=0.08 * scale,
        )
        sweep_controller = AccuracyController(design, exploration, generator)
        sweep_report = sweep_controller.replay(workload)
        print(
            f"  pump cost x{scale:<5g}: saving "
            f"{sweep_report.adaptive_saving * 100:5.1f}%, transition "
            f"overhead {sweep_report.transition_overhead * 100:6.3f}%"
        )


if __name__ == "__main__":
    main()
