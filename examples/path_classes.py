#!/usr/bin/env python3
"""Fig. 2 in action: how LSB gating reclassifies timing paths.

The paper's Fig. 2 splits an operator's endpoints, under a reduced input
bitwidth, into (1) disabled paths (constant logic), (2) positive-slack
paths and (3) negative-slack paths.  The proposed method must only boost
region(s) containing set (3).

This example sweeps the accuracy knob of a 16x16 Booth multiplier at a
scaled supply and prints the evolution of the three sets, plus the slack
histogram at two representative modes.

Run time: a few seconds.
"""

import numpy as np

from repro import Library, implement_base
from repro.core.flow import select_clock_for
from repro.operators import booth_multiplier
from repro.sta.caseanalysis import dvas_case
from repro.sta.engine import StaEngine
from repro.sta.histogram import slack_histogram

WIDTH = 16
VDD = 0.8  # a scaled supply where the full-width operator violates timing


def main():
    library = Library()

    def factory():
        return booth_multiplier(library, WIDTH)

    constraint = select_clock_for(factory, library)
    design = implement_base(factory, library, constraint=constraint)
    print(design.describe())
    print(
        f"\npath classification at VDD = {VDD} V, clock "
        f"{design.fclk_ghz:.2f} GHz (sets (1)/(2)/(3) of the paper's Fig. 2):"
    )

    engine = StaEngine(design.timing_graph(), library)
    fbb = np.ones(len(design.netlist.cells), bool)
    print(
        f"{'bits':>5s} {'disabled':>9s} {'positive':>9s} {'negative':>9s} "
        f"{'compliant?':>11s}"
    )
    reports = {}
    for bits in range(WIDTH, 0, -1):
        case = dvas_case(design.netlist, bits)
        report = engine.analyze(design.constraint, VDD, fbb, case=case)
        reports[bits] = report
        counts = report.path_class_counts()
        print(
            f"{bits:5d} {counts['disabled']:9d} {counts['positive_slack']:9d} "
            f"{counts['negative_slack']:9d} "
            f"{'yes' if counts['negative_slack'] == 0 else 'no':>11s}"
        )

    compliant = [
        bits for bits, report in reports.items() if report.feasible
    ]
    if compliant:
        best = max(compliant)
        print(
            f"\nmaximum usable dynamic at {VDD} V: {best} bits -- "
            "this is DVAS's accuracy/voltage trade in one number."
        )
    else:
        print(f"\nno bitwidth is timing-compliant at {VDD} V on this die.")

    for bits in (WIDTH, max(compliant) if compliant else 1):
        print(f"\nendpoint slack histogram at {bits} active bits:")
        span = design.constraint.period_ps / 2
        print(
            slack_histogram(
                reports[bits], num_bins=12, bin_range_ps=(-span, span)
            ).format_text(width=40)
        )


if __name__ == "__main__":
    main()
