"""The injected silicon environment: schedule -> electrical state over time.

:class:`SiliconEnvironment` evaluates a :class:`~repro.faults.events.FaultSchedule`
at any virtual-time instant and answers the questions the serve-side
margin guard asks:

* how much *slack erosion* (ps) does the current temperature / droop /
  aging state cost a mode running at a given VDD and clock period,
* which bias generators are currently dropped out,
* is the bias output stuck at NoBB (FBB modes unreachable),
* would a bias transition started now time out.

The erosion model is deliberately first-order -- the same altitude as the
rest of the electrical stack: fractional delay slowdowns per effect,
scaled by the clock period so they compare directly against the compiled
per-mode slack margins.

* temperature: delay rises ~0.12 %/degC (mobility degradation dominates
  FDSOI at the explored supplies); drift windows ramp triangularly --
  zero at the window edges, full magnitude at the midpoint -- modelling
  a package heating and cooling excursion;
* VDD droop: alpha-power sensitivity, slowdown ~ ``alpha * dV / VDD``
  as a square transient for the window's duration;
* aging: a Vth shift accumulating linearly over the event window and
  *persisting* afterwards (BTI-style), slowdown ~ ``k * dVth / VDD``.

Everything is pure arithmetic on the frozen schedule: evaluating the
environment twice at the same instant gives the same answer, which is
what makes chaos runs replayable.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from repro.faults.events import (
    KIND_GEN_DROPOUT,
    KIND_STUCK_NOBB,
    KIND_TEMP_DRIFT,
    KIND_TRANSITION_TIMEOUT,
    KIND_VDD_DROOP,
    KIND_AGING_VTH,
    FaultSchedule,
)

#: Fractional delay increase per degree C of temperature rise.
TEMP_SLOWDOWN_PER_C = 1.2e-3
#: Alpha-power droop sensitivity: slowdown ~ DROOP_ALPHA * dV / VDD.
DROOP_ALPHA = 2.0
#: Aging sensitivity: slowdown ~ AGING_ALPHA * dVth / VDD.
AGING_ALPHA = 1.5


class SiliconEnvironment:
    """Deterministic electrical state induced by a fault schedule."""

    def __init__(self, schedule: Optional[FaultSchedule] = None):
        self.schedule = schedule if schedule is not None else FaultSchedule([])

    # -- scalar state --------------------------------------------------------

    def temperature_delta_c(self, now_ns: float) -> float:
        """Sum of active drift excursions (triangular ramp per window)."""
        delta = 0.0
        for event in self.schedule.active(now_ns, KIND_TEMP_DRIFT):
            progress = (now_ns - event.start_ns) / event.duration_ns
            delta += event.magnitude * (1.0 - abs(2.0 * progress - 1.0))
        return delta

    def vdd_droop_v(self, now_ns: float) -> float:
        """Sum of active droop transients (square pulse per window)."""
        return sum(
            e.magnitude for e in self.schedule.active(now_ns, KIND_VDD_DROOP)
        )

    def aging_vth_shift_v(self, now_ns: float) -> float:
        """Accumulated (and permanent) Vth shift up to *now_ns*."""
        shift = 0.0
        for event in self.schedule.of_kind(KIND_AGING_VTH):
            if now_ns < event.start_ns:
                continue
            progress = min(
                1.0, (now_ns - event.start_ns) / event.duration_ns
            )
            shift += event.magnitude * progress
        return shift

    # -- margin erosion ------------------------------------------------------

    def slowdown_fraction(self, now_ns: float, vdd: float) -> float:
        """Fractional path-delay increase the environment imposes now."""
        if vdd <= 0.0:
            raise ValueError("vdd must be positive")
        return (
            TEMP_SLOWDOWN_PER_C * self.temperature_delta_c(now_ns)
            + DROOP_ALPHA * self.vdd_droop_v(now_ns) / vdd
            + AGING_ALPHA * self.aging_vth_shift_v(now_ns) / vdd
        )

    def slack_erosion_ps(
        self, now_ns: float, vdd: float, period_ps: float
    ) -> float:
        """Slack (ps of the given clock) the environment is eating now.

        A critical path sized to roughly one clock period slows by the
        environment's fractional slowdown, so the erosion is that
        fraction of the period.
        """
        if period_ps <= 0.0:
            raise ValueError("period must be positive")
        return period_ps * self.slowdown_fraction(now_ns, vdd)

    # -- bias hardware availability ------------------------------------------

    def dropped_generators(self, now_ns: float) -> FrozenSet[int]:
        """Indices of bias generators currently dropped out."""
        return frozenset(
            max(0, e.target)
            for e in self.schedule.active(now_ns, KIND_GEN_DROPOUT)
        )

    def stuck_at_nobb(self, now_ns: float) -> bool:
        """Whether the bias output is stuck at 0 V (FBB unreachable)."""
        return bool(self.schedule.active(now_ns, KIND_STUCK_NOBB))

    def transition_blocked(self, now_ns: float) -> bool:
        """Whether a bias transition started now would time out."""
        return bool(self.schedule.active(now_ns, KIND_TRANSITION_TIMEOUT))

    def describe(self, now_ns: float) -> str:
        dropped = sorted(self.dropped_generators(now_ns))
        return (
            f"t={now_ns:.0f} ns: dT {self.temperature_delta_c(now_ns):.1f} C, "
            f"droop {self.vdd_droop_v(now_ns) * 1e3:.0f} mV, "
            f"aging dVth {self.aging_vth_shift_v(now_ns) * 1e3:.1f} mV, "
            f"dropped generators {dropped or 'none'}"
            + (", stuck-at-NoBB" if self.stuck_at_nobb(now_ns) else "")
            + (
                ", transitions blocked"
                if self.transition_blocked(now_ns)
                else ""
            )
        )
