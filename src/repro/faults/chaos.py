"""The chaos harness: replay a seeded fault schedule against the stack.

Two soaks, one report:

* :func:`run_serve_chaos` drives a deterministic request mix from
  several concurrent operator instances through a margin-guarded
  :class:`~repro.serve.scheduler.ModeScheduler` while the schedule's
  silicon events erode margins, drop bias generators and block
  transitions.  Afterwards it *audits* every served phase against the
  same (pure, replayable) environment: served bits must cover the
  request, and any mode the guard passed through un-overridden must
  actually have been safe at its decision instant.
* :func:`run_exploration_chaos` runs a sharded sweep with worker
  crashes armed (and the shard cache corrupted between runs) and holds
  the recovered results bit-identical to a clean serial reference.

Both halves consume the same :class:`~repro.faults.events.FaultSchedule`,
so one seed reproduces one full chaos run -- the CLI (``repro chaos``)
archives the schedule next to the report for exactly that reason.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.faults.environment import SiliconEnvironment
from repro.faults.events import (
    KIND_CACHE_CORRUPT,
    KIND_TEMP_DRIFT,
    KIND_WORKER_CRASH,
    FaultEvent,
    FaultSchedule,
)
from repro.faults.injector import (
    InjectionLog,
    WorkerFaultPlan,
    corrupt_cache_entries,
)


# -- serve-side soak ---------------------------------------------------------


@dataclass
class ServeChaosReport:
    """What the serving stack did under silicon chaos."""

    requests: int = 0
    accuracy_violations: int = 0
    #: Phases the audit found running an unsafe mode without the guard
    #: having flagged a fallback (must stay 0 for the soak to pass).
    margin_violations: int = 0
    margin_fallbacks: int = 0
    degraded: int = 0
    transition_retries: int = 0
    transition_failures: int = 0
    generator_dropouts: int = 0
    rebalanced_grants: int = 0
    #: Total energy the soak served (compute + transitions), plus the
    #: canary probes' own cost when recalibration was on (J).
    energy_j: float = 0.0
    probe_energy_j: float = 0.0
    #: Recalibration-loop activity (all zero without --recalibrate).
    recal_probes: int = 0
    recal_epochs: int = 0
    recal_demotions: int = 0
    recal_readvances: int = 0
    recal_failures: int = 0
    stayed_up: bool = False
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return (
            self.stayed_up
            and self.accuracy_violations == 0
            and self.margin_violations == 0
        )

    def to_dict(self) -> Dict:
        return {**dataclasses.asdict(self), "ok": self.ok}

    def describe(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        return (
            f"serve chaos [{verdict}]: {self.requests} requests, "
            f"{self.margin_fallbacks} margin fallbacks, "
            f"{self.degraded} degraded, "
            f"{self.transition_retries} transition retries "
            f"({self.transition_failures} exhausted), "
            f"{self.generator_dropouts} generator dropouts "
            f"({self.rebalanced_grants} slews rebalanced), "
            f"{self.accuracy_violations} accuracy violations, "
            f"{self.margin_violations} margin violations"
            + (
                f", {self.recal_epochs} recal epochs "
                f"({self.recal_demotions} demotions / "
                f"{self.recal_readvances} re-advances, "
                f"{self.recal_failures} probe failures)"
                if self.recal_epochs or self.recal_failures
                else ""
            )
        )


def chaos_requests(table, num_operators: int, count: int, seed: int):
    """Deterministic request mix over *num_operators* instances."""
    rng = np.random.default_rng(seed)
    bitwidths = table.bitwidths
    for index in range(count):
        yield (
            f"op{index % num_operators}",
            int(rng.choice(bitwidths)),
            int(rng.integers(1_000, 20_000)),
        )


def run_serve_chaos(
    table,
    schedule: FaultSchedule,
    num_operators: int = 3,
    requests: int = 96,
    seed: int = 7,
    policy: str = "greedy",
    num_generators: int = 2,
    headroom_ps: float = 0.0,
    recalibrate: bool = False,
    recal_interval_ns: Optional[float] = None,
    recal_bias_ps: float = 2.0,
    readvance_probes: int = 3,
    retreat_only: bool = False,
) -> ServeChaosReport:
    """Soak a margin-guarded scheduler against *schedule*, then audit it.

    ``recalibrate=True`` attaches a canary-probe recalibration loop
    (:mod:`repro.serve.recal`) so the guard re-advances as margins
    recover; ``retreat_only=True`` runs the pessimistic baseline whose
    guard latches every mode it ever saw unsafe.  Both variants are
    audited by a **fresh oracle guard** over the same pure environment
    -- not the serving guard, whose learner/latch state at audit time
    differs from what it was at each decision instant.  Because a
    learned margin can only restrict relative to the compile-time
    check, zero ``margin_violations`` under recalibration *is* the
    per-phase re-advance correctness audit.
    """
    from repro.serve.guard import MarginGuard
    from repro.serve.recal import RecalibrationLoop
    from repro.serve.scheduler import ModeScheduler, ServeRequest

    if num_operators < 1:
        raise ValueError("need at least one operator")
    if recalibrate and retreat_only:
        raise ValueError(
            "recalibrate and retreat_only are mutually exclusive"
        )
    environment = SiliconEnvironment(schedule)
    guard = MarginGuard(
        table,
        environment,
        headroom_ps=headroom_ps,
        retreat_only=retreat_only,
    )
    recal = None
    if recalibrate:
        if recal_interval_ns is None:
            recal_interval_ns = max(schedule.horizon_ns, 1.0) / 32.0
        recal = RecalibrationLoop(
            guard,
            recal_interval_ns,
            bias_ps=recal_bias_ps,
            readvance_probes=readvance_probes,
            seed=seed,
        )
    scheduler = ModeScheduler(
        table,
        num_generators=num_generators,
        policy=policy,
        guard=guard,
        recal=recal,
    )
    report = ServeChaosReport()
    served_log = []
    energy_j = 0.0
    try:
        for operator, bits, cycles in chaos_requests(
            table, num_operators, requests, seed
        ):
            served = scheduler.submit(ServeRequest(operator, bits, cycles))
            served_log.append(served)
            energy_j += served.compute_energy_j + served.transition_energy_j
            report.requests += 1
    except Exception as error:  # the soak's "stays up" criterion
        report.error = f"{type(error).__name__}: {error}"
        report.stayed_up = False
    else:
        report.stayed_up = True

    # Audit against the same (pure, replayable) environment with a
    # *fresh* stateless guard: the oracle for "was this mode actually
    # safe at that instant", independent of any learner or latch state
    # the serving guard has accumulated since.
    oracle = MarginGuard(
        table, SiliconEnvironment(schedule), headroom_ps=headroom_ps
    )
    for served in served_log:
        if served.served_bits < served.required_bits:
            report.accuracy_violations += 1
        if served.degraded or served.margin_fallback:
            # Fallback modes are best-effort by definition (the static
            # rail is sign-off margined; a guard substitution is safe
            # whenever any covering mode was); the invariant audited
            # here is about un-overridden policy picks.
            continue
        if not oracle.mode_is_safe(served.served_bits, served.decided_at_ns):
            report.margin_violations += 1

    counters = scheduler.telemetry.counters
    report.margin_fallbacks = counters["margin_fallbacks"]
    report.degraded = counters["degraded"]
    report.transition_retries = counters["transition_retries"]
    report.transition_failures = counters["transition_failures"]
    report.accuracy_violations += counters["accuracy_violations"]
    report.generator_dropouts = scheduler.pool.dropouts
    report.rebalanced_grants = scheduler.pool.rebalanced_grants
    if recal is not None:
        report.probe_energy_j = recal.probe_energy_j
        report.recal_probes = recal.probes_run
        report.recal_epochs = recal.learner.epoch
        report.recal_demotions = recal.learner.demotions
        report.recal_readvances = recal.learner.readvances
        report.recal_failures = recal.failures
    # The recalibrating run pays for its own probes; the comparison
    # against the retreat-only baseline is only honest if it does.
    report.energy_j = energy_j + report.probe_energy_j
    return report


# -- recalibration comparator -------------------------------------------------


def recovery_schedule(
    horizon_ns: float = 3e5,
    magnitude: float = 60.0,
    relapse: bool = False,
    seed: int = 0,
) -> FaultSchedule:
    """A recover-after-excursion schedule (optionally recover-then-relapse).

    One early temperature excursion erodes margins past the guard's
    threshold, then the die cools: a retreat-only guard stays latched in
    expensive modes for the whole clean tail, which is exactly the
    energy a recalibrating guard reclaims.  ``relapse=True`` adds a
    second late excursion so the soak also proves re-advance does not
    overshoot into the relapse.
    """
    events = [
        FaultEvent(
            KIND_TEMP_DRIFT,
            0.05 * horizon_ns,
            0.25 * horizon_ns,
            magnitude=magnitude,
        )
    ]
    if relapse:
        events.append(
            FaultEvent(
                KIND_TEMP_DRIFT,
                0.70 * horizon_ns,
                0.20 * horizon_ns,
                magnitude=magnitude,
            )
        )
    return FaultSchedule(events, seed=seed, horizon_ns=horizon_ns)


@dataclass
class RecalChaosReport:
    """Retreat-only vs recalibrating guard on one schedule + request mix."""

    retreat_only: ServeChaosReport
    recalibrating: ServeChaosReport
    energy_reclaimed_j: float = 0.0
    #: Fraction of the retreat-only run's energy the recalibrating run
    #: saved, probes included.  Negative means probing cost more than
    #: re-advancing recovered (e.g. a schedule that never recovers).
    energy_reclaimed_fraction: float = 0.0

    @property
    def ok(self) -> bool:
        return (
            self.retreat_only.ok
            and self.recalibrating.ok
            and self.recalibrating.recal_epochs > 0
        )

    def to_dict(self) -> Dict:
        return {
            "ok": self.ok,
            "retreat_only": self.retreat_only.to_dict(),
            "recalibrating": self.recalibrating.to_dict(),
            "energy_reclaimed_j": self.energy_reclaimed_j,
            "energy_reclaimed_fraction": self.energy_reclaimed_fraction,
        }

    def describe(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        return (
            f"recal chaos [{verdict}]: retreat-only "
            f"{self.retreat_only.energy_j:.3e} J vs recalibrating "
            f"{self.recalibrating.energy_j:.3e} J "
            f"(probes {self.recalibrating.probe_energy_j:.3e} J) -> "
            f"{100.0 * self.energy_reclaimed_fraction:.1f}% reclaimed, "
            f"{self.recalibrating.recal_readvances} re-advances, "
            f"0 violations required on both runs"
        )


def run_recal_chaos(
    table,
    schedule: FaultSchedule,
    num_operators: int = 3,
    requests: int = 96,
    seed: int = 7,
    policy: str = "greedy",
    num_generators: int = 2,
    headroom_ps: float = 0.0,
    recal_interval_ns: Optional[float] = None,
    recal_bias_ps: float = 2.0,
    readvance_probes: int = 3,
) -> RecalChaosReport:
    """Race the retreat-only guard against the recalibrating one.

    Identical schedule, seed and request mix; the only difference is the
    guard's margin source.  The reclaimed-energy fraction charges the
    recalibrating run for its own canary probes.
    """
    common = dict(
        num_operators=num_operators,
        requests=requests,
        seed=seed,
        policy=policy,
        num_generators=num_generators,
        headroom_ps=headroom_ps,
    )
    baseline = run_serve_chaos(
        table, schedule, retreat_only=True, **common
    )
    recal = run_serve_chaos(
        table,
        schedule,
        recalibrate=True,
        recal_interval_ns=recal_interval_ns,
        recal_bias_ps=recal_bias_ps,
        readvance_probes=readvance_probes,
        **common,
    )
    reclaimed = baseline.energy_j - recal.energy_j
    fraction = reclaimed / baseline.energy_j if baseline.energy_j else 0.0
    return RecalChaosReport(
        retreat_only=baseline,
        recalibrating=recal,
        energy_reclaimed_j=reclaimed,
        energy_reclaimed_fraction=fraction,
    )


# -- fleet-side soak ---------------------------------------------------------


@dataclass
class FleetChaosReport:
    """What the fleet tier did under silicon chaos + a worker kill.

    The schedule is injected on worker 0 only; the soak then checks the
    *fleet-wide* reactions: every peer that kept serving entered retreat
    within the router's propagation bound, a killed worker's operators
    failed over without a dropped request, and the shared-memory segment
    was gone after shutdown.
    """

    workers: int = 0
    requests: int = 0
    accuracy_violations: int = 0
    margin_fallbacks: int = 0
    fleet_alerts: int = 0
    fleet_retreats: int = 0
    degraded: int = 0
    failovers: int = 0
    workers_killed: int = 0
    #: Per-peer request budget: a worker has at most max_inflight x
    #: batch_window requests already in its pipe when an alert posts,
    #: and it polls the bus before every decision after that.
    propagation_bound: int = 0
    #: Worst measured count of requests any peer decided between the
    #: first alerting phase and its own first retreat; -1 = no alert.
    worst_propagation: int = -1
    peers_retreated: bool = False
    unanswered_requests: int = 0
    segment_leaked: bool = False
    #: Recalibration propagation (only audited when recal is enabled).
    recal_enabled: bool = False
    bus_recal_epoch: int = 0
    fleet_margin_syncs: int = 0
    #: Worst count of requests any peer decided between the final margin
    #: epoch first appearing fleet-wide and that peer reporting it.
    worst_recal_lag: int = -1
    recal_converged: bool = True
    stayed_up: bool = False
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return (
            self.stayed_up
            and self.accuracy_violations == 0
            and self.unanswered_requests == 0
            and self.peers_retreated
            and 0 <= self.worst_propagation <= self.propagation_bound
            and not self.segment_leaked
            and (
                not self.recal_enabled
                or (self.recal_converged and self.bus_recal_epoch > 0)
            )
        )

    def to_dict(self) -> Dict:
        return {**dataclasses.asdict(self), "ok": self.ok}

    def describe(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        return (
            f"fleet chaos [{verdict}]: {self.requests} requests over "
            f"{self.workers} workers ({self.workers_killed} killed, "
            f"{self.failovers} failovers), "
            f"{self.margin_fallbacks} margin fallbacks -> "
            f"{self.fleet_alerts} alerts / {self.fleet_retreats} retreats, "
            f"propagation {self.worst_propagation} <= "
            f"{self.propagation_bound} requests, "
            f"{self.accuracy_violations} accuracy violations, "
            f"segment leaked: {self.segment_leaked}"
            + (
                f", recal epoch {self.bus_recal_epoch} "
                f"({self.fleet_margin_syncs} peer syncs, worst lag "
                f"{self.worst_recal_lag} <= {self.propagation_bound}, "
                f"converged: {self.recal_converged})"
                if self.recal_enabled
                else ""
            )
        )


def run_fleet_chaos(
    table,
    schedule: FaultSchedule,
    workers: int = 2,
    num_operators: int = 8,
    requests: int = 1024,
    seed: int = 7,
    policy: str = "greedy",
    batch_window: int = 16,
    retreat_budget: int = 32,
    chunk: int = 256,
    recal_interval_ns: float = 0.0,
) -> FleetChaosReport:
    """Soak a fleet against *schedule* injected on worker 0, then audit.

    Worker-crash events in the schedule kill one fleet worker process
    mid-soak (never worker 0, which carries the silicon injection), so
    one run exercises degradation propagation *and* failover.
    """
    from repro.fleet import FleetRouter
    from repro.serve.table import ModeTable

    if workers < 2:
        raise ValueError("a fleet soak needs at least two workers")
    if not table.has_margins:
        raise ValueError(
            "fleet chaos needs a margined table (the degradation signal "
            "is the margin guard's fallback); compile with --margins"
        )
    report = FleetChaosReport(
        workers=workers, recal_enabled=recal_interval_ns > 0.0
    )
    router = FleetRouter(
        table,
        workers=workers,
        policy=policy,
        batch_window=batch_window,
        retreat_budget=retreat_budget,
        guard=True,
        schedules={0: schedule.to_dict()},
        max_queue_depth=requests + 1,
        recal_interval_ns=recal_interval_ns,
        recal_seed=seed,
    )
    report.propagation_bound = router.max_inflight * router.batch_window

    kill_at = -1
    crash_events = schedule.of_kind(KIND_WORKER_CRASH)
    if crash_events and workers > 2:
        # Scale the first crash window's start into the request stream.
        fraction = crash_events[0].start_ns / max(schedule.horizon_ns, 1.0)
        kill_at = max(1, int(fraction * requests))

    trace = list(chaos_requests(table, num_operators, requests, seed))
    phases = []
    try:
        router.start()
        segment = router.segment_name
        victim = None
        if kill_at >= 0:
            candidates = [w for w in router.alive_workers if w != 0]
            victim = candidates[
                max(0, crash_events[0].target) % len(candidates)
            ]
        for offset in range(0, len(trace), chunk):
            if victim is not None and offset + chunk > kill_at:
                handle = router._workers.get(victim)
                if handle is not None:
                    handle.process.kill()
                    handle.process.join()
                    report.workers_killed += 1
                victim = None
            phases.extend(router.submit_many(trace[offset : offset + chunk]))
        stats = router.stats()
    except Exception as error:  # the soak's "stays up" criterion
        report.error = f"{type(error).__name__}: {error}"
        try:
            router.stop()
        except Exception:  # pragma: no cover - double fault
            pass
        return report
    report.stayed_up = True
    router.stop()

    # Segment must be unlinked once the fleet is down.
    try:
        ModeTable.from_shared(segment).close()
        report.segment_leaked = True  # pragma: no cover - leak
    except ValueError:
        report.segment_leaked = False

    report.requests = len([p for p in phases if p is not None])
    report.unanswered_requests = len(phases) - report.requests
    counters = stats["counters"]
    report.margin_fallbacks = counters.get("margin_fallbacks", 0)
    report.fleet_alerts = counters.get("fleet_alerts", 0)
    report.fleet_retreats = counters.get("fleet_retreats", 0)
    report.degraded = counters.get("degraded", 0)
    report.accuracy_violations = counters.get("accuracy_violations", 0)
    report.failovers = stats["failovers"]

    for phase in phases:
        if phase is not None and phase.served_bits < phase.required_bits:
            report.accuracy_violations += 1

    # Propagation audit: after the first alerting phase, every *other*
    # worker that serves again must retreat within its in-flight budget
    # -- counted in requests *that peer* decided, because an idle peer
    # cannot observe the bus (it polls per decision, and that is the
    # point: retreat costs nothing on a worker serving nothing).
    alert_index = next(
        (
            index
            for index, phase in enumerate(phases)
            if phase is not None and phase.margin_fallback
        ),
        None,
    )
    if alert_index is not None:
        origin = phases[alert_index].worker_id
        gaps = []
        peers_ok = True
        peers = {
            phase.worker_id
            for phase in phases[alert_index + 1 :]
            if phase is not None and phase.worker_id != origin
        }
        for peer in peers:
            unaware = 0
            retreated = False
            for index, phase in enumerate(phases):
                if phase is None or phase.worker_id != peer:
                    continue
                if phase.fleet_retreat:
                    retreated = True
                    break
                if index > alert_index:
                    unaware += 1
            if not retreated:
                peers_ok = False
                continue
            gaps.append(unaware)
        report.peers_retreated = peers_ok and bool(peers)
        if gaps:
            report.worst_propagation = max(gaps)

    # Recal-epoch convergence audit: the final committed margin epoch
    # must reach every peer that keeps deciding within the same bounded
    # window degradation honors (a peer that stops deciding cannot poll
    # the bus -- by design retreat/re-advance costs nothing on a worker
    # serving nothing, so such peers are exempt, not failures).
    if report.recal_enabled:
        report.bus_recal_epoch = stats.get("bus_recal_epoch", 0)
        report.fleet_margin_syncs = counters.get("fleet_margin_syncs", 0)
        final_epoch = max(
            (p.recal_epoch for p in phases if p is not None), default=0
        )
        if final_epoch <= 0:
            report.recal_converged = False
        else:
            first_index = next(
                index
                for index, phase in enumerate(phases)
                if phase is not None and phase.recal_epoch == final_epoch
            )
            lags = []
            converged = True
            tail = [p for p in phases[first_index + 1 :] if p is not None]
            for peer in {p.worker_id for p in tail}:
                lag = 0
                reached = False
                for phase in tail:
                    if phase.worker_id != peer:
                        continue
                    if phase.recal_epoch >= final_epoch:
                        reached = True
                        break
                    lag += 1
                if reached:
                    lags.append(lag)
                elif lag >= report.propagation_bound:
                    converged = False
            report.recal_converged = converged
            if lags:
                report.worst_recal_lag = max(lags)
    return report


# -- exploration-side soak ---------------------------------------------------


@dataclass
class ExplorationChaosReport:
    """What the sharded engine survived, and whether results held."""

    shards: int = 0
    worker_crashes: int = 0
    pool_respawns: int = 0
    shard_retries: int = 0
    shard_timeouts: int = 0
    cache_entries_corrupted: int = 0
    cache_invalidations: int = 0
    faults_fired: List[str] = field(default_factory=list)
    bit_identical: bool = False
    recovered_after_corruption: bool = False
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return (
            self.error is None
            and self.bit_identical
            and (
                self.cache_entries_corrupted == 0
                or self.recovered_after_corruption
            )
        )

    def to_dict(self) -> Dict:
        return {**dataclasses.asdict(self), "ok": self.ok}

    def describe(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        return (
            f"exploration chaos [{verdict}]: {self.shards} shards, "
            f"{self.worker_crashes} crashes / {self.pool_respawns} pool "
            f"respawns / {self.shard_retries} retries, "
            f"{self.cache_entries_corrupted} cache entries corrupted "
            f"({self.cache_invalidations} invalidated on reload), "
            f"bit-identical: {self.bit_identical}"
        )


def _results_identical(reference, result) -> bool:
    """Bit-identical on everything downstream consumers read."""
    return (
        result.best_per_bitwidth == reference.best_per_bitwidth
        and result.best_per_knob_point == reference.best_per_knob_point
        and result.feasible_counts == reference.feasible_counts
        and result.points_evaluated == reference.points_evaluated
        and result.points_feasible == reference.points_feasible
    )


def run_exploration_chaos(
    design,
    settings,
    schedule: FaultSchedule,
    workdir: os.PathLike,
    workers: int = 2,
) -> ExplorationChaosReport:
    """Crash workers mid-sweep, corrupt the cache, demand identical bits."""
    from repro.parallel.engine import ParallelExplorer
    from repro.parallel.shards import plan_shards

    report = ExplorationChaosReport()
    workdir = os.fspath(workdir)
    cache_dir = os.path.join(workdir, "chaos-cache")
    marker_dir = os.path.join(workdir, "chaos-faults")
    log = InjectionLog()

    shards = plan_shards(settings, None)
    report.shards = len(shards)
    crash_shards = tuple(
        sorted(
            {
                max(0, event.target) % len(shards)
                for event in schedule.of_kind(KIND_WORKER_CRASH)
            }
        )
    )
    log.worker_crashes_armed = len(crash_shards)
    plan = WorkerFaultPlan(marker_dir=marker_dir, crash_shards=crash_shards)

    serial_settings = dataclasses.replace(
        settings, workers=1, cache=False, cache_dir=None
    )
    chaos_settings = dataclasses.replace(
        settings, workers=max(2, workers), cache=True, cache_dir=cache_dir
    )

    try:
        reference = ParallelExplorer(design).run(serial_settings)
        chaotic = ParallelExplorer(
            design,
            fault_plan=plan,
            max_shard_retries=max(2, len(crash_shards)),
        ).run(chaos_settings)
    except Exception as error:
        report.error = f"{type(error).__name__}: {error}"
        return report

    report.bit_identical = _results_identical(reference, chaotic)
    report.faults_fired = plan.fired()
    stats = chaotic.fault_stats
    if stats is not None:
        report.worker_crashes = stats.worker_crashes
        report.pool_respawns = stats.pool_respawns
        report.shard_retries = stats.shard_retries
        report.shard_timeouts = stats.shard_timeouts

    # Corrupt the now-warm cache and demand detect-discard-recompute.
    wanted = len(schedule.of_kind(KIND_CACHE_CORRUPT))
    if wanted:
        damaged = corrupt_cache_entries(cache_dir, count=wanted)
        log.cache_entries_corrupted = damaged
        report.cache_entries_corrupted = damaged
        try:
            rerun = ParallelExplorer(design).run(chaos_settings)
        except Exception as error:
            report.error = f"{type(error).__name__}: {error}"
            return report
        report.recovered_after_corruption = _results_identical(
            reference, rerun
        )
        if rerun.cache_stats is not None:
            report.cache_invalidations = rerun.cache_stats.invalidations
    return report


# -- the full run ------------------------------------------------------------


@dataclass
class ChaosReport:
    """One seeded chaos run, end to end."""

    schedule: FaultSchedule
    serve: ServeChaosReport
    exploration: Optional[ExplorationChaosReport] = None
    fleet: Optional[FleetChaosReport] = None
    recal: Optional[RecalChaosReport] = None

    @property
    def ok(self) -> bool:
        return (
            self.serve.ok
            and (self.exploration is None or self.exploration.ok)
            and (self.fleet is None or self.fleet.ok)
            and (self.recal is None or self.recal.ok)
        )

    def to_dict(self) -> Dict:
        return {
            "ok": self.ok,
            "schedule": self.schedule.to_dict(),
            "serve": self.serve.to_dict(),
            "exploration": (
                self.exploration.to_dict()
                if self.exploration is not None
                else None
            ),
            "fleet": (
                self.fleet.to_dict() if self.fleet is not None else None
            ),
            "recal": (
                self.recal.to_dict() if self.recal is not None else None
            ),
        }

    def describe(self) -> str:
        lines = [self.schedule.describe(), self.serve.describe()]
        if self.exploration is not None:
            lines.append(self.exploration.describe())
        if self.fleet is not None:
            lines.append(self.fleet.describe())
        if self.recal is not None:
            lines.append(self.recal.describe())
        lines.append(f"chaos run: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def run_chaos(
    table,
    schedule: FaultSchedule,
    design=None,
    settings=None,
    workdir: Optional[os.PathLike] = None,
    num_operators: int = 3,
    requests: int = 96,
    seed: int = 7,
    fleet_workers: int = 0,
    fleet_requests: int = 1024,
    recalibrate: bool = False,
    recal_interval_ns: Optional[float] = None,
) -> ChaosReport:
    """Replay *schedule* against serving and (optionally) exploration.

    ``fleet_workers >= 2`` additionally soaks the fleet tier
    (:func:`run_fleet_chaos`) with the same schedule and seed.
    ``recalibrate=True`` serves with the canary-probe loop attached,
    races it against the retreat-only baseline for the reclaimed-energy
    report, and (with a fleet) audits margin-epoch propagation.
    """
    recal = None
    if recalibrate:
        recal = run_recal_chaos(
            table,
            schedule,
            num_operators=num_operators,
            requests=requests,
            seed=seed,
            recal_interval_ns=recal_interval_ns,
        )
        serve = recal.recalibrating
    else:
        serve = run_serve_chaos(
            table,
            schedule,
            num_operators=num_operators,
            requests=requests,
            seed=seed,
        )
    exploration = None
    if design is not None:
        if settings is None or workdir is None:
            raise ValueError(
                "exploration chaos needs settings and a workdir"
            )
        exploration = run_exploration_chaos(
            design, settings, schedule, workdir
        )
    fleet = None
    if fleet_workers:
        fleet_recal_interval = 0.0
        if recalibrate:
            fleet_recal_interval = (
                recal_interval_ns
                if recal_interval_ns is not None
                else max(schedule.horizon_ns, 1.0) / 32.0
            )
        fleet = run_fleet_chaos(
            table,
            schedule,
            workers=fleet_workers,
            requests=fleet_requests,
            seed=seed,
            recal_interval_ns=fleet_recal_interval,
        )
    return ChaosReport(
        schedule=schedule,
        serve=serve,
        exploration=exploration,
        fleet=fleet,
        recal=recal,
    )
