"""Seeded, replayable fault events: what chaos throws at the system.

Two families, mirroring where real deployments of near-zero-slack
operating points actually break:

* **silicon events** erode the electrical margin the Pareto frontier
  assumed -- temperature drift profiles, VDD droop transients, aging Vth
  shift, and bias-generator failures (dropout, output stuck at NoBB);
* **infrastructure events** break the machinery around the flow -- a
  worker process crashing mid-shard, a corrupted shard-cache entry, a
  bias transition that times out at the generator.

A :class:`FaultSchedule` is a frozen, time-sorted list of
:class:`FaultEvent` windows over a virtual-time horizon.  It is either
hand-built (tests pin exact windows) or *generated* from a seed
(:meth:`FaultSchedule.generate`), and it serializes to JSON so a chaos
run's schedule can be archived next to its telemetry and replayed
bit-identically.  Nothing in this module consumes wall-clock time or
unseeded randomness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Silicon event kinds (erode timing margin / disable bias hardware).
KIND_TEMP_DRIFT = "temp_drift"
KIND_VDD_DROOP = "vdd_droop"
KIND_AGING_VTH = "aging_vth"
KIND_GEN_DROPOUT = "gen_dropout"
KIND_STUCK_NOBB = "stuck_nobb"

#: Infrastructure event kinds (break the machinery around the flow).
KIND_WORKER_CRASH = "worker_crash"
KIND_CACHE_CORRUPT = "cache_corrupt"
KIND_TRANSITION_TIMEOUT = "transition_timeout"

SILICON_KINDS = frozenset(
    {
        KIND_TEMP_DRIFT,
        KIND_VDD_DROOP,
        KIND_AGING_VTH,
        KIND_GEN_DROPOUT,
        KIND_STUCK_NOBB,
    }
)
INFRA_KINDS = frozenset(
    {KIND_WORKER_CRASH, KIND_CACHE_CORRUPT, KIND_TRANSITION_TIMEOUT}
)
ALL_KINDS = SILICON_KINDS | INFRA_KINDS

#: Schema of the serialized schedule; loaders reject a mismatch.
FAULT_SCHEDULE_SCHEMA = 1


@dataclass(frozen=True)
class FaultEvent:
    """One fault window.

    ``magnitude`` is kind-specific: degrees C for temperature drift,
    volts for droop and aging Vth shift, unused otherwise.  ``target``
    addresses a resource when the kind needs one: the bias-generator
    index for dropouts, the shard index for worker crashes / cache
    corruption; ``-1`` means "first / unspecified".
    """

    kind: str
    start_ns: float
    duration_ns: float
    magnitude: float = 0.0
    target: int = -1

    def __post_init__(self):
        if self.kind not in ALL_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {sorted(ALL_KINDS)}"
            )
        if not math.isfinite(self.start_ns) or self.start_ns < 0.0:
            raise ValueError("start_ns must be finite and >= 0")
        if not math.isfinite(self.duration_ns) or self.duration_ns <= 0.0:
            raise ValueError("duration_ns must be finite and > 0")
        if not math.isfinite(self.magnitude):
            raise ValueError("magnitude must be finite")

    @property
    def end_ns(self) -> float:
        return self.start_ns + self.duration_ns

    @property
    def is_silicon(self) -> bool:
        return self.kind in SILICON_KINDS

    def active_at(self, now_ns: float) -> bool:
        """Whether the window covers *now_ns* (half-open [start, end))."""
        return self.start_ns <= now_ns < self.end_ns

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "magnitude": self.magnitude,
            "target": self.target,
        }

    @staticmethod
    def from_dict(data: Dict) -> "FaultEvent":
        return FaultEvent(
            kind=str(data["kind"]),
            start_ns=float(data["start_ns"]),
            duration_ns=float(data["duration_ns"]),
            magnitude=float(data.get("magnitude", 0.0)),
            target=int(data.get("target", -1)),
        )

    def describe(self) -> str:
        scope = f" @{self.target}" if self.target >= 0 else ""
        return (
            f"{self.kind}{scope}: [{self.start_ns:.0f}, {self.end_ns:.0f}) ns"
            + (f", magnitude {self.magnitude:g}" if self.magnitude else "")
        )


class FaultSchedule:
    """An immutable, time-sorted sequence of fault windows."""

    def __init__(
        self,
        events: Sequence[FaultEvent],
        seed: Optional[int] = None,
        horizon_ns: Optional[float] = None,
    ):
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.start_ns, e.kind, e.target))
        )
        self.seed = seed
        self.horizon_ns = (
            float(horizon_ns)
            if horizon_ns is not None
            else max((e.end_ns for e in self.events), default=0.0)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def active(
        self, now_ns: float, kind: Optional[str] = None
    ) -> List[FaultEvent]:
        """Events whose window covers *now_ns* (optionally one kind)."""
        return [
            e
            for e in self.events
            if e.active_at(now_ns) and (kind is None or e.kind == kind)
        ]

    def of_kind(self, kind: str) -> List[FaultEvent]:
        return [e for e in self.events if e.kind == kind]

    def silicon_events(self) -> List[FaultEvent]:
        return [e for e in self.events if e.is_silicon]

    def infra_events(self) -> List[FaultEvent]:
        return [e for e in self.events if not e.is_silicon]

    # -- generation ----------------------------------------------------------

    @classmethod
    def generate(
        cls,
        seed: int,
        horizon_ns: float = 2e6,
        num_generators: int = 2,
        num_shards: int = 16,
        intensity: float = 1.0,
    ) -> "FaultSchedule":
        """A seeded chaos schedule over *horizon_ns* of virtual time.

        Event counts scale with ``intensity`` (1.0 is the default soak
        mix: a few drifts and droops, one aging ramp, at least one
        generator dropout and one bias-transition fault, plus an infra
        worker crash and cache corruption).  The same seed always yields
        the same schedule.
        """
        if horizon_ns <= 0.0:
            raise ValueError("horizon must be positive")
        if intensity < 0.0:
            raise ValueError("intensity must be non-negative")
        rng = np.random.default_rng(seed)
        events: List[FaultEvent] = []

        def count(base: float) -> int:
            return int(rng.poisson(base * intensity))

        def window(min_frac: float, max_frac: float) -> Tuple[float, float]:
            duration = horizon_ns * float(
                rng.uniform(min_frac, max_frac)
            )
            start = float(rng.uniform(0.0, max(horizon_ns - duration, 1.0)))
            return start, duration

        for _ in range(max(1, count(2.0))):
            start, duration = window(0.1, 0.4)
            events.append(
                FaultEvent(
                    KIND_TEMP_DRIFT,
                    start,
                    duration,
                    magnitude=float(rng.uniform(15.0, 60.0)),
                )
            )
        for _ in range(max(1, count(2.0))):
            start, duration = window(0.02, 0.1)
            events.append(
                FaultEvent(
                    KIND_VDD_DROOP,
                    start,
                    duration,
                    magnitude=float(rng.uniform(0.02, 0.08)),
                )
            )
        # One aging ramp covering the whole run: Vth shift accumulates
        # monotonically and persists after the window closes.
        events.append(
            FaultEvent(
                KIND_AGING_VTH,
                0.0,
                horizon_ns,
                magnitude=float(rng.uniform(0.005, 0.02) * intensity)
                if intensity > 0.0
                else 1e-6,
            )
        )
        for _ in range(max(1, count(1.5))):
            start, duration = window(0.05, 0.25)
            events.append(
                FaultEvent(
                    KIND_GEN_DROPOUT,
                    start,
                    duration,
                    target=int(rng.integers(0, max(1, num_generators))),
                )
            )
        for _ in range(count(1.0)):
            start, duration = window(0.02, 0.1)
            events.append(FaultEvent(KIND_STUCK_NOBB, start, duration))
        for _ in range(max(1, count(1.0))):
            start, duration = window(0.02, 0.08)
            events.append(
                FaultEvent(KIND_TRANSITION_TIMEOUT, start, duration)
            )
        # Infra events: targets are shard indices; their windows are
        # nominal (the injector triggers on shard identity, not time).
        for _ in range(max(1, count(1.0))):
            start, duration = window(0.01, 0.05)
            events.append(
                FaultEvent(
                    KIND_WORKER_CRASH,
                    start,
                    duration,
                    target=int(rng.integers(0, max(1, num_shards))),
                )
            )
        for _ in range(max(1, count(1.0))):
            start, duration = window(0.01, 0.05)
            events.append(
                FaultEvent(
                    KIND_CACHE_CORRUPT,
                    start,
                    duration,
                    target=int(rng.integers(0, max(1, num_shards))),
                )
            )
        return cls(events, seed=seed, horizon_ns=horizon_ns)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "schema": FAULT_SCHEDULE_SCHEMA,
            "kind": "repro-fault-schedule",
            "seed": self.seed,
            "horizon_ns": self.horizon_ns,
            "events": [e.to_dict() for e in self.events],
        }

    @staticmethod
    def from_dict(payload: Dict) -> "FaultSchedule":
        schema = payload.get("schema")
        if schema != FAULT_SCHEDULE_SCHEMA:
            raise ValueError(
                f"unsupported fault-schedule schema {schema!r} (this build "
                f"reads schema {FAULT_SCHEDULE_SCHEMA})"
            )
        return FaultSchedule(
            [FaultEvent.from_dict(e) for e in payload["events"]],
            seed=payload.get("seed"),
            horizon_ns=payload.get("horizon_ns"),
        )

    def describe(self) -> str:
        silicon = len(self.silicon_events())
        infra = len(self.infra_events())
        return (
            f"fault schedule: {len(self.events)} events "
            f"({silicon} silicon, {infra} infra) over "
            f"{self.horizon_ns / 1e3:.0f} us"
            + (f", seed {self.seed}" if self.seed is not None else "")
        )
