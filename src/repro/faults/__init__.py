"""repro.faults -- deterministic fault injection across the stack.

The robustness layer: everything needed to *break* the system on
purpose, reproducibly, and to check that it bends instead:

* :mod:`repro.faults.events` -- seeded, serializable fault schedules
  (silicon events: temperature drift, VDD droop, aging Vth shift,
  bias-generator dropout / stuck-at-NoBB; infrastructure events: worker
  crash, cache corruption, transition timeout);
* :mod:`repro.faults.environment` -- evaluates a schedule into the
  electrical state the serve-side margin guard consumes (slack erosion,
  dropped generators, blocked transitions);
* :mod:`repro.faults.injector` -- does the infra faults to real
  machinery (one-shot worker crash/hang plans, cache corruption);
* :mod:`repro.faults.chaos` -- the harness replaying one seeded
  schedule against a multi-operator serve session and a sharded
  exploration run, with post-hoc invariant audits.

See ``docs/robustness.md`` for the fault taxonomy and the invariants
each chaos soak enforces.
"""

from repro.faults.chaos import (
    ChaosReport,
    ExplorationChaosReport,
    FleetChaosReport,
    RecalChaosReport,
    ServeChaosReport,
    recovery_schedule,
    run_chaos,
    run_exploration_chaos,
    run_fleet_chaos,
    run_recal_chaos,
    run_serve_chaos,
)
from repro.faults.environment import (
    AGING_ALPHA,
    DROOP_ALPHA,
    TEMP_SLOWDOWN_PER_C,
    SiliconEnvironment,
)
from repro.faults.events import (
    ALL_KINDS,
    FAULT_SCHEDULE_SCHEMA,
    INFRA_KINDS,
    KIND_AGING_VTH,
    KIND_CACHE_CORRUPT,
    KIND_GEN_DROPOUT,
    KIND_STUCK_NOBB,
    KIND_TEMP_DRIFT,
    KIND_TRANSITION_TIMEOUT,
    KIND_VDD_DROOP,
    KIND_WORKER_CRASH,
    SILICON_KINDS,
    FaultEvent,
    FaultSchedule,
)
from repro.faults.injector import (
    InjectionLog,
    WorkerFaultPlan,
    corrupt_cache_entries,
)

__all__ = [
    "AGING_ALPHA",
    "ALL_KINDS",
    "ChaosReport",
    "DROOP_ALPHA",
    "ExplorationChaosReport",
    "FAULT_SCHEDULE_SCHEMA",
    "FaultEvent",
    "FaultSchedule",
    "FleetChaosReport",
    "INFRA_KINDS",
    "InjectionLog",
    "KIND_AGING_VTH",
    "KIND_CACHE_CORRUPT",
    "KIND_GEN_DROPOUT",
    "KIND_STUCK_NOBB",
    "KIND_TEMP_DRIFT",
    "KIND_TRANSITION_TIMEOUT",
    "KIND_VDD_DROOP",
    "KIND_WORKER_CRASH",
    "RecalChaosReport",
    "SILICON_KINDS",
    "ServeChaosReport",
    "SiliconEnvironment",
    "TEMP_SLOWDOWN_PER_C",
    "WorkerFaultPlan",
    "corrupt_cache_entries",
    "recovery_schedule",
    "run_chaos",
    "run_exploration_chaos",
    "run_fleet_chaos",
    "run_recal_chaos",
    "run_serve_chaos",
]
