"""Infrastructure fault injection: crashing workers, corrupting caches.

Silicon events are *evaluated* (pure arithmetic over a schedule); infra
events have to be *done to* real machinery.  This module owns the doing:

* :class:`WorkerFaultPlan` -- a picklable plan shipped to exploration
  worker processes through the pool initializer.  A worker that picks up
  a shard named in the plan hard-exits (``os._exit``) or hangs, once:
  each fault claims a marker file with ``O_CREAT | O_EXCL`` so the
  retried shard succeeds on the next attempt exactly like a real
  transient crash.  The marker directory doubles as the fault log --
  after the run, its entries are the faults that actually fired.
* :func:`corrupt_cache_entries` -- truncates persistent shard-cache
  entries in place, exercising the cache's detect-discard-recompute
  path (`repro.parallel.cache` validates a checksum on every load).

Both are driven by the chaos harness and the fault-injection test
suites; nothing here runs unless explicitly armed.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Tuple


@dataclass(frozen=True)
class WorkerFaultPlan:
    """Deterministic one-shot faults for exploration worker processes.

    ``crash_shards`` name shard indices whose worker dies mid-execution
    (exit code 3, after the shard's work started but before any result
    is returned -- the pool surfaces it as ``BrokenProcessPool``).
    ``hang_shards`` sleep for ``hang_s`` instead, tripping the engine's
    per-shard timeout.  Every fault fires exactly once per plan: the
    first worker to reach the shard claims its marker file atomically.
    """

    marker_dir: str
    crash_shards: Tuple[int, ...] = ()
    hang_shards: Tuple[int, ...] = ()
    hang_s: float = 30.0

    def __post_init__(self):
        overlap = set(self.crash_shards) & set(self.hang_shards)
        if overlap:
            raise ValueError(
                f"shards {sorted(overlap)} are both crash and hang targets"
            )

    def _claim(self, label: str, shard_index: int) -> bool:
        """Atomically claim one fault; True exactly once per fault."""
        os.makedirs(self.marker_dir, exist_ok=True)
        path = os.path.join(self.marker_dir, f"{label}-{shard_index}")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def maybe_fault(self, shard_index: int) -> None:
        """Called by the worker at the top of a shard; may never return."""
        if shard_index in self.crash_shards and self._claim(
            "crash", shard_index
        ):
            os._exit(3)
        if shard_index in self.hang_shards and self._claim(
            "hang", shard_index
        ):
            time.sleep(self.hang_s)

    def fired(self) -> List[str]:
        """Markers of the faults that actually executed (the fault log)."""
        root = Path(self.marker_dir)
        if not root.is_dir():
            return []
        return sorted(p.name for p in root.iterdir())


@dataclass
class InjectionLog:
    """What the chaos harness did to the infrastructure, for the report."""

    worker_crashes_armed: int = 0
    hangs_armed: int = 0
    cache_entries_corrupted: int = 0
    details: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "worker_crashes_armed": self.worker_crashes_armed,
            "hangs_armed": self.hangs_armed,
            "cache_entries_corrupted": self.cache_entries_corrupted,
            "details": list(self.details),
        }


def corrupt_cache_entries(cache_dir: os.PathLike, count: int = 1) -> int:
    """Truncate up to *count* shard-cache entries in place.

    Entries are chosen deterministically (lexicographic order).  Returns
    how many files were actually damaged.  The cache detects the broken
    checksum on the next load, discards the entry and recomputes -- this
    function exists to prove that, not to be subtle.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    root = Path(cache_dir)
    if not root.is_dir():
        return 0
    damaged = 0
    for path in sorted(root.glob("*.json")):
        if damaged >= count:
            break
        size = path.stat().st_size
        with open(path, "r+b") as stream:
            stream.truncate(max(1, size // 2))
        damaged += 1
    return damaged
