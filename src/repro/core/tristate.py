"""Multi-Vth exploration: {RBB, NoBB, FBB} per domain.

The paper restricts itself to two Vth assignments per domain -- SVT (NoBB)
and LVT (FBB) -- but notes the methodology "can however be applied to more
than two Vth values" (Section III).  This module implements that extension
with three states: reverse back bias is useless for speed but slashes the
leakage of domains whose logic a given accuracy mode has deactivated.

The exploration cost grows from 2^NMAX to 3^NMAX configurations per
(bitwidth, VDD) point; the batched STA sweep evaluates them in chunks, so
a 3x3 grid (3^9 = 19 683 configs) stays tractable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.config import ExplorationSettings
from repro.core.flow import ImplementedDesign
from repro.power.analysis import PowerAnalyzer
from repro.sim.activity import measure_activity
from repro.sta.batch import BatchStaEngine, all_state_configs
from repro.sta.caseanalysis import dvas_case

#: State order used throughout: index 0 = RBB, 1 = NoBB, 2 = FBB.
STATE_NAMES = ("RBB", "NoBB", "FBB")


@dataclass(frozen=True)
class TriStatePoint:
    """Winner of one accuracy mode in the three-state exploration."""

    active_bits: int
    vdd: float
    states: Tuple[int, ...]
    total_power_w: float
    dynamic_power_w: float
    leakage_power_w: float
    worst_slack_ps: float

    def describe(self) -> str:
        code = "".join("RNF"[s] for s in self.states)
        return (
            f"{self.active_bits:2d} bits @ {self.vdd:.1f} V, "
            f"Vth[{code}]: {self.total_power_w * 1e3:.3f} mW "
            f"(slack {self.worst_slack_ps:+.0f} ps)"
        )

    def count_state(self, state: int) -> int:
        return sum(1 for s in self.states if s == state)


@dataclass
class TriStateResult:
    """Full result of a three-state exploration."""

    design_name: str
    settings: ExplorationSettings
    num_domains: int
    best_per_bitwidth: Dict[int, TriStatePoint]
    points_evaluated: int
    points_feasible: int
    runtime_s: float

    @property
    def filtered_fraction(self) -> float:
        if self.points_evaluated == 0:
            return 0.0
        return 1.0 - self.points_feasible / self.points_evaluated

    def pareto(self) -> List[TriStatePoint]:
        return [self.best_per_bitwidth[b] for b in sorted(self.best_per_bitwidth)]


class TriStateExplorer:
    """Exhaustive three-state (RBB/NoBB/FBB) exploration of one design."""

    def __init__(self, design: ImplementedDesign, max_configs: int = 100_000):
        num_configs = 3**design.num_domains
        if num_configs > max_configs:
            raise ValueError(
                f"3^{design.num_domains} = {num_configs} configurations "
                f"exceed the limit ({max_configs}); use a coarser grid or "
                "raise max_configs"
            )
        self.design = design
        self.graph = design.timing_graph()
        self.library = design.netlist.library
        self.batch_engine = BatchStaEngine(
            self.graph, self.library, design.domains, design.num_domains
        )
        self.power = PowerAnalyzer(design.netlist, design.parasitics)
        fbb = self.library.process.fbb_voltage
        self.state_vbbs = (-fbb, 0.0, fbb)

    def run(
        self, settings: ExplorationSettings = ExplorationSettings()
    ) -> TriStateResult:
        start = time.perf_counter()
        design = self.design
        configs = all_state_configs(design.num_domains, 3)
        config_tuples = [tuple(int(x) for x in row) for row in configs]

        best: Dict[int, TriStatePoint] = {}
        evaluated = 0
        feasible_total = 0
        for bits in settings.bitwidths:
            case = dvas_case(design.netlist, bits)
            activity = measure_activity(
                design.netlist,
                bits,
                cycles=settings.activity_cycles,
                batch=settings.activity_batch,
                seed=settings.seed,
            )
            for vdd in settings.vdd_values:
                result = self.batch_engine.analyze_states(
                    design.constraint, vdd, configs, self.state_vbbs,
                    case=case,
                )
                evaluated += len(config_tuples)
                feasible = result.feasible
                count = int(np.count_nonzero(feasible))
                feasible_total += count
                if count == 0:
                    continue
                dynamic = self.power.dynamic.total(
                    activity, vdd, design.fclk_ghz
                )
                leak = self.power.leakage.total_batch_states(
                    vdd, design.domains, configs, self.state_vbbs
                )
                totals = np.where(feasible, dynamic + leak, np.inf)
                winner = int(np.argmin(totals))
                point = TriStatePoint(
                    active_bits=bits,
                    vdd=vdd,
                    states=config_tuples[winner],
                    total_power_w=float(totals[winner]),
                    dynamic_power_w=dynamic,
                    leakage_power_w=float(leak[winner]),
                    worst_slack_ps=float(result.worst_slack_ps[winner]),
                )
                incumbent = best.get(bits)
                if (
                    incumbent is None
                    or point.total_power_w < incumbent.total_power_w
                ):
                    best[bits] = point

        return TriStateResult(
            design_name=design.netlist.name,
            settings=settings,
            num_domains=design.num_domains,
            best_per_bitwidth=best,
            points_evaluated=evaluated,
            points_feasible=feasible_total,
            runtime_s=time.perf_counter() - start,
        )
