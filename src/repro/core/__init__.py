"""The paper's methodology: implementation flow + exhaustive optimization.

* :mod:`repro.core.flow` -- the two-phase implementation flow of Fig. 4:
  placement, Vth-domain insertion with guardbands, incremental placement,
  sizing, clock selection.
* :mod:`repro.core.exploration` -- the optimization phase: exhaustive
  (BB assignment x bitwidth x VDD) exploration with the STA feasibility
  filter and power ranking.
* :mod:`repro.core.dvas` -- the DVAS baseline (Moons & Verhelst, ISLPED'15):
  VDD scaling + bitwidth reduction only, in NoBB and FBB flavours.
* :mod:`repro.core.pareto` -- Pareto/frontier utilities for the Fig. 5/6
  curves.
* :mod:`repro.core.report` -- text tables mirroring the paper's Table I and
  figures.
"""

from repro.core.config import ExplorationSettings, OperatingPoint
from repro.core.flow import (
    ImplementedDesign,
    implement_base,
    implement_with_domains,
)
from repro.core.exploration import ExhaustiveExplorer, ExplorationResult
from repro.core.dvas import dvas_explore, DvasResult
from repro.core.pareto import pareto_points, dominated_mask, power_saving
from repro.core.report import (
    format_pareto_table,
    format_table1,
    format_savings,
)

__all__ = [
    "ExplorationSettings",
    "OperatingPoint",
    "ImplementedDesign",
    "implement_base",
    "implement_with_domains",
    "ExhaustiveExplorer",
    "ExplorationResult",
    "dvas_explore",
    "DvasResult",
    "pareto_points",
    "dominated_mask",
    "power_saving",
    "format_pareto_table",
    "format_table1",
    "format_savings",
]
