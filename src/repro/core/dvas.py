"""The DVAS baseline (Moons & Verhelst, ISLPED 2015).

DVAS scales accuracy by zeroing input LSBs and recovers the resulting
timing slack by lowering the single global supply voltage; there are no
Vth domains.  The paper evaluates two flavours on the domain-less base
implementation:

* **DVAS (NoBB)** -- the standard implementation from [14]: every cell at
  SVT.  Because timing was closed with the FBB characterization, this
  flavour cannot reach maximum accuracy at the nominal clock (Fig. 5).
* **DVAS (FBB)** -- every cell boosted: reaches full accuracy but pays the
  full boosted leakage everywhere, and its Pareto front is step-wise (one
  step per usable VDD).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import ExplorationSettings, OperatingPoint
from repro.core.exploration import ExhaustiveExplorer, ExplorationResult
from repro.core.flow import ImplementedDesign


@dataclass
class DvasResult:
    """DVAS Pareto data for one flavour on one design."""

    design_name: str
    fbb: bool
    best_per_bitwidth: Dict[int, OperatingPoint]

    @property
    def label(self) -> str:
        return f"DVAS ({'FBB' if self.fbb else 'NoBB'})"

    def pareto(self) -> List[OperatingPoint]:
        return [self.best_per_bitwidth[b] for b in sorted(self.best_per_bitwidth)]

    @property
    def max_reachable_bits(self) -> int:
        """Highest accuracy mode with any feasible configuration (0 if none)."""
        return max(self.best_per_bitwidth, default=0)


def dvas_explore(
    design: ImplementedDesign,
    fbb: bool,
    settings: Optional[ExplorationSettings] = None,
) -> DvasResult:
    """Explore the DVAS knobs (bitwidth x VDD) for one back-bias flavour.

    *design* should be the base implementation (no Vth domains, no
    guardband overheads); passing a domained design is allowed -- all its
    domains are simply driven to the same state -- which is useful for
    what-if analyses.
    """
    if settings is None:
        settings = ExplorationSettings()
    explorer = ExhaustiveExplorer(design)
    configs = np.full((1, design.num_domains), fbb, dtype=bool)
    result: ExplorationResult = explorer.run(settings, configs=configs)
    return DvasResult(
        design_name=design.netlist.name,
        fbb=fbb,
        best_per_bitwidth=result.best_per_bitwidth,
    )
