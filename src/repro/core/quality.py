"""Quality-aware mode selection: from error budgets to knob settings.

The paper treats accuracy abstractly ("the selection of the optimal
accuracy is determined at application level").  This module supplies that
application-level half for numeric kernels: it converts an error budget
(RMSE / SNR of the operator's arithmetic under LSB gating) into the
minimum bitwidth that satisfies it, and hence into the cheapest explored
operating point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence

import numpy as np

from repro.core.config import OperatingPoint
from repro.core.exploration import ExplorationResult
from repro.sim.errors import ErrorReport, error_metrics


@dataclass
class QualityTable:
    """Per-bitwidth arithmetic quality of one operation."""

    width: int
    reports: Dict[int, ErrorReport]

    def min_bits_for_snr(self, snr_db: float) -> int:
        """Smallest bitwidth whose SNR meets *snr_db*.

        Raises :class:`ValueError` when even full precision falls short.
        """
        for bits in sorted(self.reports):
            if self.reports[bits].snr_db >= snr_db:
                return bits
        raise ValueError(
            f"no bitwidth reaches {snr_db} dB "
            f"(max {max(r.snr_db for r in self.reports.values()):.1f} dB)"
        )

    def min_bits_for_rmse(self, rmse: float) -> int:
        """Smallest bitwidth whose RMSE is at most *rmse*."""
        for bits in sorted(self.reports):
            if self.reports[bits].rmse <= rmse:
                return bits
        raise ValueError(f"no bitwidth achieves RMSE <= {rmse}")

    def format_text(self) -> str:
        lines = [f"{'bits':>4s} {'RMSE':>12s} {'SNR [dB]':>9s} {'max err':>10s}"]
        for bits in sorted(self.reports, reverse=True):
            report = self.reports[bits]
            lines.append(
                f"{bits:4d} {report.rmse:12.2f} {report.snr_db:9.1f} "
                f"{report.max_error:10.0f}"
            )
        return "\n".join(lines)


def characterize_quality(
    operation: Callable[[np.ndarray, np.ndarray], np.ndarray],
    width: int,
    bitwidths: Sequence[int],
    samples: int = 4096,
    seed: int = 7,
) -> QualityTable:
    """Measure the error of *operation* under LSB gating per bitwidth."""
    reports = {
        bits: error_metrics(
            operation, width, bits, samples=samples, seed=seed
        )
        for bits in bitwidths
    }
    return QualityTable(width=width, reports=reports)


@dataclass
class QualityModeSelection:
    """A quality constraint resolved to a concrete operating point."""

    constraint: str
    required_bits: int
    point: OperatingPoint

    def describe(self) -> str:
        return (
            f"{self.constraint} -> {self.required_bits} bits -> "
            f"{self.point.describe()}"
        )


def select_mode_for_snr(
    exploration: ExplorationResult,
    quality: QualityTable,
    snr_db: float,
) -> QualityModeSelection:
    """Cheapest explored point meeting an SNR budget."""
    required = quality.min_bits_for_snr(snr_db)
    candidates = [
        point
        for bits, point in exploration.best_per_bitwidth.items()
        if bits >= required
    ]
    if not candidates:
        raise ValueError(
            f"no feasible operating point offers >= {required} bits"
        )
    point = min(candidates, key=lambda p: p.total_power_w)
    return QualityModeSelection(
        constraint=f"SNR >= {snr_db:.1f} dB",
        required_bits=required,
        point=point,
    )
