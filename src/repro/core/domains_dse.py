"""Domain-configuration design-space exploration.

The paper's conclusion lists "an investigation of the optimal number and
configuration of domains" as future work, noting that "since our method is
automated, the design space can be explored exhaustively, at least for a
small number of groups (<= 10)".  This module does exactly that: implement
the design for every candidate grid, run the optimization phase, and rank
the configurations by average power over the accuracy modes of interest
under an area-overhead budget.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import ExplorationSettings
from repro.core.exploration import ExhaustiveExplorer, ExplorationResult
from repro.core.flow import ImplementedDesign, implement_with_domains
from repro.netlist.netlist import Netlist
from repro.pnr.grid import GridPartition
from repro.sta.constraints import ClockConstraint
from repro.techlib.library import Library

#: The candidate grid shapes of the paper's Fig. 6 plus the trivial 1x1.
DEFAULT_CANDIDATES: Tuple[Tuple[int, int], ...] = (
    (1, 1), (1, 2), (2, 1), (1, 3), (3, 1), (2, 2), (2, 3), (3, 2), (3, 3),
)


@dataclass
class GridCandidate:
    """One evaluated grid configuration."""

    partition: GridPartition
    design: ImplementedDesign
    exploration: ExplorationResult
    mean_power_w: float
    covered_bitwidths: int

    @property
    def area_overhead(self) -> float:
        return self.design.area_overhead

    def describe(self) -> str:
        return (
            f"{self.partition.label}: mean {self.mean_power_w * 1e3:.3f} mW "
            f"over {self.covered_bitwidths} modes, "
            f"overhead {self.area_overhead * 100:.1f}%"
        )


@dataclass
class DomainDseResult:
    """Ranked outcome of the grid sweep."""

    candidates: List[GridCandidate]
    area_budget: Optional[float]
    runtime_s: float

    def within_budget(self) -> List[GridCandidate]:
        if self.area_budget is None:
            return list(self.candidates)
        return [
            c for c in self.candidates if c.area_overhead <= self.area_budget
        ]

    def best(self) -> GridCandidate:
        """Lowest mean power among budget-compliant, full-coverage grids."""
        pool = self.within_budget()
        if not pool:
            raise ValueError("no candidate satisfies the area budget")
        full = max(c.covered_bitwidths for c in pool)
        pool = [c for c in pool if c.covered_bitwidths == full]
        return min(pool, key=lambda c: c.mean_power_w)

    def format_text(self) -> str:
        lines = [
            f"{'grid':>5s} {'mean power':>11s} {'overhead':>9s} "
            f"{'modes':>6s} {'in budget':>10s}"
        ]
        for candidate in self.candidates:
            in_budget = (
                self.area_budget is None
                or candidate.area_overhead <= self.area_budget
            )
            lines.append(
                f"{candidate.partition.label:>5s} "
                f"{candidate.mean_power_w * 1e3:9.3f}mW "
                f"{candidate.area_overhead * 100:8.1f}% "
                f"{candidate.covered_bitwidths:6d} "
                f"{'yes' if in_budget else 'no':>10s}"
            )
        return "\n".join(lines)


def explore_domain_configurations(
    netlist_factory: Callable[[], Netlist],
    library: Library,
    constraint: ClockConstraint,
    candidates: Sequence[Tuple[int, int]] = DEFAULT_CANDIDATES,
    settings: Optional[ExplorationSettings] = None,
    bitwidths_of_interest: Optional[Sequence[int]] = None,
    area_budget: Optional[float] = None,
    max_domains: int = 10,
    sta_engine: Optional[str] = None,
) -> DomainDseResult:
    """Implement + explore every candidate grid and rank them.

    *bitwidths_of_interest* selects the accuracy modes averaged in the
    score (default: all of ``settings.bitwidths``); *area_budget* is a
    fractional overhead cap (e.g. 0.2 for "at most 20% bigger").
    Candidates with more than *max_domains* domains are skipped, matching
    the paper's exhaustive-up-to-10-groups remark.  *sta_engine*, when
    given, overrides ``settings.sta_engine`` for every candidate sweep --
    the DSE loop is the heaviest lattice consumer (it explores the full
    2^NMAX axis once per grid), so it is the natural place to force an
    engine during differential runs.
    """
    if settings is None:
        settings = ExplorationSettings()
    if sta_engine is not None:
        settings = dataclasses.replace(settings, sta_engine=sta_engine)
    start = time.perf_counter()
    interest = tuple(bitwidths_of_interest or settings.bitwidths)
    evaluated: List[GridCandidate] = []
    for rows, cols in candidates:
        partition = GridPartition(rows, cols)
        if partition.num_domains > max_domains:
            continue
        design = implement_with_domains(
            netlist_factory, library, partition, constraint=constraint
        )
        exploration = ExhaustiveExplorer(design).run(settings)
        covered = [
            exploration.best_per_bitwidth[b]
            for b in interest
            if b in exploration.best_per_bitwidth
        ]
        mean_power = (
            float(np.mean([p.total_power_w for p in covered]))
            if covered
            else float("inf")
        )
        evaluated.append(
            GridCandidate(
                partition=partition,
                design=design,
                exploration=exploration,
                mean_power_w=mean_power,
                covered_bitwidths=len(covered),
            )
        )
    evaluated.sort(key=lambda c: c.mean_power_w)
    return DomainDseResult(
        candidates=evaluated,
        area_budget=area_budget,
        runtime_s=time.perf_counter() - start,
    )
