"""Text reports mirroring the paper's tables and figures."""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

from repro.core.config import OperatingPoint
from repro.core.flow import ImplementedDesign


def format_pareto_table(
    frontiers: Dict[str, Dict[int, OperatingPoint]],
    bitwidths: Sequence[int],
) -> str:
    """Fig. 5 as a table: one column per method, one row per bitwidth.

    Infeasible accuracy modes print ``--`` (DVAS NoBB high bitwidths).
    """
    methods = list(frontiers)
    header = "bits | " + " | ".join(f"{m:>18s}" for m in methods)
    rule = "-" * len(header)
    lines = [header, rule]
    for bits in sorted(bitwidths, reverse=True):
        cells = []
        for method in methods:
            point = frontiers[method].get(bits)
            if point is None:
                cells.append(f"{'--':>18s}")
            else:
                cells.append(
                    f"{point.total_power_w * 1e3:9.3f} mW@{point.vdd:.1f}V"
                )
        lines.append(f"{bits:4d} | " + " | ".join(cells))
    return "\n".join(lines)


def format_table1(designs: Iterable[ImplementedDesign]) -> str:
    """Table I: post-P&R characteristics and grid configurations."""
    lines = [
        f"{'Design':12s} {'A [mm^2]':>12s} {'fclk [GHz]':>11s} "
        f"{'Groups':>7s} {'Aovr [%]':>9s}",
    ]
    for design in designs:
        grid = design.insertion.partition.label if design.insertion else "1x1"
        lines.append(
            f"{design.netlist.name:12s} "
            f"{design.area_um2 * 1e-6:12.2e} "
            f"{design.fclk_ghz:11.2f} "
            f"{grid:>7s} "
            f"{design.area_overhead * 100:9.1f}"
        )
    return "\n".join(lines)


def format_savings(
    reference: Dict[int, OperatingPoint],
    improved: Dict[int, OperatingPoint],
    bitwidths: Sequence[int],
    reference_name: str = "DVAS (FBB)",
    improved_name: str = "Proposed",
) -> str:
    """Per-bitwidth power saving of the proposed method vs a reference."""
    lines = [f"power saving of {improved_name} vs {reference_name}:"]
    for bits in sorted(bitwidths, reverse=True):
        ref = reference.get(bits)
        new = improved.get(bits)
        if ref is None or new is None:
            lines.append(f"  {bits:2d} bits: n/a")
            continue
        saving = 1.0 - new.total_power_w / ref.total_power_w
        lines.append(
            f"  {bits:2d} bits: {saving * 100:6.2f}%  "
            f"({ref.total_power_w * 1e3:.3f} -> {new.total_power_w * 1e3:.3f} mW)"
        )
    return "\n".join(lines)
