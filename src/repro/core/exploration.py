"""The optimization phase: exhaustive knob exploration (Fig. 4, blue part).

For every accuracy mode (bitwidth) of interest the explorer

1. runs case analysis (zeroed LSBs -> deactivated paths),
2. annotates switching activity by simulating the netlist in that mode,
3. for every supply voltage, evaluates *all* 2^NMAX back-bias assignments
   in one batched STA sweep (the feasibility filter -- the paper reports
   ~75 % of points rejected here),
4. ranks the feasible points by total (leakage + dynamic) power,

and reports the minimum-power configuration per bitwidth: the data behind
the paper's Fig. 5 Pareto curves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import ExplorationSettings, OperatingPoint
from repro.core.flow import ImplementedDesign
from repro.power.analysis import PowerAnalyzer
from repro.sim.activity import ActivityReport, measure_activity
from repro.sta.batch import all_bb_configs
from repro.sta.caseanalysis import dvas_case
from repro.sta.lattice import LatticeStaEngine, resolve_sta_engine


@dataclass(frozen=True)
class KnobCellResult:
    """Outcome of one slice of the (bitwidth, VDD, BB-combo) tensor.

    The unit of work the sharded engine distributes and caches; the
    serial explorer produces the same records, so merging a list of them
    (:func:`merge_cell_results`) is bit-identical either way.
    ``combo_lo`` is the cell's offset on the BB-combination axis -- a
    cell covers combos ``[combo_lo, combo_lo + evaluated)`` of the full
    configuration matrix, and the merge folds the slices of one
    (bitwidth, VDD) point back together in ascending combo order.
    """

    bits: int
    vdd: float
    evaluated: int
    feasible_count: int
    best: Optional[OperatingPoint]
    combo_lo: int = 0

    @property
    def combo_hi(self) -> int:
        """One past the last combo index this cell covers."""
        return self.combo_lo + self.evaluated

    def to_dict(self) -> Dict[str, object]:
        return {
            "bits": self.bits,
            "vdd": self.vdd,
            "evaluated": self.evaluated,
            "feasible_count": self.feasible_count,
            "best": self.best.to_dict() if self.best is not None else None,
            "combo_lo": self.combo_lo,
        }

    @staticmethod
    def from_dict(data: Dict) -> "KnobCellResult":
        best = data["best"]
        return KnobCellResult(
            bits=int(data["bits"]),
            vdd=float(data["vdd"]),
            evaluated=int(data["evaluated"]),
            feasible_count=int(data["feasible_count"]),
            best=OperatingPoint.from_dict(best) if best is not None else None,
            combo_lo=int(data.get("combo_lo", 0)),
        )


@dataclass
class ExplorationResult:
    """Everything the optimization phase produced."""

    design_name: str
    settings: ExplorationSettings
    num_domains: int
    best_per_bitwidth: Dict[int, OperatingPoint]
    points_evaluated: int
    points_feasible: int
    runtime_s: float
    # Per (bitwidth, vdd): number of feasible BB assignments.
    feasible_counts: Dict[Tuple[int, float], int] = field(default_factory=dict)
    # Per (bitwidth, vdd): the minimum-power feasible point, when any.
    best_per_knob_point: Dict[Tuple[int, float], OperatingPoint] = field(
        default_factory=dict
    )
    # Persistent-cache statistics of the run (None on the legacy path).
    cache_stats: Optional[object] = None
    # Resilience statistics (crashes/retries survived; None on the
    # legacy path, a repro.parallel.engine.ResilienceStats otherwise).
    fault_stats: Optional[object] = None

    @property
    def filtered_fraction(self) -> float:
        """Fraction of design points the STA filter rejected (paper: ~75%)."""
        if self.points_evaluated == 0:
            return 0.0
        return 1.0 - self.points_feasible / self.points_evaluated

    def pareto(self) -> List[OperatingPoint]:
        """Best operating point per bitwidth, sorted by bitwidth."""
        return [self.best_per_bitwidth[b] for b in sorted(self.best_per_bitwidth)]

    def power_at(self, bits: int) -> float:
        return self.best_per_bitwidth[bits].total_power_w

    def best_at(self, bits: int, vdd: float) -> Optional[OperatingPoint]:
        """Cheapest feasible point at one (bitwidth, VDD), or None.

        Lets system-level composition (several operators sharing one
        supply) pick per-operator BB configurations at a common VDD.
        """
        return self.best_per_knob_point.get((bits, vdd))


class ExhaustiveExplorer:
    """Runs the optimization phase on one implemented design."""

    def __init__(self, design: ImplementedDesign):
        self.design = design
        self.graph = design.timing_graph()
        self.library = design.netlist.library
        self.lattice_engine = LatticeStaEngine(
            self.graph, self.library, design.domains, design.num_domains
        )
        self.power = PowerAnalyzer(design.netlist, design.parasitics)

    def _activity(
        self, bits: int, settings: ExplorationSettings
    ) -> ActivityReport:
        return measure_activity(
            self.design.netlist,
            bits,
            cycles=settings.activity_cycles,
            batch=settings.activity_batch,
            seed=settings.seed,
            engine=settings.sim_engine,
        )

    def _ladder_slacks(
        self,
        vdd_values: Sequence[float],
        configs: np.ndarray,
        case,
        sta_engine: str,
    ) -> List[np.ndarray]:
        """Per-combo worst setup slack for every VDD rung, engine-selected.

        ``lattice`` sweeps the whole (VDD, combo) ladder in one
        nets-major tensor pass; ``pointwise`` loops the scalar engine
        per (VDD, combination).  Both return the same float64 bits --
        the differential wall holds them to it.
        """
        design = self.design
        if sta_engine == "lattice":
            ladder = self.lattice_engine.analyze_ladder(
                design.constraint, vdd_values, configs=configs, case=case
            )
        else:
            ladder = [
                self.lattice_engine.analyze_pointwise(
                    design.constraint, vdd, configs=configs, case=case
                )
                for vdd in vdd_values
            ]
        return [result.worst_slack_ps for result in ladder]

    def evaluate_cells(
        self,
        bitwidths: Sequence[int],
        vdd_values: Sequence[float],
        settings: ExplorationSettings,
        configs: np.ndarray,
        combo_lo: int = 0,
    ) -> List[KnobCellResult]:
        """Evaluate one rectangular slice of the knob/combo tensor.

        One case analysis + activity simulation per bitwidth, one
        whole-lattice STA pass over all *configs* per (bitwidth, VDD).
        *configs* may be any contiguous slice of the full configuration
        matrix, with *combo_lo* recording its offset on the combo axis.
        This is the single implementation both the serial sweep and
        every shard of the parallel engine execute, which is what makes
        their merged results bit-identical.
        """
        design = self.design
        sta_engine = resolve_sta_engine(settings.sta_engine)
        config_tuples = [tuple(bool(x) for x in row) for row in configs]
        cells: List[KnobCellResult] = []
        for bits in bitwidths:
            case = dvas_case(design.netlist, bits)
            activity = self._activity(bits, settings)
            slacks = self._ladder_slacks(vdd_values, configs, case, sta_engine)
            for vdd, worst_slack in zip(vdd_values, slacks):
                feasible = worst_slack >= 0.0
                count = int(np.count_nonzero(feasible))
                point: Optional[OperatingPoint] = None
                if count:
                    powers = self.power.total_batch(
                        activity,
                        vdd,
                        design.fclk_ghz,
                        design.domains,
                        configs,
                    )
                    powers = np.where(feasible, powers, np.inf)
                    winner = int(np.argmin(powers))
                    dynamic = self.power.dynamic.total(
                        activity, vdd, design.fclk_ghz
                    )
                    point = OperatingPoint(
                        active_bits=bits,
                        vdd=vdd,
                        bb_config=config_tuples[winner],
                        total_power_w=float(powers[winner]),
                        dynamic_power_w=dynamic,
                        leakage_power_w=float(powers[winner]) - dynamic,
                        worst_slack_ps=float(worst_slack[winner]),
                    )
                cells.append(
                    KnobCellResult(
                        bits=bits,
                        vdd=vdd,
                        evaluated=len(config_tuples),
                        feasible_count=count,
                        best=point,
                        combo_lo=combo_lo,
                    )
                )
        return cells

    def run(
        self,
        settings: Optional[ExplorationSettings] = None,
        configs: Optional[np.ndarray] = None,
    ) -> ExplorationResult:
        """Explore every (BB assignment, bitwidth, VDD) combination.

        *configs* restricts the BB assignments (used by the DVAS baseline
        and by ablations); by default all 2^NMAX assignments are explored.
        When *settings* selects workers or the persistent cache, the sweep
        is delegated to the sharded engine in :mod:`repro.parallel`.
        """
        if settings is None:
            settings = ExplorationSettings()
        if settings.uses_parallel_engine:
            from repro.parallel.engine import ParallelExplorer

            return ParallelExplorer(self.design, explorer=self).run(
                settings, configs=configs
            )
        start = time.perf_counter()
        design = self.design
        if configs is None:
            configs = all_bb_configs(design.num_domains)
        cells = self.evaluate_cells(
            settings.bitwidths, settings.vdd_values, settings, configs
        )
        return merge_cell_results(
            design, settings, cells, time.perf_counter() - start
        )


def _fold_combo_slices(
    bits: int,
    vdd: float,
    slices: Dict[int, KnobCellResult],
) -> KnobCellResult:
    """Fold the combo-axis slices of one (bitwidth, VDD) point.

    Slices must tile ``[0, total)`` contiguously (the shard planner
    guarantees it; a cache serving a stale plan would not, and is caught
    here).  Feasible counts add; the best point folds with a strict
    minimum in ascending combo order, matching the unsplit ``argmin``.
    """
    ordered = [slices[lo] for lo in sorted(slices)]
    if len(ordered) == 1 and ordered[0].combo_lo == 0:
        return ordered[0]
    cursor = 0
    evaluated = 0
    feasible = 0
    best: Optional[OperatingPoint] = None
    for cell in ordered:
        if cell.combo_lo != cursor:
            raise ValueError(
                f"combo slices of ({bits} bits, {vdd} V) do not tile: "
                f"expected offset {cursor}, got {cell.combo_lo}"
            )
        cursor = cell.combo_hi
        evaluated += cell.evaluated
        feasible += cell.feasible_count
        if cell.best is not None and (
            best is None or cell.best.total_power_w < best.total_power_w
        ):
            best = cell.best
    return KnobCellResult(
        bits=bits,
        vdd=vdd,
        evaluated=evaluated,
        feasible_count=feasible,
        best=best,
        combo_lo=0,
    )


def merge_cell_results(
    design: ImplementedDesign,
    settings: ExplorationSettings,
    cells: Sequence[KnobCellResult],
    runtime_s: float,
) -> ExplorationResult:
    """Fold per-cell records into an :class:`ExplorationResult`.

    Cells are consumed in canonical knob order (``settings.bitwidths``
    major, ``settings.vdd_values`` minor) regardless of the order they
    were computed in, so ties in the per-bitwidth minimum resolve exactly
    as the serial loop resolves them (first VDD in settings order wins).
    A knob point split along the BB-combination axis (combo-tensor
    shards) folds back in ascending ``combo_lo`` order with a strict
    minimum, reproducing ``np.argmin`` over the unsplit power vector
    exactly -- ties resolve to the lowest combo index either way.
    """
    by_knob: Dict[Tuple[int, float], Dict[int, KnobCellResult]] = {}
    for cell in cells:
        by_knob.setdefault((cell.bits, cell.vdd), {})[cell.combo_lo] = cell
    best: Dict[int, OperatingPoint] = {}
    best_per_knob: Dict[Tuple[int, float], OperatingPoint] = {}
    feasible_counts: Dict[Tuple[int, float], int] = {}
    evaluated = 0
    feasible_total = 0
    for bits in settings.bitwidths:
        for vdd in settings.vdd_values:
            slices = by_knob.get((bits, vdd))
            if not slices:
                raise ValueError(
                    f"missing knob cell ({bits} bits, {vdd} V) in merge"
                )
            cell = _fold_combo_slices(bits, vdd, slices)
            evaluated += cell.evaluated
            feasible_counts[(bits, vdd)] = cell.feasible_count
            feasible_total += cell.feasible_count
            point = cell.best
            if point is None:
                continue
            best_per_knob[(bits, vdd)] = point
            incumbent = best.get(bits)
            if incumbent is None or point.total_power_w < incumbent.total_power_w:
                best[bits] = point
    return ExplorationResult(
        design_name=design.netlist.name,
        settings=settings,
        num_domains=design.num_domains,
        best_per_bitwidth=best,
        points_evaluated=evaluated,
        points_feasible=feasible_total,
        runtime_s=runtime_s,
        feasible_counts=feasible_counts,
        best_per_knob_point=best_per_knob,
    )
