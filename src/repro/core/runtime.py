"""Runtime accuracy control: using the mode table in a live system.

The paper produces, per operator, a table mapping each accuracy mode to its
cheapest knob configuration (per-domain back bias + global VDD), and leaves
the runtime selection to the application.  This module models that runtime:

* :class:`BiasGeneratorModel` -- the paper's Section III hardware sketch
  ("two DC-DC converters (e.g., charge pumps) can be used to generate FBB
  voltages ... and some power switches to selectively connect the Well pins
  of each domain"): switching a domain's well costs the energy to slew its
  well capacitance and takes a settling time, and re-targeting the supply
  rail costs the energy to slew the rail/decap capacitance of the whole
  operator through the regulator.
* :class:`AccuracyController` -- replays a workload trace (phases of
  required accuracy) against an exploration result, accounting mode-switch
  energy/time, and reports the adaptive-vs-static energy picture.

The controller's :meth:`AccuracyController.replay` is a thin client of the
online serving subsystem (:mod:`repro.serve`): it compiles the exploration
into a :class:`repro.serve.table.ModeTable` and runs the trace through the
shared-bias scheduler with the paper-greedy policy.
:meth:`AccuracyController.replay_reference` keeps the original closed-form
accounting loop as the differential oracle the serve tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import OperatingPoint
from repro.core.exploration import ExplorationResult
from repro.core.flow import ImplementedDesign


@dataclass(frozen=True)
class BiasGeneratorModel:
    """First-order electrical model of the bias/supply generation hardware.

    ``well_cap_ff_per_um2`` is the junction/wiring capacitance each domain
    presents to its bias rail per unit of domain area; slewing a well from
    bias ``a`` to ``b`` costs ``C_well * (a - b)^2`` through the charge
    pump (efficiency folded in) and takes ``transition_time_ns`` before
    the domain may be timed at the new corner.

    Re-targeting VDD is *not* free either: the operator's supply rail and
    decap present ``rail_cap_ff_per_um2`` per unit of total area, slewed
    through the regulator at ``regulator_efficiency``, settling in
    ``vdd_transition_time_ns``.  Well and rail slews proceed in parallel,
    so a combined transition settles in the slower of the two.
    """

    transition_time_ns: float = 100.0
    well_cap_ff_per_um2: float = 0.08
    pump_efficiency: float = 0.5
    vdd_transition_time_ns: float = 50.0
    rail_cap_ff_per_um2: float = 0.2
    regulator_efficiency: float = 0.9

    def transition_energy_j(
        self, domain_area_um2: float, vbb_from: float, vbb_to: float
    ) -> float:
        if vbb_from == vbb_to:
            return 0.0
        cap_f = domain_area_um2 * self.well_cap_ff_per_um2 * 1e-15
        swing = abs(vbb_from - vbb_to)
        return cap_f * swing**2 / self.pump_efficiency

    def rail_transition_energy_j(
        self, total_area_um2: float, vdd_from: float, vdd_to: float
    ) -> float:
        """Energy to slew the supply rail of the whole operator."""
        if vdd_from == vdd_to:
            return 0.0
        cap_f = total_area_um2 * self.rail_cap_ff_per_um2 * 1e-15
        swing = abs(vdd_from - vdd_to)
        return cap_f * swing**2 / self.regulator_efficiency


def measure_domain_areas(design: ImplementedDesign) -> np.ndarray:
    """Total cell area per Vth domain (the load each well presents)."""
    areas = np.zeros(design.num_domains)
    domains = design.domains
    for cell, domain in zip(design.netlist.cells, domains):
        areas[int(domain)] += cell.area_um2
    return areas


def pairwise_transition_cost(
    old: OperatingPoint,
    new: OperatingPoint,
    domain_areas: Sequence[float],
    generator: BiasGeneratorModel,
    fbb_voltage: float,
) -> Tuple[float, float]:
    """(energy J, time ns) to move the hardware between two operating points.

    The single costing routine shared by the offline controller and the
    compiled :class:`repro.serve.table.ModeTable` transition matrix --
    keeping both bit-identical is what makes the serve scheduler's greedy
    replay reproduce the legacy accounting exactly.
    """
    state_vbb = {False: 0.0, True: fbb_voltage}
    energy = 0.0
    settle_ns = 0.0
    if old.bb_config != new.bb_config:
        for domain, (before, after) in enumerate(
            zip(old.bb_config, new.bb_config)
        ):
            energy += generator.transition_energy_j(
                float(domain_areas[domain]),
                state_vbb[before],
                state_vbb[after],
            )
        settle_ns = generator.transition_time_ns
    if old.vdd != new.vdd:
        total_area = float(sum(domain_areas))
        energy += generator.rail_transition_energy_j(
            total_area, old.vdd, new.vdd
        )
        settle_ns = max(settle_ns, generator.vdd_transition_time_ns)
    return (energy, settle_ns)


@dataclass(frozen=True)
class WorkloadPhase:
    """A stretch of execution with a fixed accuracy requirement."""

    required_bits: int
    cycles: int


@dataclass
class RuntimeReport:
    """Outcome of replaying a workload through the controller."""

    phases: int
    total_cycles: int
    compute_energy_j: float
    transition_energy_j: float
    transition_time_ns: float
    mode_switches: int
    static_energy_j: float

    @property
    def total_energy_j(self) -> float:
        return self.compute_energy_j + self.transition_energy_j

    @property
    def transition_overhead(self) -> float:
        total = self.total_energy_j
        return self.transition_energy_j / total if total > 0.0 else 0.0

    @property
    def adaptive_saving(self) -> float:
        """Energy saved vs running every phase at maximum accuracy."""
        if self.static_energy_j <= 0.0:
            return 0.0
        return 1.0 - self.total_energy_j / self.static_energy_j

    def summary(self) -> str:
        return (
            f"{self.phases} phases / {self.total_cycles} cycles: "
            f"{self.total_energy_j * 1e9:.2f} nJ adaptive vs "
            f"{self.static_energy_j * 1e9:.2f} nJ static "
            f"({self.adaptive_saving * 100:.1f}% saved; "
            f"{self.mode_switches} mode switches costing "
            f"{self.transition_overhead * 100:.2f}% of energy)"
        )


class AccuracyController:
    """Drives one implemented operator from its exploration mode table."""

    def __init__(
        self,
        design: ImplementedDesign,
        exploration: ExplorationResult,
        generator: BiasGeneratorModel = BiasGeneratorModel(),
    ):
        if not exploration.best_per_bitwidth:
            raise ValueError("exploration found no feasible operating points")
        self.design = design
        self.exploration = exploration
        self.generator = generator
        self.mode_table: Dict[int, OperatingPoint] = dict(
            exploration.best_per_bitwidth
        )
        self._domain_areas = measure_domain_areas(design)
        fbb = design.netlist.library.process.fbb_voltage
        self._fbb_voltage = fbb
        self._state_vbb = {False: 0.0, True: fbb}
        self._compiled_table = None

    # -- mode selection ------------------------------------------------------

    def mode_for(self, required_bits: int) -> OperatingPoint:
        """Cheapest mode offering at least *required_bits* of accuracy."""
        candidates = [
            point
            for bits, point in self.mode_table.items()
            if bits >= required_bits
        ]
        if not candidates:
            raise ValueError(
                f"no feasible mode provides {required_bits} bits "
                f"(table covers up to {max(self.mode_table)})"
            )
        return min(candidates, key=lambda p: p.total_power_w)

    def transition_cost(
        self, old: Optional[OperatingPoint], new: OperatingPoint
    ) -> Tuple[float, float]:
        """(energy J, time ns) to move the hardware between two modes.

        A ``None`` *old* models power-on into the first mode: the rails
        are assumed pre-charged, so it costs nothing.  A VDD-only change
        (identical back-bias assignment at a different supply) pays the
        rail slew -- it is *not* free.
        """
        if old is None:
            return (0.0, 0.0)
        return pairwise_transition_cost(
            old, new, self._domain_areas, self.generator, self._fbb_voltage
        )

    def compiled(self):
        """The exploration compiled as a serve-layer ModeTable (cached)."""
        if self._compiled_table is None:
            from repro.serve.table import compile_mode_table

            self._compiled_table = compile_mode_table(
                self.design, self.exploration, self.generator
            )
        return self._compiled_table

    # -- workload replay -------------------------------------------------------

    def replay(
        self, workload: Sequence[WorkloadPhase], policy: str = "greedy"
    ) -> RuntimeReport:
        """Replay a trace of accuracy phases through the serve scheduler.

        Thin client of :mod:`repro.serve`: with the default greedy policy
        the numbers reproduce :meth:`replay_reference` exactly (the serve
        differential suite locks that in); other policies trade accuracy
        headroom for fewer transitions.
        """
        if not workload:
            raise ValueError("empty workload")
        from repro.serve.scheduler import replay_trace

        return replay_trace(self.compiled(), workload, policy=policy)

    def replay_reference(
        self, workload: Sequence[WorkloadPhase]
    ) -> RuntimeReport:
        """The closed-form accounting loop (differential oracle for serve).

        Greedy per-phase mode selection; a mode *switch* is counted
        whenever the operating point changes (including free first-phase
        power-on), not only when the transition costs energy.
        """
        if not workload:
            raise ValueError("empty workload")
        fclk_hz = self.design.fclk_ghz * 1e9
        max_bits = max(self.mode_table)
        static_point = self.mode_table[max_bits]

        compute_energy = 0.0
        transition_energy = 0.0
        transition_time = 0.0
        switches = 0
        static_energy = 0.0
        total_cycles = 0
        current: Optional[OperatingPoint] = None

        for phase in workload:
            point = self.mode_for(phase.required_bits)
            energy, settle_ns = self.transition_cost(current, point)
            if point != current:
                switches += 1
            transition_energy += energy
            transition_time += settle_ns
            current = point

            duration_s = phase.cycles / fclk_hz
            compute_energy += point.total_power_w * duration_s
            static_energy += static_point.total_power_w * duration_s
            total_cycles += phase.cycles

        return RuntimeReport(
            phases=len(workload),
            total_cycles=total_cycles,
            compute_energy_j=compute_energy,
            transition_energy_j=transition_energy,
            transition_time_ns=transition_time,
            mode_switches=switches,
            static_energy_j=static_energy,
        )
