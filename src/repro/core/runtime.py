"""Runtime accuracy control: using the mode table in a live system.

The paper produces, per operator, a table mapping each accuracy mode to its
cheapest knob configuration (per-domain back bias + global VDD), and leaves
the runtime selection to the application.  This module models that runtime:

* :class:`BiasGeneratorModel` -- the paper's Section III hardware sketch
  ("two DC-DC converters (e.g., charge pumps) can be used to generate FBB
  voltages ... and some power switches to selectively connect the Well pins
  of each domain"): switching a domain's well costs the energy to slew its
  well capacitance and takes a settling time.
* :class:`AccuracyController` -- replays a workload trace (phases of
  required accuracy) against an exploration result, accounting mode-switch
  energy/time, and reports the adaptive-vs-static energy picture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import OperatingPoint
from repro.core.exploration import ExplorationResult
from repro.core.flow import ImplementedDesign


@dataclass(frozen=True)
class BiasGeneratorModel:
    """First-order electrical model of the back-bias generation hardware.

    ``well_cap_ff_per_um2`` is the junction/wiring capacitance each domain
    presents to its bias rail per unit of domain area; slewing a well from
    bias ``a`` to ``b`` costs ``C_well * (a - b)^2`` through the charge
    pump (efficiency folded in) and takes ``transition_time_ns`` before
    the domain may be timed at the new corner.
    """

    transition_time_ns: float = 100.0
    well_cap_ff_per_um2: float = 0.08
    pump_efficiency: float = 0.5

    def transition_energy_j(
        self, domain_area_um2: float, vbb_from: float, vbb_to: float
    ) -> float:
        if vbb_from == vbb_to:
            return 0.0
        cap_f = domain_area_um2 * self.well_cap_ff_per_um2 * 1e-15
        swing = abs(vbb_from - vbb_to)
        return cap_f * swing**2 / self.pump_efficiency


@dataclass(frozen=True)
class WorkloadPhase:
    """A stretch of execution with a fixed accuracy requirement."""

    required_bits: int
    cycles: int


@dataclass
class RuntimeReport:
    """Outcome of replaying a workload through the controller."""

    phases: int
    total_cycles: int
    compute_energy_j: float
    transition_energy_j: float
    transition_time_ns: float
    mode_switches: int
    static_energy_j: float

    @property
    def total_energy_j(self) -> float:
        return self.compute_energy_j + self.transition_energy_j

    @property
    def transition_overhead(self) -> float:
        total = self.total_energy_j
        return self.transition_energy_j / total if total > 0.0 else 0.0

    @property
    def adaptive_saving(self) -> float:
        """Energy saved vs running every phase at maximum accuracy."""
        if self.static_energy_j <= 0.0:
            return 0.0
        return 1.0 - self.total_energy_j / self.static_energy_j

    def summary(self) -> str:
        return (
            f"{self.phases} phases / {self.total_cycles} cycles: "
            f"{self.total_energy_j * 1e9:.2f} nJ adaptive vs "
            f"{self.static_energy_j * 1e9:.2f} nJ static "
            f"({self.adaptive_saving * 100:.1f}% saved; "
            f"{self.mode_switches} mode switches costing "
            f"{self.transition_overhead * 100:.2f}% of energy)"
        )


class AccuracyController:
    """Drives one implemented operator from its exploration mode table."""

    def __init__(
        self,
        design: ImplementedDesign,
        exploration: ExplorationResult,
        generator: BiasGeneratorModel = BiasGeneratorModel(),
    ):
        if not exploration.best_per_bitwidth:
            raise ValueError("exploration found no feasible operating points")
        self.design = design
        self.generator = generator
        self.mode_table: Dict[int, OperatingPoint] = dict(
            exploration.best_per_bitwidth
        )
        self._domain_areas = self._measure_domain_areas()
        fbb = design.netlist.library.process.fbb_voltage
        self._state_vbb = {False: 0.0, True: fbb}

    def _measure_domain_areas(self) -> np.ndarray:
        areas = np.zeros(self.design.num_domains)
        domains = self.design.domains
        for cell, domain in zip(self.design.netlist.cells, domains):
            areas[int(domain)] += cell.area_um2
        return areas

    # -- mode selection ------------------------------------------------------

    def mode_for(self, required_bits: int) -> OperatingPoint:
        """Cheapest mode offering at least *required_bits* of accuracy."""
        candidates = [
            point
            for bits, point in self.mode_table.items()
            if bits >= required_bits
        ]
        if not candidates:
            raise ValueError(
                f"no feasible mode provides {required_bits} bits "
                f"(table covers up to {max(self.mode_table)})"
            )
        return min(candidates, key=lambda p: p.total_power_w)

    def transition_cost(
        self, old: Optional[OperatingPoint], new: OperatingPoint
    ) -> Tuple[float, float]:
        """(energy J, time ns) to move the hardware between two modes."""
        if old is None or old.bb_config == new.bb_config:
            return (0.0, 0.0)
        energy = 0.0
        for domain, (before, after) in enumerate(
            zip(old.bb_config, new.bb_config)
        ):
            energy += self.generator.transition_energy_j(
                self._domain_areas[domain],
                self._state_vbb[before],
                self._state_vbb[after],
            )
        return (energy, self.generator.transition_time_ns)

    # -- workload replay -------------------------------------------------------

    def replay(self, workload: Sequence[WorkloadPhase]) -> RuntimeReport:
        """Replay a trace of accuracy phases; account compute + transitions."""
        if not workload:
            raise ValueError("empty workload")
        fclk_hz = self.design.fclk_ghz * 1e9
        max_bits = max(self.mode_table)
        static_point = self.mode_table[max_bits]

        compute_energy = 0.0
        transition_energy = 0.0
        transition_time = 0.0
        switches = 0
        static_energy = 0.0
        total_cycles = 0
        current: Optional[OperatingPoint] = None

        for phase in workload:
            point = self.mode_for(phase.required_bits)
            energy, settle_ns = self.transition_cost(current, point)
            if energy > 0.0 or settle_ns > 0.0:
                switches += 1
            transition_energy += energy
            transition_time += settle_ns
            current = point

            duration_s = phase.cycles / fclk_hz
            compute_energy += point.total_power_w * duration_s
            static_energy += static_point.total_power_w * duration_s
            total_cycles += phase.cycles

        return RuntimeReport(
            phases=len(workload),
            total_cycles=total_cycles,
            compute_energy_j=compute_energy,
            transition_energy_j=transition_energy,
            transition_time_ns=transition_time,
            mode_switches=switches,
            static_energy_j=static_energy,
        )
