"""Pareto-front utilities for the accuracy/power plane."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import OperatingPoint


def pareto_points(points: Sequence[OperatingPoint]) -> List[OperatingPoint]:
    """Non-dominated subset of *points* (maximize bits, minimize power).

    A point is dominated when another point offers at least as many bits
    for strictly less power, or more bits for at most the same power.
    """
    kept: List[OperatingPoint] = []
    for candidate in points:
        dominated = False
        for other in points:
            if other is candidate:
                continue
            better_bits = other.active_bits >= candidate.active_bits
            better_power = other.total_power_w <= candidate.total_power_w
            strictly = (
                other.active_bits > candidate.active_bits
                or other.total_power_w < candidate.total_power_w
            )
            if better_bits and better_power and strictly:
                dominated = True
                break
        if not dominated:
            kept.append(candidate)
    return sorted(kept, key=lambda p: p.active_bits)


def dominated_mask(points: Sequence[OperatingPoint]) -> np.ndarray:
    """Boolean mask aligned with *points*: True where dominated."""
    front = set(id(p) for p in pareto_points(points))
    return np.asarray([id(p) not in front for p in points], dtype=bool)


def power_saving(
    reference: Dict[int, OperatingPoint],
    improved: Dict[int, OperatingPoint],
    bits: int,
) -> Optional[float]:
    """Fractional power saving of *improved* vs *reference* at *bits*.

    Returns ``None`` when either frontier has no feasible point at that
    accuracy (e.g. DVAS NoBB at high bitwidths).
    """
    ref = reference.get(bits)
    new = improved.get(bits)
    if ref is None or new is None or ref.total_power_w <= 0.0:
        return None
    return 1.0 - new.total_power_w / ref.total_power_w
