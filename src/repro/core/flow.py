"""The implementation phase of the paper's flow (its Fig. 4, green part).

Two entry points:

* :func:`implement_base` -- the reference implementation without Vth
  domains: place, extract, pick the nominal clock, fix timing at the
  all-FBB corner, recover power.  This is the design DVAS runs on.
* :func:`implement_with_domains` -- the proposed flow: re-build the same
  RTL, place it identically, insert the regular grid of Vth domains with
  guardbands, incrementally re-place, re-extract and re-close timing at
  the same clock.  This is the design the exhaustive optimization runs on.

Both return an :class:`ImplementedDesign`, the bundle every downstream
analysis (exploration, DVAS, benchmarks) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import floor
from typing import Callable, Optional

import numpy as np

from repro.netlist.netlist import Netlist
from repro.netlist.transform import buffer_high_fanout
from repro.netlist.validate import validate_netlist
from repro.pnr.grid import DomainInsertionResult, GridPartition, insert_domains
from repro.pnr.incremental import incremental_place
from repro.pnr.parasitics import Parasitics, extract_parasitics
from repro.pnr.placer import GlobalPlacer, PlacementResult
from repro.pnr.sizing import power_recovery, timing_fix
from repro.sta.constraints import ClockConstraint
from repro.sta.engine import StaEngine
from repro.sta.graph import TimingGraph, compile_timing_graph
from repro.techlib.library import Library


@dataclass
class ImplementedDesign:
    """A placed, sized, timing-closed design ready for the optimization phase."""

    netlist: Netlist
    placement: PlacementResult
    parasitics: Parasitics
    constraint: ClockConstraint
    fclk_ghz: float
    insertion: Optional[DomainInsertionResult] = None

    @property
    def num_domains(self) -> int:
        if self.insertion is None:
            return 1
        return self.insertion.partition.num_domains

    @property
    def domains(self) -> np.ndarray:
        """Per-cell domain ids (all zero for a domain-less design)."""
        if self.insertion is None:
            return np.zeros(len(self.netlist.cells), dtype=np.int64)
        return self.insertion.domains

    @property
    def area_um2(self) -> float:
        return self.placement.floorplan.area_um2

    @property
    def area_overhead(self) -> float:
        return self.insertion.area_overhead if self.insertion else 0.0

    def timing_graph(self) -> TimingGraph:
        """Compile the current netlist/parasitics into a timing graph."""
        return compile_timing_graph(self.netlist, self.parasitics)

    def describe(self) -> str:
        grid = self.insertion.partition.label if self.insertion else "none"
        return (
            f"{self.netlist.name}: {len(self.netlist.cells)} cells, "
            f"die {self.area_um2:.0f} um^2, fclk {self.fclk_ghz:.2f} GHz, "
            f"domains {grid}, overhead {self.area_overhead * 100:.1f}%"
        )


def _select_clock(
    netlist: Netlist,
    parasitics: Parasitics,
    library: Library,
    speedup_target: float = 0.88,
    relax_step: float = 1.03,
    max_attempts: int = 8,
    frequency_step_ghz: float = 0.05,
) -> ClockConstraint:
    """Pick the nominal clock the way a designer would sign it off.

    Start from the unsized critical path at the implementation corner
    (nominal VDD, all FBB), aim slightly faster (upsizing will recover it),
    relax a few percent at a time until timing-fix closes, then round the
    frequency *down* to the next 50 MHz grid point, which is how Table I
    ends up with numbers like 1.25 / 1.00 / 0.75 GHz.
    """
    graph = compile_timing_graph(netlist, parasitics)
    engine = StaEngine(graph, library)
    all_fbb = np.ones(graph.num_cells, dtype=bool)
    nominal_vdd = library.process.vdd_nominal
    target_ps = engine.critical_path_delay(nominal_vdd, all_fbb) * speedup_target

    for _ in range(max_attempts):
        constraint = ClockConstraint(target_ps)
        result = timing_fix(netlist, parasitics, constraint)
        if result.feasible:
            fclk = floor(1000.0 / target_ps / frequency_step_ghz) * frequency_step_ghz
            return ClockConstraint(1000.0 / fclk)
        target_ps *= relax_step
    raise RuntimeError(
        f"could not close timing on {netlist.name!r} within {max_attempts} "
        "relaxation attempts"
    )


def _prepare(
    netlist_factory: Callable[[], Netlist],
    utilization: float,
    seed: int,
    max_fanout: int,
):
    """Common front end: build, buffer, validate, place, extract."""
    netlist = netlist_factory()
    buffer_high_fanout(netlist, max_fanout=max_fanout)
    validate_netlist(netlist)
    placement = GlobalPlacer(netlist, utilization=utilization, seed=seed).run()
    parasitics = extract_parasitics(placement)
    return netlist, placement, parasitics


def _close_timing(netlist, parasitics, constraint) -> None:
    """The sign-off sizing recipe, identical for base and domained flows."""
    fix = timing_fix(netlist, parasitics, constraint)
    if not fix.feasible:
        raise RuntimeError(
            f"{netlist.name!r}: cannot close timing at "
            f"{constraint.frequency_ghz:.2f} GHz"
        )
    recovery = power_recovery(netlist, parasitics, constraint)
    if not recovery.feasible:
        raise RuntimeError(
            f"{netlist.name!r}: power recovery left timing violations"
        )
    # Hold sign-off at the fastest corner the exploration may select
    # (boosting can only make min-delay paths faster).
    from repro.sta.hold import HoldAnalyzer

    graph = compile_timing_graph(netlist, parasitics)
    hold = HoldAnalyzer(graph, netlist.library).analyze(
        netlist.library.process.vdd_nominal,
        np.ones(graph.num_cells, dtype=bool),
    )
    if not hold.feasible:
        raise RuntimeError(
            f"{netlist.name!r}: hold violations at the fast corner: "
            f"{hold.violations()[:5]}"
        )


def select_clock_for(
    netlist_factory: Callable[[], Netlist],
    library: Library,
    utilization: float = 0.7,
    seed: int = 42,
    max_fanout: int = 8,
) -> ClockConstraint:
    """Determine the nominal clock on a scratch implementation.

    Runs the clock search on a throw-away copy of the design so the sizing
    churn of the search never leaks into the signed-off implementations --
    base and domained designs are then both closed against the same final
    constraint with the same recipe, making them directly comparable.
    """
    netlist, _placement, parasitics = _prepare(
        netlist_factory, utilization, seed, max_fanout
    )
    return _select_clock(netlist, parasitics, library)


def implement_base(
    netlist_factory: Callable[[], Netlist],
    library: Library,
    constraint: Optional[ClockConstraint] = None,
    utilization: float = 0.7,
    seed: int = 42,
    max_fanout: int = 8,
) -> ImplementedDesign:
    """Run the implementation phase without Vth domains."""
    if constraint is None:
        constraint = select_clock_for(
            netlist_factory, library, utilization, seed, max_fanout
        )
    netlist, placement, parasitics = _prepare(
        netlist_factory, utilization, seed, max_fanout
    )
    _close_timing(netlist, parasitics, constraint)
    return ImplementedDesign(
        netlist=netlist,
        placement=placement,
        parasitics=parasitics,
        constraint=constraint,
        fclk_ghz=constraint.frequency_ghz,
    )


def implement_with_domains(
    netlist_factory: Callable[[], Netlist],
    library: Library,
    partition: GridPartition,
    constraint: Optional[ClockConstraint] = None,
    utilization: float = 0.7,
    seed: int = 42,
    max_fanout: int = 8,
) -> ImplementedDesign:
    """Run the full proposed flow: placement + grid Vth domains.

    *constraint* is normally the clock selected by the base implementation
    (the paper compares both methods at the same nominal frequency); when
    omitted, the clock is selected on this design before domain insertion.
    """
    if constraint is None:
        constraint = select_clock_for(
            netlist_factory, library, utilization, seed, max_fanout
        )
    netlist, placement, _parasitics = _prepare(
        netlist_factory, utilization, seed, max_fanout
    )
    insertion = insert_domains(placement, partition, library.process)
    incremental_place(insertion)
    parasitics = extract_parasitics(insertion.placement)

    # Close timing on the enlarged die (wires crossing guardbands grew)
    # with the same sign-off recipe as the base implementation, at the
    # all-FBB implementation corner.
    _close_timing(netlist, parasitics, constraint)
    return ImplementedDesign(
        netlist=netlist,
        placement=insertion.placement,
        parasitics=parasitics,
        constraint=constraint,
        fclk_ghz=constraint.frequency_ghz,
        insertion=insertion,
    )
