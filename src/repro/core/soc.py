"""Multi-operator composition: one die, many independent accuracy modes.

The paper's second headline advantage (Section I): the Vth knob "permits to
independently configure the bitwidth of different units in the same die
without the need of inserting level shifters".  With plain DVAS, operators
at different accuracies want different supplies, and in MOS "voltage
domains must be separated inserting level shifters, which introduce
significant power overheads" (Section II-B, citing Hu et al. [18]).

This module composes several implemented operators into a system point and
compares the two strategies:

* **Back-bias sharing** (the proposed method): a single system supply, each
  operator trimmed per-domain via BB.  No level shifters.
* **Voltage islands** (multi-VDD DVAS): each operator at its individually
  optimal supply, paying a level shifter on every I/O bit of every
  operator whose island differs from the system voltage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import ExplorationSettings, OperatingPoint
from repro.core.exploration import ExhaustiveExplorer, ExplorationResult
from repro.core.flow import ImplementedDesign

try:  # typing-only import; avoids a cycle at runtime
    from typing import Protocol

    class DvasLike(Protocol):
        best_per_bitwidth: Dict[int, OperatingPoint]
except ImportError:  # pragma: no cover
    DvasLike = object


@dataclass(frozen=True)
class LevelShifterModel:
    """Electrical cost of one level shifter (per crossing signal bit).

    Dual-rail level shifters burn static current and add switching
    capacitance; defaults are typical of 28nm standard-cell shifters.
    """

    energy_cap_ff: float = 3.0
    leakage_nw: float = 25.0
    toggle_rate: float = 0.25

    def power_w(self, bits: int, vdd_high: float, fclk_ghz: float) -> float:
        """Total shifter power for *bits* crossing signals."""
        if bits <= 0:
            return 0.0
        dynamic = (
            0.5
            * self.toggle_rate
            * self.energy_cap_ff
            * 1e-15
            * vdd_high**2
            * fclk_ghz
            * 1e9
            * bits
        )
        static = self.leakage_nw * 1e-9 * bits
        return dynamic + static


@dataclass
class OperatorSlot:
    """One operator instance in the system with its accuracy requirement.

    *exploration* is the proposed method's result (shared-supply strategy);
    *dvas_exploration*, when given, is the all-FBB DVAS result used as the
    voltage-island baseline (the strategy that actually needs per-operator
    supplies).  Without it, the island baseline falls back to the proposed
    exploration, which makes the comparison conservative (islands also get
    BB trimming).
    """

    name: str
    design: ImplementedDesign
    exploration: ExplorationResult
    required_bits: int
    dvas_exploration: Optional["DvasLike"] = None

    @property
    def io_bits(self) -> int:
        """Signals crossing the operator boundary (all data ports)."""
        netlist = self.design.netlist
        total = sum(b.width for b in netlist.input_buses.values())
        total += sum(b.width for b in netlist.output_buses.values())
        return total


@dataclass
class SystemPoint:
    """One composed system configuration."""

    strategy: str
    operator_points: Dict[str, OperatingPoint]
    operator_power_w: float
    shifter_power_w: float
    shared_vdd: Optional[float]

    @property
    def total_power_w(self) -> float:
        return self.operator_power_w + self.shifter_power_w

    def describe(self) -> str:
        vdd = f" @ shared {self.shared_vdd:.1f} V" if self.shared_vdd else ""
        shifters = (
            f" + {self.shifter_power_w * 1e3:.3f} mW level shifters"
            if self.shifter_power_w > 0.0
            else ""
        )
        return (
            f"{self.strategy}{vdd}: "
            f"{self.operator_power_w * 1e3:.3f} mW operators{shifters} "
            f"= {self.total_power_w * 1e3:.3f} mW"
        )


def build_slots(
    designs: Mapping[str, ImplementedDesign],
    required_bits: Mapping[str, int],
    settings: Optional[ExplorationSettings] = None,
) -> List[OperatorSlot]:
    """Explore every operator and wrap the results as composer slots.

    The settings' execution knobs thread straight through: with
    ``workers``/``cache`` set, each operator's mode-table sweep runs on
    the sharded engine and persists, so re-composing a system after
    changing one operator only re-explores that operator.
    """
    if settings is None:
        settings = ExplorationSettings()
    missing = sorted(set(designs) - set(required_bits))
    if missing:
        raise ValueError(f"no required_bits for operators: {missing}")
    return [
        OperatorSlot(
            name=name,
            design=design,
            exploration=ExhaustiveExplorer(design).run(settings),
            required_bits=required_bits[name],
        )
        for name, design in designs.items()
    ]


class SocComposer:
    """Evaluates system-level strategies over a set of operator slots."""

    def __init__(
        self,
        slots: Sequence[OperatorSlot],
        system_vdd: float = 1.0,
        shifters: LevelShifterModel = LevelShifterModel(),
    ):
        if not slots:
            raise ValueError("need at least one operator")
        names = [slot.name for slot in slots]
        if len(set(names)) != len(names):
            raise ValueError("operator names must be unique")
        self.slots = list(slots)
        self.system_vdd = system_vdd
        self.shifters = shifters

    # -- strategies --------------------------------------------------------

    def shared_supply_point(self) -> SystemPoint:
        """Proposed: one supply for all operators, per-domain BB trimming.

        Chooses the shared VDD (from the first slot's explored grid) that
        minimizes total power while every operator has a feasible
        configuration at its required accuracy.
        """
        vdd_values = self.slots[0].exploration.settings.vdd_values
        best: Optional[SystemPoint] = None
        for vdd in vdd_values:
            points: Dict[str, OperatingPoint] = {}
            feasible = True
            for slot in self.slots:
                point = slot.exploration.best_at(slot.required_bits, vdd)
                if point is None:
                    feasible = False
                    break
                points[slot.name] = point
            if not feasible:
                continue
            total = sum(p.total_power_w for p in points.values())
            candidate = SystemPoint(
                strategy="shared supply + per-domain BB",
                operator_points=points,
                operator_power_w=total,
                shifter_power_w=0.0,
                shared_vdd=vdd,
            )
            if best is None or candidate.total_power_w < best.total_power_w:
                best = candidate
        if best is None:
            raise ValueError(
                "no shared supply satisfies every operator's accuracy"
            )
        return best

    def voltage_island_point(self) -> SystemPoint:
        """Baseline: per-operator VDD islands with level-shifted I/O.

        Each operator runs at its individually optimal point; operators
        whose island voltage differs from the system supply pay a level
        shifter on every I/O bit.
        """
        points: Dict[str, OperatingPoint] = {}
        shifter_power = 0.0
        for slot in self.slots:
            table = (
                slot.dvas_exploration.best_per_bitwidth
                if slot.dvas_exploration is not None
                else slot.exploration.best_per_bitwidth
            )
            point = table.get(slot.required_bits)
            if point is None:
                raise ValueError(
                    f"operator {slot.name!r} has no feasible mode at "
                    f"{slot.required_bits} bits"
                )
            points[slot.name] = point
            if abs(point.vdd - self.system_vdd) > 1e-9:
                shifter_power += self.shifters.power_w(
                    slot.io_bits,
                    max(point.vdd, self.system_vdd),
                    slot.design.fclk_ghz,
                )
        return SystemPoint(
            strategy="per-operator voltage islands + level shifters",
            operator_points=points,
            operator_power_w=sum(p.total_power_w for p in points.values()),
            shifter_power_w=shifter_power,
            shared_vdd=None,
        )

    def compare(self) -> Tuple[SystemPoint, SystemPoint, float]:
        """(shared-supply point, island point, fractional saving)."""
        shared = self.shared_supply_point()
        islands = self.voltage_island_point()
        saving = 1.0 - shared.total_power_w / islands.total_power_w
        return shared, islands, saving
