"""Exploration settings and operating points."""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

#: ``workers`` value requesting auto-detection (``REPRO_WORKERS`` env var,
#: falling back to the machine's CPU count).
AUTO_WORKERS = -1


def resolve_env_count(
    requested: int,
    env_var: str,
    auto: int = AUTO_WORKERS,
    default: Optional[int] = None,
) -> int:
    """Resolve a process-count knob against an environment override.

    The one worker-count policy shared by the sharded exploration engine
    (``$REPRO_WORKERS``) and the fleet serving tier
    (``$REPRO_FLEET_WORKERS``): a *requested* value equal to *auto*
    consults ``$env_var`` first and falls back to *default* (the CPU
    count when ``None``); explicit values are clamped to >= 1.  A
    non-integer override raises a chained :class:`ValueError` naming the
    variable.
    """
    if requested == auto:
        env = os.environ.get(env_var)
        if env:
            try:
                return max(1, int(env))
            except ValueError as exc:
                raise ValueError(
                    f"${env_var} must be an integer, got {env!r}"
                ) from exc
        if default is not None:
            return max(1, default)
        return max(1, os.cpu_count() or 1)
    return max(1, requested)


def resolve_env_choice(
    requested: Optional[str],
    env_var: str,
    choices: Sequence[str],
    *,
    what: str,
    auto: str = "auto",
) -> str:
    """Resolve an ``auto``-style engine knob against an env override.

    The one choice-knob policy shared by the simulation
    (``$REPRO_SIM_ENGINE``), STA (``$REPRO_STA_ENGINE``) and serve
    (``$REPRO_SERVE_ENGINE``) engine selectors: ``None`` means *auto*;
    *auto* consults ``$env_var`` (unset/empty keeps *auto*); explicit
    requests win over the environment.  Invalid requests raise a
    :class:`ValueError` naming the knob (*what*); invalid overrides
    raise one naming the variable -- so a bad ``export`` is never
    mistaken for a bad call site.
    """
    value = requested if requested is not None else auto
    if value not in choices:
        raise ValueError(
            f"unknown {what} {value!r}; expected one of {tuple(choices)}"
        )
    if value == auto:
        env = os.environ.get(env_var)
        if env:
            if env not in choices:
                raise ValueError(
                    f"${env_var} must be one of {tuple(choices)}, "
                    f"got {env!r}"
                )
            value = env
    return value


@dataclass(frozen=True)
class ExplorationSettings:
    """Knob ranges of the optimization phase.

    Defaults mirror the paper's experimental setup: bitwidths 1..16, five
    supply voltages from 1.0 V down to 0.6 V in 0.1 V steps, switching
    activity annotated from random stimulus.

    ``workers``/``cache`` select the sharded execution engine
    (:mod:`repro.parallel`): ``workers=0`` (default) keeps the legacy
    in-process serial sweep, ``workers=1`` runs the sharded engine
    serially (debuggable, bit-identical), ``workers>1`` fans shards out
    over a process pool and :data:`AUTO_WORKERS` auto-detects the count.
    ``cache`` persists per-shard results under ``cache_dir`` (default
    ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``), which also provides
    checkpoint/resume of interrupted sweeps.  Neither knob may change the
    numbers: results are bit-identical to the serial explorer.

    ``sim_engine`` picks the switching-activity simulation engine
    (``"auto"``, ``"packed"`` or ``"interpreted"``; see
    :mod:`repro.sim.simulator`).  The engines are differential-tested
    bit-identical, but the choice is still a semantic field (it is part
    of shard cache keys) out of caution.

    ``sta_engine`` picks the timing-feasibility engine over the BB
    lattice (``"auto"``, ``"lattice"`` or ``"pointwise"``; see
    :mod:`repro.sta.lattice`).  ``lattice`` sweeps every 2^NMAX
    combination in one tensor pass, ``pointwise`` loops the scalar
    engine per combination (the differential reference); ``auto``
    (default, overridable via ``$REPRO_STA_ENGINE``) resolves to
    ``lattice``.  Shard cache keys embed the *resolved* engine, so
    lattice and pointwise results coexist in one cache dir without ever
    being served across engines.
    """

    bitwidths: Tuple[int, ...] = tuple(range(1, 17))
    vdd_values: Tuple[float, ...] = (1.0, 0.9, 0.8, 0.7, 0.6)
    activity_cycles: int = 40
    activity_batch: int = 48
    seed: int = 2017
    workers: int = 0
    cache: bool = False
    cache_dir: Optional[str] = None
    sim_engine: str = "auto"
    sta_engine: str = "auto"

    def __post_init__(self):
        if not self.bitwidths:
            raise ValueError("need at least one bitwidth")
        if any(b < 1 for b in self.bitwidths):
            raise ValueError("bitwidths must be >= 1")
        if not self.vdd_values:
            raise ValueError("need at least one supply voltage")
        if any(v <= 0.0 for v in self.vdd_values):
            raise ValueError("supply voltages must be positive")
        if self.workers < AUTO_WORKERS:
            raise ValueError(
                f"workers must be >= {AUTO_WORKERS} (got {self.workers})"
            )
        if self.sim_engine not in ("auto", "packed", "interpreted"):
            raise ValueError(
                f"sim_engine must be auto, packed or interpreted "
                f"(got {self.sim_engine!r})"
            )
        if self.sta_engine not in ("auto", "lattice", "pointwise"):
            raise ValueError(
                f"sta_engine must be auto, lattice or pointwise "
                f"(got {self.sta_engine!r})"
            )

    @property
    def num_knob_points(self) -> int:
        """Bitwidth x VDD grid size (BB assignments multiply on top)."""
        return len(self.bitwidths) * len(self.vdd_values)

    @property
    def uses_parallel_engine(self) -> bool:
        """Whether run() should route through :mod:`repro.parallel`."""
        return self.workers != 0 or self.cache

    def semantic_fields(self) -> Dict[str, object]:
        """The fields that determine exploration *numbers*.

        Execution knobs (workers, cache, cache_dir) are excluded: they
        change how results are computed, never what they are, so cached
        shards stay valid across worker counts and cache locations.
        ``sim_engine`` *is* included: the engines are differential-tested
        bit-identical, but fingerprinting the choice keeps cached shards
        attributable to the engine that produced them.  The STA engine is
        fingerprinted separately by :func:`repro.parallel.fingerprint.shard_key`
        via :meth:`resolved_sta_engine`, so ``auto`` and an explicit
        ``lattice`` request share entries (they run the same kernel)
        while lattice and pointwise runs never do.
        """
        return {
            "activity_cycles": self.activity_cycles,
            "activity_batch": self.activity_batch,
            "seed": self.seed,
            "sim_engine": self.sim_engine,
        }

    @property
    def resolved_sta_engine(self) -> str:
        """The STA engine that will actually run (lattice or pointwise)."""
        from repro.sta.lattice import resolve_sta_engine

        return resolve_sta_engine(self.sta_engine)


@dataclass(frozen=True)
class OperatingPoint:
    """One fully specified runtime configuration and its analysis results.

    ``bb_config`` is the per-domain FBB flags (length = number of Vth
    domains; a design without domains uses a single entry).
    """

    active_bits: int
    vdd: float
    bb_config: Tuple[bool, ...]
    total_power_w: float
    dynamic_power_w: float
    leakage_power_w: float
    worst_slack_ps: float

    @property
    def feasible(self) -> bool:
        return self.worst_slack_ps >= 0.0

    @property
    def num_boosted_domains(self) -> int:
        return sum(self.bb_config)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (used by result files and the shard cache)."""
        return {
            "active_bits": self.active_bits,
            "vdd": self.vdd,
            "bb_config": list(self.bb_config),
            "total_power_w": self.total_power_w,
            "dynamic_power_w": self.dynamic_power_w,
            "leakage_power_w": self.leakage_power_w,
            "worst_slack_ps": self.worst_slack_ps,
        }

    @staticmethod
    def from_dict(data: Dict) -> "OperatingPoint":
        return OperatingPoint(
            active_bits=int(data["active_bits"]),
            vdd=float(data["vdd"]),
            bb_config=tuple(bool(x) for x in data["bb_config"]),
            total_power_w=float(data["total_power_w"]),
            dynamic_power_w=float(data["dynamic_power_w"]),
            leakage_power_w=float(data["leakage_power_w"]),
            worst_slack_ps=float(data["worst_slack_ps"]),
        )

    def describe(self) -> str:
        bb = "".join("F" if f else "-" for f in self.bb_config)
        return (
            f"{self.active_bits:2d} bits @ {self.vdd:.1f} V, BB[{bb}]: "
            f"{self.total_power_w * 1e3:.3f} mW "
            f"(slack {self.worst_slack_ps:+.0f} ps)"
        )
