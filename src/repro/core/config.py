"""Exploration settings and operating points."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class ExplorationSettings:
    """Knob ranges of the optimization phase.

    Defaults mirror the paper's experimental setup: bitwidths 1..16, five
    supply voltages from 1.0 V down to 0.6 V in 0.1 V steps, switching
    activity annotated from random stimulus.
    """

    bitwidths: Tuple[int, ...] = tuple(range(1, 17))
    vdd_values: Tuple[float, ...] = (1.0, 0.9, 0.8, 0.7, 0.6)
    activity_cycles: int = 40
    activity_batch: int = 48
    seed: int = 2017

    def __post_init__(self):
        if not self.bitwidths:
            raise ValueError("need at least one bitwidth")
        if any(b < 1 for b in self.bitwidths):
            raise ValueError("bitwidths must be >= 1")
        if not self.vdd_values:
            raise ValueError("need at least one supply voltage")
        if any(v <= 0.0 for v in self.vdd_values):
            raise ValueError("supply voltages must be positive")

    @property
    def num_knob_points(self) -> int:
        """Bitwidth x VDD grid size (BB assignments multiply on top)."""
        return len(self.bitwidths) * len(self.vdd_values)


@dataclass(frozen=True)
class OperatingPoint:
    """One fully specified runtime configuration and its analysis results.

    ``bb_config`` is the per-domain FBB flags (length = number of Vth
    domains; a design without domains uses a single entry).
    """

    active_bits: int
    vdd: float
    bb_config: Tuple[bool, ...]
    total_power_w: float
    dynamic_power_w: float
    leakage_power_w: float
    worst_slack_ps: float

    @property
    def feasible(self) -> bool:
        return self.worst_slack_ps >= 0.0

    @property
    def num_boosted_domains(self) -> int:
        return sum(self.bb_config)

    def describe(self) -> str:
        bb = "".join("F" if f else "-" for f in self.bb_config)
        return (
            f"{self.active_bits:2d} bits @ {self.vdd:.1f} V, BB[{bb}]: "
            f"{self.total_power_w * 1e3:.3f} mW "
            f"(slack {self.worst_slack_ps:+.0f} ps)"
        )
