"""The Netlist container."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.netlist.cell import CellInst
from repro.netlist.net import Net, PinRef
from repro.techlib.cells import CellTemplate
from repro.techlib.library import Library


@dataclass
class PortBus:
    """An ordered group of port nets, LSB first (``nets[0]`` is bit 0).

    ``signed`` records the two's-complement interpretation used when the
    simulator packs the bus back into integers.
    """

    name: str
    nets: List[Net]
    is_input: bool
    signed: bool = True

    @property
    def width(self) -> int:
        return len(self.nets)

    def __iter__(self):
        return iter(self.nets)

    def __getitem__(self, i):
        return self.nets[i]


class Netlist:
    """A flat gate-level netlist bound to a library.

    Cells and nets carry stable integer indices (their position in
    :attr:`cells` / :attr:`nets`) that analysis engines use to build flat
    numpy views.  Indices never change once assigned; removing cells is not
    supported (the flow never needs it).
    """

    def __init__(self, name: str, library: Library):
        self.name = name
        self.library = library
        self.cells: List[CellInst] = []
        self.nets: List[Net] = []
        self._net_by_name: Dict[str, Net] = {}
        self._cell_by_name: Dict[str, CellInst] = {}
        self.input_buses: Dict[str, PortBus] = {}
        self.output_buses: Dict[str, PortBus] = {}
        self.clock_net: Optional[Net] = None

    # -- construction ---------------------------------------------------

    def add_net(self, name: str) -> Net:
        """Create a new net; names must be unique within the netlist."""
        if name in self._net_by_name:
            raise ValueError(f"duplicate net name {name!r}")
        net = Net(name, len(self.nets))
        self.nets.append(net)
        self._net_by_name[name] = net
        return net

    def add_cell(
        self,
        name: str,
        template: CellTemplate,
        input_nets: Sequence[Net],
        output_nets: Sequence[Net],
        drive_name: str = "X1",
    ) -> CellInst:
        """Instantiate *template* and hook up its connectivity."""
        if name in self._cell_by_name:
            raise ValueError(f"duplicate cell name {name!r}")
        cell = CellInst(
            name, len(self.cells), template, drive_name,
            list(input_nets), list(output_nets),
        )
        for position, net in enumerate(cell.input_nets):
            net.add_sink(PinRef(cell, position, is_output=False))
        for position, net in enumerate(cell.output_nets):
            net.set_driver(PinRef(cell, position, is_output=True))
        self.cells.append(cell)
        self._cell_by_name[name] = cell
        return cell

    def mark_input_bus(self, name: str, nets: Sequence[Net]) -> PortBus:
        bus = PortBus(name, list(nets), is_input=True)
        for net in nets:
            net.is_primary_input = True
        self.input_buses[name] = bus
        return bus

    def mark_output_bus(
        self, name: str, nets: Sequence[Net], signed: bool = True
    ) -> PortBus:
        bus = PortBus(name, list(nets), is_input=False, signed=signed)
        for net in nets:
            net.is_primary_output = True
        self.output_buses[name] = bus
        return bus

    def set_clock(self, net: Net) -> None:
        if self.clock_net is not None:
            raise ValueError("clock already set")
        net.is_clock = True
        self.clock_net = net

    # -- lookup ----------------------------------------------------------

    def net(self, name: str) -> Net:
        return self._net_by_name[name]

    def cell(self, name: str) -> CellInst:
        return self._cell_by_name[name]

    # -- derived views -----------------------------------------------------

    @property
    def combinational_cells(self) -> List[CellInst]:
        return [c for c in self.cells if not c.is_sequential]

    @property
    def sequential_cells(self) -> List[CellInst]:
        return [c for c in self.cells if c.is_sequential]

    def topological_cells(self) -> List[CellInst]:
        """Combinational cells in dependency order (Kahn's algorithm).

        Sources are primary inputs, tie cells and flip-flop outputs; a
        combinational cycle raises :class:`ValueError`.
        """
        in_degree: Dict[int, int] = {}
        ready: List[CellInst] = []
        for cell in self.cells:
            if cell.is_sequential:
                continue
            degree = 0
            for net in cell.input_nets:
                driver = net.driver
                if driver is not None and not driver.cell.is_sequential:
                    degree += 1
            in_degree[cell.index] = degree
            if degree == 0:
                ready.append(cell)
        order: List[CellInst] = []
        cursor = 0
        while cursor < len(ready):
            cell = ready[cursor]
            cursor += 1
            order.append(cell)
            for net in cell.output_nets:
                for sink in net.sinks:
                    consumer = sink.cell
                    if consumer.is_sequential:
                        continue
                    in_degree[consumer.index] -= 1
                    if in_degree[consumer.index] == 0:
                        ready.append(consumer)
        expected = sum(1 for c in self.cells if not c.is_sequential)
        if len(order) != expected:
            raise ValueError(
                f"netlist {self.name!r} has a combinational loop "
                f"({expected - len(order)} cells unreachable)"
            )
        return order

    def logic_levels(self) -> Dict[int, int]:
        """Map cell index -> combinational logic level (sources at level 0)."""
        levels: Dict[int, int] = {}
        for cell in self.topological_cells():
            level = 0
            for net in cell.input_nets:
                driver = net.driver
                if driver is not None and not driver.cell.is_sequential:
                    level = max(level, levels[driver.cell.index] + 1)
            levels[cell.index] = level
        return levels

    # -- pickling ----------------------------------------------------------

    def __getstate__(self):
        """Flat, index-based state for pickling.

        The live object graph is cyclic (cells reference nets reference
        pins reference cells), so default pickling recurses once per
        object along the longest connectivity chain and overflows the
        interpreter stack on anything bigger than a toy design.  The flat
        form is what lets implemented designs cross process boundaries
        (the parallel exploration engine ships one per worker).
        """
        templates: List[CellTemplate] = []
        template_ids: Dict[int, int] = {}
        cells = []
        for cell in self.cells:
            slot = template_ids.get(id(cell.template))
            if slot is None:
                slot = len(templates)
                template_ids[id(cell.template)] = slot
                templates.append(cell.template)
            cells.append(
                (
                    cell.name,
                    slot,
                    cell.drive_name,
                    [n.index for n in cell.input_nets],
                    [n.index for n in cell.output_nets],
                    cell.x,
                    cell.y,
                    cell.domain,
                )
            )
        nets = [
            (
                net.name,
                net.is_primary_input,
                net.is_primary_output,
                net.is_clock,
                (net.driver.cell.index, net.driver.position)
                if net.driver is not None
                else None,
                [(pin.cell.index, pin.position) for pin in net.sinks],
            )
            for net in self.nets
        ]
        buses = {
            "in": [
                (bus.name, [n.index for n in bus.nets], bus.signed)
                for bus in self.input_buses.values()
            ],
            "out": [
                (bus.name, [n.index for n in bus.nets], bus.signed)
                for bus in self.output_buses.values()
            ],
        }
        return {
            "name": self.name,
            "library": self.library,
            "templates": templates,
            "cells": cells,
            "nets": nets,
            "buses": buses,
            "clock": self.clock_net.index if self.clock_net else None,
        }

    def __setstate__(self, state):
        from repro.netlist.net import PinRef

        self.name = state["name"]
        self.library = state["library"]
        templates = state["templates"]
        self.nets = [Net(spec[0], i) for i, spec in enumerate(state["nets"])]
        self._net_by_name = {net.name: net for net in self.nets}
        self.cells = []
        self._cell_by_name = {}
        for index, spec in enumerate(state["cells"]):
            name, slot, drive_name, in_idx, out_idx, x, y, domain = spec
            cell = CellInst(
                name,
                index,
                templates[slot],
                drive_name,
                [self.nets[i] for i in in_idx],
                [self.nets[i] for i in out_idx],
            )
            cell.x, cell.y, cell.domain = x, y, domain
            self.cells.append(cell)
            self._cell_by_name[name] = cell
        # Wire drivers/sinks directly (not via add_cell) so the restored
        # pin order is exactly the recorded one, including any transform
        # rewiring that happened after construction.
        for net, spec in zip(self.nets, state["nets"]):
            _, is_pi, is_po, is_clk, driver, sinks = spec
            net.is_primary_input = is_pi
            net.is_primary_output = is_po
            net.is_clock = is_clk
            if driver is not None:
                net.driver = PinRef(self.cells[driver[0]], driver[1], True)
            net.sinks = [
                PinRef(self.cells[ci], pos, False) for ci, pos in sinks
            ]
        self.input_buses = {
            name: PortBus(name, [self.nets[i] for i in idx], True, signed)
            for name, idx, signed in state["buses"]["in"]
        }
        self.output_buses = {
            name: PortBus(name, [self.nets[i] for i in idx], False, signed)
            for name, idx, signed in state["buses"]["out"]
        }
        clock = state["clock"]
        self.clock_net = self.nets[clock] if clock is not None else None

    # -- identity ----------------------------------------------------------

    def content_fingerprint(self) -> str:
        """SHA-256 over the simulation-relevant structure.

        Covers cell templates and index-based connectivity, port-bus
        layout/signedness and the clock -- everything per-net simulation
        results depend on -- and deliberately excludes instance/net names
        and drive strengths.  Structurally identical designs (e.g. two
        factory invocations of the same operator) therefore share a
        fingerprint, while rebuilt designs that merely coincide in name
        and net count do not collide.
        """
        digest = hashlib.sha256()
        for cell in self.cells:
            digest.update(
                (
                    f"{cell.template.name}"
                    f"|{','.join(str(n.index) for n in cell.input_nets)}"
                    f"|{','.join(str(n.index) for n in cell.output_nets)};"
                ).encode()
            )
        for kind, buses in (("i", self.input_buses), ("o", self.output_buses)):
            for name, bus in buses.items():
                digest.update(
                    (
                        f"{kind}|{name}|{int(bus.signed)}"
                        f"|{','.join(str(n.index) for n in bus.nets)};"
                    ).encode()
                )
        clock = self.clock_net.index if self.clock_net is not None else -1
        digest.update(f"clk:{clock};nets:{len(self.nets)}".encode())
        return digest.hexdigest()

    # -- statistics --------------------------------------------------------

    def cell_area_um2(self) -> float:
        """Total standard-cell area (no floorplan whitespace, no guardbands)."""
        return sum(cell.area_um2 for cell in self.cells)

    def count_by_template(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for cell in self.cells:
            counts[cell.template.name] = counts.get(cell.template.name, 0) + 1
        return counts

    def stats(self) -> Dict[str, float]:
        """Summary statistics used by reports and tests."""
        return {
            "cells": len(self.cells),
            "nets": len(self.nets),
            "sequential": len(self.sequential_cells),
            "area_um2": self.cell_area_um2(),
            "inputs": sum(b.width for b in self.input_buses.values()),
            "outputs": sum(b.width for b in self.output_buses.values()),
        }

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, cells={len(self.cells)}, "
            f"nets={len(self.nets)})"
        )
