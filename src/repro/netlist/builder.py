"""Ergonomic construction API used by the operator generators.

The builder wraps a :class:`~repro.netlist.netlist.Netlist` and offers
word-level helpers (buses, gate instantiation with automatic naming,
registered words, constants) so the arithmetic generators read like
structural RTL.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.netlist.net import Net
from repro.netlist.netlist import Netlist, PortBus
from repro.techlib.library import Library


class NetlistBuilder:
    """Builds a netlist gate by gate with automatic unique naming."""

    def __init__(self, name: str, library: Library, default_drive: str = "X1"):
        self.netlist = Netlist(name, library)
        self.library = library
        self.default_drive = default_drive
        self._name_counters: Dict[str, int] = {}
        self._const_nets: Dict[bool, Net] = {}

    # -- naming ------------------------------------------------------------

    def unique_name(self, prefix: str) -> str:
        """Return a fresh name ``prefix_<n>`` (used for auto-named gates/nets)."""
        count = self._name_counters.get(prefix, 0)
        self._name_counters[prefix] = count + 1
        return f"{prefix}_{count}"

    # Backwards-compatible internal alias.
    _unique = unique_name

    # -- ports --------------------------------------------------------------

    def input_bus(self, name: str, width: int) -> List[Net]:
        """Declare a *width*-bit primary input bus; returns nets LSB first."""
        nets = [self.netlist.add_net(f"{name}[{i}]") for i in range(width)]
        self.netlist.mark_input_bus(name, nets)
        return nets

    def output_bus(
        self, name: str, nets: Sequence[Net], signed: bool = True
    ) -> PortBus:
        """Declare *nets* (LSB first) as a primary output bus."""
        return self.netlist.mark_output_bus(name, list(nets), signed=signed)

    def clock(self, name: str = "clk") -> Net:
        """Declare the clock input net (at most one per netlist)."""
        net = self.netlist.add_net(name)
        self.netlist.set_clock(net)
        return net

    # -- gates ---------------------------------------------------------------

    def gate(self, template_name: str, *inputs: Net, drive: str = None) -> Net:
        """Instantiate a single-output gate; returns its output net."""
        outputs = self.gate_multi(template_name, *inputs, drive=drive)
        if len(outputs) != 1:
            raise ValueError(
                f"{template_name} has {len(outputs)} outputs; use gate_multi()"
            )
        return outputs[0]

    def gate_multi(
        self, template_name: str, *inputs: Net, drive: str = None
    ) -> Tuple[Net, ...]:
        """Instantiate any gate; returns its output nets in template order."""
        template = self.library.template(template_name)
        inst_name = self._unique(template_name.lower())
        out_nets = [
            self.netlist.add_net(f"{inst_name}_{pin.lower()}")
            for pin in template.outputs
        ]
        self.netlist.add_cell(
            inst_name,
            template,
            list(inputs),
            out_nets,
            drive_name=drive or self.default_drive,
        )
        return tuple(out_nets)

    # -- common gate shorthands ----------------------------------------------

    def inv(self, a: Net) -> Net:
        return self.gate("INV", a)

    def buf(self, a: Net) -> Net:
        return self.gate("BUF", a)

    def and2(self, a: Net, b: Net) -> Net:
        return self.gate("AND2", a, b)

    def or2(self, a: Net, b: Net) -> Net:
        return self.gate("OR2", a, b)

    def nand2(self, a: Net, b: Net) -> Net:
        return self.gate("NAND2", a, b)

    def nor2(self, a: Net, b: Net) -> Net:
        return self.gate("NOR2", a, b)

    def xor2(self, a: Net, b: Net) -> Net:
        return self.gate("XOR2", a, b)

    def xnor2(self, a: Net, b: Net) -> Net:
        return self.gate("XNOR2", a, b)

    def mux2(self, a: Net, b: Net, select: Net) -> Net:
        """2:1 multiplexer: output = a when select=0, b when select=1."""
        return self.gate("MUX2", a, b, select)

    def full_adder(self, a: Net, b: Net, cin: Net) -> Tuple[Net, Net]:
        """Returns (sum, carry_out)."""
        return self.gate_multi("FA", a, b, cin)

    def half_adder(self, a: Net, b: Net) -> Tuple[Net, Net]:
        """Returns (sum, carry_out)."""
        return self.gate_multi("HA", a, b)

    # -- constants -------------------------------------------------------------

    def const(self, value: bool) -> Net:
        """A constant-0 or constant-1 net (one shared tie cell per value)."""
        value = bool(value)
        if value not in self._const_nets:
            template = "TIEHI" if value else "TIELO"
            self._const_nets[value] = self.gate(template)
        return self._const_nets[value]

    # -- sequential -------------------------------------------------------------

    def dff(self, d: Net, name: Optional[str] = None) -> Net:
        """A D flip-flop on the builder's clock; returns the Q net."""
        if self.netlist.clock_net is None:
            raise ValueError("declare the clock with clock() before adding DFFs")
        template = self.library.template("DFF")
        inst_name = name or self._unique("dff")
        q_net = self.netlist.add_net(f"{inst_name}_q")
        self.netlist.add_cell(
            inst_name, template, [d, self.netlist.clock_net], [q_net],
            drive_name=self.default_drive,
        )
        return q_net

    def register_word(self, word: Sequence[Net], prefix: str = "reg") -> List[Net]:
        """Register every bit of *word*; returns the Q nets, LSB first."""
        return [self.dff(bit, name=self._unique(prefix)) for bit in word]

    # -- finish ----------------------------------------------------------------

    def build(self) -> Netlist:
        """Return the completed netlist."""
        return self.netlist
