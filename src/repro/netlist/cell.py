"""Cell instances."""

from __future__ import annotations

from typing import List, Optional, Tuple, TYPE_CHECKING

from repro.techlib.cells import CellTemplate, DriveVariant

if TYPE_CHECKING:  # pragma: no cover
    from repro.netlist.net import Net


class CellInst:
    """One placed instance of a library cell.

    Connectivity is positional: ``input_nets[i]`` connects to
    ``template.inputs[i]`` and ``output_nets[j]`` to ``template.outputs[j]``.
    ``x``/``y`` hold the placement in micrometres (``None`` before
    placement); ``domain`` is the Vth/BB domain id assigned by the grid
    partitioner (``None`` before domain insertion).
    """

    __slots__ = ("name", "index", "template", "drive_name", "input_nets",
                 "output_nets", "x", "y", "domain")

    def __init__(
        self,
        name: str,
        index: int,
        template: CellTemplate,
        drive_name: str,
        input_nets: List["Net"],
        output_nets: List["Net"],
    ):
        if len(input_nets) != len(template.inputs):
            raise ValueError(
                f"cell {name!r} ({template.name}): expected "
                f"{len(template.inputs)} inputs, got {len(input_nets)}"
            )
        if len(output_nets) != len(template.outputs):
            raise ValueError(
                f"cell {name!r} ({template.name}): expected "
                f"{len(template.outputs)} outputs, got {len(output_nets)}"
            )
        if drive_name not in template.drives:
            raise ValueError(
                f"cell {name!r}: template {template.name} has no drive "
                f"{drive_name!r} (has {sorted(template.drives)})"
            )
        self.name = name
        self.index = index
        self.template = template
        self.drive_name = drive_name
        self.input_nets = input_nets
        self.output_nets = output_nets
        self.x: Optional[float] = None
        self.y: Optional[float] = None
        self.domain: Optional[int] = None

    @property
    def drive(self) -> DriveVariant:
        """The electrical data of the instance's current drive strength."""
        return self.template.drives[self.drive_name]

    @property
    def is_sequential(self) -> bool:
        return self.template.is_sequential

    @property
    def area_um2(self) -> float:
        return self.drive.area_um2

    @property
    def position(self) -> Tuple[float, float]:
        """Placement coordinates; raises if the cell is not placed yet."""
        if self.x is None or self.y is None:
            raise ValueError(f"cell {self.name!r} has not been placed")
        return (self.x, self.y)

    def set_drive(self, drive_name: str) -> None:
        """Re-size the instance to another drive strength of its template."""
        if drive_name not in self.template.drives:
            raise ValueError(
                f"{self.template.name} has no drive {drive_name!r} "
                f"(has {sorted(self.template.drives)})"
            )
        self.drive_name = drive_name

    def __repr__(self) -> str:
        return f"CellInst({self.name!r}, {self.template.name}/{self.drive_name})"
