"""NetworkX interop: export a netlist as an annotated directed graph.

Gives users the whole graph-algorithms toolbox (centrality, cuts,
communities, dominator trees...) over a design without writing traversals
against the IR.  The export is cell-level: one node per cell instance plus
one node per primary input/output bit; edges follow signal direction
through nets.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.netlist.netlist import Netlist


def to_networkx(
    netlist: Netlist,
    include_ports: bool = True,
    include_clock: bool = False,
) -> "nx.DiGraph":
    """Build a :class:`networkx.DiGraph` of *netlist*.

    Nodes: cell names (``kind="cell"``, with ``template``, ``drive``,
    ``area_um2``, ``sequential``, and -- when placed/partitioned -- ``x``,
    ``y``, ``domain``); optionally port-bit names (``kind="port"``).
    Edges: driver -> sink per net fan-out arc, attributed with the net
    name and its fanout.
    """
    graph = nx.DiGraph(name=netlist.name)

    for cell in netlist.cells:
        attributes = {
            "kind": "cell",
            "template": cell.template.name,
            "drive": cell.drive_name,
            "area_um2": cell.area_um2,
            "sequential": cell.is_sequential,
        }
        if cell.x is not None and cell.y is not None:
            attributes["x"] = cell.x
            attributes["y"] = cell.y
        if cell.domain is not None:
            attributes["domain"] = cell.domain
        graph.add_node(cell.name, **attributes)

    if include_ports:
        for bus in netlist.input_buses.values():
            for net in bus.nets:
                graph.add_node(net.name, kind="port", direction="input")
        for bus in netlist.output_buses.values():
            for net in bus.nets:
                graph.add_node(net.name, kind="port", direction="output")

    for net in netlist.nets:
        if net.is_clock and not include_clock:
            continue
        if net.driver is not None:
            source: Optional[str] = net.driver.cell.name
        elif include_ports and net.is_primary_input:
            source = net.name
        elif include_clock and net.is_clock:
            graph.add_node(net.name, kind="port", direction="clock")
            source = net.name
        else:
            source = None
        if source is None:
            continue
        for sink in net.sinks:
            if not include_clock and sink.pin_name == "CK":
                continue
            graph.add_edge(
                source, sink.cell.name, net=net.name, fanout=net.fanout
            )
        if include_ports and net.is_primary_output:
            graph.add_edge(source, net.name, net=net.name, fanout=net.fanout)
    return graph


def combinational_depth(netlist: Netlist) -> int:
    """Longest combinational path length in cells (via networkx DAG tools).

    Sequential elements cut the graph, so the result is the reg-to-reg
    logic depth -- a quick architecture metric that should track the STA
    critical path's stage count.
    """
    graph = to_networkx(netlist, include_ports=False)
    # Remove sequential nodes: their Q-side edges start new paths.
    combinational = graph.copy()
    for node, data in graph.nodes(data=True):
        if data.get("sequential"):
            combinational.remove_node(node)
    return int(nx.dag_longest_path_length(combinational)) + 1
