"""Netlist transforms applied between generation and placement.

Currently one transform: high-fanout buffering, the equivalent of the
buffer-tree insertion every synthesis/P&R tool performs.  Without it,
nets like the Booth encoder selects (fanout ~17) accumulate enormous pin
loads and distort both timing and power.
"""

from __future__ import annotations

from typing import List

from repro.netlist.net import Net, PinRef
from repro.netlist.netlist import Netlist


def reconnect_input(netlist: Netlist, pin: PinRef, new_net: Net) -> None:
    """Move one cell input pin from its current net onto *new_net*."""
    if pin.is_output:
        raise ValueError("can only reconnect input pins")
    cell = pin.cell
    old_net = cell.input_nets[pin.position]
    old_net.sinks = [
        s for s in old_net.sinks
        if not (s.cell is cell and s.position == pin.position)
    ]
    cell.input_nets[pin.position] = new_net
    new_net.add_sink(PinRef(cell, pin.position, is_output=False))


def buffer_high_fanout(
    netlist: Netlist,
    max_fanout: int = 8,
    drive_name: str = "X2",
) -> int:
    """Insert BUF trees on nets whose fanout exceeds *max_fanout*.

    Sinks are split into groups of at most *max_fanout*; each group moves
    behind a buffer driven by the original net.  Applied repeatedly (the
    buffer inputs themselves count as sinks) until every signal net
    complies.  The clock (ideal tree) and tie nets (replicated tie cells
    in a real flow) are exempt, as in validation.  Returns the number of
    buffers inserted.
    """
    buf_template = netlist.library.template("BUF")
    inserted = 0
    # Iterate to a fixpoint; each pass may create new (compliant) nets.
    progress = True
    while progress:
        progress = False
        for net in list(netlist.nets):
            if net.is_clock:
                continue
            if net.driver is not None and net.driver.cell.template.name in (
                "TIELO",
                "TIEHI",
            ):
                continue
            if net.fanout <= max_fanout:
                continue
            sinks = list(net.sinks)
            groups: List[List[PinRef]] = [
                sinks[i:i + max_fanout] for i in range(0, len(sinks), max_fanout)
            ]
            if len(groups) == 1:
                continue
            for group in groups:
                buf_name = f"hfbuf_{inserted}"
                out_net = netlist.add_net(f"{buf_name}_y")
                netlist.add_cell(
                    buf_name, buf_template, [net], [out_net],
                    drive_name=drive_name,
                )
                for pin in group:
                    reconnect_input(netlist, pin, out_net)
                inserted += 1
            progress = True
    return inserted
