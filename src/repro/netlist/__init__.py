"""Gate-level netlist intermediate representation.

The IR is deliberately simple: a :class:`~repro.netlist.netlist.Netlist` owns
:class:`~repro.netlist.cell.CellInst` and :class:`~repro.netlist.net.Net`
objects; buses group port nets; a builder provides the ergonomic construction
API the operator generators use.  Analysis engines (simulation, STA, power)
compile the IR into flat numpy-friendly arrays rather than traversing it.
"""

from repro.netlist.net import Net, PinRef
from repro.netlist.cell import CellInst
from repro.netlist.netlist import Netlist, PortBus
from repro.netlist.builder import NetlistBuilder
from repro.netlist.validate import validate_netlist, NetlistError
from repro.netlist.verilog import write_verilog, read_verilog
from repro.netlist.transform import buffer_high_fanout
from repro.netlist.equivalence import check_equivalent, EquivalenceResult

__all__ = [
    "Net",
    "PinRef",
    "CellInst",
    "Netlist",
    "PortBus",
    "NetlistBuilder",
    "validate_netlist",
    "NetlistError",
    "write_verilog",
    "read_verilog",
    "buffer_high_fanout",
    "check_equivalent",
    "EquivalenceResult",
]
