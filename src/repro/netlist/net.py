"""Nets and pin references."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.netlist.cell import CellInst


@dataclass(frozen=True)
class PinRef:
    """A reference to one pin of one cell instance.

    ``position`` is the pin's index within the cell template's input list
    (for input pins) or output list (for output pins).
    """

    cell: "CellInst"
    position: int
    is_output: bool

    @property
    def pin_name(self) -> str:
        """The template pin name this reference points at."""
        template = self.cell.template
        pins = template.outputs if self.is_output else template.inputs
        return pins[self.position]


class Net:
    """A single-bit wire.

    A net has at most one driver (a cell output pin, or none when the net is
    a primary input or the clock) and any number of sink pins.
    """

    __slots__ = ("name", "index", "driver", "sinks", "is_primary_input",
                 "is_primary_output", "is_clock")

    def __init__(self, name: str, index: int):
        self.name = name
        self.index = index
        self.driver: Optional[PinRef] = None
        self.sinks: List[PinRef] = []
        self.is_primary_input = False
        self.is_primary_output = False
        self.is_clock = False

    def set_driver(self, pin: PinRef) -> None:
        """Attach *pin* as the net's driver; rejects multiple drivers."""
        if self.driver is not None:
            raise ValueError(
                f"net {self.name!r} already driven by "
                f"{self.driver.cell.name}.{self.driver.pin_name}; cannot also be "
                f"driven by {pin.cell.name}.{pin.pin_name}"
            )
        if self.is_primary_input or self.is_clock:
            raise ValueError(
                f"net {self.name!r} is a primary input/clock; it cannot have a driver"
            )
        self.driver = pin

    def add_sink(self, pin: PinRef) -> None:
        self.sinks.append(pin)

    @property
    def fanout(self) -> int:
        """Number of cell input pins this net drives."""
        return len(self.sinks)

    def __repr__(self) -> str:
        return f"Net({self.name!r}, fanout={self.fanout})"
