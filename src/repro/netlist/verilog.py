"""Structural Verilog writer and reader.

The writer emits flat gate-level Verilog using named port connections
(``CELL_DRIVE name (.A(n1), .Y(n2));``), the format commercial P&R tools
exchange.  The reader parses that same subset back, enabling round trips and
letting users import externally generated netlists mapped to this library.
"""

from __future__ import annotations

import re
from typing import Dict, List, TextIO, Tuple

from repro.netlist.netlist import Netlist
from repro.techlib.library import Library


def _escape(name: str) -> str:
    """Escape a net/cell name for Verilog (bracketed bus bits need escaping)."""
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", name):
        return name
    return f"\\{name} "


def write_verilog(netlist: Netlist, stream: TextIO) -> None:
    """Write *netlist* as flat structural Verilog to *stream*."""
    ports: List[str] = []
    decls: List[str] = []
    for bus in netlist.input_buses.values():
        ports.append(bus.name)
        decls.append(f"  input [{bus.width - 1}:0] {bus.name};")
    for bus in netlist.output_buses.values():
        ports.append(bus.name)
        signedness = "" if bus.signed else "  // repro:unsigned"
        decls.append(
            f"  output [{bus.width - 1}:0] {bus.name};{signedness}"
        )
    if netlist.clock_net is not None:
        ports.append(netlist.clock_net.name)
        decls.append(f"  input {netlist.clock_net.name};")

    stream.write(f"module {netlist.name} ({', '.join(ports)});\n")
    for line in decls:
        stream.write(line + "\n")

    # Nets belonging to a port bus are referenced by their bus-bit name so
    # the module interface stays connected (an output-register Q net, for
    # example, IS the port bit electrically).
    rename: Dict[int, str] = {}
    for bus in list(netlist.input_buses.values()) + list(netlist.output_buses.values()):
        for bit, net in enumerate(bus.nets):
            rename.setdefault(net.index, f"{bus.name}[{bit}]")
    if netlist.clock_net is not None:
        rename.setdefault(netlist.clock_net.index, netlist.clock_net.name)

    for net in netlist.nets:
        if net.index not in rename:
            stream.write(f"  wire {_escape(net.name)};\n")

    def ref(net) -> str:
        return _escape(rename.get(net.index, net.name))

    for cell in netlist.cells:
        conns = []
        for pin, net in zip(cell.template.inputs, cell.input_nets):
            conns.append(f".{pin}({ref(net)})")
        for pin, net in zip(cell.template.outputs, cell.output_nets):
            conns.append(f".{pin}({ref(net)})")
        stream.write(
            f"  {cell.template.name}_{cell.drive_name} {_escape(cell.name)} "
            f"({', '.join(conns)});\n"
        )
    stream.write("endmodule\n")


_INSTANCE_RE = re.compile(
    r"^\s*(?P<cell>[A-Za-z0-9_]+)_(?P<drive>X[0-9.]+|X05)\s+"
    r"(?:\\(?P<ename>\S+)\s|(?P<name>[A-Za-z_][A-Za-z0-9_]*))\s*"
    r"\((?P<conns>.*)\)\s*;\s*$"
)
_CONN_RE = re.compile(r"\.(?P<pin>[A-Za-z0-9_]+)\(\s*(?:\\(?P<enet>\S+)\s*|(?P<net>[^)\s]+))\s*\)")
_PORT_DECL_RE = re.compile(
    r"^\s*(?P<dir>input|output)\s*(?:\[(?P<msb>\d+):(?P<lsb>\d+)\])?\s*"
    r"(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*;"
    r"(?P<pragma>\s*//\s*repro:unsigned)?\s*$"
)


def read_verilog(stream: TextIO, library: Library) -> Netlist:
    """Parse flat structural Verilog (the writer's subset) into a netlist.

    Restrictions: one module per file, named port connections only, all
    cells must exist in *library* with the encoded drive, buses declared
    with ``[msb:0]`` ranges.  The clock is recognized as the scalar input
    named ``clk`` (if present).
    """
    text = stream.read()
    header = re.search(r"module\s+([A-Za-z_][A-Za-z0-9_]*)\s*\(", text)
    if header is None:
        raise ValueError("no module declaration found")
    netlist = Netlist(header.group(1), library)

    nets: Dict[str, object] = {}

    def get_net(name: str):
        if name not in nets:
            nets[name] = netlist.add_net(name)
        return nets[name]

    pending_instances: List[Tuple[str, str, str, Dict[str, str]]] = []
    input_buses: List[Tuple[str, int]] = []
    output_buses: List[Tuple[str, int, bool]] = []
    clock_name = None

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("//"):
            continue
        decl = _PORT_DECL_RE.match(line)
        if decl:
            name = decl.group("name")
            if decl.group("msb") is not None:
                width = int(decl.group("msb")) - int(decl.group("lsb")) + 1
                if decl.group("dir") == "input":
                    input_buses.append((name, width))
                else:
                    signed = decl.group("pragma") is None
                    output_buses.append((name, width, signed))
            elif decl.group("dir") == "input":
                clock_name = name
            continue
        inst = _INSTANCE_RE.match(line)
        if inst:
            conns = {
                m.group("pin"): (m.group("enet") or m.group("net"))
                for m in _CONN_RE.finditer(inst.group("conns"))
            }
            pending_instances.append(
                (
                    inst.group("cell"),
                    inst.group("drive"),
                    inst.group("ename") or inst.group("name"),
                    conns,
                )
            )

    for name, width in input_buses:
        bus_nets = [get_net(f"{name}[{i}]") for i in range(width)]
        netlist.mark_input_bus(name, bus_nets)
    if clock_name is not None:
        netlist.set_clock(get_net(clock_name))

    for cell_type, drive, inst_name, conns in pending_instances:
        template = library.template(cell_type)
        in_nets = [get_net(conns[p]) for p in template.inputs]
        out_nets = [get_net(conns[p]) for p in template.outputs]
        netlist.add_cell(inst_name, template, in_nets, out_nets, drive_name=drive)

    for name, width, signed in output_buses:
        bus_nets = [get_net(f"{name}[{i}]") for i in range(width)]
        netlist.mark_output_bus(name, bus_nets, signed=signed)
    return netlist
