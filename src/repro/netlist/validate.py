"""Netlist structural validation."""

from __future__ import annotations

from typing import List

from repro.netlist.netlist import Netlist


class NetlistError(Exception):
    """Raised when a netlist violates a structural invariant."""


def validate_netlist(netlist: Netlist, max_fanout: int = 64) -> List[str]:
    """Check structural invariants; raise :class:`NetlistError` on violation.

    Checks performed:

    * every net has a driver (cell output, primary input, or clock),
    * every net except primary outputs has at least one sink,
    * no combinational loops,
    * sequential cells see the clock on their CK pin,
    * fanout stays below *max_fanout* (a proxy for electrical rule checks).

    Returns a list of non-fatal warnings (e.g. dangling outputs of
    multi-output cells, which are legal but worth flagging).
    """
    warnings: List[str] = []
    for net in netlist.nets:
        driven = net.driver is not None or net.is_primary_input or net.is_clock
        if not driven:
            raise NetlistError(f"net {net.name!r} has no driver")
        if net.fanout == 0 and not net.is_primary_output:
            warnings.append(f"net {net.name!r} has no sinks")
        # The clock is distributed by a (not modelled) balanced clock tree,
        # and tie nets correspond to replicated tie cells in a real flow, so
        # neither is subject to the signal fanout rule.
        is_tie = net.driver is not None and net.driver.cell.template.name in (
            "TIELO",
            "TIEHI",
        )
        if net.fanout > max_fanout and not net.is_clock and not is_tie:
            raise NetlistError(
                f"net {net.name!r} fanout {net.fanout} exceeds limit {max_fanout}"
            )

    for cell in netlist.sequential_cells:
        clock_pin_pos = list(cell.template.inputs).index("CK")
        clock_net = cell.input_nets[clock_pin_pos]
        if not clock_net.is_clock:
            raise NetlistError(
                f"flip-flop {cell.name!r} CK pin tied to non-clock net "
                f"{clock_net.name!r}"
            )

    # Raises internally if a combinational loop exists.
    netlist.topological_cells()
    return warnings
