"""Simulation-based equivalence checking (LEC-lite).

The flow transforms netlists (buffer insertion, drive re-sizing) and users
import external ones; this module provides the confidence check that two
netlists compute the same function.  It is *simulation-based*: exhaustive
for narrow interfaces, randomized (with corner-value seeding) beyond that
-- not a formal proof, but the standard quick regression between netlist
revisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.netlist.netlist import Netlist
from repro.sim.simulator import LogicSimulator, SimulationMode
from repro.sim.vectors import random_words


@dataclass
class EquivalenceResult:
    """Outcome of an equivalence run."""

    equivalent: bool
    vectors: int
    exhaustive: bool
    counterexample: Optional[Dict[str, int]] = None
    mismatched_bus: Optional[str] = None

    def __bool__(self) -> bool:
        return self.equivalent

    def describe(self) -> str:
        if self.equivalent:
            mode = "exhaustively" if self.exhaustive else "randomly"
            return f"equivalent over {self.vectors} {mode} tested vectors"
        return (
            f"NOT equivalent: bus {self.mismatched_bus!r} differs for "
            f"{self.counterexample}"
        )


def _interface(netlist: Netlist):
    inputs = {name: bus.width for name, bus in netlist.input_buses.items()}
    outputs = {name: bus.width for name, bus in netlist.output_buses.items()}
    return inputs, outputs


def check_equivalent(
    golden: Netlist,
    revised: Netlist,
    max_vectors: int = 4096,
    seed: int = 99,
) -> EquivalenceResult:
    """Compare two feed-forward netlists on their shared interface.

    Interfaces (bus names and widths) must match exactly.  When the total
    input width is small enough, the check is exhaustive; otherwise it
    runs *max_vectors* random vectors seeded with the all-zeros, all-ones
    and per-bus extreme patterns.
    """
    golden_if, golden_out = _interface(golden)
    revised_if, revised_out = _interface(revised)
    if golden_if != revised_if or golden_out != revised_out:
        raise ValueError(
            "interface mismatch: "
            f"{golden_if}/{golden_out} vs {revised_if}/{revised_out}"
        )

    total_bits = sum(golden_if.values())
    exhaustive = total_bits <= int(np.log2(max_vectors))
    bus_names = sorted(golden_if)

    if exhaustive:
        count = 1 << total_bits
        codes = np.arange(count, dtype=np.int64)
        stimulus: Dict[str, np.ndarray] = {}
        offset = 0
        for name in bus_names:
            width = golden_if[name]
            stimulus[name] = (codes >> offset) & ((1 << width) - 1)
            offset += width
        vectors = count
    else:
        rng = np.random.default_rng(seed)
        vectors = max_vectors
        stimulus = {}
        for name in bus_names:
            width = golden_if[name]
            words = random_words(rng, vectors, width, signed=True)
            # Seed the corners: 0, -1, min, max on the first rows.
            corners = [0, -1, -(1 << (width - 1)), (1 << (width - 1)) - 1]
            words[: len(corners)] = corners
            stimulus[name] = words

    sim_golden = LogicSimulator(golden, SimulationMode.TRANSPARENT)
    sim_revised = LogicSimulator(revised, SimulationMode.TRANSPARENT)
    out_golden = sim_golden.run_combinational(stimulus, signed=False)
    out_revised = sim_revised.run_combinational(stimulus, signed=False)

    for bus in sorted(golden_out):
        mismatch = out_golden[bus] != out_revised[bus]
        if np.any(mismatch):
            index = int(np.argmax(mismatch))
            counterexample = {
                name: int(stimulus[name][index]) for name in bus_names
            }
            return EquivalenceResult(
                equivalent=False,
                vectors=vectors,
                exhaustive=exhaustive,
                counterexample=counterexample,
                mismatched_bus=bus,
            )
    return EquivalenceResult(
        equivalent=True, vectors=vectors, exhaustive=exhaustive
    )
