"""repro.serve -- the online accuracy-serving subsystem.

Turns exploration results into a live, concurrent accuracy-mode service:

* :mod:`repro.serve.table` -- the compiled, versioned :class:`ModeTable`
  artifact (operating points + precomputed transition-cost matrix),
* :mod:`repro.serve.policy` -- pluggable mode-selection policies
  (greedy / hysteresis / lookahead),
* :mod:`repro.serve.scheduler` -- the event-driven shared-bias-generator
  scheduler with batching, backpressure and graceful degradation,
* :mod:`repro.serve.server` -- the asyncio front end (in-proc API +
  JSON-lines socket),
* :mod:`repro.serve.telemetry` -- counters and latency/energy histograms,
* :mod:`repro.serve.guard` -- the runtime margin guard (erosion
  detection + safe-mode fallback against :mod:`repro.faults`),
* :mod:`repro.serve.recal` -- the closed-loop canary-probe
  recalibration path (online margin learning + guard re-advance).

See ``docs/serve.md`` for the subsystem overview and invariants, and
``docs/robustness.md`` for the fault model and margin-guard semantics.
"""

from repro.serve.compiled import (
    BatchResult,
    CompiledTable,
    SERVE_ENGINES,
    resolve_serve_engine,
)
from repro.serve.errors import (
    RecalibrationError,
    ServeError,
    error_payload,
)
from repro.serve.guard import MarginGuard
from repro.serve.recal import (
    MarginLearner,
    ProbeResult,
    RecalibrationLoop,
    run_canary_probe,
)
from repro.serve.policy import (
    GreedyPolicy,
    HysteresisPolicy,
    LookaheadPolicy,
    POLICIES,
    SelectionPolicy,
    make_policy,
)
from repro.serve.scheduler import (
    AccuracyViolation,
    GeneratorPool,
    ModeScheduler,
    ServedPhase,
    ServeRequest,
    replay_trace,
)
from repro.serve.server import AccuracyServer
from repro.serve.table import (
    MODE_TABLE_SCHEMA,
    ModeMargin,
    ModeTable,
    SharedModeTable,
    TransitionCost,
    compile_margins,
    compile_mode_table,
    parse_counters,
)
from repro.serve.telemetry import Histogram, Telemetry

__all__ = [
    "AccuracyServer",
    "AccuracyViolation",
    "BatchResult",
    "CompiledTable",
    "GeneratorPool",
    "GreedyPolicy",
    "Histogram",
    "HysteresisPolicy",
    "LookaheadPolicy",
    "MODE_TABLE_SCHEMA",
    "MarginGuard",
    "MarginLearner",
    "ModeMargin",
    "ModeScheduler",
    "ModeTable",
    "POLICIES",
    "ProbeResult",
    "RecalibrationError",
    "RecalibrationLoop",
    "SERVE_ENGINES",
    "SelectionPolicy",
    "ServeError",
    "ServeRequest",
    "ServedPhase",
    "SharedModeTable",
    "Telemetry",
    "TransitionCost",
    "compile_margins",
    "compile_mode_table",
    "error_payload",
    "make_policy",
    "parse_counters",
    "replay_trace",
    "resolve_serve_engine",
    "run_canary_probe",
]
