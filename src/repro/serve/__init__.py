"""repro.serve -- the online accuracy-serving subsystem.

Turns exploration results into a live, concurrent accuracy-mode service:

* :mod:`repro.serve.table` -- the compiled, versioned :class:`ModeTable`
  artifact (operating points + precomputed transition-cost matrix),
* :mod:`repro.serve.policy` -- the :class:`PolicyContext` policy API and
  :func:`register_policy` registry (greedy / hysteresis / lookahead),
* :mod:`repro.serve.learned` -- offline fitted-Q training over
  :mod:`repro.traces` suites and the frozen :class:`LearnedPolicy`,
* :mod:`repro.serve.scheduler` -- the event-driven shared-bias-generator
  scheduler with batching, backpressure and graceful degradation,
* :mod:`repro.serve.server` -- the asyncio front end (in-proc API +
  JSON-lines socket),
* :mod:`repro.serve.telemetry` -- counters and latency/energy histograms,
* :mod:`repro.serve.guard` -- the runtime margin guard (erosion
  detection + safe-mode fallback against :mod:`repro.faults`),
* :mod:`repro.serve.recal` -- the closed-loop canary-probe
  recalibration path (online margin learning + guard re-advance).

See ``docs/serve.md`` for the subsystem overview and invariants, and
``docs/robustness.md`` for the fault model and margin-guard semantics.
"""

from repro.serve.compiled import (
    BatchResult,
    CompiledTable,
    SERVE_ENGINES,
    resolve_serve_engine,
)
from repro.serve.errors import (
    RecalibrationError,
    ServeError,
    error_payload,
)
from repro.serve.guard import MarginGuard
from repro.serve.recal import (
    MarginLearner,
    ProbeResult,
    RecalibrationLoop,
    run_canary_probe,
)
from repro.serve.learned import (
    LearnedPolicy,
    TrainingResult,
    train_on_suite,
    train_policy,
)
from repro.serve.policy import (
    DemandTracker,
    GreedyPolicy,
    HysteresisPolicy,
    LookaheadPolicy,
    POLICIES,
    PolicyContext,
    PolicyParam,
    SelectionPolicy,
    make_policy,
    parse_policy_args,
    policy_params,
    register_policy,
    validate_policy_kwargs,
)
from repro.serve.scheduler import (
    AccuracyViolation,
    GeneratorPool,
    ModeScheduler,
    ServedPhase,
    ServeRequest,
    replay_trace,
)
from repro.serve.server import AccuracyServer
from repro.serve.table import (
    LearnedPolicySpec,
    MODE_TABLE_SCHEMA,
    ModeMargin,
    ModeTable,
    SharedModeTable,
    TransitionCost,
    compile_margins,
    compile_mode_table,
    parse_counters,
)
from repro.serve.telemetry import Histogram, Telemetry

__all__ = [
    "AccuracyServer",
    "AccuracyViolation",
    "BatchResult",
    "CompiledTable",
    "DemandTracker",
    "GeneratorPool",
    "GreedyPolicy",
    "Histogram",
    "HysteresisPolicy",
    "LearnedPolicy",
    "LearnedPolicySpec",
    "LookaheadPolicy",
    "MODE_TABLE_SCHEMA",
    "MarginGuard",
    "MarginLearner",
    "ModeMargin",
    "ModeScheduler",
    "ModeTable",
    "POLICIES",
    "PolicyContext",
    "PolicyParam",
    "ProbeResult",
    "RecalibrationError",
    "RecalibrationLoop",
    "SERVE_ENGINES",
    "SelectionPolicy",
    "ServeError",
    "ServeRequest",
    "ServedPhase",
    "SharedModeTable",
    "Telemetry",
    "TrainingResult",
    "TransitionCost",
    "compile_margins",
    "compile_mode_table",
    "error_payload",
    "make_policy",
    "parse_counters",
    "parse_policy_args",
    "policy_params",
    "register_policy",
    "replay_trace",
    "resolve_serve_engine",
    "run_canary_probe",
    "train_on_suite",
    "train_policy",
    "validate_policy_kwargs",
]
