"""Array-backed lowering of a ModeTable for the batched serve kernel.

The scalar :meth:`~repro.serve.scheduler.ModeScheduler.submit` path pays
per-request dict lookups, policy dispatch and dataclass allocation.  At
``register()`` time the scheduler lowers each :class:`~repro.serve.table.
ModeTable` into a :class:`CompiledTable` of flat numpy arrays instead:

* mode-key index maps plus active-bits / power / VDD vectors in the
  table's insertion order (power tie-breaks depend on that order);
* the precomputed transition-cost matrix as dense ``(n_modes + 1,
  n_modes)`` energy / settle planes -- the extra row is the power-on
  (``None``) state, free by construction;
* a *cover table* mapping every requested bitwidth straight to the
  index :meth:`ModeTable.mode_key_for` would return;
* precomputed **policy decision tables**: greedy and hysteresis are
  memoryless, so probing the real policy object once per
  ``(current mode, requested bits)`` pair turns ``select()`` into a pure
  ``next_index[state, requested]`` lookup that is bit-identical by
  construction (lookahead stays a small horizon scan -- see the
  scheduler kernel);
* a margin-guard **availability bitmask** (plus the matching guarded
  cover table) that :meth:`~repro.serve.guard.MarginGuard.
  refresh_availability` updates in place whenever the environment is
  time-invariant.

Engine selection mirrors the simulation/STA conventions:
``resolve_serve_engine`` maps ``None``/``"auto"`` through
``$REPRO_SERVE_ENGINE`` and defaults to the batch kernel, which is
differential-tested bit-identical to the scalar path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import resolve_env_choice
from repro.serve.learned import LearnedPolicy
from repro.serve.policy import (
    GreedyPolicy,
    HysteresisPolicy,
    LookaheadPolicy,
    SelectionPolicy,
)
from repro.serve.table import ModeTable

#: Environment override for ``auto`` serve-engine requests.
SERVE_ENGINE_ENV = "REPRO_SERVE_ENGINE"

#: Valid engine requests.
SERVE_ENGINES = ("auto", "batch", "scalar")


def resolve_serve_engine(engine: Optional[str]) -> str:
    """Normalize a serve-engine request (None -> env -> auto -> batch).

    Returns the engine that will actually run (``"batch"`` or
    ``"scalar"``).  ``auto`` (and ``None``) consult
    ``$REPRO_SERVE_ENGINE`` first and default to the batch kernel; the
    parsing lives in :func:`repro.core.config.resolve_env_choice`,
    shared with the simulation and STA engine selectors.
    """
    requested = resolve_env_choice(
        engine, SERVE_ENGINE_ENV, SERVE_ENGINES, what="serve engine"
    )
    return "scalar" if requested == "scalar" else "batch"


class CompiledTable:
    """Flat-array view of one ModeTable plus its compiled policy tables.

    One instance belongs to one scheduler (the availability bitmask is
    guard-specific state, so compiled tables are never shared across
    schedulers).  Mode *indices* are positions in the table's insertion
    order; the extra state row ``none_row == num_modes`` stands for the
    power-on (``current_bits is None``) state in every ``(state, ...)``
    indexed array.
    """

    def __init__(self, table: ModeTable):
        self.table = table
        keys = list(table.modes)
        self.keys: List[int] = keys
        self.index_of: Dict[int, int] = {k: i for i, k in enumerate(keys)}
        n = len(keys)
        self.num_modes = n
        self.none_row = n
        self.modes = [table.modes[k] for k in keys]
        self.active_bits = np.array(
            [m.active_bits for m in self.modes], dtype=np.int64
        )
        self.power_w = np.array(
            [m.total_power_w for m in self.modes], dtype=np.float64
        )
        #: Electrical signature per mode, for generator-pool batching.
        self.signatures: List[Tuple] = [
            (m.vdd, m.bb_config) for m in self.modes
        ]
        self.max_bits = table.max_bits
        self.static_index = self.index_of[table.max_bits]
        self.fclk_ghz = table.fclk_ghz
        #: Exactly the divisor the scalar path computes per request.
        self.denom_hz = table.fclk_ghz * 1e9

        energy = np.zeros((n + 1, n), dtype=np.float64)
        settle = np.zeros((n + 1, n), dtype=np.float64)
        for i, a in enumerate(keys):
            for j, b in enumerate(keys):
                cost = table.transition_between(a, b)
                energy[i, j] = cost.energy_j
                settle[i, j] = cost.settle_ns
        self.transition_energy_j = energy
        self.transition_settle_ns = settle
        self.transition_free = (energy == 0.0) & (settle == 0.0)
        # Python nested lists for the lookahead horizon scan (python
        # float arithmetic there must fold exactly like the policy's).
        self._energy_rows = energy.tolist()
        self._power_list = self.power_w.tolist()
        self._bits_list = self.active_bits.tolist()
        self._free_rows = self.transition_free.tolist()

        cover = np.empty(self.max_bits + 1, dtype=np.int64)
        for bits in range(1, self.max_bits + 1):
            cover[bits] = self.index_of[table.mode_key_for(bits)]
        cover[0] = cover[1]
        self.cover_index = cover
        self._cover_list = cover.tolist()

        #: Guard-maintained availability (updated in place, see
        #: :meth:`refresh_availability`).  All-available by default.
        self.mode_available = np.ones(n, dtype=bool)
        self.guarded_cover_index = cover.copy()
        self.all_available = True

        self._decision_tables: Dict[Tuple, np.ndarray] = {}
        # id(spec) -> mode-index lowering of a frozen learned policy
        # (the spec object is pinned by the policy holding it).
        self._learned_tables: Dict[int, np.ndarray] = {}

    # -- policy lowering -----------------------------------------------------

    @staticmethod
    def policy_cache_key(policy: SelectionPolicy) -> Optional[Tuple]:
        """Decision-table cache key for a *memoryless* policy, else None."""
        kind = type(policy)
        if kind is GreedyPolicy:
            return ("greedy",)
        if kind is HysteresisPolicy:
            return ("hysteresis", policy.dwell_cycles, policy.margin)
        return None

    @staticmethod
    def is_known_policy(policy: SelectionPolicy) -> bool:
        return type(policy) in (
            GreedyPolicy,
            HysteresisPolicy,
            LookaheadPolicy,
            LearnedPolicy,
        )

    def decision_table(self, policy: SelectionPolicy) -> np.ndarray:
        """``next_index[state_row, required_bits]`` for a memoryless policy.

        Built by probing the *actual* policy object once per pair, so the
        lookup is bit-identical to ``policy.select`` by construction.
        """
        key = self.policy_cache_key(policy)
        if key is None:
            raise ValueError(
                f"policy {policy.name!r} has no pure decision table"
            )
        cached = self._decision_tables.get(key)
        if cached is not None:
            return cached
        n = self.num_modes
        table = np.empty((n + 1, self.max_bits + 1), dtype=np.int64)
        for row in range(n + 1):
            current = self.keys[row] if row < n else None
            for bits in range(1, self.max_bits + 1):
                table[row, bits] = self.index_of[
                    policy.select(bits, current, ())
                ]
            table[row, 0] = table[row, 1]
        self._decision_tables[key] = table
        return table

    def learned_decision_table(self, policy: LearnedPolicy) -> np.ndarray:
        """The frozen spec's decision tensor lowered to mode *indices*.

        Shape ``(n_modes + 1, n_level, n_vol, n_occ, max_bits + 1)``.
        ``spec.mode_states`` is validated against the table's compiled
        mode order at policy construction, so the leading axis lines up
        with this table's state rows (``none_row`` last) and the entries
        are positions in the same order -- the batch kernel's fold lands
        on exactly the key ``LearnedPolicy.decide`` returns.
        """
        spec = policy.spec
        cached = self._learned_tables.get(id(spec))
        if cached is not None:
            return cached
        lowered = np.array(
            [
                [
                    [
                        [
                            [self.index_of[key] for key in cell]
                            for cell in row
                        ]
                        for row in plane
                    ]
                    for plane in cube
                ]
                for cube in spec.decisions
            ],
            dtype=np.int64,
        )
        self._learned_tables[id(spec)] = lowered
        return lowered

    # -- margin-guard availability -------------------------------------------

    def refresh_availability(self, safe_flags: Sequence[bool]) -> None:
        """Update the availability bitmask (and guarded cover) in place.

        ``safe_flags[i]`` is the guard's verdict for mode index *i*.  The
        guarded cover table mirrors :meth:`MarginGuard.guarded_key`: the
        cheapest *safe* mode covering each bitwidth (same insertion-order
        first-minimum tie-break), or the static mode when nothing safe
        covers.
        """
        np.copyto(self.mode_available, np.asarray(safe_flags, dtype=bool))
        self.all_available = bool(self.mode_available.all())
        if self.all_available:
            np.copyto(self.guarded_cover_index, self.cover_index)
            return
        available = self.mode_available.tolist()
        powers = self._power_list
        bits_of = self._bits_list
        guarded = self.guarded_cover_index
        for bits in range(self.max_bits + 1):
            need = bits if bits else 1
            best = -1
            best_power = np.inf
            for index in range(self.num_modes):
                if not available[index] or bits_of[index] < need:
                    continue
                if powers[index] < best_power:
                    best = index
                    best_power = powers[index]
            guarded[bits] = best if best >= 0 else self.static_index


@dataclass
class BatchResult:
    """Flat result arrays of one batched frame, in submission order.

    Everything the fleet worker's reply frame needs without building a
    single :class:`~repro.serve.scheduler.ServedPhase`; the scheduler
    materializes phases from these arrays only when asked to.
    """

    served_bits: np.ndarray
    switched: np.ndarray
    batched: np.ndarray
    degraded: np.ndarray
    margin_fallback: np.ndarray
    transition_retries: np.ndarray
    compute_energy_j: np.ndarray
    transition_energy_j: np.ndarray
    settle_ns: np.ndarray
    queue_wait_ns: np.ndarray
    decided_at_ns: np.ndarray

    def __len__(self) -> int:
        return len(self.served_bits)
