"""Closed-loop in-situ recalibration: canary probes re-learn margins online.

The :class:`~repro.serve.guard.MarginGuard` of PR 4 only ever *retreats*:
margins are frozen at compile-table time, so every transient temperature
or droop excursion permanently taxes energy -- once a mode looked unsafe
the conservative reaction is to keep avoiding it.  Real block-level
voltage-overscaling silicon (Bahoo-style) recovers that energy by
re-learning margins *online*: a small canary datapath periodically runs
known vectors at the aggressive operating point and the observed slack
feeds a filtered margin estimate the runtime trusts going forward.

This module is that loop, in the repo's deterministic virtual time:

* :func:`run_canary_probe` replays a seeded golden-vector probe (the
  bit-exact :func:`repro.sim.golden.multiply_reference` model) for one
  mode against the current :class:`~repro.faults.environment.
  SiliconEnvironment` erosion estimate.  The emulated canary output is
  corrupted deterministically whenever the mode's observed slack has
  gone negative (a late carry that missed the clock edge), so a probe
  *functionally* detects the failure it is instrumenting for instead of
  trusting the erosion model's arithmetic.
* :class:`MarginLearner` folds observed per-mode slack into an
  asymmetric EWMA: degradations are adopted immediately (fast attack),
  recoveries are believed slowly (``alpha``-weighted release), and a
  conservative ``bias_ps`` is subtracted from everything the guard gets
  to see.  A mode that fails its probe is **demoted** (inadmissible) and
  only **re-advances** after ``readvance_probes`` consecutive healthy
  probes -- hysteresis that provably prevents flapping.
* :class:`RecalibrationLoop` owns the cadence: the scheduler calls
  :meth:`~RecalibrationLoop.maybe_recalibrate` with the deciding
  operator's virtual clock, and every ``interval_ns`` the loop probes
  all modes, feeds the learner, bumps the **margin epoch** and accounts
  the probe's cycle/energy cost in telemetry.

The accuracy invariant stays provable by construction: the guard uses
``min(learned_margin, guarded_slack_ps)`` and an admissibility gate, so
a learned margin can only *restrict* relative to the compile-time
sign-off floor -- it never admits a mode the frozen margins would have
rejected, at any instant, under any fault schedule
(``tests/test_serve_recal.py`` holds that as a hypothesis property).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.errors import RecalibrationError
from repro.serve.table import ModeTable
from repro.sim.golden import _wrap_signed, multiply_reference

#: Default number of golden vectors per probe (one multiply per cycle).
DEFAULT_PROBE_VECTORS = 16


@dataclass(frozen=True)
class ProbeResult:
    """What one canary probe of one mode observed."""

    bits_key: int
    #: Slack the canary measured: sign-off guarded slack minus the
    #: environment's erosion at the probe instant (ps).
    observed_slack_ps: float
    #: Golden-vector comparison verdict (False = the mode is failing).
    functional_ok: bool
    #: Cycles the probe occupied the operator (one per vector).
    probe_cycles: int
    #: Energy the probe burned at the mode's operating point (J).
    probe_energy_j: float


def run_canary_probe(
    table: ModeTable,
    environment,
    bits_key: int,
    now_ns: float,
    vectors: int = DEFAULT_PROBE_VECTORS,
    seed: int = 0,
    epoch: int = 0,
) -> ProbeResult:
    """Probe one mode with seeded golden vectors at *now_ns*.

    The canary is a ``active_bits``-wide signed multiplier fed *vectors*
    seeded operand pairs.  Its emulated silicon output matches
    :func:`multiply_reference` exactly while the mode's observed slack
    is non-negative; once erosion has eaten past the sign-off margin the
    critical carry misses the clock edge and the top product bits come
    out stale -- modelled as a deterministic high-order offset, so the
    golden comparison fails.  A mode whose FBB wells are unreachable
    (stuck-at-NoBB window) cannot even be biased to its operating point:
    the probe reports it failing outright.
    """
    if not table.has_margins:
        raise RecalibrationError(
            "cannot probe a table compiled without margins; re-run "
            "`repro compile-table --margins` to enable recalibration"
        )
    if vectors < 1:
        raise ValueError("need at least one probe vector")
    mode = table.modes[bits_key]
    period_ps = 1e3 / table.fclk_ghz
    erosion_ps = environment.slack_erosion_ps(now_ns, mode.vdd, period_ps)
    observed_slack_ps = table.margins[bits_key].guarded_slack_ps - erosion_ps

    width = max(1, mode.active_bits)
    rng = np.random.default_rng([seed & 0x7FFFFFFF, epoch, bits_key])
    lo, hi = -(1 << (width - 1)), 1 << (width - 1)
    a = rng.integers(lo, hi, size=vectors, dtype=np.int64)
    b = rng.integers(lo, hi, size=vectors, dtype=np.int64)
    reference = multiply_reference(a, b, width)
    if any(mode.bb_config) and environment.stuck_at_nobb(now_ns):
        # The bias mux is stuck at 0 V: the canary never reaches the
        # FBB operating point at all, which reads as a hard failure.
        functional_ok = False
    elif observed_slack_ps < 0.0:
        # Late carry into the product's high half: the canary latches a
        # stale partial sum offset by one high-order weight.
        corrupted = _wrap_signed(
            reference + (1 << max(0, 2 * width - 2)), 2 * width
        )
        functional_ok = bool(np.array_equal(corrupted, reference))
    else:
        functional_ok = True

    duration_s = vectors / (table.fclk_ghz * 1e9)
    return ProbeResult(
        bits_key=bits_key,
        observed_slack_ps=observed_slack_ps,
        functional_ok=functional_ok,
        probe_cycles=vectors,
        probe_energy_j=mode.total_power_w * duration_s,
    )


class MarginLearner:
    """Online per-mode margin estimates with demote/re-advance hysteresis.

    The filter is deliberately asymmetric:

    * **fast attack** -- an observation *below* the current estimate is
      adopted immediately (silicon got worse; believe it now);
    * **slow release** -- an observation above it moves the estimate by
      ``alpha`` of the gap (silicon looks better; earn the trust);
    * every estimate is clamped to the compile-time sign-off margin
      (``guarded_slack_ps``) from above, and the guard-visible
      :meth:`effective_margin_ps` subtracts a conservative ``bias_ps``.

    Admissibility carries the hysteresis: a mode whose probe fails is
    demoted on the spot and re-advances only after ``readvance_probes``
    consecutive healthy probes (any failure resets the streak), so a
    margin oscillating around the threshold cannot flap the mode in and
    out of service.
    """

    def __init__(
        self,
        table: ModeTable,
        alpha: float = 0.25,
        bias_ps: float = 2.0,
        readvance_probes: int = 3,
    ):
        if not table.has_margins:
            raise RecalibrationError(
                "cannot learn margins for a table compiled without "
                "margins; re-run `repro compile-table --margins`"
            )
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if bias_ps < 0.0:
            raise ValueError("bias_ps must be non-negative")
        if readvance_probes < 1:
            raise ValueError("readvance_probes must be >= 1")
        self.table = table
        self.alpha = alpha
        self.bias_ps = bias_ps
        self.readvance_probes = readvance_probes
        #: Wire/bus ordering of modes (stable across processes).
        self.keys: Tuple[int, ...] = tuple(sorted(table.modes))
        self._floor: Dict[int, float] = {
            key: table.margins[key].guarded_slack_ps for key in self.keys
        }
        self._estimate: Dict[int, float] = dict(self._floor)
        self._restricted: Dict[int, bool] = {k: False for k in self.keys}
        self._streak: Dict[int, int] = {k: 0 for k in self.keys}
        #: Monotone epoch; bumped by :meth:`commit` after a probe round.
        self.epoch = 0
        self.demotions = 0
        self.readvances = 0

    # -- observation ---------------------------------------------------------

    def observe(
        self,
        bits_key: int,
        observed_slack_ps: float,
        functional_ok: bool,
        safe_floor_ps: float = 0.0,
    ) -> bool:
        """Fold one probe observation in; returns its health verdict.

        *safe_floor_ps* is the guard's headroom: a mode is healthy only
        if its biased observation clears it (and the golden vectors
        matched).
        """
        estimate = self._estimate[bits_key]
        if observed_slack_ps < estimate:
            estimate = observed_slack_ps
        else:
            estimate += self.alpha * (observed_slack_ps - estimate)
        self._estimate[bits_key] = min(estimate, self._floor[bits_key])

        healthy = (
            functional_ok
            and observed_slack_ps - self.bias_ps >= safe_floor_ps
        )
        if healthy:
            self._streak[bits_key] += 1
            if (
                self._restricted[bits_key]
                and self._streak[bits_key] >= self.readvance_probes
            ):
                self._restricted[bits_key] = False
                self.readvances += 1
        else:
            if not self._restricted[bits_key]:
                self.demotions += 1
            self._restricted[bits_key] = True
            self._streak[bits_key] = 0
        return healthy

    def commit(self) -> int:
        """Seal one probe round; returns the new margin epoch."""
        self.epoch += 1
        return self.epoch

    # -- the guard's view ----------------------------------------------------

    def effective_margin_ps(self, bits_key: int) -> float:
        """Learned margin the guard may trust (never above sign-off)."""
        return min(
            self._estimate[bits_key] - self.bias_ps, self._floor[bits_key]
        )

    def admissible(self, bits_key: int) -> bool:
        """Whether the mode has (re-)earned service eligibility."""
        return not self._restricted[bits_key]

    def healthy_streak(self, bits_key: int) -> int:
        return self._streak[bits_key]

    # -- fleet transport -----------------------------------------------------

    def state_arrays(self) -> Tuple[List[float], List[bool]]:
        """(estimates, admissible) in :attr:`keys` order, for the bus."""
        return (
            [self._estimate[k] for k in self.keys],
            [not self._restricted[k] for k in self.keys],
        )

    def adopt(
        self,
        estimates: Sequence[float],
        admissible: Sequence[bool],
        epoch: int,
    ) -> None:
        """Adopt a peer's committed state (same die, same table).

        Estimates stay clamped to the local sign-off floor, so an
        adopted state can never admit more than the compile-time check
        either.  Streaks reset: a peer's re-advance decision arrives
        already made; local hysteresis restarts from its verdict.
        """
        if len(estimates) != len(self.keys) or len(admissible) != len(
            self.keys
        ):
            raise ValueError("state arrays must match the mode count")
        for key, estimate, ok in zip(self.keys, estimates, admissible):
            self._estimate[key] = min(float(estimate), self._floor[key])
            self._restricted[key] = not bool(ok)
            self._streak[key] = 0
        self.epoch = int(epoch)


class RecalibrationLoop:
    """Virtual-time canary cadence driving one guard's margin learner."""

    def __init__(
        self,
        guard,
        interval_ns: float,
        probe_vectors: int = DEFAULT_PROBE_VECTORS,
        alpha: float = 0.25,
        bias_ps: float = 2.0,
        readvance_probes: int = 3,
        seed: int = 0,
    ):
        if guard is None:
            raise ValueError("recalibration needs a margin guard")
        if interval_ns <= 0.0:
            raise ValueError("interval_ns must be positive")
        self.guard = guard
        self.interval_ns = float(interval_ns)
        self.probe_vectors = probe_vectors
        self.seed = seed
        self.learner = MarginLearner(
            guard.table,
            alpha=alpha,
            bias_ps=bias_ps,
            readvance_probes=readvance_probes,
        )
        guard.attach_learner(self.learner)
        self.next_due_ns = self.interval_ns
        self.probes_run = 0
        self.failures = 0
        self.probe_energy_j = 0.0
        self.probe_cycles = 0
        self._fail_next = 0

    # -- failure injection (tests / chaos) -----------------------------------

    def inject_failure(self, count: int = 1) -> None:
        """Arm the next *count* probe rounds to fail (canary offline)."""
        if count < 0:
            raise ValueError("count must be >= 0")
        self._fail_next += count

    # -- cadence -------------------------------------------------------------

    def due(self, now_ns: float) -> bool:
        return now_ns >= self.next_due_ns

    def maybe_recalibrate(self, now_ns: float, telemetry=None) -> Optional[int]:
        """Probe if the cadence is due; swallow probe failures gracefully.

        Returns the new margin epoch when a round ran, else ``None``.  A
        failed probe round (canary offline) keeps the previous -- by
        construction conservative -- margins and is only accounted
        (``recal_failures``), never raised: serving must not die because
        its calibration path did.
        """
        if now_ns < self.next_due_ns:
            return None
        while self.next_due_ns <= now_ns:
            self.next_due_ns += self.interval_ns
        try:
            return self.recalibrate(now_ns, telemetry)
        except RecalibrationError:
            return None

    def recalibrate(self, now_ns: float, telemetry=None) -> int:
        """Run one probe round over every mode, now; returns the epoch.

        Raises :class:`RecalibrationError` when the canary itself cannot
        run; the learner keeps its previous state in that case.
        """
        if self._fail_next > 0:
            self._fail_next -= 1
            self.failures += 1
            if telemetry is not None:
                telemetry.bump("recal_failures")
            raise RecalibrationError(
                "canary probe unavailable (injected failure)"
            )
        learner = self.learner
        guard = self.guard
        demotions_before = learner.demotions
        readvances_before = learner.readvances
        round_energy_j = 0.0
        round_cycles = 0
        for bits_key in learner.keys:
            result = run_canary_probe(
                guard.table,
                guard.environment,
                bits_key,
                now_ns,
                vectors=self.probe_vectors,
                seed=self.seed,
                epoch=learner.epoch,
            )
            learner.observe(
                bits_key,
                result.observed_slack_ps,
                result.functional_ok,
                safe_floor_ps=guard.headroom_ps,
            )
            round_energy_j += result.probe_energy_j
            round_cycles += result.probe_cycles
        epoch = learner.commit()
        self.probes_run += len(learner.keys)
        self.probe_energy_j += round_energy_j
        self.probe_cycles += round_cycles
        if telemetry is not None:
            telemetry.bump("recal_probes", len(learner.keys))
            telemetry.bump("recal_epochs")
            telemetry.bump(
                "recal_demotions", learner.demotions - demotions_before
            )
            telemetry.bump(
                "recal_readvances", learner.readvances - readvances_before
            )
            telemetry.probe_energy_pj.record(round_energy_j * 1e12)
        return epoch

    # -- introspection -------------------------------------------------------

    def snapshot(self) -> Dict:
        """JSON-ready state (the server's ``recalibrate`` reply body)."""
        learner = self.learner
        return {
            "epoch": learner.epoch,
            "probes_run": self.probes_run,
            "failures": self.failures,
            "probe_energy_j": self.probe_energy_j,
            "margins_ps": {
                str(key): learner.effective_margin_ps(key)
                for key in learner.keys
            },
            "restricted": [
                key for key in learner.keys if not learner.admissible(key)
            ],
        }
