"""Offline-trained mode-selection: fitted Q-iteration over trace suites.

Mode selection is framed as an MDP:

* **State** -- the current mode plus the requested bits plus the
  recent-demand features the redesigned policy API exposes
  (:class:`~repro.serve.policy.PolicyContext`): demand-level EWMA,
  demand-volatility EWMA and generator-pool occupancy, each bucketized
  against fixed edges.  The current mode matters because transition
  energy is paid relative to it -- without it in the state the reward is
  non-Markovian and fitted-Q averages switch costs over whatever modes
  the behavior policy happened to visit.  The demand *features* are
  still a pure function of the request stream, so the batched kernel
  buckets them once per frame and only the final decision lookup walks
  mode history (a cheap sequential fold, replayable from any forced
  mode after degradation).
* **Action** -- one compiled operating point (mode key).
* **Reward** -- negative energy: the phase's compute energy in the
  chosen mode plus the transition energy from the previous action.
  Actions offering fewer bits than requested are hard-masked to
  ``-inf`` -- the accuracy invariant is not a penalty, it is simply not
  in the action space.

Training is tabular fitted Q-iteration on batches of transitions
collected by replaying :mod:`repro.traces` suites under an
epsilon-greedy behavior policy (pure numpy, no heavy dependencies).
The converged greedy policy is frozen into a
:class:`~repro.serve.table.LearnedPolicySpec` decision tensor and
embedded in the ModeTable artifact, where :class:`LearnedPolicy` (and
the compiled batch kernel) serve it as a pure lookup.

Why a lookup policy can beat the hand-written baselines: transition
energy is paid per switch, so on flapping demand the cheap-per-phase
greedy plan is globally expensive, while on long calm stretches the
hold-the-peak plan wastes compute headroom.  The volatility EWMA tells
the two regimes apart at serve time, and fitted-Q picks the
energy-minimal mode per regime instead of per phase.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.serve.errors import ServeError
from repro.serve.policy import (
    DEMAND_EWMA_ALPHA,
    VOLATILITY_EWMA_ALPHA,
    DemandTracker,
    PolicyContext,
    SelectionPolicy,
    register_policy,
)
from repro.serve.table import LearnedPolicySpec, ModeTable
from repro.traces import WorkloadTrace, generate_suite

#: Default demand-volatility bucket edges (EWMA of |delta bits|).
DEFAULT_VOLATILITY_EDGES: Tuple[float, ...] = (0.25, 1.0, 2.5)

#: Default generator-pool occupancy bucket edges.  Training replays are
#: single-operator (occupancy 0); buckets past the first hold the
#: conservative cover decision.
DEFAULT_OCCUPANCY_EDGES: Tuple[float, ...] = (0.5, 2.5)


def bucketize(edges: Sequence[float], value: float) -> int:
    """Index of *value*'s bucket: the count of edges <= value.

    Matches ``np.searchsorted(edges, value, side="right")`` exactly, so
    the scalar path and any vectorized consumer bucket identically.
    """
    return bisect_right(edges, value)


def default_level_edges(table: ModeTable) -> Tuple[float, ...]:
    """Demand-level edges at the midpoints between compiled bitwidths."""
    bits = table.bitwidths
    return tuple(
        (bits[i] + bits[i + 1]) / 2.0 for i in range(len(bits) - 1)
    )


@register_policy
class LearnedPolicy(SelectionPolicy):
    """Serves the frozen fitted-Q decision tensor embedded in the table.

    Construction fails with :class:`ServeError` if the table carries no
    learned block, or if the spec's EWMA constants differ from the ones
    the scheduler folds features with (trained and served features must
    be the same function of the request stream).
    """

    name = "learned"
    params = ()

    def __init__(self, table: ModeTable, spec: Optional[LearnedPolicySpec] = None):
        super().__init__(table)
        if spec is None:
            spec = table.learned
        if spec is None:
            raise ServeError(
                "table carries no learned policy; train one with "
                "`repro train-policy` (or pass spec=) before serving "
                "--policy learned"
            )
        if (
            spec.demand_alpha != DEMAND_EWMA_ALPHA
            or spec.volatility_alpha != VOLATILITY_EWMA_ALPHA
        ):
            raise ServeError(
                "learned policy was trained with EWMA constants "
                f"({spec.demand_alpha}, {spec.volatility_alpha}) but this "
                f"build folds features with ({DEMAND_EWMA_ALPHA}, "
                f"{VOLATILITY_EWMA_ALPHA}); retrain the policy"
            )
        if spec.max_bits != table.max_bits:
            raise ServeError(
                f"learned policy covers bits up to {spec.max_bits} but "
                f"the table serves up to {table.max_bits}; retrain"
            )
        spec.validate_for(table.modes)
        self.spec = spec
        self._row_of = {key: i for i, key in enumerate(spec.mode_states)}
        self._none_row = len(spec.mode_states)

    def decide(self, ctx: PolicyContext) -> int:
        bits = ctx.required_bits
        spec = self.spec
        if bits > spec.max_bits or bits < 0:
            # Out of the trained range: defer to the table, which raises
            # the same infeasibility error every other policy raises.
            return self.table.mode_key_for(bits)
        row = (
            self._row_of[ctx.current_bits]
            if ctx.current_bits is not None
            else self._none_row
        )
        level_b = bucketize(spec.level_edges, ctx.demand_level)
        vol_b = bucketize(spec.volatility_edges, ctx.demand_volatility)
        occ_b = bucketize(spec.occupancy_edges, float(ctx.pool_occupancy))
        return spec.decisions[row][level_b][vol_b][occ_b][bits]


# -- offline training ---------------------------------------------------------


@dataclass(frozen=True)
class TrainingResult:
    """The frozen spec plus the diagnostics the trainer accumulated."""

    spec: LearnedPolicySpec
    samples: int
    states_visited: int
    rounds: int


def _encode(
    row: int,
    bits: int,
    level_b: int,
    vol_b: int,
    occ_b: int,
    dims: Tuple[int, ...],
) -> int:
    _n_rows, n_level, n_vol, n_occ, n_bits = dims
    return (
        ((row * n_level + level_b) * n_vol + vol_b) * n_occ + occ_b
    ) * n_bits + bits


def _collect_transitions(
    table: ModeTable,
    trace: WorkloadTrace,
    rng: random.Random,
    q_values: np.ndarray,
    valid: np.ndarray,
    visited: np.ndarray,
    epsilon: float,
    dims: Tuple[int, ...],
    level_edges: Sequence[float],
    vol_edges: Sequence[float],
    mode_keys: Sequence[int],
) -> List[Tuple[int, int, float, int, bool]]:
    """One episode: replay *trace* under an epsilon-greedy behavior policy.

    Feature-level rollout -- the same :class:`DemandTracker` fold the
    scheduler applies, no pool interaction (occupancy bucket 0
    throughout, matching a dedicated single-operator replay).
    """
    fclk_hz = table.fclk_ghz * 1e9
    powers = [table.modes[key].total_power_w for key in mode_keys]
    none_row = len(mode_keys)
    tracker = DemandTracker()
    transitions: List[Tuple[int, int, float, int, bool]] = []
    phases = trace.to_phases()
    # Demand buckets are a pure function of the request stream --
    # precomputed once; the mode row threads through the action loop.
    buckets: List[Tuple[int, int, int]] = []
    for bits, _cycles in phases:
        level, vol = tracker.features_for(bits)
        buckets.append(
            (
                bits,
                bucketize(level_edges, level),
                bucketize(vol_edges, vol),
            )
        )
        tracker.update(bits)
    prev_action: Optional[int] = None
    for step, (bits, cycles) in enumerate(phases):
        row = none_row if prev_action is None else prev_action
        _b, level_b, vol_b = buckets[step]
        state = _encode(row, bits, level_b, vol_b, 0, dims)
        options = np.flatnonzero(valid[bits])
        if rng.random() < epsilon:
            action = int(options[rng.randrange(len(options))])
        else:
            q_row = np.where(
                visited[state] & valid[bits], q_values[state], -np.inf
            )
            if np.isneginf(q_row).all():
                action = int(options[rng.randrange(len(options))])
            else:
                action = int(np.argmax(q_row))
        key = mode_keys[action]
        energy = powers[action] * cycles / fclk_hz
        if prev_action is not None and prev_action != action:
            energy += table.transitions[
                (mode_keys[prev_action], key)
            ].energy_j
        done = step + 1 == len(phases)
        if done:
            next_state = state
        else:
            n_bits, n_level, n_vol = buckets[step + 1]
            next_state = _encode(
                action, n_bits, n_level, n_vol, 0, dims
            )
        transitions.append((state, action, -energy, next_state, done))
        prev_action = action
    return transitions


def _fitted_q(
    transitions: Sequence[Tuple[int, int, float, int, bool]],
    n_states: int,
    n_actions: int,
    valid_by_state_bits: np.ndarray,
    state_bits: np.ndarray,
    gamma: float,
    iterations: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batch fitted Q-iteration; returns (Q, visited-(s,a) mask)."""
    s = np.fromiter((t[0] for t in transitions), dtype=np.int64)
    a = np.fromiter((t[1] for t in transitions), dtype=np.int64)
    r = np.fromiter((t[2] for t in transitions), dtype=np.float64)
    s2 = np.fromiter((t[3] for t in transitions), dtype=np.int64)
    done = np.fromiter((t[4] for t in transitions), dtype=bool)

    flat = s * n_actions + a
    counts = np.bincount(flat, minlength=n_states * n_actions).reshape(
        n_states, n_actions
    )
    visited = counts > 0
    q_values = np.zeros((n_states, n_actions))
    # Masks: an action is considered at s' only if valid for s2's bits
    # AND visited somewhere (unvisited cells hold the uninformative 0).
    next_valid = valid_by_state_bits[state_bits[s2]]
    for _ in range(iterations):
        usable = next_valid & visited[s2]
        next_q = np.where(usable, q_values[s2], -np.inf)
        best_next = next_q.max(axis=1)
        best_next[np.isneginf(best_next)] = 0.0
        targets = r + np.where(done, 0.0, gamma * best_next)
        sums = np.bincount(
            flat, weights=targets, minlength=n_states * n_actions
        ).reshape(n_states, n_actions)
        with np.errstate(invalid="ignore"):
            q_values = np.where(visited, sums / np.maximum(counts, 1), 0.0)
    return q_values, visited


def train_policy(
    table: ModeTable,
    traces: Iterable[WorkloadTrace],
    *,
    seed: int = 0,
    gamma: float = 0.95,
    epsilon: float = 0.2,
    rounds: int = 4,
    iterations: int = 40,
    level_edges: Optional[Sequence[float]] = None,
    volatility_edges: Sequence[float] = DEFAULT_VOLATILITY_EDGES,
    occupancy_edges: Sequence[float] = DEFAULT_OCCUPANCY_EDGES,
) -> TrainingResult:
    """Train a frozen lookup policy on a corpus of workload traces.

    Runs ``rounds`` alternations of (collect transitions under the
    epsilon-greedy behavior policy) and (batch fitted Q-iteration); the
    first round explores uniformly.  Deterministic for a given seed and
    corpus.  The returned spec is safe by construction: every decision
    is drawn from the bits-valid action set, and states fitted-Q never
    visited fall back to the greedy cover mode.
    """
    trace_list = list(traces)
    if not trace_list:
        raise ValueError("need at least one training trace")
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError("epsilon must be in [0, 1]")
    if not 0.0 <= gamma < 1.0:
        raise ValueError("gamma must be in [0, 1)")
    if rounds < 1 or iterations < 1:
        raise ValueError("rounds and iterations must be >= 1")
    l_edges = tuple(
        float(e)
        for e in (
            level_edges if level_edges is not None else default_level_edges(table)
        )
    )
    v_edges = tuple(float(e) for e in volatility_edges)
    o_edges = tuple(float(e) for e in occupancy_edges)
    mode_states = tuple(table.modes)
    mode_keys = list(mode_states)
    n_actions = len(mode_keys)
    max_bits = table.max_bits
    dims = (
        n_actions + 1,
        len(l_edges) + 1,
        len(v_edges) + 1,
        len(o_edges) + 1,
        max_bits + 1,
    )
    n_states = dims[0] * dims[1] * dims[2] * dims[3] * dims[4]

    active_bits = np.array(
        [table.modes[key].active_bits for key in mode_keys]
    )
    # valid[bits, action]: the action's mode offers at least `bits` bits.
    valid = (
        active_bits[np.newaxis, :] >= np.arange(max_bits + 1)[:, np.newaxis]
    )
    state_bits = np.arange(n_states) % dims[4]

    rng = random.Random(seed)
    q_values = np.zeros((n_states, n_actions))
    visited = np.zeros((n_states, n_actions), dtype=bool)
    pool: List[Tuple[int, int, float, int, bool]] = []
    for round_index in range(rounds):
        round_epsilon = 1.0 if round_index == 0 else epsilon
        for trace in trace_list:
            pool.extend(
                _collect_transitions(
                    table,
                    trace,
                    rng,
                    q_values,
                    valid,
                    visited,
                    round_epsilon,
                    dims,
                    l_edges,
                    v_edges,
                    mode_keys,
                )
            )
        q_values, visited = _fitted_q(
            pool, n_states, n_actions, valid, state_bits, gamma, iterations
        )

    # Freeze: argmax over visited & valid actions; cover elsewhere.
    decisions: List[List[List[List[List[int]]]]] = []
    cover = [table.mode_key_for(bits) for bits in range(max_bits + 1)]
    states_visited = 0
    for mode_row in range(dims[0]):
        cube: List[List[List[List[int]]]] = []
        for level_b in range(dims[1]):
            plane: List[List[List[int]]] = []
            for vol_b in range(dims[2]):
                rows: List[List[int]] = []
                for occ_b in range(dims[3]):
                    cell: List[int] = []
                    for bits in range(dims[4]):
                        state = _encode(
                            mode_row, bits, level_b, vol_b, occ_b, dims
                        )
                        usable = visited[state] & valid[bits]
                        if usable.any():
                            states_visited += 1
                            q_row = np.where(
                                usable, q_values[state], -np.inf
                            )
                            cell.append(mode_keys[int(np.argmax(q_row))])
                        else:
                            cell.append(cover[bits])
                    rows.append(cell)
                plane.append(rows)
            cube.append(plane)
        decisions.append(cube)

    spec = LearnedPolicySpec(
        level_edges=l_edges,
        volatility_edges=v_edges,
        occupancy_edges=o_edges,
        mode_states=mode_states,
        demand_alpha=DEMAND_EWMA_ALPHA,
        volatility_alpha=VOLATILITY_EWMA_ALPHA,
        max_bits=max_bits,
        decisions=tuple(
            tuple(
                tuple(tuple(tuple(cell) for cell in row) for row in plane)
                for plane in cube
            )
            for cube in decisions
        ),
        training={
            "seed": seed,
            "gamma": gamma,
            "epsilon": epsilon,
            "rounds": rounds,
            "iterations": iterations,
            "samples": len(pool),
            "families": sorted({t.family for t in trace_list}),
            "trace_seeds": [t.seed for t in trace_list],
        },
    )
    spec.validate_for(table.modes)
    return TrainingResult(
        spec=spec,
        samples=len(pool),
        states_visited=states_visited,
        rounds=rounds,
    )


def train_on_suite(
    table: ModeTable,
    *,
    seed: int = 0,
    length: int = 400,
    mean_cycles: int = 2000,
    suites: int = 3,
    **train_kwargs,
) -> TrainingResult:
    """Generate ``suites`` traces per family and train on the corpus.

    The convenience entry the CLI and CI use: trace levels are taken
    from the table's own compiled bitwidths so every request is
    satisfiable, and the suite seeds are offset from the training seed
    so evaluation traces generated at other seeds stay out-of-sample.
    Multiple suites per family de-noise the tabular Q estimates (the
    state space is small; sample diversity is what's scarce).
    """
    if suites < 1:
        raise ValueError("suites must be >= 1")
    traces: List[WorkloadTrace] = []
    for index in range(suites):
        traces.extend(
            generate_suite(
                seed=seed + 10 * index,
                length=length,
                bits_levels=table.bitwidths,
                mean_cycles=mean_cycles,
            ).values()
        )
    return train_policy(table, traces, seed=seed, **train_kwargs)
