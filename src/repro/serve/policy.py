"""Pluggable mode-selection policies for the serving subsystem.

A policy decides which compiled mode serves a request.  Since the policy
API redesign the decision point is :meth:`SelectionPolicy.decide`, which
receives one :class:`PolicyContext` -- the request itself plus everything
the scheduler knows that a stateful or learned policy may want to
condition on: the current mode, a bounded window of known upcoming
phases, recent-demand EWMA features, the generator-pool occupancy and
the operator's virtual clock.

The contract every policy must honour -- and the scheduler re-checks
centrally -- is the accuracy invariant: **the selected mode never offers
fewer bits than the request demands**.  Policies only get to trade
*headroom* (serving more bits than asked) against transition cost.

Four policies ship:

* ``greedy`` -- the paper baseline: cheapest sufficient mode, every phase.
* ``hysteresis`` -- takes every upswitch (accuracy first), but refuses a
  downswitch unless the projected compute saving over an expected dwell
  beats the transition energy by a configurable margin.  Kills mode
  thrash on alternating workloads.
* ``lookahead`` -- evaluates, over a bounded window of known upcoming
  phases, the full energy of "greedy per phase" vs "hold one covering
  mode", and commits to the cheaper plan's first step.
* ``learned`` -- a frozen fitted-Q lookup policy trained offline on a
  workload-trace suite (:mod:`repro.serve.learned`), conditioned on the
  current mode plus the context's demand features.

Policies register through the :func:`register_policy` decorator, which
also carries each policy's typed constructor parameters
(:class:`PolicyParam`) so the CLI's ``--policy-arg key=value`` pairs are
validated and coerced with a clear error instead of a raw ``TypeError``.

Legacy policies that predate the redesign -- subclasses overriding the
old positional ``select(required_bits, current_bits, upcoming)`` -- keep
working: the base class adapts ``decide`` onto ``select`` and emits a
:class:`DeprecationWarning` once per class.
"""

from __future__ import annotations

import warnings
from abc import ABC
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.serve.table import ModeTable

#: An upcoming request as the scheduler exposes it to policies:
#: ``(required_bits, cycles)``.
Upcoming = Tuple[int, int]

#: EWMA smoothing of the demand-level feature.  Shared by the scheduler,
#: the batched kernel and the offline trainer -- a learned artifact
#: records the constants it was trained with and the loader rejects a
#: mismatch, so the served features always match the trained ones.
DEMAND_EWMA_ALPHA = 0.25

#: EWMA smoothing of the demand-volatility feature (|delta bits|).
VOLATILITY_EWMA_ALPHA = 0.25


@dataclass(frozen=True)
class PolicyContext:
    """Everything a policy may condition one decision on.

    ``demand_level`` / ``demand_volatility`` are the scheduler-maintained
    EWMA features of the operator's recent request stream *before* this
    request is folded in (see :class:`DemandTracker`); ``pool_occupancy``
    is the number of not-yet-started slews queued on the generator pool
    at decision time; ``virtual_time_ns`` is the operator's virtual
    clock.  Memoryless policies simply ignore the fields they do not
    need.
    """

    required_bits: int
    current_bits: Optional[int] = None
    upcoming: Tuple[Upcoming, ...] = ()
    demand_level: float = 0.0
    demand_volatility: float = 0.0
    pool_occupancy: int = 0
    virtual_time_ns: float = 0.0


class DemandTracker:
    """Per-operator EWMA features of the request stream.

    ``level`` tracks the demanded bits, ``volatility`` the absolute
    phase-to-phase demand change.  The very first request initialises
    the level to itself (no cold-start bias toward zero).  Updates are
    plain python float arithmetic so the batched kernel's fold replays
    them bit-identically.
    """

    __slots__ = ("level", "volatility", "last_bits")

    def __init__(
        self,
        level: Optional[float] = None,
        volatility: float = 0.0,
        last_bits: Optional[int] = None,
    ):
        self.level = level
        self.volatility = volatility
        self.last_bits = last_bits

    def features_for(self, required_bits: int) -> Tuple[float, float]:
        """The (level, volatility) a decision on *required_bits* sees."""
        if self.level is None:
            return (float(required_bits), self.volatility)
        return (self.level, self.volatility)

    def update(self, required_bits: int) -> None:
        """Fold one served request into the EWMAs."""
        bits = float(required_bits)
        if self.last_bits is None:
            self.level = bits
        else:
            self.level = (
                DEMAND_EWMA_ALPHA * bits
                + (1.0 - DEMAND_EWMA_ALPHA) * self.level
            )
            self.volatility = (
                VOLATILITY_EWMA_ALPHA * abs(bits - float(self.last_bits))
                + (1.0 - VOLATILITY_EWMA_ALPHA) * self.volatility
            )
        self.last_bits = required_bits

    def copy(self) -> "DemandTracker":
        return DemandTracker(self.level, self.volatility, self.last_bits)


#: Classes we already warned about using the legacy ``select`` contract.
_LEGACY_WARNED: set = set()


def _warn_legacy(cls: type) -> None:
    if cls in _LEGACY_WARNED:
        return
    _LEGACY_WARNED.add(cls)
    warnings.warn(
        f"{cls.__name__} implements the legacy positional "
        "select(required_bits, current_bits, upcoming) contract; "
        "override decide(ctx: PolicyContext) instead -- the adapter "
        "will be removed in a future release",
        DeprecationWarning,
        stacklevel=3,
    )


class SelectionPolicy(ABC):
    """Chooses the mode key serving a request.

    Subclasses override :meth:`decide`.  Legacy subclasses that only
    override the old positional :meth:`select` keep working through the
    built-in adapter (with a :class:`DeprecationWarning` the first time
    each class decides).
    """

    name = "base"

    def __init__(self, table: ModeTable):
        self.table = table

    def decide(self, ctx: PolicyContext) -> int:
        """Return the mode key serving ``ctx.required_bits``."""
        cls = type(self)
        if cls.select is SelectionPolicy.select:
            raise TypeError(
                f"{cls.__name__} must override decide(ctx) (or the "
                "legacy select(required_bits, current_bits, upcoming))"
            )
        _warn_legacy(cls)
        return self.select(ctx.required_bits, ctx.current_bits, ctx.upcoming)

    def select(
        self,
        required_bits: int,
        current_bits: Optional[int] = None,
        upcoming: Sequence[Upcoming] = (),
    ) -> int:
        """Legacy entry point: builds a minimal context and decides.

        Kept so existing callers (and the compiled decision-table
        prober) stay source-compatible; new code should build a
        :class:`PolicyContext` and call :meth:`decide`.
        """
        return self.decide(
            PolicyContext(
                required_bits=required_bits,
                current_bits=current_bits,
                upcoming=tuple(upcoming),
            )
        )

    def _phase_energy_j(self, bits_key: int, cycles: int) -> float:
        power = self.table.modes[bits_key].total_power_w
        return power * cycles / (self.table.fclk_ghz * 1e9)


# -- registry -----------------------------------------------------------------


@dataclass(frozen=True)
class PolicyParam:
    """One typed, documented constructor parameter of a policy."""

    name: str
    kind: type
    default: Any
    doc: str = ""

    def coerce(self, raw: Any) -> Any:
        """Parse *raw* (typically a CLI string) into the declared type."""
        if isinstance(raw, self.kind):
            return raw
        try:
            if self.kind is bool and isinstance(raw, str):
                lowered = raw.strip().lower()
                if lowered in ("1", "true", "yes", "on"):
                    return True
                if lowered in ("0", "false", "no", "off"):
                    return False
                raise ValueError(f"not a boolean: {raw!r}")
            return self.kind(raw)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"policy parameter {self.name!r} expects "
                f"{self.kind.__name__}, got {raw!r}"
            ) from exc


#: The live policy registry: name -> class.  Populated by
#: :func:`register_policy`; kept under the historical ``POLICIES`` name
#: so existing imports stay valid.
POLICIES: Dict[str, Type[SelectionPolicy]] = {}


def register_policy(cls: Type[SelectionPolicy]) -> Type[SelectionPolicy]:
    """Class decorator adding a policy to the registry.

    The class must define ``name`` and may define ``params`` -- a tuple
    of :class:`PolicyParam` describing its constructor keywords.  The
    registry drives :func:`make_policy` validation and the CLI's
    ``--policy`` / ``--policy-arg`` surface.
    """
    name = getattr(cls, "name", None)
    if not name or name == SelectionPolicy.name:
        raise ValueError(
            f"policy class {cls.__name__} must define a unique name"
        )
    existing = POLICIES.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"policy name {name!r} already registered by "
            f"{existing.__name__}"
        )
    for param in getattr(cls, "params", ()):
        if not isinstance(param, PolicyParam):
            raise ValueError(
                f"{cls.__name__}.params must contain PolicyParam entries"
            )
    POLICIES[name] = cls
    return cls


def policy_params(name: str) -> Tuple[PolicyParam, ...]:
    """The declared parameters of a registered policy."""
    return tuple(getattr(_policy_class(name), "params", ()))


def _policy_class(name: str) -> Type[SelectionPolicy]:
    try:
        return POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None


def validate_policy_kwargs(name: str, kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """Check *kwargs* against the registry; coerce declared types.

    Unknown keys raise a :class:`ValueError` that lists every parameter
    the policy actually takes (or says it takes none).
    """
    declared = {param.name: param for param in policy_params(name)}
    coerced: Dict[str, Any] = {}
    for key, value in kwargs.items():
        if key not in declared:
            known = (
                "takes no parameters"
                if not declared
                else "knows " + ", ".join(
                    f"{p.name} ({p.kind.__name__}, default {p.default!r})"
                    for p in declared.values()
                )
            )
            raise ValueError(
                f"policy {name!r} has no parameter {key!r}; it {known}"
            )
        coerced[key] = declared[key].coerce(value)
    return coerced


def make_policy(name: str, table: ModeTable, **kwargs) -> SelectionPolicy:
    """Instantiate a registered policy by name, validating its kwargs."""
    cls = _policy_class(name)
    return cls(table, **validate_policy_kwargs(name, kwargs))


def parse_policy_args(pairs: Sequence[str]) -> Dict[str, str]:
    """Parse CLI ``--policy-arg key=value`` pairs into a raw dict."""
    parsed: Dict[str, str] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ValueError(
                f"bad --policy-arg {pair!r}; expected key=value"
            )
        parsed[key.strip()] = value.strip()
    return parsed


# -- built-in policies --------------------------------------------------------


@register_policy
class GreedyPolicy(SelectionPolicy):
    """Paper baseline: cheapest sufficient mode, reconsidered every phase."""

    name = "greedy"
    params: Tuple[PolicyParam, ...] = ()

    def decide(self, ctx: PolicyContext) -> int:
        return self.table.mode_key_for(ctx.required_bits)


@register_policy
class HysteresisPolicy(SelectionPolicy):
    """Debounced greedy: a downswitch must pay for itself.

    When greedy wants a cheaper mode than the current one, the move is
    taken only if the projected compute saving over ``dwell_cycles``
    exceeds ``margin`` times the transition energy; otherwise the operator
    holds its (sufficient) current mode.  Upswitches are never delayed.
    """

    name = "hysteresis"
    params = (
        PolicyParam(
            "dwell_cycles", int, 20_000,
            "cycles the projected saving is amortized over",
        ),
        PolicyParam(
            "margin", float, 2.0,
            "saving must beat margin x transition energy",
        ),
    )

    def __init__(
        self, table: ModeTable, dwell_cycles: int = 20_000, margin: float = 2.0
    ):
        super().__init__(table)
        if dwell_cycles <= 0:
            raise ValueError("dwell_cycles must be positive")
        if margin < 0.0:
            raise ValueError("margin must be non-negative")
        self.dwell_cycles = dwell_cycles
        self.margin = margin

    def decide(self, ctx: PolicyContext) -> int:
        required_bits = ctx.required_bits
        current_bits = ctx.current_bits
        target = self.table.mode_key_for(required_bits)
        if current_bits is None or target == current_bits:
            return target
        current = self.table.modes[current_bits]
        if current.active_bits < required_bits:
            return target  # upswitch: accuracy always wins
        saving_w = current.total_power_w - self.table.modes[target].total_power_w
        if saving_w <= 0.0:
            return current_bits
        dwell_s = self.dwell_cycles / (self.table.fclk_ghz * 1e9)
        cost = self.table.transition_between(current_bits, target)
        if saving_w * dwell_s <= self.margin * cost.energy_j:
            return current_bits
        return target


@register_policy
class LookaheadPolicy(SelectionPolicy):
    """Bounded-window plan comparison: greedy-per-phase vs hold-covering.

    Considers the current request plus up to ``window`` known upcoming
    phases, prices both plans exactly with the compiled table (compute
    energy + every transition either plan incurs), and serves the first
    step of the cheaper one.  With an empty window it degenerates to
    greedy.
    """

    name = "lookahead"
    params = (
        PolicyParam(
            "window", int, 4, "upcoming phases the plan comparison sees"
        ),
    )

    def __init__(self, table: ModeTable, window: int = 4):
        super().__init__(table)
        if window < 0:
            raise ValueError("window must be non-negative")
        self.window = window

    def _plan_energy_j(
        self,
        keys: Sequence[int],
        phases: Sequence[Upcoming],
        start_key: Optional[int],
    ) -> float:
        energy = 0.0
        current = start_key
        for key, (_bits, cycles) in zip(keys, phases):
            energy += self.table.transition_between(current, key).energy_j
            energy += self._phase_energy_j(key, cycles)
            current = key
        return energy

    def decide(self, ctx: PolicyContext) -> int:
        required_bits = ctx.required_bits
        current_bits = ctx.current_bits
        horizon: Sequence[Upcoming] = [
            (required_bits, 0),
            *list(ctx.upcoming)[: self.window],
        ]
        # The current request's cycle count is unknown at selection time
        # (the scheduler passes only the future); weight it like the mean
        # of the visible future so plans stay comparable.
        future = horizon[1:]
        mean_cycles = (
            sum(c for _b, c in future) // len(future) if future else 0
        )
        horizon = [(required_bits, mean_cycles), *future]

        greedy_keys = [self.table.mode_key_for(b) for b, _c in horizon]
        peak_key = self.table.mode_key_for(max(b for b, _c in horizon))
        if all(key == greedy_keys[0] for key in greedy_keys):
            return greedy_keys[0]
        hold_keys = [peak_key] * len(horizon)
        greedy_cost = self._plan_energy_j(greedy_keys, horizon, current_bits)
        hold_cost = self._plan_energy_j(hold_keys, horizon, current_bits)
        return peak_key if hold_cost < greedy_cost else greedy_keys[0]
