"""Pluggable mode-selection policies for the serving subsystem.

A policy decides which compiled mode serves a request, given the mode the
operator currently sits in and (optionally) a bounded window of upcoming
requests.  The contract every policy must honour -- and the scheduler
re-checks centrally -- is the accuracy invariant: **the selected mode never
offers fewer bits than the request demands**.  Policies only get to trade
*headroom* (serving more bits than asked) against transition cost.

Three policies ship:

* ``greedy`` -- the paper baseline: cheapest sufficient mode, every phase.
* ``hysteresis`` -- takes every upswitch (accuracy first), but refuses a
  downswitch unless the projected compute saving over an expected dwell
  beats the transition energy by a configurable margin.  Kills mode
  thrash on alternating workloads.
* ``lookahead`` -- evaluates, over a bounded window of known upcoming
  phases, the full energy of "greedy per phase" vs "hold one covering
  mode", and commits to the cheaper plan's first step.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Sequence, Tuple, Type

from repro.serve.table import ModeTable

#: An upcoming request as the scheduler exposes it to policies:
#: ``(required_bits, cycles)``.
Upcoming = Tuple[int, int]


class SelectionPolicy(ABC):
    """Chooses the mode key serving a request."""

    name = "base"

    def __init__(self, table: ModeTable):
        self.table = table

    @abstractmethod
    def select(
        self,
        required_bits: int,
        current_bits: Optional[int],
        upcoming: Sequence[Upcoming] = (),
    ) -> int:
        """Return the mode key to serve *required_bits* with."""

    def _phase_energy_j(self, bits_key: int, cycles: int) -> float:
        power = self.table.modes[bits_key].total_power_w
        return power * cycles / (self.table.fclk_ghz * 1e9)


class GreedyPolicy(SelectionPolicy):
    """Paper baseline: cheapest sufficient mode, reconsidered every phase."""

    name = "greedy"

    def select(self, required_bits, current_bits, upcoming=()):
        return self.table.mode_key_for(required_bits)


class HysteresisPolicy(SelectionPolicy):
    """Debounced greedy: a downswitch must pay for itself.

    When greedy wants a cheaper mode than the current one, the move is
    taken only if the projected compute saving over ``dwell_cycles``
    exceeds ``margin`` times the transition energy; otherwise the operator
    holds its (sufficient) current mode.  Upswitches are never delayed.
    """

    name = "hysteresis"

    def __init__(
        self, table: ModeTable, dwell_cycles: int = 20_000, margin: float = 2.0
    ):
        super().__init__(table)
        if dwell_cycles <= 0:
            raise ValueError("dwell_cycles must be positive")
        if margin < 0.0:
            raise ValueError("margin must be non-negative")
        self.dwell_cycles = dwell_cycles
        self.margin = margin

    def select(self, required_bits, current_bits, upcoming=()):
        target = self.table.mode_key_for(required_bits)
        if current_bits is None or target == current_bits:
            return target
        current = self.table.modes[current_bits]
        if current.active_bits < required_bits:
            return target  # upswitch: accuracy always wins
        saving_w = current.total_power_w - self.table.modes[target].total_power_w
        if saving_w <= 0.0:
            return current_bits
        dwell_s = self.dwell_cycles / (self.table.fclk_ghz * 1e9)
        cost = self.table.transition_between(current_bits, target)
        if saving_w * dwell_s <= self.margin * cost.energy_j:
            return current_bits
        return target


class LookaheadPolicy(SelectionPolicy):
    """Bounded-window plan comparison: greedy-per-phase vs hold-covering.

    Considers the current request plus up to ``window`` known upcoming
    phases, prices both plans exactly with the compiled table (compute
    energy + every transition either plan incurs), and serves the first
    step of the cheaper one.  With an empty window it degenerates to
    greedy.
    """

    name = "lookahead"

    def __init__(self, table: ModeTable, window: int = 4):
        super().__init__(table)
        if window < 0:
            raise ValueError("window must be non-negative")
        self.window = window

    def _plan_energy_j(
        self,
        keys: Sequence[int],
        phases: Sequence[Upcoming],
        start_key: Optional[int],
    ) -> float:
        energy = 0.0
        current = start_key
        for key, (_bits, cycles) in zip(keys, phases):
            energy += self.table.transition_between(current, key).energy_j
            energy += self._phase_energy_j(key, cycles)
            current = key
        return energy

    def select(self, required_bits, current_bits, upcoming=()):
        horizon: Sequence[Upcoming] = [
            (required_bits, 0),
            *list(upcoming)[: self.window],
        ]
        # The current request's cycle count is unknown at selection time
        # (the scheduler passes only the future); weight it like the mean
        # of the visible future so plans stay comparable.
        future = horizon[1:]
        mean_cycles = (
            sum(c for _b, c in future) // len(future) if future else 0
        )
        horizon = [(required_bits, mean_cycles), *future]

        greedy_keys = [self.table.mode_key_for(b) for b, _c in horizon]
        peak_key = self.table.mode_key_for(max(b for b, _c in horizon))
        if all(key == greedy_keys[0] for key in greedy_keys):
            return greedy_keys[0]
        hold_keys = [peak_key] * len(horizon)
        greedy_cost = self._plan_energy_j(greedy_keys, horizon, current_bits)
        hold_cost = self._plan_energy_j(hold_keys, horizon, current_bits)
        return peak_key if hold_cost < greedy_cost else greedy_keys[0]


POLICIES: Dict[str, Type[SelectionPolicy]] = {
    GreedyPolicy.name: GreedyPolicy,
    HysteresisPolicy.name: HysteresisPolicy,
    LookaheadPolicy.name: LookaheadPolicy,
}


def make_policy(name: str, table: ModeTable, **kwargs) -> SelectionPolicy:
    """Instantiate a registered policy by name."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from {sorted(POLICIES)}"
        )
    return cls(table, **kwargs)
