"""Runtime margin guard: detect margin erosion, fall back before failure.

The exploration deliberately picks operating points with near-zero slack
at aggressive corners (low VDD + FBB); the compiled table's per-mode
margins (:class:`~repro.serve.table.ModeMargin`) say how much slack the
n-sigma-worst instance has *at sign-off conditions*.  At serve time the
environment drifts: temperature excursions, supply droop and aging eat
that slack.  :class:`MarginGuard` closes the loop --

* it evaluates the injected/observed :class:`~repro.faults.environment.
  SiliconEnvironment` at each decision instant and converts it into
  slack erosion (ps of the operator's clock),
* a mode is **safe** while its guarded slack minus current erosion stays
  above a configurable headroom, and while the bias hardware can
  actually reach it (no stuck-at-NoBB window for FBB modes),
* when the policy's pick is unsafe the guard substitutes the cheapest
  *safe* mode still covering the requested bits -- in practice a higher
  VDD and/or NoBB point, which is exactly the "retreat from the
  aggressive corner" reaction dynamic-precision-scaling silicon
  implements in hardware;
* when *no* covering mode is safe it returns the static maximum-accuracy
  mode: the power-on default rail, margined at the sign-off corner by
  construction, and flags the decision as a fallback so telemetry and
  the chaos harness can see the guard working.

The guard also answers the scheduler's hardware-availability questions
(dropped generators, blocked transitions), making it the single seam
between the serving stack and the fault layer.  A guard attached to a
table compiled *without* margins warns once and skips the margin check
(availability handling still applies) -- old artifacts keep serving.
"""

from __future__ import annotations

import warnings
from typing import FrozenSet, Optional, Tuple

from repro.faults.environment import SiliconEnvironment
from repro.serve.table import ModeTable


class MarginGuard:
    """Margin-erosion monitor for one serving environment."""

    def __init__(
        self,
        table: ModeTable,
        environment: Optional[SiliconEnvironment] = None,
        headroom_ps: float = 0.0,
    ):
        if headroom_ps < 0.0:
            raise ValueError("headroom must be non-negative")
        self.table = table
        self.environment = (
            environment if environment is not None else SiliconEnvironment()
        )
        self.headroom_ps = headroom_ps
        self.margins_enabled = table.has_margins
        if not self.margins_enabled:
            warnings.warn(
                "mode table was compiled without margins; the margin "
                "guard will only track bias-hardware availability "
                "(re-run `repro compile-table --margins` to enable "
                "erosion checks)",
                RuntimeWarning,
                stacklevel=2,
            )
        #: ps of clock period at this table's frequency.
        self.period_ps = 1e3 / table.fclk_ghz

    # -- erosion -------------------------------------------------------------

    def erosion_ps(self, now_ns: float, vdd: float) -> float:
        """Slack erosion the environment imposes on a mode at *vdd* now."""
        return self.environment.slack_erosion_ps(now_ns, vdd, self.period_ps)

    def mode_is_safe(self, bits_key: int, now_ns: float) -> bool:
        """Margin + reachability check for one compiled mode, now."""
        mode = self.table.modes[bits_key]
        if any(mode.bb_config) and self.environment.stuck_at_nobb(now_ns):
            return False
        if not self.margins_enabled:
            return True
        margin = self.table.margins[bits_key]
        erosion = self.erosion_ps(now_ns, mode.vdd)
        return margin.guarded_slack_ps - erosion >= self.headroom_ps

    def guarded_key(
        self, required_bits: int, preferred_key: int, now_ns: float
    ) -> Tuple[int, bool]:
        """(mode key to serve, whether the guard overrode the policy).

        The preferred (policy-chosen) key wins while safe.  Otherwise
        the cheapest safe mode covering *required_bits* is substituted
        (same power tie-break as :meth:`ModeTable.mode_key_for`), and if
        nothing covering is safe, the static maximum-accuracy mode.
        """
        if self.mode_is_safe(preferred_key, now_ns):
            return preferred_key, False
        candidates = [
            (bits, point)
            for bits, point in self.table.modes.items()
            if point.active_bits >= required_bits
            and self.mode_is_safe(bits, now_ns)
        ]
        if candidates:
            key = min(candidates, key=lambda bp: bp[1].total_power_w)[0]
            return key, True
        return self.table.max_bits, True

    # -- bias hardware availability ------------------------------------------

    def dropped_generators(self, now_ns: float) -> FrozenSet[int]:
        return self.environment.dropped_generators(now_ns)

    def transition_blocked(self, now_ns: float) -> bool:
        return self.environment.transition_blocked(now_ns)

    # -- batched-kernel hooks ------------------------------------------------

    @property
    def is_time_invariant(self) -> bool:
        """Whether the environment never changes (no scheduled events).

        With an empty schedule every environment query is constant in
        time (erosion 0, no dropouts, no stuck-at / blocked windows), so
        the batched serve kernel may precompute per-mode availability
        once instead of consulting the guard at every decision instant.
        """
        return not self.environment.schedule.events

    def refresh_availability(self, compiled) -> None:
        """Push current per-mode safety verdicts into a CompiledTable.

        Only meaningful when :attr:`is_time_invariant` holds -- the
        verdicts are evaluated at t=0 and the mask is then valid at
        every decision instant.
        """
        compiled.refresh_availability(
            [self.mode_is_safe(key, 0.0) for key in compiled.keys]
        )
