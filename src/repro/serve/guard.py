"""Runtime margin guard: detect margin erosion, fall back before failure.

The exploration deliberately picks operating points with near-zero slack
at aggressive corners (low VDD + FBB); the compiled table's per-mode
margins (:class:`~repro.serve.table.ModeMargin`) say how much slack the
n-sigma-worst instance has *at sign-off conditions*.  At serve time the
environment drifts: temperature excursions, supply droop and aging eat
that slack.  :class:`MarginGuard` closes the loop --

* it evaluates the injected/observed :class:`~repro.faults.environment.
  SiliconEnvironment` at each decision instant and converts it into
  slack erosion (ps of the operator's clock),
* a mode is **safe** while its guarded slack minus current erosion stays
  above a configurable headroom, and while the bias hardware can
  actually reach it (no stuck-at-NoBB window for FBB modes),
* when the policy's pick is unsafe the guard substitutes the cheapest
  *safe* mode still covering the requested bits -- in practice a higher
  VDD and/or NoBB point, which is exactly the "retreat from the
  aggressive corner" reaction dynamic-precision-scaling silicon
  implements in hardware;
* when *no* covering mode is safe it returns the static maximum-accuracy
  mode: the power-on default rail, margined at the sign-off corner by
  construction, and flags the decision as a fallback so telemetry and
  the chaos harness can see the guard working.

A :class:`~repro.serve.recal.MarginLearner` may be **attached**: the
guard then trusts ``min(learned_margin, guarded_slack_ps)`` and the
learner's admissibility gate on top of the frozen margins.  Because the
learned term can only *restrict* (it is clamped to the sign-off margin
from above), every mode the learned check admits would also pass the
compile-time check -- the provable floor of the accuracy invariant --
while a learner whose probes see margins *recover* lets the guard
**re-advance** to aggressive modes the retreat-only guard would have
abandoned for good.  ``retreat_only=True`` builds exactly that baseline
guard (a mode once observed unsafe stays latched out), which the chaos
harness races against the recalibrating guard to measure the energy
reclaimed.

The guard also answers the scheduler's hardware-availability questions
(dropped generators, blocked transitions), making it the single seam
between the serving stack and the fault layer.  A guard attached to a
table compiled *without* margins warns once **per table fingerprint**
(not per guard instance -- fleet workers mapping the same shared table
must not emit N duplicate warnings) and skips the margin check
(availability handling still applies) -- old artifacts keep serving.
"""

from __future__ import annotations

import warnings
from typing import FrozenSet, Optional, Set, Tuple

from repro.faults.environment import SiliconEnvironment
from repro.serve.errors import ServeError
from repro.serve.table import ModeTable


class MarginGuard:
    """Margin-erosion monitor for one serving environment."""

    #: Table fingerprints that already produced the no-margins warning
    #: (process-wide; see :meth:`reset_margin_warnings`).
    _margin_warned: Set[Tuple] = set()

    def __init__(
        self,
        table: ModeTable,
        environment: Optional[SiliconEnvironment] = None,
        headroom_ps: float = 0.0,
        retreat_only: bool = False,
    ):
        if headroom_ps < 0.0:
            raise ValueError("headroom must be non-negative")
        self.table = table
        self.environment = (
            environment if environment is not None else SiliconEnvironment()
        )
        self.headroom_ps = headroom_ps
        self.margins_enabled = table.has_margins
        if not self.margins_enabled:
            fingerprint = self.table_fingerprint(table)
            if fingerprint not in MarginGuard._margin_warned:
                MarginGuard._margin_warned.add(fingerprint)
                warnings.warn(
                    "mode table was compiled without margins; the margin "
                    "guard will only track bias-hardware availability "
                    "(re-run `repro compile-table --margins` to enable "
                    "erosion checks)",
                    RuntimeWarning,
                    stacklevel=2,
                )
        #: ps of clock period at this table's frequency.
        self.period_ps = 1e3 / table.fclk_ghz
        #: Optional learned-margin source (see :mod:`repro.serve.recal`).
        self.learner = None
        #: Retreat-only baseline: modes observed unsafe stay latched out.
        self.retreat_only = retreat_only
        self._latched_unsafe: Set[int] = set()

    # -- no-margins warning registry -----------------------------------------

    @staticmethod
    def table_fingerprint(table: ModeTable) -> Tuple:
        """Identity of a table's *content* for warn-once purposes.

        Two guards over the same artifact (same design, clock and mode
        set -- e.g. fleet workers mapping one shared segment) share one
        warning, regardless of how many ModeTable objects wrap it.
        """
        return (
            table.design_name,
            table.fclk_ghz,
            tuple(sorted(table.modes)),
            table.has_margins,
        )

    @classmethod
    def reset_margin_warnings(cls) -> None:
        """Forget which tables warned (test isolation hook)."""
        cls._margin_warned.clear()

    # -- learned margins -----------------------------------------------------

    def attach_learner(self, learner) -> None:
        """Adopt a margin learner as an additional (restricting) source."""
        if learner.table is not self.table:
            raise ServeError(
                "margin learner was built for a different mode table"
            )
        self.learner = learner

    @property
    def margin_epoch(self) -> int:
        """Monotone version of the guard's margin source.

        Bumps whenever an attached learner commits a probe round (or
        adopts a peer's state); consumers caching per-mode availability
        (the compiled batch kernel) re-refresh on change.  ``0`` forever
        without a learner -- frozen margins never change.
        """
        return self.learner.epoch if self.learner is not None else 0

    # -- erosion -------------------------------------------------------------

    def erosion_ps(self, now_ns: float, vdd: float) -> float:
        """Slack erosion the environment imposes on a mode at *vdd* now."""
        return self.environment.slack_erosion_ps(now_ns, vdd, self.period_ps)

    def mode_is_safe(self, bits_key: int, now_ns: float) -> bool:
        """Margin + reachability check for one compiled mode, now."""
        verdict = self._mode_is_safe(bits_key, now_ns)
        if self.retreat_only:
            if not verdict:
                self._latched_unsafe.add(bits_key)
            elif bits_key in self._latched_unsafe:
                # The baseline never re-advances: once retreated from a
                # mode, stay retreated (frozen-margin pessimism).
                verdict = False
        return verdict

    def _mode_is_safe(self, bits_key: int, now_ns: float) -> bool:
        mode = self.table.modes[bits_key]
        if any(mode.bb_config) and self.environment.stuck_at_nobb(now_ns):
            return False
        if not self.margins_enabled:
            return True
        margin = self.table.margins[bits_key].guarded_slack_ps
        if self.learner is not None:
            if not self.learner.admissible(bits_key):
                return False
            # min() keeps the compile-time sign-off margin a hard floor:
            # the learned term only ever restricts, so learned-safe
            # implies compile-time-safe at the same instant.
            margin = min(margin, self.learner.effective_margin_ps(bits_key))
        erosion = self.erosion_ps(now_ns, mode.vdd)
        return margin - erosion >= self.headroom_ps

    def guarded_key(
        self, required_bits: int, preferred_key: int, now_ns: float
    ) -> Tuple[int, bool]:
        """(mode key to serve, whether the guard overrode the policy).

        The preferred (policy-chosen) key wins while safe.  Otherwise
        the cheapest safe mode covering *required_bits* is substituted
        (same power tie-break as :meth:`ModeTable.mode_key_for`), and if
        nothing covering is safe, the static maximum-accuracy mode.
        """
        if self.mode_is_safe(preferred_key, now_ns):
            return preferred_key, False
        candidates = [
            (bits, point)
            for bits, point in self.table.modes.items()
            if point.active_bits >= required_bits
            and self.mode_is_safe(bits, now_ns)
        ]
        if candidates:
            key = min(candidates, key=lambda bp: bp[1].total_power_w)[0]
            return key, True
        return self.table.max_bits, True

    # -- bias hardware availability ------------------------------------------

    def dropped_generators(self, now_ns: float) -> FrozenSet[int]:
        return self.environment.dropped_generators(now_ns)

    def transition_blocked(self, now_ns: float) -> bool:
        return self.environment.transition_blocked(now_ns)

    # -- batched-kernel hooks ------------------------------------------------

    @property
    def is_time_invariant(self) -> bool:
        """Whether every environment query is constant in time.

        With an empty schedule every environment query is constant in
        time (erosion 0, no dropouts, no stuck-at / blocked windows), so
        the batched serve kernel may precompute per-mode availability
        once instead of consulting the guard at every decision instant.
        A retreat-only guard is stateful (verdicts latch), so it is
        never time-invariant; an attached learner is fine -- its state
        only changes at committed epochs, which the kernel's refresh
        keys on (:attr:`margin_epoch`).
        """
        return not self.environment.schedule.events and not self.retreat_only

    def refresh_availability(self, compiled) -> None:
        """Push current per-mode safety verdicts into a CompiledTable.

        Only meaningful when :attr:`is_time_invariant` holds -- the
        verdicts are evaluated at t=0 and the mask is then valid at
        every decision instant (until the next :attr:`margin_epoch`
        bump, when the scheduler refreshes again).
        """
        compiled.refresh_availability(
            [self.mode_is_safe(key, 0.0) for key in compiled.keys]
        )
