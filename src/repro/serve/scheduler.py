"""Event-driven shared-bias scheduler for concurrent operator instances.

The paper's Section III hardware sketch shares *two* charge pumps (plus
power switches) across all Vth domains -- and an SoC shares them across
operators.  Mode transitions are therefore a scheduling problem: every
well/rail slew occupies a bias generator for its settling time, and
concurrent operators contend for the finite pool.

:class:`ModeScheduler` models that in deterministic virtual time:

* each operator instance carries its own virtual clock (advanced by the
  compute duration of every phase it serves);
* a transition acquires the earliest-free generator; starting later than
  requested is accounted as queue wait;
* transitions *pending* on the pool that target the same electrical
  signature (VDD, per-domain bias) are **batched**: the power switches
  gang extra wells onto an already-scheduled slew, paying energy but no
  extra generator time;
* when the number of not-yet-started transitions reaches
  ``max_queue_depth`` the scheduler **degrades gracefully**: the request
  is served in the static maximum-accuracy mode (always sufficient, and
  the hardware's power-on default rail, so it bypasses the pool) instead
  of erroring or violating accuracy;
* the accuracy invariant is enforced centrally -- a policy bug surfaces
  as :class:`AccuracyViolation`, never as a silently wrong answer.

:func:`replay_trace` runs an offline workload through the same machinery
(one operator, unconstrained pool); with the greedy policy it reproduces
``AccuracyController.replay_reference`` bit-for-bit, which
``tests/test_serve_scheduler.py`` locks in differentially.

Resilience (all opt-in, the default path is bit-identical to before):

* an attached :class:`~repro.serve.guard.MarginGuard` vets every policy
  pick against runtime margin erosion and substitutes a safe mode
  (``margin_fallback`` on the served phase, ``margin_fallbacks`` in
  telemetry);
* bias transitions that the environment blocks (generator timeout
  windows) are retried with bounded exponential backoff in virtual
  time; an exhausted retry budget degrades to the static mode instead
  of failing the request;
* generator dropouts reported by the guard mark pool members
  unavailable and **rebalance** their not-yet-started slews onto the
  survivors; with every generator down, requests degrade to the static
  mode (power-on rail, no pool needed) until one returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.guard import MarginGuard
    from repro.serve.recal import RecalibrationLoop

import numpy as np

from repro.core.config import OperatingPoint
from repro.core.runtime import RuntimeReport, WorkloadPhase
from repro.serve.compiled import (
    BatchResult,
    CompiledTable,
    resolve_serve_engine,
)
from repro.serve.learned import LearnedPolicy, bucketize
from repro.serve.policy import (
    DemandTracker,
    PolicyContext,
    SelectionPolicy,
    Upcoming,
    make_policy,
)
from repro.serve.table import ModeTable, TransitionCost
from repro.serve.telemetry import Telemetry


class AccuracyViolation(RuntimeError):
    """A policy tried to serve fewer bits than the request demands."""


@dataclass(frozen=True)
class ServeRequest:
    """One phase of work demanded by an application."""

    operator: str
    required_bits: int
    cycles: int

    def __post_init__(self):
        if self.required_bits < 1:
            raise ValueError("required_bits must be >= 1")
        if self.cycles < 0:
            raise ValueError("cycles must be >= 0")


@dataclass(frozen=True)
class ServedPhase:
    """The scheduler's answer: which mode ran and what it cost."""

    operator: str
    required_bits: int
    mode: OperatingPoint
    compute_energy_j: float
    transition_energy_j: float
    settle_ns: float
    queue_wait_ns: float
    switched: bool
    batched: bool
    degraded: bool
    #: The margin guard overrode the policy's pick (erosion / stuck-at).
    margin_fallback: bool = False
    #: Blocked bias-transition attempts retried before this phase served.
    transition_retries: int = 0
    #: Operator virtual time at which the mode decision was made --
    #: lets an external auditor re-check the guard's verdict.
    decided_at_ns: float = 0.0

    @property
    def served_bits(self) -> int:
        return self.mode.active_bits


@dataclass
class _Grant:
    """A scheduled slew on one generator (or a batch join of one)."""

    signature: Tuple
    start_ns: float
    end_ns: float
    generator: int = -1


class GeneratorPool:
    """Finite pool of bias generators with slew batching.

    Virtual-time bookkeeping only: ``free_at_ns[i]`` is when generator
    *i* finishes its last scheduled slew.  Completed grants are pruned
    lazily against the requesting operator's clock.  Generators may be
    marked unavailable (dropout faults): they take no new slews, and
    :meth:`apply_dropouts` rebalances their not-yet-started grants onto
    the surviving generators.
    """

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("need at least one bias generator")
        self.size = size
        self.free_at_ns = [0.0] * size
        self.available = [True] * size
        self.pending: List[_Grant] = []
        self.max_depth_seen = 0
        self.dropouts = 0
        self.rebalanced_grants = 0

    def queue_depth(self, now_ns: float) -> int:
        """Number of scheduled slews that have not yet started."""
        self._prune(now_ns)
        return self.occupancy(now_ns)

    def occupancy(self, now_ns: float) -> int:
        """:meth:`queue_depth` without the pruning side effect.

        Operators run on independent virtual clocks, and pruning with a
        fast operator's clock would discard grants a slower operator
        could still batch-join.  Decision-time probes therefore must not
        mutate the pool.  (Expired grants are never counted either way:
        ``start_ns < end_ns <= now_ns``.)
        """
        return sum(1 for grant in self.pending if grant.start_ns > now_ns)

    @property
    def num_available(self) -> int:
        return sum(self.available)

    def _prune(self, now_ns: float) -> None:
        self.pending = [g for g in self.pending if g.end_ns > now_ns]

    def _earliest_available(self) -> Optional[int]:
        candidates = [i for i in range(self.size) if self.available[i]]
        if not candidates:
            return None
        return min(candidates, key=lambda i: self.free_at_ns[i])

    def apply_dropouts(
        self, dropped: FrozenSet[int], now_ns: float
    ) -> None:
        """Reconcile availability with the fault layer's dropout set.

        Newly dropped generators are counted and their queued (not yet
        started) slews move to the earliest-free survivor, preserving
        each slew's duration.  In-flight slews complete on their
        original generator (the pump output is held through the window).
        Restored generators simply become eligible again; their
        bookkeeping stays monotone.
        """
        dropped = frozenset(i for i in dropped if 0 <= i < self.size)
        newly_dropped = [
            i for i in dropped if self.available[i]
        ]
        for index in newly_dropped:
            self.available[index] = False
            self.dropouts += 1
        for index in range(self.size):
            if index not in dropped and not self.available[index]:
                self.available[index] = True
        if not newly_dropped or self.num_available == 0:
            return
        self._prune(now_ns)
        for grant in self.pending:
            if grant.generator in newly_dropped and grant.start_ns > now_ns:
                duration = grant.end_ns - grant.start_ns
                target = self._earliest_available()
                start = max(now_ns, self.free_at_ns[target])
                grant.generator = target
                grant.start_ns = start
                grant.end_ns = start + duration
                self.free_at_ns[target] = grant.end_ns
                self.rebalanced_grants += 1

    def acquire(
        self, now_ns: float, settle_ns: float, signature: Tuple
    ) -> Optional[Tuple[float, float, bool]]:
        """Schedule a slew at *now_ns*; returns (start, end, batched).

        A pending, not-yet-started grant with the same signature absorbs
        the request (power switches gang the extra wells onto the same
        slew) without consuming more generator time.  Returns ``None``
        when every generator is dropped out -- the caller must degrade.
        """
        self._prune(now_ns)
        for grant in self.pending:
            if grant.signature == signature and grant.start_ns >= now_ns:
                return (grant.start_ns, grant.end_ns, True)
        generator = self._earliest_available()
        if generator is None:
            return None
        start = max(now_ns, self.free_at_ns[generator])
        end = start + settle_ns
        self.free_at_ns[generator] = end
        self.pending.append(_Grant(signature, start, end, generator))
        self.max_depth_seen = max(self.max_depth_seen, self.queue_depth(now_ns))
        return (start, end, False)


@dataclass
class _OperatorState:
    table: ModeTable
    policy: SelectionPolicy
    clock_ns: float = 0.0
    current_bits: Optional[int] = None
    phases: int = 0
    cycles: int = 0
    compute_energy_j: float = 0.0
    transition_energy_j: float = 0.0
    transition_time_ns: float = 0.0
    switches: int = 0
    static_energy_j: float = 0.0
    #: Recent-demand EWMA features of this operator's request stream,
    #: folded identically by the scalar path and the batch planner.
    tracker: DemandTracker = field(default_factory=DemandTracker)


class _ScalarFrameFallback(Exception):
    """Internal: a frame is not provably batchable; use the scalar loop."""


@dataclass
class _OperatorPlan:
    """One operator's planned slice of a batched frame.

    ``positions`` are the operator's indices into the global frame;
    everything else is own-indexed.  ``complex_events`` lists the
    positions whose transition must talk to the generator pool, as
    ``(own_index, state_row_before)`` in order; the walk consumes them
    via ``complex_ptr`` and replans the suffix after a degradation.
    """

    name: str
    state: _OperatorState
    compiled: CompiledTable
    positions: np.ndarray
    bits: np.ndarray
    cycles: np.ndarray
    terms: np.ndarray
    decisions: np.ndarray
    switched: np.ndarray
    margin: np.ndarray
    guard_active: bool
    #: Which planner filled (and replans) this operator's decisions:
    #: ``memoryless`` / ``lookahead`` / ``learned``.
    kind: str = "memoryless"
    window: int = 0
    dtable: Optional[np.ndarray] = None
    dtable_list: Optional[List[List[int]]] = None
    bits_list: List[int] = field(default_factory=list)
    cycles_list: List[int] = field(default_factory=list)
    cover_pos: Optional[np.ndarray] = None
    #: The operator's demand tracker after the whole frame folds in
    #: (learned plans only; committed during accounting).
    final_tracker: Optional[DemandTracker] = None
    #: Per-position (level, volatility) buckets (learned plans only).
    #: Pure function of the request stream, so a degradation replan
    #: re-derives decisions from any forced mode without re-folding.
    learned_buckets: List[Tuple[int, int]] = field(default_factory=list)
    complex_events: List[Tuple[int, int]] = field(default_factory=list)
    complex_ptr: int = 0
    fold_ptr: int = 0
    clock: float = 0.0
    # Python mirrors for the walk's per-element fold (list indexing is
    # several times cheaper than numpy scalar indexing there).
    terms_list: List[float] = field(default_factory=list)
    positions_list: List[int] = field(default_factory=list)


class ModeScheduler:
    """Serves accuracy-mode requests for many operators over one pool."""

    def __init__(
        self,
        table: ModeTable,
        num_generators: int = 2,
        policy: str = "greedy",
        max_queue_depth: int = 8,
        policy_kwargs: Optional[Dict] = None,
        telemetry: Optional[Telemetry] = None,
        guard: Optional["MarginGuard"] = None,
        max_transition_retries: int = 3,
        retry_backoff_ns: float = 50.0,
        engine: Optional[str] = None,
        recal: Optional["RecalibrationLoop"] = None,
    ):
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if recal is not None:
            if guard is None:
                raise ValueError(
                    "a recalibration loop requires a margin guard"
                )
            if recal.guard is not guard:
                raise ValueError(
                    "recalibration loop is bound to a different guard"
                )
        if max_transition_retries < 0:
            raise ValueError("max_transition_retries must be >= 0")
        if retry_backoff_ns <= 0.0:
            raise ValueError("retry_backoff_ns must be positive")
        self.default_table = table
        self.policy_name = policy
        self.policy_kwargs = dict(policy_kwargs or {})
        self.pool = GeneratorPool(num_generators)
        self.max_queue_depth = max_queue_depth
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.guard = guard
        self.recal = recal
        self.max_transition_retries = max_transition_retries
        self.retry_backoff_ns = retry_backoff_ns
        #: Which engine serves *frames* (submit_batch / submit_batch_arrays):
        #: ``batch`` (default; falls back per frame when it cannot prove
        #: equivalence) or ``scalar``.  ``submit`` is always scalar.
        self.serve_engine = resolve_serve_engine(engine)
        self._operators: Dict[str, _OperatorState] = {}
        # Per-scheduler array lowerings, keyed by table identity.  The
        # CompiledTable holds a reference to its ModeTable, so the id is
        # pinned for the cache entry's lifetime.  Never shared across
        # schedulers: the availability bitmask is guard-specific state.
        self._compiled: Dict[int, CompiledTable] = {}
        # (compiled id, guard id) -> margin epoch the availability mask
        # was last refreshed at; an epoch bump forces a re-refresh.
        self._guard_refreshed: Dict[Tuple[int, int], int] = {}

    # -- operator registry ---------------------------------------------------

    def register(
        self,
        operator: str,
        table: Optional[ModeTable] = None,
        policy: Optional[str] = None,
        **policy_kwargs,
    ) -> None:
        """Declare an operator instance (optional: submit auto-registers)."""
        if operator in self._operators:
            raise ValueError(f"operator {operator!r} already registered")
        table = table if table is not None else self.default_table
        name = policy if policy is not None else self.policy_name
        kwargs = policy_kwargs if policy_kwargs else self.policy_kwargs
        self._operators[operator] = _OperatorState(
            table=table, policy=make_policy(name, table, **kwargs)
        )

    def _state(self, operator: str) -> _OperatorState:
        if operator not in self._operators:
            self.register(operator)
        return self._operators[operator]

    @property
    def operators(self) -> List[str]:
        return list(self._operators)

    def latest_clock_ns(self) -> float:
        """Latest operator virtual clock (0.0 before any request)."""
        return max(
            (state.clock_ns for state in self._operators.values()),
            default=0.0,
        )

    # -- serving -------------------------------------------------------------

    def submit(
        self, request: ServeRequest, upcoming: Sequence[Upcoming] = ()
    ) -> ServedPhase:
        """Serve one request; deterministic in submission order."""
        state = self._state(request.operator)
        table = state.table
        if self.recal is not None:
            # Probe cadence runs on the deciding operator's virtual
            # clock, *before* the decision, so a committed margin epoch
            # already governs this request's safety check.
            self.recal.maybe_recalibrate(state.clock_ns, self.telemetry)
        decided_at_ns = state.clock_ns
        level, volatility = state.tracker.features_for(request.required_bits)
        bits_key = state.policy.decide(
            PolicyContext(
                required_bits=request.required_bits,
                current_bits=state.current_bits,
                upcoming=tuple(upcoming),
                demand_level=level,
                demand_volatility=volatility,
                pool_occupancy=self.pool.occupancy(decided_at_ns),
                virtual_time_ns=decided_at_ns,
            )
        )
        margin_fallback = False
        if self.guard is not None:
            bits_key, margin_fallback = self.guard.guarded_key(
                request.required_bits, bits_key, decided_at_ns
            )
            if margin_fallback:
                self.telemetry.bump("margin_fallbacks")
        mode = table.modes[bits_key]
        if mode.active_bits < request.required_bits:
            self.telemetry.bump("accuracy_violations")
            raise AccuracyViolation(
                f"policy {state.policy.name!r} chose a {mode.active_bits}-bit "
                f"mode for a {request.required_bits}-bit request"
            )

        switched = bits_key != state.current_bits
        cost = table.transition_between(state.current_bits, bits_key)
        degraded = False
        batched = False
        queue_wait_ns = 0.0
        settle_ns = 0.0
        retries = 0

        if switched and not cost.is_free:
            now = state.clock_ns
            exhausted = False
            if self.guard is not None:
                self.pool.apply_dropouts(
                    self.guard.dropped_generators(now), now
                )
                now, retries, exhausted = self._await_transition_window(now)
                if retries:
                    self.telemetry.bump("transition_retries", retries)
            if exhausted or self.pool.num_available == 0:
                # Transition retry budget exhausted or every generator
                # dropped out: serve the static maximum-accuracy mode.
                # Its rail is the hardware's always-on power-on default,
                # so the switch bypasses the generator pool entirely.
                self.telemetry.bump("transition_failures")
                degraded = True
                bits_key = table.max_bits
                switched = bits_key != state.current_bits
                mode = table.modes[bits_key]
                cost = table.transition_between(state.current_bits, bits_key)
                settle_ns = cost.settle_ns
            elif self.pool.queue_depth(now) >= self.max_queue_depth:
                # Saturated: fall back to the static maximum-accuracy
                # mode.  Its rail is the hardware's always-on power-on
                # default, so the switch bypasses the generator pool.
                degraded = True
                bits_key = table.max_bits
                switched = bits_key != state.current_bits
                mode = table.modes[bits_key]
                cost = table.transition_between(state.current_bits, bits_key)
                settle_ns = cost.settle_ns
            else:
                signature = (mode.vdd, mode.bb_config)
                grant = self.pool.acquire(now, cost.settle_ns, signature)
                if grant is None:  # pragma: no cover - num_available raced
                    grant = (now + cost.settle_ns, now + cost.settle_ns, False)
                start, end, batched = grant
                queue_wait_ns = start - state.clock_ns
                settle_ns = end - start
                state.clock_ns = end

        served = ServedPhase(
            operator=request.operator,
            required_bits=request.required_bits,
            mode=mode,
            compute_energy_j=self._compute_energy_j(table, mode, request.cycles),
            transition_energy_j=cost.energy_j if switched else 0.0,
            settle_ns=settle_ns,
            queue_wait_ns=queue_wait_ns,
            switched=switched,
            batched=batched,
            degraded=degraded,
            margin_fallback=margin_fallback,
            transition_retries=retries,
            decided_at_ns=decided_at_ns,
        )

        # Account the phase against the operator's running report.
        state.current_bits = bits_key
        state.phases += 1
        state.cycles += request.cycles
        state.compute_energy_j += served.compute_energy_j
        state.transition_energy_j += served.transition_energy_j
        state.transition_time_ns += settle_ns
        if switched:
            state.switches += 1
        state.static_energy_j += self._compute_energy_j(
            table, table.static_mode, request.cycles
        )
        state.clock_ns += request.cycles / table.fclk_ghz
        state.tracker.update(request.required_bits)
        self.telemetry.record_phase(served)
        return served

    def submit_degraded(self, request: ServeRequest) -> ServedPhase:
        """Serve in the static max-accuracy mode, bypassing the pool.

        The front end's overload path: when its bounded request queue is
        full it must still answer -- correctly, if not cheaply.
        """
        state = self._state(request.operator)
        table = state.table
        bits_key = table.max_bits
        mode = table.modes[bits_key]
        switched = bits_key != state.current_bits
        cost = table.transition_between(state.current_bits, bits_key)
        served = ServedPhase(
            operator=request.operator,
            required_bits=request.required_bits,
            mode=mode,
            compute_energy_j=self._compute_energy_j(table, mode, request.cycles),
            transition_energy_j=cost.energy_j if switched else 0.0,
            settle_ns=cost.settle_ns if switched else 0.0,
            queue_wait_ns=0.0,
            switched=switched,
            batched=False,
            degraded=True,
            decided_at_ns=state.clock_ns,
        )
        state.current_bits = bits_key
        state.phases += 1
        state.cycles += request.cycles
        state.compute_energy_j += served.compute_energy_j
        state.transition_energy_j += served.transition_energy_j
        state.transition_time_ns += served.settle_ns
        if switched:
            state.switches += 1
        state.static_energy_j += self._compute_energy_j(
            table, mode, request.cycles
        )
        state.clock_ns += request.cycles / table.fclk_ghz
        state.tracker.update(request.required_bits)
        self.telemetry.record_phase(served)
        return served

    def _await_transition_window(
        self, now_ns: float
    ) -> Tuple[float, int, bool]:
        """Back off (in virtual time) while bias transitions are blocked.

        Returns ``(new_now, retries, exhausted)``: the operator's clock
        after waiting, how many retry waits were spent, and whether the
        bounded budget ran out with transitions still blocked.
        """
        if self.guard is None or not self.guard.transition_blocked(now_ns):
            return now_ns, 0, False
        backoff = self.retry_backoff_ns
        retries = 0
        while retries < self.max_transition_retries:
            now_ns += backoff
            backoff *= 2.0
            retries += 1
            if not self.guard.transition_blocked(now_ns):
                return now_ns, retries, False
        return now_ns, retries, True

    @staticmethod
    def _compute_energy_j(
        table: ModeTable, mode: OperatingPoint, cycles: int
    ) -> float:
        duration_s = cycles / (table.fclk_ghz * 1e9)
        return mode.total_power_w * duration_s

    # -- batched serving -----------------------------------------------------

    def compiled_for(self, table: ModeTable) -> CompiledTable:
        """This scheduler's array lowering of *table* (built once)."""
        compiled = self._compiled.get(id(table))
        if compiled is None:
            compiled = CompiledTable(table)
            self._compiled[id(table)] = compiled
        return compiled

    def submit_batch(
        self,
        requests: Sequence[ServeRequest],
        upcoming_cap: Optional[int] = None,
    ) -> List[ServedPhase]:
        """Serve a frame of requests; bit-identical to a submit() loop.

        Semantics are exactly ``[self.submit(r, upcoming=w) for r in
        requests]`` where each lookahead window ``w`` is derived from
        the frame itself: the next requests of the same operator, up to
        the policy's window (optionally clipped by *upcoming_cap*).  The
        batched kernel resolves decisions, transition costs, energy
        accounting and settle windows in array passes; frames it cannot
        prove equivalent (time-varying guard environment, custom
        policies, partially dropped-out pools, invalid requests) run
        that scalar loop internally instead -- including raising the
        same exception at the same request.
        """
        requests = list(requests)
        count = len(requests)
        if count == 0:
            return []
        operators = [r.operator for r in requests]
        bits = np.fromiter(
            (r.required_bits for r in requests), np.int64, count
        )
        cycles = np.fromiter((r.cycles for r in requests), np.int64, count)
        phases, _ = self._serve_frame(
            operators,
            bits,
            cycles,
            want_phases=True,
            want_arrays=False,
            upcoming_cap=upcoming_cap,
        )
        return phases

    def submit_batch_arrays(
        self,
        operators,
        required_bits,
        cycles,
        upcoming_cap: Optional[int] = None,
    ) -> BatchResult:
        """Array-in / array-out frame serving (no ServedPhase objects).

        *operators* is one name (the whole frame) or a sequence of
        names; *required_bits* / *cycles* are equal-length 1-D int
        arrays.  Same semantics as :meth:`submit_batch`, but the hot
        consumers (fleet reply frames, trace replay) read the flat
        :class:`BatchResult` arrays directly.
        """
        bits = np.asarray(required_bits, dtype=np.int64)
        cyc = np.asarray(cycles, dtype=np.int64)
        if bits.ndim != 1 or bits.shape != cyc.shape:
            raise ValueError(
                "required_bits and cycles must be 1-D and equal length"
            )
        if not isinstance(operators, str):
            operators = list(operators)
            if len(operators) != len(bits):
                raise ValueError(
                    "operators must match required_bits in length"
                )
        _, result = self._serve_frame(
            operators,
            bits,
            cyc,
            want_phases=False,
            want_arrays=True,
            upcoming_cap=upcoming_cap,
        )
        return result

    def _serve_frame(
        self,
        operators,
        bits: np.ndarray,
        cycles: np.ndarray,
        *,
        want_phases: bool,
        want_arrays: bool,
        upcoming_cap: Optional[int],
    ) -> Tuple[Optional[List[ServedPhase]], Optional[BatchResult]]:
        count = len(bits)
        if count == 0:
            return (
                [] if want_phases else None,
                self._phases_to_arrays([]) if want_arrays else None,
            )
        try:
            plans = self._plan_frame(operators, bits, cycles, upcoming_cap)
        except _ScalarFrameFallback:
            return self._serve_frame_scalar(
                operators, bits, cycles, want_phases, want_arrays,
                upcoming_cap,
            )

        # decided_at is a python list: the clock fold writes it element
        # by element, and list stores are much cheaper than numpy scalar
        # stores.  It is skipped entirely when no output wants it.
        need_decided = want_phases or want_arrays
        decided_at: List[float] = [0.0] * count if need_decided else []
        queue_wait = np.zeros(count)
        settle = np.zeros(count)
        trans_e = np.zeros(count)
        compute_e = np.zeros(count)
        batched = np.zeros(count, dtype=bool)
        degraded = np.zeros(count, dtype=bool)
        switched_g = np.zeros(count, dtype=bool)
        margin_g = np.zeros(count, dtype=bool)
        served_bits = np.zeros(count, dtype=np.int64)

        self._walk_frame(
            plans, decided_at, need_decided, queue_wait, settle, trans_e,
            batched, degraded,
        )

        # Per-operator accounting: every float accumulator is folded
        # left-to-right in python, replicating the scalar += sequence
        # bit-for-bit (numpy reductions would sum pairwise).
        op_counts: Dict[str, int] = {}
        for plan in plans:
            comp = plan.compiled
            pos = plan.positions
            dur = plan.cycles / comp.denom_hz
            ce = comp.power_w[plan.decisions] * dur
            se = float(comp.power_w[comp.static_index]) * dur
            compute_e[pos] = ce
            switched_g[pos] = plan.switched
            margin_g[pos] = plan.margin
            served_bits[pos] = comp.active_bits[plan.decisions]
            state = plan.state
            op_counts[plan.name] = len(plan.bits)
            state.phases += len(plan.bits)
            state.cycles += int(plan.cycles.sum())
            acc = state.compute_energy_j
            for value in ce.tolist():
                acc += value
            state.compute_energy_j = acc
            acc = state.transition_energy_j
            for value in trans_e[pos].tolist():
                acc += value
            state.transition_energy_j = acc
            acc = state.transition_time_ns
            for value in settle[pos].tolist():
                acc += value
            state.transition_time_ns = acc
            state.switches += int(np.count_nonzero(plan.switched))
            acc = state.static_energy_j
            for value in se.tolist():
                acc += value
            state.static_energy_j = acc
            state.current_bits = comp.keys[int(plan.decisions[-1])]
            state.clock_ns = plan.clock
            if plan.final_tracker is not None:
                state.tracker = plan.final_tracker

        fallbacks = int(np.count_nonzero(margin_g))
        if fallbacks:
            self.telemetry.bump("margin_fallbacks", fallbacks)
        self.telemetry.record_batch(
            op_counts,
            int(np.count_nonzero(switched_g)),
            int(np.count_nonzero(degraded)),
            int(np.count_nonzero(batched)),
            queue_wait + settle,
            settle[settle > 0.0],
            (compute_e + trans_e) * 1e12,
        )

        phases_out: Optional[List[ServedPhase]] = None
        if want_phases:
            phases_out = [None] * count  # type: ignore[list-item]
            qw_l = queue_wait.tolist()
            st_l = settle.tolist()
            te_l = trans_e.tolist()
            da_l = decided_at
            bat_l = batched.tolist()
            deg_l = degraded.tolist()
            for plan in plans:
                comp = plan.compiled
                name = plan.name
                modes = comp.modes
                pos_l = plan.positions.tolist()
                dec_l = plan.decisions.tolist()
                rb_l = plan.bits.tolist()
                sw_l = plan.switched.tolist()
                mg_l = plan.margin.tolist()
                ce_l = compute_e[plan.positions].tolist()
                for k, g in enumerate(pos_l):
                    phases_out[g] = ServedPhase(
                        operator=name,
                        required_bits=rb_l[k],
                        mode=modes[dec_l[k]],
                        compute_energy_j=ce_l[k],
                        transition_energy_j=te_l[g],
                        settle_ns=st_l[g],
                        queue_wait_ns=qw_l[g],
                        switched=sw_l[k],
                        batched=bat_l[g],
                        degraded=deg_l[g],
                        margin_fallback=mg_l[k],
                        transition_retries=0,
                        decided_at_ns=da_l[g],
                    )
        result: Optional[BatchResult] = None
        if want_arrays:
            result = BatchResult(
                served_bits=served_bits,
                switched=switched_g,
                batched=batched,
                degraded=degraded,
                margin_fallback=margin_g,
                transition_retries=np.zeros(count, dtype=np.int64),
                compute_energy_j=compute_e,
                transition_energy_j=trans_e,
                settle_ns=settle,
                queue_wait_ns=queue_wait,
                decided_at_ns=np.asarray(decided_at, dtype=np.float64),
            )
        return phases_out, result

    def _plan_frame(
        self,
        operators,
        bits: np.ndarray,
        cycles: np.ndarray,
        upcoming_cap: Optional[int],
    ) -> List[_OperatorPlan]:
        """Eligibility gate + pure planning pass.  Mutates nothing.

        Raises :class:`_ScalarFrameFallback` the moment the frame stops
        being provably equivalent to the scalar loop.
        """
        if self.serve_engine != "batch":
            raise _ScalarFrameFallback
        if self.recal is not None:
            # A local probe loop fires mid-frame on operator clocks; the
            # batch kernel cannot interleave probes, so frames fall back
            # to the scalar loop.  A guard with a *passively adopted*
            # learner (fleet peer) stays batch-eligible -- its margins
            # only change between frames, tracked by margin_epoch below.
            raise _ScalarFrameFallback
        guard = self.guard
        if self.pool.num_available != self.pool.size:
            raise _ScalarFrameFallback
        if guard is not None and not guard.is_time_invariant:
            raise _ScalarFrameFallback

        if isinstance(operators, str):
            groups: List[Tuple[str, Optional[List[int]]]] = [
                (operators, None)
            ]
        else:
            by_name: Dict[str, List[int]] = {}
            for index, name in enumerate(operators):
                by_name.setdefault(name, []).append(index)
            groups = list(by_name.items())

        plans: List[_OperatorPlan] = []
        for name, idx in groups:
            state = self._state(name)
            policy = state.policy
            if not CompiledTable.is_known_policy(policy):
                raise _ScalarFrameFallback
            if guard is not None and state.table is not guard.table:
                # The guard vets modes against *its* table; equivalence
                # of the compiled mask needs them to be the same object.
                raise _ScalarFrameFallback
            comp = self.compiled_for(state.table)
            if guard is not None:
                fresh_key = (id(comp), id(guard))
                epoch = guard.margin_epoch
                if self._guard_refreshed.get(fresh_key) != epoch:
                    guard.refresh_availability(comp)
                    self._guard_refreshed[fresh_key] = epoch

            if idx is None:
                positions = np.arange(len(bits), dtype=np.int64)
                op_bits = bits
                op_cycles = cycles
            else:
                positions = np.asarray(idx, dtype=np.int64)
                op_bits = bits[positions]
                op_cycles = cycles[positions]
            if (
                int(op_bits.min()) < 1
                or int(op_bits.max()) > comp.max_bits
                or int(op_cycles.min()) < 0
            ):
                raise _ScalarFrameFallback

            plan = _OperatorPlan(
                name=name,
                state=state,
                compiled=comp,
                positions=positions,
                bits=op_bits,
                cycles=op_cycles,
                terms=op_cycles / comp.fclk_ghz,
                decisions=np.empty(len(op_bits), dtype=np.int64),
                switched=np.zeros(len(op_bits), dtype=bool),
                margin=np.zeros(len(op_bits), dtype=bool),
                # With every mode available the guard never overrides
                # (guarded_key returns the safe preferred key, no flag),
                # so the adjusted lookup degenerates to the plain one.
                guard_active=guard is not None and not comp.all_available,
            )
            if isinstance(policy, LearnedPolicy):
                # The learned decision is a pure function of (current
                # mode, bits, demand EWMAs, pool occupancy).  The mode
                # row and EWMAs fold from the frame itself; occupancy
                # must provably be 0 at every decision, which holds
                # when (a) this operator is
                # the only one in the frame -- no interleaved foreign
                # grants -- and (b) no pre-frame grant is still waiting
                # to start: the operator's own grants start at (and
                # advance the clock past) acquisition, so they are
                # never "not yet started" at a later decision.
                if len(groups) > 1:
                    raise _ScalarFrameFallback
                if self.pool.occupancy(state.clock_ns) > 0:
                    raise _ScalarFrameFallback
                plan.kind = "learned"
                plan.bits_list = op_bits.tolist()
            elif CompiledTable.policy_cache_key(policy) is not None:
                plan.kind = "memoryless"
                plan.dtable = comp.decision_table(policy)
                plan.dtable_list = plan.dtable.tolist()
                if not self._memoryless_stable(
                    comp, plan.dtable, plan.guard_active
                ):
                    raise _ScalarFrameFallback
            else:
                plan.kind = "lookahead"
                plan.window = (
                    policy.window
                    if upcoming_cap is None
                    else min(policy.window, upcoming_cap)
                )
                plan.bits_list = op_bits.tolist()
                plan.cycles_list = op_cycles.tolist()
                plan.cover_pos = comp.cover_index[op_bits]

            start_row = (
                comp.index_of[state.current_bits]
                if state.current_bits is not None
                else comp.none_row
            )
            plan.clock = state.clock_ns
            if plan.kind == "memoryless":
                self._plan_memoryless(plan, 0, start_row)
            elif plan.kind == "learned":
                self._plan_learned(plan, 0, start_row)
            else:
                self._plan_lookahead(plan, 0, start_row)
            # Accuracy invariant, pre-verified so the walk cannot raise
            # mid-mutation.  Unreachable with the stock policies (cover
            # and guard substitutions always cover), so a hit means a
            # probe-table surprise: serve scalar and let submit() raise
            # its AccuracyViolation at the exact offending request.
            if bool((comp.active_bits[plan.decisions] < plan.bits).any()):
                raise _ScalarFrameFallback
            plans.append(plan)
        return plans

    @staticmethod
    def _memoryless_stable(
        comp: CompiledTable, dtable: np.ndarray, guard_active: bool
    ) -> bool:
        """``adj(dt[adj(dt[s,b]), b]) == adj(dt[s,b])`` for all (s, b).

        The run-length collapse in :meth:`_plan_memoryless` relies on
        guard-adjusted decisions being idempotent: within a run of equal
        bits, the decision made *from the head's mode* must re-pick the
        head's mode.  True for greedy (state-independent) and hysteresis
        (holds or stays on its target); verified wholesale here so the
        kernel never has to bail mid-walk.
        """
        if guard_active:
            available = comp.mode_available
            guarded = comp.guarded_cover_index
            head = np.where(available[dtable], dtable, guarded)
        else:
            head = dtable
        body = np.take_along_axis(dtable, head, axis=0)
        if guard_active:
            body = np.where(available[body], body, guarded)
        return bool((body == head).all())

    def _plan_memoryless(
        self, plan: _OperatorPlan, start: int, row: int
    ) -> None:
        """Fill decisions for ``[start:]`` from state *row* (greedy/hyst).

        Requests are run-length collapsed: within a run of equal bits
        only the head (from *row*) and the body (from the head's mode)
        lookups exist, and :meth:`_memoryless_stable` guarantees the
        body re-picks the head -- so the whole run shares one decision.
        The margin flag is recomputed for the body: the policy's *raw*
        pick may be unsafe every time even though the guarded result is
        stable.
        """
        bits = plan.bits
        total = len(bits)
        if start >= total:
            return
        comp = plan.compiled
        dtable = plan.dtable_list
        guard_active = plan.guard_active
        if guard_active:
            available = comp.mode_available.tolist()
            guarded = comp.guarded_cover_index.tolist()
        free = comp._free_rows
        events = plan.complex_events

        seg = bits[start:]
        change = np.flatnonzero(seg[1:] != seg[:-1]) + start + 1
        starts = np.concatenate(([start], change))
        lengths = np.diff(np.concatenate((starts, [total])))
        starts_l = starts.tolist()
        lengths_l = lengths.tolist()
        run_bits = bits[starts].tolist()

        heads: List[int] = []
        head_switched: List[bool] = []
        head_flags: List[bool] = []
        body_flags: List[bool] = []
        for index, b in enumerate(run_bits):
            head = dtable[row][b]
            flag = False
            if guard_active and not available[head]:
                head = guarded[b]
                flag = True
            heads.append(head)
            head_flags.append(flag)
            if head != row:
                head_switched.append(True)
                if not free[row][head]:
                    events.append((starts_l[index], row))
            else:
                head_switched.append(False)
            if lengths_l[index] > 1:
                raw_body = dtable[head][b]
                body_flags.append(
                    guard_active and not available[raw_body]
                )
            else:
                body_flags.append(False)
            row = head

        plan.decisions[start:] = np.repeat(
            np.asarray(heads, dtype=np.int64), lengths
        )
        plan.switched[start:] = False
        plan.switched[starts] = head_switched
        plan.margin[start:] = np.repeat(
            np.asarray(body_flags, dtype=bool), lengths
        )
        plan.margin[starts] = head_flags

    def _plan_learned(
        self, plan: _OperatorPlan, start: int, row: int
    ) -> None:
        """Fill decisions for ``[start:]`` from state *row* (learned).

        The demand EWMAs are a pure function of the request stream, so
        their buckets fold once (``start == 0``) in the same python
        float arithmetic the scalar :class:`DemandTracker` applies.  The
        decision lookup then walks mode history from *row* -- the spec's
        mode-state axis is aligned with this table's rows by
        construction -- indexing the tensor at occupancy bucket 0
        (guaranteed by the eligibility gate).  A replan after
        degradation (``start > 0``) re-derives the suffix decisions from
        the forced *row* over the stored buckets.
        """
        total = len(plan.bits)
        if start >= total:
            return
        comp = plan.compiled
        policy = plan.state.policy
        spec = policy.spec
        ltable = comp.learned_decision_table(policy)
        occ_zero = bucketize(spec.occupancy_edges, 0.0)
        occ_plane = ltable[:, :, :, occ_zero, :]
        if start == 0:
            level_edges = spec.level_edges
            vol_edges = spec.volatility_edges
            tracker = plan.state.tracker.copy()
            buckets: List[Tuple[int, int]] = []
            for bits in plan.bits_list:
                level, volatility = tracker.features_for(bits)
                buckets.append(
                    (
                        bucketize(level_edges, level),
                        bucketize(vol_edges, volatility),
                    )
                )
                tracker.update(bits)
            plan.learned_buckets = buckets
            plan.final_tracker = tracker
        guard_active = plan.guard_active
        if guard_active:
            available = comp.mode_available.tolist()
            guarded = comp.guarded_cover_index.tolist()
        free = comp._free_rows
        events = plan.complex_events
        bits_list = plan.bits_list
        bucket_list = plan.learned_buckets
        decisions: List[int] = []
        switched: List[bool] = []
        flags: List[bool] = []
        for offset in range(start, total):
            bits = bits_list[offset]
            level_b, vol_b = bucket_list[offset]
            decision = int(occ_plane[row, level_b, vol_b, bits])
            flag = False
            if guard_active and not available[decision]:
                decision = guarded[bits]
                flag = True
            decisions.append(decision)
            flags.append(flag)
            if decision != row:
                switched.append(True)
                if not free[row][decision]:
                    events.append((offset, row))
                row = decision
            else:
                switched.append(False)
        plan.decisions[start:] = decisions
        plan.margin[start:] = flags
        plan.switched[start:] = switched

    def _plan_lookahead(
        self, plan: _OperatorPlan, start: int, row: int
    ) -> None:
        """Fill decisions for ``[start:]`` from state *row* (lookahead).

        Positions whose whole horizon maps to one covering mode are
        *trivial* -- the policy's early return makes the decision
        state-independent, so maximal trivial prefixes of each cover run
        are assigned in one slice.  The rest get the policy's exact plan
        comparison, folded in python float arithmetic that mirrors
        ``LookaheadPolicy._plan_energy_j`` operation for operation.
        """
        total = len(plan.bits)
        if start >= total:
            return
        comp = plan.compiled
        window = plan.window
        bits_l = plan.bits_list
        cycles_l = plan.cycles_list
        cover_own = plan.cover_pos.tolist()
        cover_of_bits = comp._cover_list
        trans_rows = comp._energy_rows
        power = comp._power_list
        free = comp._free_rows
        denom = comp.denom_hz
        available = comp.mode_available
        guarded = comp.guarded_cover_index
        guard_active = plan.guard_active
        decisions = plan.decisions
        switched = plan.switched
        margin = plan.margin
        events = plan.complex_events

        idx = np.arange(start, total, dtype=np.int64)
        horizon = np.minimum(window, total - 1 - idx)
        seg = plan.cover_pos[start:]
        change = np.flatnonzero(seg[1:] != seg[:-1]) + start + 1
        bounds = np.concatenate((change, [total]))
        run_end = bounds[np.searchsorted(bounds, idx, side="right")]
        trivial = (run_end >= idx + horizon + 1).tolist()
        run_end_l = run_end.tolist()
        horizon_l = horizon.tolist()

        j = start
        while j < total:
            own = j - start
            if trivial[own]:
                decision = cover_own[j]
                flag = False
                if guard_active and not available[decision]:
                    # Guarded substitution depends on the exact bits,
                    # which may differ within a cover run: go one by one.
                    decision = int(guarded[bits_l[j]])
                    flag = True
                    end = j + 1
                else:
                    r = run_end_l[own]
                    # Inside a cover run, positions stay trivial until
                    # the horizon starts peeking past the run (the last
                    # run of the trace never does).
                    end = r if r == total else max(j + 1, r - window)
                decisions[j:end] = decision
                switched[j:end] = False
                margin[j:end] = False
                margin[j] = flag
                if decision != row:
                    switched[j] = True
                    if not free[row][decision]:
                        events.append((j, row))
                row = decision
                j = end
            else:
                span = horizon_l[own]
                head_bits = bits_l[j]
                future = cycles_l[j + 1 : j + 1 + span]
                mean_cycles = sum(future) // span if span else 0
                keys = cover_own[j : j + span + 1]
                peak_bits = head_bits
                for step in range(1, span + 1):
                    if bits_l[j + step] > peak_bits:
                        peak_bits = bits_l[j + step]
                peak = cover_of_bits[peak_bits]
                cycle_seq = [mean_cycles, *future]
                greedy_cost = 0.0
                current = row
                for key, cyc in zip(keys, cycle_seq):
                    greedy_cost += trans_rows[current][key]
                    greedy_cost += power[key] * cyc / denom
                    current = key
                hold_cost = 0.0
                current = row
                for cyc in cycle_seq:
                    hold_cost += trans_rows[current][peak]
                    hold_cost += power[peak] * cyc / denom
                    current = peak
                decision = peak if hold_cost < greedy_cost else keys[0]
                flag = False
                if guard_active and not available[decision]:
                    decision = int(guarded[head_bits])
                    flag = True
                decisions[j] = decision
                margin[j] = flag
                if decision != row:
                    switched[j] = True
                    if not free[row][decision]:
                        events.append((j, row))
                else:
                    switched[j] = False
                row = decision
                j += 1

    def _walk_frame(
        self,
        plans: List[_OperatorPlan],
        decided_at: List[float],
        need_decided: bool,
        queue_wait: np.ndarray,
        settle: np.ndarray,
        trans_e: np.ndarray,
        batched: np.ndarray,
        degraded: np.ndarray,
    ) -> None:
        """Pass 2: advance virtual clocks, talking to the real pool.

        Only *complex* positions (mode switch with a non-free cost)
        interact with the generator pool; everything between consecutive
        complex positions of one operator is a pure prefix sum of
        compute durations.  Complex positions are consumed in global
        frame order so the pool sees the exact scalar call sequence.
        """
        pool = self.pool
        depth_limit = self.max_queue_depth
        for plan in plans:
            plan.fold_ptr = 0
            plan.complex_ptr = 0
            plan.clock = plan.state.clock_ns
            plan.terms_list = plan.terms.tolist()
            plan.positions_list = plan.positions.tolist()
        while True:
            best: Optional[_OperatorPlan] = None
            best_global = -1
            for plan in plans:
                if plan.complex_ptr < len(plan.complex_events):
                    own, _ = plan.complex_events[plan.complex_ptr]
                    at = plan.positions_list[own]
                    if best is None or at < best_global:
                        best = plan
                        best_global = at
            if best is None:
                break
            plan = best
            own, row_before = plan.complex_events[plan.complex_ptr]
            plan.complex_ptr += 1
            self._fold_clock(plan, own, decided_at, need_decided)
            comp = plan.compiled
            now = plan.clock
            if need_decided:
                decided_at[best_global] = now
            decision = int(plan.decisions[own])
            if pool.queue_depth(now) >= depth_limit:
                # Saturated: degrade to the static mode (power-on rail,
                # no pool), exactly like the scalar branch -- then the
                # operator's remaining requests are replanned from it.
                static = comp.static_index
                changed = static != row_before
                plan.decisions[own] = static
                plan.switched[own] = changed
                degraded[best_global] = True
                settle[best_global] = float(
                    comp.transition_settle_ns[row_before, static]
                )
                if changed:
                    trans_e[best_global] = float(
                        comp.transition_energy_j[row_before, static]
                    )
                plan.complex_events = []
                plan.complex_ptr = 0
                if plan.kind == "memoryless":
                    self._plan_memoryless(plan, own + 1, static)
                elif plan.kind == "learned":
                    self._plan_learned(plan, own + 1, static)
                else:
                    self._plan_lookahead(plan, own + 1, static)
            else:
                grant = pool.acquire(
                    now,
                    float(comp.transition_settle_ns[row_before, decision]),
                    comp.signatures[decision],
                )
                if grant is None:  # pragma: no cover - gated on eligibility
                    raise RuntimeError("pool dropped out mid-frame")
                start, end, was_batched = grant
                queue_wait[best_global] = start - now
                settle[best_global] = end - start
                batched[best_global] = was_batched
                trans_e[best_global] = float(
                    comp.transition_energy_j[row_before, decision]
                )
                plan.clock = end
            plan.clock = plan.clock + plan.terms_list[own]
            plan.fold_ptr = own + 1
        for plan in plans:
            self._fold_clock(plan, len(plan.bits), decided_at, need_decided)

    @staticmethod
    def _fold_clock(
        plan: _OperatorPlan,
        upto: int,
        decided_at: List[float],
        need_decided: bool,
    ) -> None:
        """Fold the clock over simple positions ``[fold_ptr, upto)``.

        A plain left-to-right python float fold -- exactly the scalar
        ``clock += cycles / fclk`` chain, on the same precomputed
        per-request terms.
        """
        begin = plan.fold_ptr
        if upto <= begin:
            return
        clock = plan.clock
        terms = plan.terms_list
        if need_decided:
            positions = plan.positions_list
            for k in range(begin, upto):
                decided_at[positions[k]] = clock
                clock += terms[k]
        else:
            for term in terms[begin:upto]:
                clock += term
        plan.clock = clock
        plan.fold_ptr = upto

    def _serve_frame_scalar(
        self,
        operators,
        bits: np.ndarray,
        cycles: np.ndarray,
        want_phases: bool,
        want_arrays: bool,
        upcoming_cap: Optional[int],
    ) -> Tuple[Optional[List[ServedPhase]], Optional[BatchResult]]:
        """Reference path: the scalar loop the kernel must match."""
        count = len(bits)
        single = operators if isinstance(operators, str) else None
        bits_l = bits.tolist()
        cycles_l = cycles.tolist()
        by_op: Dict[str, List[int]] = {}
        if single is None:
            for index, name in enumerate(operators):
                by_op.setdefault(name, []).append(index)
        else:
            by_op[single] = list(range(count))
        upcomings: List[Tuple] = [()] * count
        for name, idx in by_op.items():
            window = getattr(self._state(name).policy, "window", 0)
            if upcoming_cap is not None:
                window = min(window, upcoming_cap)
            if window <= 0:
                continue
            own_bits = [bits_l[i] for i in idx]
            own_cycles = [cycles_l[i] for i in idx]
            for k, i in enumerate(idx):
                upcomings[i] = tuple(
                    zip(
                        own_bits[k + 1 : k + 1 + window],
                        own_cycles[k + 1 : k + 1 + window],
                    )
                )
        phases: List[ServedPhase] = []
        for i in range(count):
            name = single if single is not None else operators[i]
            request = ServeRequest(name, int(bits_l[i]), int(cycles_l[i]))
            phases.append(self.submit(request, upcoming=upcomings[i]))
        result = self._phases_to_arrays(phases) if want_arrays else None
        return (phases if want_phases else None), result

    @staticmethod
    def _phases_to_arrays(phases: Sequence[ServedPhase]) -> BatchResult:
        count = len(phases)
        return BatchResult(
            served_bits=np.fromiter(
                (p.served_bits for p in phases), np.int64, count
            ),
            switched=np.fromiter((p.switched for p in phases), bool, count),
            batched=np.fromiter((p.batched for p in phases), bool, count),
            degraded=np.fromiter((p.degraded for p in phases), bool, count),
            margin_fallback=np.fromiter(
                (p.margin_fallback for p in phases), bool, count
            ),
            transition_retries=np.fromiter(
                (p.transition_retries for p in phases), np.int64, count
            ),
            compute_energy_j=np.fromiter(
                (p.compute_energy_j for p in phases), np.float64, count
            ),
            transition_energy_j=np.fromiter(
                (p.transition_energy_j for p in phases), np.float64, count
            ),
            settle_ns=np.fromiter(
                (p.settle_ns for p in phases), np.float64, count
            ),
            queue_wait_ns=np.fromiter(
                (p.queue_wait_ns for p in phases), np.float64, count
            ),
            decided_at_ns=np.fromiter(
                (p.decided_at_ns for p in phases), np.float64, count
            ),
        )

    # -- reporting -----------------------------------------------------------

    def report(self, operator: str) -> RuntimeReport:
        """Legacy-shaped accounting of everything one operator served."""
        state = self._operators[operator]
        return RuntimeReport(
            phases=state.phases,
            total_cycles=state.cycles,
            compute_energy_j=state.compute_energy_j,
            transition_energy_j=state.transition_energy_j,
            transition_time_ns=state.transition_time_ns,
            mode_switches=state.switches,
            static_energy_j=state.static_energy_j,
        )


def replay_trace(
    table: ModeTable,
    workload: Sequence[WorkloadPhase],
    policy: str = "greedy",
    num_generators: int = 1,
    lookahead_window: int = 4,
    engine: Optional[str] = None,
    **policy_kwargs,
) -> RuntimeReport:
    """Replay an offline trace through the scheduler; return the report.

    Single operator, pool never saturated (depth bound is the trace
    length), so the only differences between policies are the selection
    decisions themselves.  The lookahead policy sees the next
    ``lookahead_window`` phases of the trace.

    *engine* picks the serving kernel (``auto``/``batch``/``scalar``,
    default ``auto`` -> ``$REPRO_SERVE_ENGINE`` -> ``batch``).  The
    engines are differential-tested bit-identical; batch replays the
    whole trace as one frame of array passes.
    """
    if not workload:
        raise ValueError("empty workload")
    if policy == "lookahead" and "window" not in policy_kwargs:
        policy_kwargs["window"] = lookahead_window
    scheduler = ModeScheduler(
        table,
        num_generators=num_generators,
        policy=policy,
        max_queue_depth=len(workload) + 1,
        policy_kwargs=policy_kwargs,
        engine=engine,
    )
    if scheduler.serve_engine == "batch":
        count = len(workload)
        bits = np.fromiter(
            (p.required_bits for p in workload), np.int64, count
        )
        cycles = np.fromiter((p.cycles for p in workload), np.int64, count)
        # Report-only: no phases, no result arrays -- just accounting.
        scheduler._serve_frame(
            "replay",
            bits,
            cycles,
            want_phases=False,
            want_arrays=False,
            upcoming_cap=lookahead_window if policy == "lookahead" else 0,
        )
        return scheduler.report("replay")
    window = lookahead_window if policy == "lookahead" else 0
    for index, phase in enumerate(workload):
        upcoming = tuple(
            (p.required_bits, p.cycles)
            for p in workload[index + 1 : index + 1 + window]
        )
        scheduler.submit(
            ServeRequest("replay", phase.required_bits, phase.cycles),
            upcoming=upcoming,
        )
    return scheduler.report("replay")
