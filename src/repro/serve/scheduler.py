"""Event-driven shared-bias scheduler for concurrent operator instances.

The paper's Section III hardware sketch shares *two* charge pumps (plus
power switches) across all Vth domains -- and an SoC shares them across
operators.  Mode transitions are therefore a scheduling problem: every
well/rail slew occupies a bias generator for its settling time, and
concurrent operators contend for the finite pool.

:class:`ModeScheduler` models that in deterministic virtual time:

* each operator instance carries its own virtual clock (advanced by the
  compute duration of every phase it serves);
* a transition acquires the earliest-free generator; starting later than
  requested is accounted as queue wait;
* transitions *pending* on the pool that target the same electrical
  signature (VDD, per-domain bias) are **batched**: the power switches
  gang extra wells onto an already-scheduled slew, paying energy but no
  extra generator time;
* when the number of not-yet-started transitions reaches
  ``max_queue_depth`` the scheduler **degrades gracefully**: the request
  is served in the static maximum-accuracy mode (always sufficient, and
  the hardware's power-on default rail, so it bypasses the pool) instead
  of erroring or violating accuracy;
* the accuracy invariant is enforced centrally -- a policy bug surfaces
  as :class:`AccuracyViolation`, never as a silently wrong answer.

:func:`replay_trace` runs an offline workload through the same machinery
(one operator, unconstrained pool); with the greedy policy it reproduces
``AccuracyController.replay_reference`` bit-for-bit, which
``tests/test_serve_scheduler.py`` locks in differentially.

Resilience (all opt-in, the default path is bit-identical to before):

* an attached :class:`~repro.serve.guard.MarginGuard` vets every policy
  pick against runtime margin erosion and substitutes a safe mode
  (``margin_fallback`` on the served phase, ``margin_fallbacks`` in
  telemetry);
* bias transitions that the environment blocks (generator timeout
  windows) are retried with bounded exponential backoff in virtual
  time; an exhausted retry budget degrades to the static mode instead
  of failing the request;
* generator dropouts reported by the guard mark pool members
  unavailable and **rebalance** their not-yet-started slews onto the
  survivors; with every generator down, requests degrade to the static
  mode (power-on rail, no pool needed) until one returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.guard import MarginGuard

from repro.core.config import OperatingPoint
from repro.core.runtime import RuntimeReport, WorkloadPhase
from repro.serve.policy import SelectionPolicy, Upcoming, make_policy
from repro.serve.table import ModeTable, TransitionCost
from repro.serve.telemetry import Telemetry


class AccuracyViolation(RuntimeError):
    """A policy tried to serve fewer bits than the request demands."""


@dataclass(frozen=True)
class ServeRequest:
    """One phase of work demanded by an application."""

    operator: str
    required_bits: int
    cycles: int

    def __post_init__(self):
        if self.required_bits < 1:
            raise ValueError("required_bits must be >= 1")
        if self.cycles < 0:
            raise ValueError("cycles must be >= 0")


@dataclass(frozen=True)
class ServedPhase:
    """The scheduler's answer: which mode ran and what it cost."""

    operator: str
    required_bits: int
    mode: OperatingPoint
    compute_energy_j: float
    transition_energy_j: float
    settle_ns: float
    queue_wait_ns: float
    switched: bool
    batched: bool
    degraded: bool
    #: The margin guard overrode the policy's pick (erosion / stuck-at).
    margin_fallback: bool = False
    #: Blocked bias-transition attempts retried before this phase served.
    transition_retries: int = 0
    #: Operator virtual time at which the mode decision was made --
    #: lets an external auditor re-check the guard's verdict.
    decided_at_ns: float = 0.0

    @property
    def served_bits(self) -> int:
        return self.mode.active_bits


@dataclass
class _Grant:
    """A scheduled slew on one generator (or a batch join of one)."""

    signature: Tuple
    start_ns: float
    end_ns: float
    generator: int = -1


class GeneratorPool:
    """Finite pool of bias generators with slew batching.

    Virtual-time bookkeeping only: ``free_at_ns[i]`` is when generator
    *i* finishes its last scheduled slew.  Completed grants are pruned
    lazily against the requesting operator's clock.  Generators may be
    marked unavailable (dropout faults): they take no new slews, and
    :meth:`apply_dropouts` rebalances their not-yet-started grants onto
    the surviving generators.
    """

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("need at least one bias generator")
        self.size = size
        self.free_at_ns = [0.0] * size
        self.available = [True] * size
        self.pending: List[_Grant] = []
        self.max_depth_seen = 0
        self.dropouts = 0
        self.rebalanced_grants = 0

    def queue_depth(self, now_ns: float) -> int:
        """Number of scheduled slews that have not yet started."""
        self._prune(now_ns)
        return sum(1 for grant in self.pending if grant.start_ns > now_ns)

    @property
    def num_available(self) -> int:
        return sum(self.available)

    def _prune(self, now_ns: float) -> None:
        self.pending = [g for g in self.pending if g.end_ns > now_ns]

    def _earliest_available(self) -> Optional[int]:
        candidates = [i for i in range(self.size) if self.available[i]]
        if not candidates:
            return None
        return min(candidates, key=lambda i: self.free_at_ns[i])

    def apply_dropouts(
        self, dropped: FrozenSet[int], now_ns: float
    ) -> None:
        """Reconcile availability with the fault layer's dropout set.

        Newly dropped generators are counted and their queued (not yet
        started) slews move to the earliest-free survivor, preserving
        each slew's duration.  In-flight slews complete on their
        original generator (the pump output is held through the window).
        Restored generators simply become eligible again; their
        bookkeeping stays monotone.
        """
        dropped = frozenset(i for i in dropped if 0 <= i < self.size)
        newly_dropped = [
            i for i in dropped if self.available[i]
        ]
        for index in newly_dropped:
            self.available[index] = False
            self.dropouts += 1
        for index in range(self.size):
            if index not in dropped and not self.available[index]:
                self.available[index] = True
        if not newly_dropped or self.num_available == 0:
            return
        self._prune(now_ns)
        for grant in self.pending:
            if grant.generator in newly_dropped and grant.start_ns > now_ns:
                duration = grant.end_ns - grant.start_ns
                target = self._earliest_available()
                start = max(now_ns, self.free_at_ns[target])
                grant.generator = target
                grant.start_ns = start
                grant.end_ns = start + duration
                self.free_at_ns[target] = grant.end_ns
                self.rebalanced_grants += 1

    def acquire(
        self, now_ns: float, settle_ns: float, signature: Tuple
    ) -> Optional[Tuple[float, float, bool]]:
        """Schedule a slew at *now_ns*; returns (start, end, batched).

        A pending, not-yet-started grant with the same signature absorbs
        the request (power switches gang the extra wells onto the same
        slew) without consuming more generator time.  Returns ``None``
        when every generator is dropped out -- the caller must degrade.
        """
        self._prune(now_ns)
        for grant in self.pending:
            if grant.signature == signature and grant.start_ns >= now_ns:
                return (grant.start_ns, grant.end_ns, True)
        generator = self._earliest_available()
        if generator is None:
            return None
        start = max(now_ns, self.free_at_ns[generator])
        end = start + settle_ns
        self.free_at_ns[generator] = end
        self.pending.append(_Grant(signature, start, end, generator))
        self.max_depth_seen = max(self.max_depth_seen, self.queue_depth(now_ns))
        return (start, end, False)


@dataclass
class _OperatorState:
    table: ModeTable
    policy: SelectionPolicy
    clock_ns: float = 0.0
    current_bits: Optional[int] = None
    phases: int = 0
    cycles: int = 0
    compute_energy_j: float = 0.0
    transition_energy_j: float = 0.0
    transition_time_ns: float = 0.0
    switches: int = 0
    static_energy_j: float = 0.0


class ModeScheduler:
    """Serves accuracy-mode requests for many operators over one pool."""

    def __init__(
        self,
        table: ModeTable,
        num_generators: int = 2,
        policy: str = "greedy",
        max_queue_depth: int = 8,
        policy_kwargs: Optional[Dict] = None,
        telemetry: Optional[Telemetry] = None,
        guard: Optional["MarginGuard"] = None,
        max_transition_retries: int = 3,
        retry_backoff_ns: float = 50.0,
    ):
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if max_transition_retries < 0:
            raise ValueError("max_transition_retries must be >= 0")
        if retry_backoff_ns <= 0.0:
            raise ValueError("retry_backoff_ns must be positive")
        self.default_table = table
        self.policy_name = policy
        self.policy_kwargs = dict(policy_kwargs or {})
        self.pool = GeneratorPool(num_generators)
        self.max_queue_depth = max_queue_depth
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.guard = guard
        self.max_transition_retries = max_transition_retries
        self.retry_backoff_ns = retry_backoff_ns
        self._operators: Dict[str, _OperatorState] = {}

    # -- operator registry ---------------------------------------------------

    def register(
        self,
        operator: str,
        table: Optional[ModeTable] = None,
        policy: Optional[str] = None,
        **policy_kwargs,
    ) -> None:
        """Declare an operator instance (optional: submit auto-registers)."""
        if operator in self._operators:
            raise ValueError(f"operator {operator!r} already registered")
        table = table if table is not None else self.default_table
        name = policy if policy is not None else self.policy_name
        kwargs = policy_kwargs if policy_kwargs else self.policy_kwargs
        self._operators[operator] = _OperatorState(
            table=table, policy=make_policy(name, table, **kwargs)
        )

    def _state(self, operator: str) -> _OperatorState:
        if operator not in self._operators:
            self.register(operator)
        return self._operators[operator]

    @property
    def operators(self) -> List[str]:
        return list(self._operators)

    # -- serving -------------------------------------------------------------

    def submit(
        self, request: ServeRequest, upcoming: Sequence[Upcoming] = ()
    ) -> ServedPhase:
        """Serve one request; deterministic in submission order."""
        state = self._state(request.operator)
        table = state.table
        decided_at_ns = state.clock_ns
        bits_key = state.policy.select(
            request.required_bits, state.current_bits, upcoming
        )
        margin_fallback = False
        if self.guard is not None:
            bits_key, margin_fallback = self.guard.guarded_key(
                request.required_bits, bits_key, decided_at_ns
            )
            if margin_fallback:
                self.telemetry.bump("margin_fallbacks")
        mode = table.modes[bits_key]
        if mode.active_bits < request.required_bits:
            self.telemetry.bump("accuracy_violations")
            raise AccuracyViolation(
                f"policy {state.policy.name!r} chose a {mode.active_bits}-bit "
                f"mode for a {request.required_bits}-bit request"
            )

        switched = bits_key != state.current_bits
        cost = table.transition_between(state.current_bits, bits_key)
        degraded = False
        batched = False
        queue_wait_ns = 0.0
        settle_ns = 0.0
        retries = 0

        if switched and not cost.is_free:
            now = state.clock_ns
            exhausted = False
            if self.guard is not None:
                self.pool.apply_dropouts(
                    self.guard.dropped_generators(now), now
                )
                now, retries, exhausted = self._await_transition_window(now)
                if retries:
                    self.telemetry.bump("transition_retries", retries)
            if exhausted or self.pool.num_available == 0:
                # Transition retry budget exhausted or every generator
                # dropped out: serve the static maximum-accuracy mode.
                # Its rail is the hardware's always-on power-on default,
                # so the switch bypasses the generator pool entirely.
                self.telemetry.bump("transition_failures")
                degraded = True
                bits_key = table.max_bits
                switched = bits_key != state.current_bits
                mode = table.modes[bits_key]
                cost = table.transition_between(state.current_bits, bits_key)
                settle_ns = cost.settle_ns
            elif self.pool.queue_depth(now) >= self.max_queue_depth:
                # Saturated: fall back to the static maximum-accuracy
                # mode.  Its rail is the hardware's always-on power-on
                # default, so the switch bypasses the generator pool.
                degraded = True
                bits_key = table.max_bits
                switched = bits_key != state.current_bits
                mode = table.modes[bits_key]
                cost = table.transition_between(state.current_bits, bits_key)
                settle_ns = cost.settle_ns
            else:
                signature = (mode.vdd, mode.bb_config)
                grant = self.pool.acquire(now, cost.settle_ns, signature)
                if grant is None:  # pragma: no cover - num_available raced
                    grant = (now + cost.settle_ns, now + cost.settle_ns, False)
                start, end, batched = grant
                queue_wait_ns = start - state.clock_ns
                settle_ns = end - start
                state.clock_ns = end

        served = ServedPhase(
            operator=request.operator,
            required_bits=request.required_bits,
            mode=mode,
            compute_energy_j=self._compute_energy_j(table, mode, request.cycles),
            transition_energy_j=cost.energy_j if switched else 0.0,
            settle_ns=settle_ns,
            queue_wait_ns=queue_wait_ns,
            switched=switched,
            batched=batched,
            degraded=degraded,
            margin_fallback=margin_fallback,
            transition_retries=retries,
            decided_at_ns=decided_at_ns,
        )

        # Account the phase against the operator's running report.
        state.current_bits = bits_key
        state.phases += 1
        state.cycles += request.cycles
        state.compute_energy_j += served.compute_energy_j
        state.transition_energy_j += served.transition_energy_j
        state.transition_time_ns += settle_ns
        if switched:
            state.switches += 1
        state.static_energy_j += self._compute_energy_j(
            table, table.static_mode, request.cycles
        )
        state.clock_ns += request.cycles / table.fclk_ghz
        self.telemetry.record_phase(served)
        return served

    def submit_degraded(self, request: ServeRequest) -> ServedPhase:
        """Serve in the static max-accuracy mode, bypassing the pool.

        The front end's overload path: when its bounded request queue is
        full it must still answer -- correctly, if not cheaply.
        """
        state = self._state(request.operator)
        table = state.table
        bits_key = table.max_bits
        mode = table.modes[bits_key]
        switched = bits_key != state.current_bits
        cost = table.transition_between(state.current_bits, bits_key)
        served = ServedPhase(
            operator=request.operator,
            required_bits=request.required_bits,
            mode=mode,
            compute_energy_j=self._compute_energy_j(table, mode, request.cycles),
            transition_energy_j=cost.energy_j if switched else 0.0,
            settle_ns=cost.settle_ns if switched else 0.0,
            queue_wait_ns=0.0,
            switched=switched,
            batched=False,
            degraded=True,
            decided_at_ns=state.clock_ns,
        )
        state.current_bits = bits_key
        state.phases += 1
        state.cycles += request.cycles
        state.compute_energy_j += served.compute_energy_j
        state.transition_energy_j += served.transition_energy_j
        state.transition_time_ns += served.settle_ns
        if switched:
            state.switches += 1
        state.static_energy_j += self._compute_energy_j(
            table, mode, request.cycles
        )
        state.clock_ns += request.cycles / table.fclk_ghz
        self.telemetry.record_phase(served)
        return served

    def _await_transition_window(
        self, now_ns: float
    ) -> Tuple[float, int, bool]:
        """Back off (in virtual time) while bias transitions are blocked.

        Returns ``(new_now, retries, exhausted)``: the operator's clock
        after waiting, how many retry waits were spent, and whether the
        bounded budget ran out with transitions still blocked.
        """
        if self.guard is None or not self.guard.transition_blocked(now_ns):
            return now_ns, 0, False
        backoff = self.retry_backoff_ns
        retries = 0
        while retries < self.max_transition_retries:
            now_ns += backoff
            backoff *= 2.0
            retries += 1
            if not self.guard.transition_blocked(now_ns):
                return now_ns, retries, False
        return now_ns, retries, True

    @staticmethod
    def _compute_energy_j(
        table: ModeTable, mode: OperatingPoint, cycles: int
    ) -> float:
        duration_s = cycles / (table.fclk_ghz * 1e9)
        return mode.total_power_w * duration_s

    # -- reporting -----------------------------------------------------------

    def report(self, operator: str) -> RuntimeReport:
        """Legacy-shaped accounting of everything one operator served."""
        state = self._operators[operator]
        return RuntimeReport(
            phases=state.phases,
            total_cycles=state.cycles,
            compute_energy_j=state.compute_energy_j,
            transition_energy_j=state.transition_energy_j,
            transition_time_ns=state.transition_time_ns,
            mode_switches=state.switches,
            static_energy_j=state.static_energy_j,
        )


def replay_trace(
    table: ModeTable,
    workload: Sequence[WorkloadPhase],
    policy: str = "greedy",
    num_generators: int = 1,
    lookahead_window: int = 4,
    **policy_kwargs,
) -> RuntimeReport:
    """Replay an offline trace through the scheduler; return the report.

    Single operator, pool never saturated (depth bound is the trace
    length), so the only differences between policies are the selection
    decisions themselves.  The lookahead policy sees the next
    ``lookahead_window`` phases of the trace.
    """
    if not workload:
        raise ValueError("empty workload")
    if policy == "lookahead" and "window" not in policy_kwargs:
        policy_kwargs["window"] = lookahead_window
    scheduler = ModeScheduler(
        table,
        num_generators=num_generators,
        policy=policy,
        max_queue_depth=len(workload) + 1,
        policy_kwargs=policy_kwargs,
    )
    window = lookahead_window if policy == "lookahead" else 0
    for index, phase in enumerate(workload):
        upcoming = tuple(
            (p.required_bits, p.cycles)
            for p in workload[index + 1 : index + 1 + window]
        )
        scheduler.submit(
            ServeRequest("replay", phase.required_bits, phase.cycles),
            upcoming=upcoming,
        )
    return scheduler.report("replay")
